// Shared test helpers: small cached kernels and spec construction.
#pragma once

#include <gtest/gtest.h>

#include "accuracy/analytic_evaluator.hpp"
#include "fixpoint/iwl.hpp"
#include "ir/builder.hpp"
#include "kernels/kernels.hpp"

namespace slpwlo::testing {

/// Small FIR (16 taps, 128 samples) for fast unit tests.
inline const Kernel& small_fir() {
    static const Kernel kernel = [] {
        kernels::FirConfig config;
        config.taps = 16;
        config.samples = 128;
        config.lanes = 4;
        return kernels::make_fir64(config);
    }();
    return kernel;
}

/// Small IIR (order 4, 128 samples).
inline const Kernel& small_iir() {
    static const Kernel kernel = [] {
        kernels::IirConfig config;
        config.order = 4;
        config.samples = 128;
        config.lanes = 4;
        return kernels::make_iir10(config);
    }();
    return kernel;
}

/// Small CONV (8x8 output).
inline const Kernel& small_conv() {
    static const Kernel kernel = [] {
        kernels::ConvConfig config;
        config.height = 8;
        config.width = 8;
        return kernels::make_conv3x3(config);
    }();
    return kernel;
}

/// Initial spec (ranges + IWLs) for a kernel, cached per kernel address.
inline FixedPointSpec initial_spec(const Kernel& kernel,
                                   RangeMethod method = RangeMethod::Auto) {
    RangeOptions options;
    options.method = method;
    return build_initial_spec(kernel, options);
}

/// Set every node's total word length to `wl`.
inline void set_uniform_wl(FixedPointSpec& spec, int wl) {
    for (const NodeRef node : spec.nodes()) {
        spec.set_wl(node, wl);
    }
}

/// Cached analytic evaluator for a kernel (gain calibration is the
/// expensive part; share it across tests).
inline const AnalyticEvaluator& cached_evaluator(const Kernel& kernel) {
    static std::map<const Kernel*, std::unique_ptr<AnalyticEvaluator>> cache;
    auto& slot = cache[&kernel];
    if (!slot) slot = std::make_unique<AnalyticEvaluator>(kernel);
    return *slot;
}

/// A tiny two-tap kernel whose noise behaviour is hand-computable:
/// y[n] = c0*x[n] + c1*x[n+1].
inline Kernel make_two_tap(double c0 = 0.5, double c1 = 0.25) {
    KernelBuilder b("two_tap");
    const ArrayId x = b.input("x", 65, Interval(-1.0, 1.0));
    const ArrayId c = b.param("c", {c0, c1});
    const ArrayId y = b.output("y", 64);
    const LoopId n = b.begin_loop("n", 0, 64);
    const VarId p0 = b.mul(b.load(x, Affine::var(n)), b.load(c, Affine(0)));
    const VarId p1 = b.mul(b.load(x, Affine::var(n) + 1), b.load(c, Affine(1)));
    b.store(y, Affine::var(n), b.add(p0, p1));
    b.end_loop();
    return b.take();
}

}  // namespace slpwlo::testing
