// ShardEngine: deterministic shard planning, self-contained manifests,
// serializable/mergeable EvalCache snapshots, and the byte-identical
// merge guarantee (dist/).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "dist/cache_snapshot.hpp"
#include "dist/shard_manifest.hpp"
#include "dist/shard_merger.hpp"
#include "dist/shard_plan.hpp"
#include "dist/shard_runner.hpp"
#include "flow/pass.hpp"
#include "frontend/kernel_file.hpp"
#include "kernels/kernel_registry.hpp"
#include "support/diagnostics.hpp"
#include "target/target_model.hpp"

namespace slpwlo {
namespace {

using namespace slpwlo::dist;

std::vector<SweepPoint> small_grid() {
    return SweepDriver::grid({"FIR", "DOT"}, {"XENTIUM", "ST240"},
                             {"WLO-SLP", "Float"}, {-20.0, -35.0, -50.0});
}

// --- shard planning ------------------------------------------------------------

TEST(ShardPlan, PartitionIsDisjointAndComplete) {
    const std::vector<SweepPoint> grid = small_grid();
    for (const ShardStrategy strategy :
         {ShardStrategy::RoundRobin, ShardStrategy::CostBalanced}) {
        for (const int n : {1, 3, 4, 7, 64}) {
            const std::vector<ShardPlan> plans =
                make_shard_plans(grid, n, strategy);
            ASSERT_EQ(plans.size(), static_cast<size_t>(n));
            std::set<size_t> seen;
            for (const ShardPlan& plan : plans) {
                EXPECT_EQ(plan.shard_count, n);
                EXPECT_EQ(plan.total_slots, grid.size());
                EXPECT_EQ(plan.slots.size(), plan.points.size());
                EXPECT_TRUE(std::is_sorted(plan.slots.begin(),
                                           plan.slots.end()));
                for (const size_t slot : plan.slots) {
                    EXPECT_LT(slot, grid.size());
                    // Disjoint: no slot assigned twice.
                    EXPECT_TRUE(seen.insert(slot).second);
                }
            }
            // Complete: every slot assigned.
            EXPECT_EQ(seen.size(), grid.size());
        }
    }
}

TEST(ShardPlan, PlansAreDeterministic) {
    const std::vector<SweepPoint> grid = small_grid();
    for (const ShardStrategy strategy :
         {ShardStrategy::RoundRobin, ShardStrategy::CostBalanced}) {
        const std::vector<ShardPlan> a = make_shard_plans(grid, 4, strategy);
        const std::vector<ShardPlan> b = make_shard_plans(grid, 4, strategy);
        ASSERT_EQ(a.size(), b.size());
        for (size_t s = 0; s < a.size(); ++s) {
            EXPECT_EQ(a[s].slots, b[s].slots);
            EXPECT_EQ(a[s].grid_fp, b[s].grid_fp);
            ASSERT_EQ(a[s].points.size(), b[s].points.size());
            for (size_t i = 0; i < a[s].points.size(); ++i) {
                EXPECT_EQ(point_fingerprint(a[s].points[i]),
                          point_fingerprint(b[s].points[i]));
            }
        }
        // The grid fingerprint is shard-count independent.
        EXPECT_EQ(a.front().grid_fp,
                  make_shard_plans(grid, 9, strategy).front().grid_fp);
    }
}

TEST(ShardPlan, EmbedsTargetModels) {
    std::vector<SweepPoint> grid = small_grid();
    for (const SweepPoint& point : grid) {
        EXPECT_FALSE(point.target_model.has_value());
    }
    const std::vector<ShardPlan> plans =
        make_shard_plans(grid, 2, ShardStrategy::RoundRobin);
    for (const ShardPlan& plan : plans) {
        for (const SweepPoint& point : plan.points) {
            ASSERT_TRUE(point.target_model.has_value());
            EXPECT_EQ(point.target_model->name, point.target);
        }
    }
}

TEST(ShardPlan, CostBalancedSpreadsLoad) {
    // A grid whose costs are wildly uneven: expensive strict WLO-First
    // points next to trivial Float references.
    const std::vector<SweepPoint> grid = SweepDriver::grid(
        {"FIR"}, {"XENTIUM"}, {"WLO-First", "Float"},
        {-10.0, -20.0, -30.0, -40.0, -50.0, -60.0});
    const std::vector<ShardPlan> plans =
        make_shard_plans(grid, 3, ShardStrategy::CostBalanced);
    std::vector<double> load;
    for (const ShardPlan& plan : plans) {
        EXPECT_FALSE(plan.points.empty());
        double cost = 0.0;
        for (const SweepPoint& point : plan.points) {
            cost += estimate_point_cost(point);
        }
        load.push_back(cost);
    }
    const double max = *std::max_element(load.begin(), load.end());
    const double min = *std::min_element(load.begin(), load.end());
    // LPT keeps the spread well under the cost of the heaviest point.
    EXPECT_LT(max - min, 6.0);
    EXPECT_GT(min, 0.0);
}

TEST(ShardPlan, FingerprintSeesModelAndOptionChanges) {
    std::vector<SweepPoint> grid = small_grid();
    embed_target_models(grid);
    const uint64_t base = grid_fingerprint(grid);

    std::vector<SweepPoint> tweaked_model = grid;
    tweaked_model[0].target_model->issue_width += 1;
    EXPECT_NE(grid_fingerprint(tweaked_model), base);

    std::vector<SweepPoint> tweaked_options = grid;
    FlowOptions options;
    options.wlo_slp.scaling_optim = false;
    tweaked_options[0].options = options;
    EXPECT_NE(grid_fingerprint(tweaked_options), base);
}

// --- manifests -----------------------------------------------------------------

TEST(ShardManifest, RoundTripsExactly) {
    std::vector<SweepPoint> grid = small_grid();
    // A per-point override and a derived-width model exercise the parts a
    // worker could never reconstruct from names.
    FlowOptions overrides;
    overrides.quant_mode = QuantMode::Round;
    overrides.wlo_slp.slp.min_benefit = 0.125;
    overrides.wlo_first.tabu.max_iterations = 77;
    grid[3].options = overrides;
    grid[5].target_model = targets::xentium().with_simd_width(64);
    grid[5].target = grid[5].target_model->name;

    FlowOptions defaults;
    defaults.accuracy_db = -33.5;
    defaults.wlo_first.tabu.tenure = 11;

    const std::vector<ShardPlan> plans =
        make_shard_plans(grid, 3, ShardStrategy::CostBalanced);
    for (const ShardPlan& plan : plans) {
        const std::string text = shard_manifest_text(plan, defaults);
        const ShardManifest manifest =
            parse_shard_manifest(text, "<round-trip>");

        EXPECT_EQ(manifest.version, 4);
        EXPECT_EQ(manifest.shard_index, plan.shard_index);
        EXPECT_EQ(manifest.shard_count, plan.shard_count);
        EXPECT_EQ(manifest.strategy, plan.strategy);
        EXPECT_EQ(manifest.total_slots, plan.total_slots);
        EXPECT_EQ(manifest.grid_fp, plan.grid_fp);
        EXPECT_EQ(manifest.slots, plan.slots);
        EXPECT_EQ(flow_options_kv(manifest.defaults, ""),
                  flow_options_kv(defaults, ""));
        ASSERT_EQ(manifest.points.size(), plan.points.size());
        for (size_t i = 0; i < plan.points.size(); ++i) {
            // point_fingerprint covers kernel, labels, flow, constraint
            // bits, options and the embedded model's content hash.
            EXPECT_EQ(point_fingerprint(manifest.points[i]),
                      point_fingerprint(plan.points[i]));
        }
    }
}

TEST(ShardManifest, KeepsNamesOfRenamedIdenticalModels) {
    // with_simd_width at the native width only renames the model, so its
    // name-free content fingerprint matches the base ISA's. The manifest
    // must still embed both (the name lands in the report bytes).
    const TargetModel base = targets::xentium();
    const TargetModel renamed = base.with_simd_width(base.simd_width_bits);
    ASSERT_EQ(target_fingerprint(base), target_fingerprint(renamed));
    ASSERT_NE(base.name, renamed.name);

    std::vector<SweepPoint> grid{
        SweepPoint{"FIR", base.name, "WLO-SLP", -20.0, {}, base, {}},
        SweepPoint{"FIR", renamed.name, "WLO-SLP", -20.0, {}, renamed, {}}};
    const std::vector<ShardPlan> plans =
        make_shard_plans(grid, 1, ShardStrategy::RoundRobin);
    const ShardManifest manifest =
        parse_shard_manifest(shard_manifest_text(plans[0]), "<renamed>");
    ASSERT_EQ(manifest.points.size(), 2u);
    EXPECT_EQ(manifest.points[0].target_model->name, base.name);
    EXPECT_EQ(manifest.points[1].target_model->name, renamed.name);
    // And the points do not alias in conflict detection either.
    EXPECT_NE(point_fingerprint(plans[0].points[0]),
              point_fingerprint(plans[0].points[1]));
}

TEST(ShardManifest, EmbedsFileKernelSourceAndRoundTrips) {
    // A DSL-registered kernel must travel inside the manifest: the worker
    // has no .slp file, only the bytes the planner embedded. The embedded
    // form is the canonical source, so writer and reader agree byte for
    // byte and the point fingerprints match across the wire.
    frontend::register_kernel_source(
        "# shipped with the manifest\n"
        "kernel manifest_trip {\n"
        "  input x[6] range(-1.0, 1.0);\n"
        "  output y[4];\n"
        "  loop n = 0..4 unroll 2 { y[n] = x[n] * 0.5 + x[n + 2] * 0.25; }\n"
        "}\n");
    const std::vector<SweepPoint> grid = SweepDriver::grid(
        {"manifest_trip", "FIR"}, {"XENTIUM"}, {"WLO-SLP"}, {-20.0});
    const std::vector<ShardPlan> plans =
        make_shard_plans(grid, 1, ShardStrategy::RoundRobin);
    ASSERT_EQ(plans[0].points.size(), 2u);

    // Planning embedded the canonical source for the DSL kernel only.
    const kernels::KernelEntry entry =
        kernels::KernelRegistry::instance().entry("manifest_trip");
    ASSERT_TRUE(plans[0].points[0].kernel_source.has_value());
    EXPECT_EQ(*plans[0].points[0].kernel_source, entry.dsl_source);
    EXPECT_FALSE(plans[0].points[1].kernel_source.has_value());

    const std::string text = shard_manifest_text(plans[0]);
    EXPECT_NE(text.find("begin_kernel k0"), std::string::npos) << text;
    EXPECT_NE(text.find("kernel_source = k0"), std::string::npos) << text;
    // The comment line never reaches the manifest.
    EXPECT_EQ(text.find("shipped with"), std::string::npos) << text;

    const ShardManifest manifest = parse_shard_manifest(text, "<kernel>");
    ASSERT_EQ(manifest.points.size(), 2u);
    ASSERT_TRUE(manifest.points[0].kernel_source.has_value());
    EXPECT_EQ(*manifest.points[0].kernel_source, entry.dsl_source);
    EXPECT_FALSE(manifest.points[1].kernel_source.has_value());
    for (size_t i = 0; i < manifest.points.size(); ++i) {
        EXPECT_EQ(point_fingerprint(manifest.points[i]),
                  point_fingerprint(plans[0].points[i]));
    }
}

TEST(ShardManifest, RejectsMalformedInput) {
    const std::vector<ShardPlan> plans =
        make_shard_plans(small_grid(), 2, ShardStrategy::RoundRobin);
    const std::string good = shard_manifest_text(plans[0]);
    EXPECT_NO_THROW(parse_shard_manifest(good));

    // Unsupported version (the versioning policy: readers reject what
    // they do not know — v1 to v4 parse, v5 does not exist yet).
    {
        std::string text = good;
        const size_t pos = text.find("manifest_version = 4");
        ASSERT_NE(pos, std::string::npos);
        text.replace(pos, 20, "manifest_version = 5");
        EXPECT_THROW(parse_shard_manifest(text), Error);
    }
    // A version-1 header still parses (pre-evaluator manifests remain
    // readable).
    {
        std::string text = good;
        const size_t pos = text.find("manifest_version = 4");
        ASSERT_NE(pos, std::string::npos);
        text.replace(pos, 20, "manifest_version = 1");
        EXPECT_NO_THROW(parse_shard_manifest(text));
    }
    // Unterminated point block.
    {
        std::string text = good;
        const size_t pos = text.rfind("end_point");
        text.resize(pos);
        EXPECT_THROW(parse_shard_manifest(text), Error);
    }
    // Unknown keys are errors, not extensions.
    EXPECT_THROW(parse_shard_manifest(good + "\nmystery_key = 1\n"), Error);
    // Unknown model reference.
    {
        std::string text = good;
        const size_t pos = text.find("model = t0");
        text.replace(pos, 10, "model = t9");
        EXPECT_THROW(parse_shard_manifest(text), Error);
    }
    // Slot out of range.
    {
        std::string text = good;
        const size_t pos = text.find("slot = 0");
        text.replace(pos, 8, "slot = 999");
        EXPECT_THROW(parse_shard_manifest(text), Error);
    }
    EXPECT_THROW(parse_shard_manifest("kernel = FIR\n"), Error);
}

// --- cache snapshots -----------------------------------------------------------

EvalCache::StageEntry synthetic_stage_entry() {
    EvalCache::StageEntry stage;
    stage.quant_mode = QuantMode::Round;
    stage.formats = {FixedFormat(3, 12), FixedFormat(1, 0), FixedFormat(2, 7)};
    BlockGroups bg;
    bg.block = BlockId(1);
    bg.groups.push_back(SimdGroup{{OpId(4), OpId(9)}});
    stage.groups.push_back(std::move(bg));
    stage.slp_stats.rounds = 2;
    stage.slp_stats.candidates_seen = 11;
    stage.slp_stats.selected = 3;
    stage.scaling_stats.reuses_examined = 5;
    stage.scaling_stats.equalized = 1;
    stage.tabu_stats.iterations = 42;
    stage.tabu_stats.improvements = 6;
    // Odd doubles (negative, -inf) must survive the text round-trip
    // bit-exactly, like the eval entries' noise field.
    stage.tabu_stats.initial_cost = 19.75;
    stage.tabu_stats.best_cost = -std::numeric_limits<double>::infinity();
    stage.tabu_stats.feasible = true;
    // Solver stats (snapshot_version 3): a warm-started exact flow must
    // reproduce the cold run's solver block byte for byte.
    stage.solver_stats.ran = true;
    stage.solver_stats.nodes = 137;
    stage.solver_stats.solves = 1;
    stage.solver_stats.proven_optimal = true;
    stage.solver_stats.heuristic_objective = 64.0;
    stage.solver_stats.best_objective = 61.5;
    stage.solver_stats.gap = 2.5;
    stage.group_count = 1;
    return stage;
}

CacheSnapshot synthetic_snapshot() {
    EvalCache cache;
    cache.store(0x1111, EvalCache::Entry{100, 40, -38.5});
    cache.store(0x2222, EvalCache::Entry{250, 90, -51.25});
    // The -inf noise of an exact spec must survive the text round-trip.
    cache.store(0x3333,
                EvalCache::Entry{7, 7, -std::numeric_limits<double>::infinity()});
    cache.store_stage(0xaaaa, synthetic_stage_entry());
    return snapshot_cache(cache);
}

TEST(CacheSnapshot, RoundTripsBitExactly) {
    const CacheSnapshot snapshot = synthetic_snapshot();
    EXPECT_EQ(snapshot.entries.size(), 3u);
    const std::string text = cache_snapshot_text(snapshot);
    const CacheSnapshot loaded = parse_cache_snapshot(text, "<round-trip>");
    EXPECT_EQ(snapshot_fingerprint(loaded), snapshot_fingerprint(snapshot));
    ASSERT_EQ(loaded.entries.size(), snapshot.entries.size());
    for (size_t i = 0; i < loaded.entries.size(); ++i) {
        EXPECT_EQ(loaded.entries[i].first, snapshot.entries[i].first);
        EXPECT_TRUE(loaded.entries[i].second == snapshot.entries[i].second);
    }
    // Stage-memo entries (snapshot_version 2) round-trip field for field.
    ASSERT_EQ(loaded.stage_entries.size(), 1u);
    EXPECT_EQ(loaded.stage_entries[0].first, 0xaaaaull);
    EXPECT_TRUE(loaded.stage_entries[0].second == synthetic_stage_entry());
    // And the serialization itself is stable.
    EXPECT_EQ(cache_snapshot_text(loaded), text);
}

TEST(CacheSnapshot, PreloadWarmsACache) {
    const CacheSnapshot snapshot = synthetic_snapshot();
    EvalCache cache;
    preload_cache(cache, snapshot);
    EXPECT_EQ(cache.size(), 3u);
    const auto entry = cache.lookup(0x2222);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->scalar_cycles, 250);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(CacheSnapshot, PreloadIsCounterNeutralAndDeterministic) {
    const CacheSnapshot snapshot = synthetic_snapshot();

    // A warm start must not masquerade as cache traffic: no hits, no
    // misses, no evictions from the preload itself.
    EvalCache cold;
    preload_cache(cold, snapshot);
    EXPECT_EQ(cold.hits(), 0u);
    EXPECT_EQ(cold.misses(), 0u);
    EXPECT_EQ(cold.evictions(), 0u);
    EXPECT_EQ(cold.size(), snapshot.entries.size());

    // Preloading into a capacity-bounded cache keeps a deterministic
    // survivor set (the highest-keyed `capacity` entries — what FIFO
    // insertion in snapshot order would leave resident) and still does
    // not count the overflow as evictions.
    EvalCache bounded_a, bounded_b;
    bounded_a.set_capacity(2);
    bounded_b.set_capacity(2);
    preload_cache(bounded_a, snapshot);
    preload_cache(bounded_b, snapshot);
    EXPECT_EQ(bounded_a.size(), 2u);
    EXPECT_EQ(bounded_a.hits(), 0u);
    EXPECT_EQ(bounded_a.misses(), 0u);
    EXPECT_EQ(bounded_a.evictions(), 0u);
    const auto exported_a = bounded_a.export_entries();
    const auto exported_b = bounded_b.export_entries();
    ASSERT_EQ(exported_a.size(), exported_b.size());
    for (size_t i = 0; i < exported_a.size(); ++i) {
        EXPECT_EQ(exported_a[i].first, exported_b[i].first);
        EXPECT_TRUE(exported_a[i].second == exported_b[i].second);
    }
    // Survivors are the snapshot's last (highest-keyed) two entries.
    ASSERT_EQ(exported_a.size(), 2u);
    EXPECT_EQ(exported_a[0].first,
              snapshot.entries[snapshot.entries.size() - 2].first);
    EXPECT_EQ(exported_a[1].first, snapshot.entries.back().first);

    // Preload over existing contents: resident keys win, counters still
    // untouched.
    EvalCache warm;
    warm.store(snapshot.entries.front().first, EvalCache::Entry{7, 7, -7.0});
    preload_cache(warm, snapshot);
    EXPECT_EQ(warm.hits(), 0u);
    EXPECT_EQ(warm.misses(), 0u);
    EXPECT_EQ(warm.lookup(snapshot.entries.front().first)->scalar_cycles, 7);

    // Preload into a bounded cache that already holds sweep entries:
    // residents are never displaced (and no evictions are counted) —
    // only the free slot fills, with the snapshot's highest-keyed entry.
    EvalCache busy;
    busy.set_capacity(2);
    busy.store(0x9999, EvalCache::Entry{1, 1, -1.0});
    preload_cache(busy, snapshot);
    EXPECT_EQ(busy.size(), 2u);
    EXPECT_EQ(busy.evictions(), 0u);
    EXPECT_TRUE(busy.lookup(0x9999).has_value());
    EXPECT_TRUE(busy.lookup(snapshot.entries.back().first).has_value());

    // Snapshot keys already resident do not consume free slots: with one
    // of the three snapshot keys resident and two slots free, the whole
    // snapshot fits.
    EvalCache overlap;
    overlap.set_capacity(3);
    overlap.store(snapshot.entries[1].first, EvalCache::Entry{5, 5, -5.0});
    preload_cache(overlap, snapshot);
    EXPECT_EQ(overlap.size(), 3u);
    EXPECT_EQ(overlap.evictions(), 0u);
    for (const auto& [key, entry] : snapshot.entries) {
        (void)entry;
        EXPECT_TRUE(overlap.lookup(key).has_value());
    }
}

TEST(CacheSnapshot, MergeDeduplicatesAndDetectsConflicts) {
    const CacheSnapshot a = synthetic_snapshot();
    CacheSnapshot b;
    b.entries.emplace_back(0x2222, EvalCache::Entry{250, 90, -51.25});
    b.entries.emplace_back(0x4444, EvalCache::Entry{1, 2, -3.0});

    const CacheSnapshot merged = merge_cache_snapshots({a, b});
    EXPECT_EQ(merged.entries.size(), 4u);  // 0x2222 deduplicated
    EXPECT_TRUE(std::is_sorted(
        merged.entries.begin(), merged.entries.end(),
        [](const auto& x, const auto& y) { return x.first < y.first; }));

    CacheSnapshot conflict;
    conflict.entries.emplace_back(0x2222, EvalCache::Entry{999, 90, -51.25});
    EXPECT_THROW(merge_cache_snapshots({a, conflict}), Error);
}

TEST(CacheSnapshot, RejectsMalformedInput) {
    const std::string good = cache_snapshot_text(synthetic_snapshot());
    EXPECT_NO_THROW(parse_cache_snapshot(good));
    EXPECT_THROW(parse_cache_snapshot("entries = 0\n"), Error);  // no version
    EXPECT_THROW(parse_cache_snapshot("snapshot_version = 9\n"), Error);
    EXPECT_THROW(
        parse_cache_snapshot("snapshot_version = 1\nentries = 2\n"), Error);
    EXPECT_THROW(parse_cache_snapshot("snapshot_version = 1\n"
                                      "entry = zzz 1 2 0000000000000000\n"),
                 Error);
    // Duplicate header keys must not silently last-win.
    EXPECT_THROW(
        parse_cache_snapshot("snapshot_version = 1\nsnapshot_version = 1\n"),
        Error);
    // A version-1 file (no stage lines) still reads; one that smuggles
    // stage entries in does not.
    EXPECT_NO_THROW(parse_cache_snapshot(
        "snapshot_version = 1\n"
        "entry = 0000000000000001 1 2 0000000000000000\n"));
    EXPECT_THROW(parse_cache_snapshot(
                     "snapshot_version = 1\n"
                     "stage_entry = 0000000000000001 0 0 0 0 0 0 0 0 0 0 0 "
                     "0 0 0 0 0 0 0 0 0000000000000000 0000000000000000 "
                     "0 0\n"),
                 Error);
    // Truncated or trailing stage_entry token streams are rejected.
    EXPECT_THROW(parse_cache_snapshot("snapshot_version = 2\n"
                                      "stage_entry = 0000000000000001 0 1\n"),
                 Error);
    EXPECT_THROW(parse_cache_snapshot("snapshot_version = 2\n"
                                      "stage_entries = 3\n"),
                 Error);
    // A version-2 header cannot smuggle the version-3 solver suffix: the
    // writer's own v3 stage lines have trailing fields under a v2 reader.
    {
        std::string text = good;
        const size_t pos = text.find("snapshot_version = 3");
        ASSERT_NE(pos, std::string::npos);
        text.replace(pos, 20, "snapshot_version = 2");
        EXPECT_THROW(parse_cache_snapshot(text), Error);
    }
}

TEST(CacheSnapshot, StageEntriesMergeAndDetectConflicts) {
    CacheSnapshot a;
    a.stage_entries.emplace_back(0xaaaa, synthetic_stage_entry());
    CacheSnapshot b;
    b.stage_entries.emplace_back(0xaaaa, synthetic_stage_entry());
    b.stage_entries.emplace_back(0xbbbb, synthetic_stage_entry());

    const CacheSnapshot merged = merge_cache_snapshots({a, b});
    ASSERT_EQ(merged.stage_entries.size(), 2u);  // 0xaaaa deduplicated
    EXPECT_TRUE(merged.stage_entries[0].second == synthetic_stage_entry());

    CacheSnapshot conflict;
    EvalCache::StageEntry other = synthetic_stage_entry();
    other.tabu_stats.best_cost = 0.0;  // any single-field difference
    conflict.stage_entries.emplace_back(0xaaaa, std::move(other));
    EXPECT_THROW(merge_cache_snapshots({a, conflict}), Error);
}

// --- EvalCache capacity bound --------------------------------------------------

TEST(EvalCacheCapacity, EvictsInInsertionOrder) {
    EvalCache cache;
    cache.set_capacity(2);
    cache.store(1, EvalCache::Entry{10, 10, -1.0});
    cache.store(2, EvalCache::Entry{20, 20, -2.0});
    cache.store(3, EvalCache::Entry{30, 30, -3.0});
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(cache.lookup(1).has_value());  // oldest insertion evicted
    EXPECT_TRUE(cache.lookup(2).has_value());
    EXPECT_TRUE(cache.lookup(3).has_value());
}

TEST(EvalCacheCapacity, ShrinkingEvictsImmediately) {
    EvalCache cache;
    for (uint64_t key = 1; key <= 5; ++key) {
        cache.store(key, EvalCache::Entry{});
    }
    EXPECT_EQ(cache.size(), 5u);
    EXPECT_EQ(cache.capacity(), 0u);  // unlimited by default
    cache.set_capacity(2);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_FALSE(cache.lookup(3).has_value());
    EXPECT_TRUE(cache.lookup(4).has_value());
    EXPECT_TRUE(cache.lookup(5).has_value());
}

TEST(EvalCacheCapacity, FirstStoreWinsWithoutEviction) {
    EvalCache cache;
    cache.set_capacity(2);
    cache.store(1, EvalCache::Entry{10, 10, -1.0});
    cache.store(1, EvalCache::Entry{99, 99, -9.0});  // ignored duplicate
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.lookup(1)->scalar_cycles, 10);
}

// --- merge ---------------------------------------------------------------------

ShardResultsFile tiny_results(int index, int count, size_t total,
                              uint64_t grid_fp) {
    ShardResultsFile file;
    file.shard_index = index;
    file.shard_count = count;
    file.total_slots = total;
    file.grid_fp = grid_fp;
    return file;
}

TEST(ShardMerger, DetectsConflictsAndHoles) {
    ShardResultsFile a = tiny_results(0, 2, 2, 0xabc);
    a.rows.push_back(ShardRow{0, 0x1, "{\"x\":1}"});
    ShardResultsFile b = tiny_results(1, 2, 2, 0xabc);
    b.rows.push_back(ShardRow{1, 0x2, "{\"x\":2}"});

    // The happy path: disjoint, complete, consistent.
    EXPECT_EQ(merge_shard_results({a, b}),
              "[\n  {\"x\":1},\n  {\"x\":2}\n]\n");

    // Same slot, different fingerprint: hard conflict.
    ShardResultsFile conflicting = tiny_results(1, 2, 2, 0xabc);
    conflicting.rows.push_back(ShardRow{0, 0x9, "{\"x\":9}"});
    try {
        merge_shard_results({a, conflicting});
        FAIL() << "conflict not detected";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("conflict"), std::string::npos);
    }

    // Same slot, same content: still an overlap error.
    EXPECT_THROW(merge_shard_results({a, a}), Error);

    // Missing slots are listed.
    try {
        merge_shard_results({a});
        FAIL() << "hole not detected";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
    }

    // Grids must match.
    ShardResultsFile other_grid = tiny_results(1, 2, 2, 0xdef);
    other_grid.rows.push_back(ShardRow{1, 0x2, "{\"x\":2}"});
    EXPECT_THROW(merge_shard_results({a, other_grid}), Error);
}

TEST(ShardMerger, ResultsFileRoundTrips) {
    ShardResultsFile file = tiny_results(1, 4, 9, 0x1234567890abcdefull);
    file.eval_hits = 3;
    file.eval_misses = 5;
    file.eval_entries = 4;
    file.rows.push_back(ShardRow{1, 0xa, "{\"flow\":\"WLO-SLP\",\"x\":1}", 12345});
    file.rows.push_back(ShardRow{5, 0xb, "{\"note\":\"has # inside\"}", 0});

    const ShardResultsFile loaded =
        parse_shard_results(shard_results_text(file), "<round-trip>");
    EXPECT_EQ(loaded.shard_index, file.shard_index);
    EXPECT_EQ(loaded.shard_count, file.shard_count);
    EXPECT_EQ(loaded.total_slots, file.total_slots);
    EXPECT_EQ(loaded.grid_fp, file.grid_fp);
    EXPECT_EQ(loaded.eval_hits, file.eval_hits);
    EXPECT_EQ(loaded.eval_misses, file.eval_misses);
    EXPECT_EQ(loaded.eval_entries, file.eval_entries);
    ASSERT_EQ(loaded.rows.size(), file.rows.size());
    for (size_t i = 0; i < file.rows.size(); ++i) {
        EXPECT_EQ(loaded.rows[i].slot, file.rows[i].slot);
        EXPECT_EQ(loaded.rows[i].point_fp, file.rows[i].point_fp);
        EXPECT_EQ(loaded.rows[i].json, file.rows[i].json);
        // The measured wall-clock column round-trips (but is excluded
        // from row identity — see the merge tests).
        EXPECT_EQ(loaded.rows[i].micros, file.rows[i].micros);
    }

    // A concatenation of two results files (duplicate headers) must not
    // silently last-win its way past the merge checks.
    const std::string text = shard_results_text(file);
    EXPECT_THROW(parse_shard_results(text + text, "<concat>"), Error);
}

// --- end to end (in-process) ---------------------------------------------------

TEST(ShardEngine, ShardedSweepIsByteIdenticalToSingleProcess) {
    const std::vector<SweepPoint> grid = SweepDriver::grid(
        {"FIR"}, {"XENTIUM"}, {"WLO-SLP"}, {-20.0, -30.0});

    SweepOptions options;
    options.threads = 2;
    SweepDriver reference(options);
    const std::string reference_json = sweep_to_json(reference.run(grid));

    const std::vector<ShardPlan> plans =
        make_shard_plans(grid, 2, ShardStrategy::RoundRobin);
    std::vector<ShardResultsFile> shard_files;
    std::vector<CacheSnapshot> snapshots;
    for (const ShardPlan& plan : plans) {
        // Through the manifest text, exactly as a worker process would.
        const ShardManifest manifest =
            parse_shard_manifest(shard_manifest_text(plan), "<manifest>");
        ShardRunOptions run_options;
        run_options.threads = 1;
        const ShardRunOutput out = run_shard(manifest, run_options);
        shard_files.push_back(out.results);
        snapshots.push_back(out.snapshot);
    }
    EXPECT_EQ(merge_shard_results(shard_files), reference_json);

    // Warm restart: a shard preloaded with the merged snapshot hits.
    const CacheSnapshot warm = merge_cache_snapshots(snapshots);
    const ShardManifest manifest =
        parse_shard_manifest(shard_manifest_text(plans[0]), "<manifest>");
    ShardRunOptions warm_options;
    warm_options.threads = 1;
    warm_options.warm = &warm;
    const ShardRunOutput warm_out = run_shard(manifest, warm_options);
    EXPECT_GT(warm_out.results.eval_hits, 0u);
    // Stage-memo hits: the warm worker restored the optimization stages
    // (skipping Tabu/SLP) for every preloaded point, and the rows below
    // are still byte-identical to the cold run's.
    EXPECT_GT(warm_out.results.stage_hits, 0u);
    EXPECT_EQ(warm_out.results.stage_misses, 0u);
    ASSERT_EQ(warm_out.results.rows.size(), shard_files[0].rows.size());
    for (size_t i = 0; i < warm_out.results.rows.size(); ++i) {
        EXPECT_EQ(warm_out.results.rows[i].json, shard_files[0].rows[i].json);
    }
}

}  // namespace
}  // namespace slpwlo
