// Tests for the kernel-DSL frontend: lexer, parser, semantic errors,
// equivalence of DSL-compiled kernels with builder-constructed ones, the
// `.slp` file ingestion path (range annotations, file-position
// diagnostics) and the seeded kernel generator.
#include <gtest/gtest.h>

#include <fstream>

#include "frontend/kernel_file.hpp"
#include "frontend/kernel_gen.hpp"
#include "frontend/lower_ast.hpp"
#include "ir/verifier.hpp"
#include "sim/double_sim.hpp"
#include "support/diagnostics.hpp"
#include "flow/flow.hpp"
#include "target/target_model.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

const char* kDotSource = R"(
# 4-tap dot product kernel
kernel dot4 {
  input  x[19] range(-1.0, 1.0);
  param  c[4] = { 0.5, -0.25, 0.125, 0.0625 };
  output y[16];
  var acc;
  loop n = 0..16 {
    acc = 0.0;
    loop k = 0..4 unroll 2 {
      acc = acc + c[k] * x[n + k];
    }
    y[n] = acc;
  }
}
)";

// --- lexer ----------------------------------------------------------------------

TEST(Lexer, TokenStream) {
    const auto tokens = lex("loop n = 0..16 { y[n] = -1.5; }");
    ASSERT_GE(tokens.size(), 14u);
    EXPECT_EQ(tokens[0].kind, TokKind::KwLoop);
    EXPECT_EQ(tokens[1].kind, TokKind::Identifier);
    EXPECT_EQ(tokens[3].kind, TokKind::Number);
    EXPECT_EQ(tokens[4].kind, TokKind::DotDot);
    EXPECT_EQ(tokens.back().kind, TokKind::End);
}

TEST(Lexer, NumbersAndRanges) {
    const auto tokens = lex("0.5 1e-3 7..9");
    EXPECT_DOUBLE_EQ(tokens[0].number, 0.5);
    EXPECT_DOUBLE_EQ(tokens[1].number, 1e-3);
    EXPECT_DOUBLE_EQ(tokens[2].number, 7.0);
    EXPECT_EQ(tokens[3].kind, TokKind::DotDot);
    EXPECT_DOUBLE_EQ(tokens[4].number, 9.0);
}

TEST(Lexer, CommentsIgnored) {
    const auto tokens = lex("var a; # comment\n// another\nvar b;");
    int vars = 0;
    for (const Token& t : tokens) {
        if (t.kind == TokKind::KwVar) vars++;
    }
    EXPECT_EQ(vars, 2);
}

TEST(Lexer, IllegalCharacterThrows) {
    EXPECT_THROW(lex("var a @ b;"), ParseError);
}

// --- parser ----------------------------------------------------------------------

TEST(Parser, ParsesDotKernel) {
    const ast::KernelAst k = ast::parse(kDotSource);
    EXPECT_EQ(k.name, "dot4");
    ASSERT_EQ(k.decls.size(), 4u);
    EXPECT_EQ(k.decls[0].kind, ast::Decl::Kind::Input);
    EXPECT_EQ(k.decls[1].values.size(), 4u);
    EXPECT_DOUBLE_EQ(k.decls[1].values[1], -0.25);
    ASSERT_EQ(k.body.size(), 1u);
    EXPECT_EQ(k.body[0]->kind, ast::Stmt::Kind::Loop);
    EXPECT_EQ(k.body[0]->end, 16);
}

TEST(Parser, SyntaxErrorsCarryLocation) {
    try {
        ast::parse("kernel bad { output y[4] }");  // missing ';'
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_GE(e.line(), 1);
        EXPECT_NE(std::string(e.what()).find("expected"), std::string::npos);
    }
}

TEST(Parser, RejectsAssignToExpression) {
    EXPECT_THROW(ast::parse("kernel bad { var a; 1.0 = a; }"), ParseError);
}

// --- lowering / sema --------------------------------------------------------------

TEST(LowerAst, CompilesAndVerifies) {
    const Kernel k = compile_kernel_source(kDotSource);
    EXPECT_EQ(k.name(), "dot4");
    EXPECT_NO_THROW(verify_kernel(k));
    // unroll 2 leaves an inner loop of trip 2 with a 2-lane body.
    EXPECT_EQ(k.loops().size(), 2u);
}

TEST(LowerAst, SemanticErrors) {
    EXPECT_THROW(compile_kernel_source(
                     "kernel e { var a; loop n = 0..4 { a = b; } }"),
                 ParseError);  // undeclared variable
    EXPECT_THROW(compile_kernel_source(
                     "kernel e { output y[4]; loop n = 0..4 { y[n*n] = 0.0; } }"),
                 ParseError);  // non-affine index
    EXPECT_THROW(compile_kernel_source(
                     "kernel e { input x[4] range(-1.0, 1.0); var a; "
                     "loop n = 0..4 { x[n] = a; } }"),
                 Error);  // store to input (caught by the verifier)
    EXPECT_THROW(compile_kernel_source(
                     "kernel e { param c[2] = { 1.0 }; }"),
                 ParseError);  // size mismatch
}

TEST(LowerAst, DslMatchesBuilderSemantics) {
    // The DSL dot4 must compute exactly what a builder-made kernel does.
    const Kernel dsl = compile_kernel_source(kDotSource);

    KernelBuilder b("dot4_builder");
    const ArrayId x = b.input("x", 19, Interval(-1.0, 1.0));
    const ArrayId c = b.param("c", {0.5, -0.25, 0.125, 0.0625});
    const ArrayId y = b.output("y", 16);
    const VarId acc = b.user_var("acc");
    const LoopId n = b.begin_loop("n", 0, 16);
    b.set_const(acc, 0.0);
    for (int k = 0; k < 4; ++k) {  // manually unrolled reference
        const VarId prod =
            b.mul(b.load(c, Affine(k)), b.load(x, Affine::var(n) + k));
        b.add(acc, prod, acc);
    }
    b.store(y, Affine::var(n), acc);
    b.end_loop();
    const Kernel ref = b.take();

    const Stimulus stimulus = make_stimulus(dsl, 31);
    Stimulus ref_stimulus(ref.arrays().size());
    ref_stimulus[0] = stimulus[0];
    const auto out_dsl = run_double(dsl, stimulus);
    const auto out_ref = run_double(ref, ref_stimulus);
    ASSERT_EQ(out_dsl.outputs.size(), out_ref.outputs.size());
    for (size_t i = 0; i < out_dsl.outputs.size(); ++i) {
        EXPECT_NEAR(out_dsl.outputs[i], out_ref.outputs[i], 1e-12);
    }
}

TEST(LowerAst, FullFlowOnDslKernel) {
    // A DSL kernel must drive the complete optimization flow.
    const Kernel k = compile_kernel_source(kDotSource);
    const KernelContext ctx(k);
    FlowOptions options;
    options.accuracy_db = -25.0;
    const FlowResult result =
        run_wlo_slp_flow(ctx, targets::xentium(), options);
    EXPECT_GT(result.group_count, 0);
    EXPECT_LE(result.analytic_noise_db, -25.0 + 1e-9);
}

// --- range annotations -----------------------------------------------------------

TEST(KernelFile, RangeAnnotationMapsToRangeOptions) {
    // No annotation -> Auto; the explicit spellings map to their methods
    // (the IIR-style simulated-ranges case is what `range simulation` is
    // for — interval propagation diverges through feedback taps).
    const auto method = [](const std::string& annot) {
        const std::string source = "kernel k { " + annot +
                                   " input x[4] range(-1.0, 1.0); "
                                   "output y[4]; "
                                   "loop n = 0..4 { y[n] = x[n]; } }";
        return frontend::compile_benchmark_source(source).range_options.method;
    };
    EXPECT_EQ(method(""), RangeMethod::Auto);
    EXPECT_EQ(method("range auto;"), RangeMethod::Auto);
    EXPECT_EQ(method("range interval;"), RangeMethod::Interval);
    EXPECT_EQ(method("range simulation;"), RangeMethod::Simulation);
}

TEST(KernelFile, UnknownRangeMethodRejected) {
    try {
        frontend::compile_benchmark_source(
            "kernel k { range sorcery; output y[1]; y[0] = 0.0; }", "bad.slp");
        FAIL() << "expected Error";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bad.slp:1:"), std::string::npos) << what;
        EXPECT_NE(what.find("unknown range method `sorcery`"),
                  std::string::npos)
            << what;
    }
}

TEST(KernelFile, DuplicateRangeAnnotationRejected) {
    EXPECT_THROW(ast::parse("kernel k { range interval; range simulation; "
                            "output y[1]; y[0] = 0.0; }"),
                 ParseError);
}

// --- file ingestion and diagnostics ----------------------------------------------

TEST(KernelFile, LoadsFileAndReportsPositions) {
    const std::string dir = ::testing::TempDir();
    const std::string good_path = dir + "/good_frontend.slp";
    {
        std::ofstream out(good_path);
        out << kDotSource;
    }
    const kernels::BenchmarkKernel bench =
        frontend::load_kernel_file(good_path);
    EXPECT_EQ(bench.name, "dot4");
    EXPECT_NO_THROW(verify_kernel(bench.kernel));

    // Parse errors must carry `path:line:column:` positions — line 3 is
    // where the bad token sits in the written file.
    const std::string bad_path = dir + "/bad_frontend.slp";
    {
        std::ofstream out(bad_path);
        out << "# comment\nkernel broken {\n  output y[4]\n}\n";
    }
    try {
        frontend::load_kernel_file(bad_path);
        FAIL() << "expected Error";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(bad_path + ":"), std::string::npos) << what;
        EXPECT_NE(what.find(":4:"), std::string::npos) << what;
    }

    EXPECT_THROW(frontend::load_kernel_file(dir + "/does_not_exist.slp"),
                 Error);
}

TEST(KernelFile, NonAffineIndexReportsFilePosition) {
    const std::string path = ::testing::TempDir() + "/nonaffine.slp";
    {
        std::ofstream out(path);
        out << "kernel e {\n  output y[4];\n  loop n = 0..4 {\n"
               "    y[n * n] = 0.0;\n  }\n}\n";
    }
    try {
        frontend::load_kernel_file(path);
        FAIL() << "expected Error";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find(path + ":4:"), std::string::npos) << what;
        EXPECT_NE(what.find("not affine"), std::string::npos) << what;
    }
}

TEST(KernelFile, UnrollMismatchRejected) {
    // Partial unroll must divide the trip count; compile_benchmark_source
    // runs the unroll pass, so the mismatch surfaces at ingestion.
    EXPECT_THROW(
        frontend::compile_benchmark_source(
            "kernel e { output y[5]; loop n = 0..5 unroll 2 { "
            "y[n] = 0.0; } }"),
        Error);
}

TEST(KernelFile, CanonicalSourceDropsOnlyInsignificantLines) {
    const std::string canonical =
        frontend::canonical_kernel_source("# header\n\nkernel k {\r\n"
                                          "  output y[1];  # tail\n"
                                          "   \t\n  y[0] = 0.5;\n}\n");
    EXPECT_EQ(canonical,
              "kernel k {\n  output y[1];  # tail\n  y[0] = 0.5;\n}\n");
    // Idempotent, and still the same kernel as the original.
    EXPECT_EQ(frontend::canonical_kernel_source(canonical), canonical);
}

// --- generator -------------------------------------------------------------------

TEST(KernelGen, DeterministicPerSeed) {
    for (const uint64_t seed : {1ull, 7ull, 42ull, 1234567ull}) {
        const frontend::GeneratedKernel a =
            frontend::generate_kernel_source(seed);
        const frontend::GeneratedKernel b =
            frontend::generate_kernel_source(seed);
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.source, b.source);  // byte-identical, not just equal IR
    }
    EXPECT_NE(frontend::generate_kernel_source(1).source,
              frontend::generate_kernel_source(2).source);
}

TEST(KernelGen, GeneratedKernelsCompileAndVerify) {
    // Every seed must yield a valid affine kernel whose unrolls divide
    // their trip counts (the generator constructs sizes that way).
    for (uint64_t seed = 1; seed <= 24; ++seed) {
        const kernels::BenchmarkKernel bench = frontend::generate_kernel(seed);
        EXPECT_EQ(bench.name, "gen_" + std::to_string(seed));
        EXPECT_NO_THROW(verify_kernel(bench.kernel));
    }
}

TEST(KernelGen, GeneratedKernelRunsAFlow) {
    const kernels::BenchmarkKernel bench = frontend::generate_kernel(3);
    const KernelContext ctx(bench.kernel, bench.range_options);
    FlowOptions options;
    options.accuracy_db = -25.0;
    const FlowResult result =
        run_wlo_slp_flow(ctx, targets::xentium(), options);
    EXPECT_GT(result.simd_cycles, 0);
    EXPECT_LE(result.analytic_noise_db, -25.0 + 1e-9);
}

}  // namespace
}  // namespace slpwlo
