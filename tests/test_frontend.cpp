// Tests for the kernel-DSL frontend: lexer, parser, semantic errors, and
// equivalence of DSL-compiled kernels with builder-constructed ones.
#include <gtest/gtest.h>

#include "frontend/lower_ast.hpp"
#include "ir/verifier.hpp"
#include "sim/double_sim.hpp"
#include "support/diagnostics.hpp"
#include "flow/flow.hpp"
#include "target/target_model.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

const char* kDotSource = R"(
# 4-tap dot product kernel
kernel dot4 {
  input  x[19] range(-1.0, 1.0);
  param  c[4] = { 0.5, -0.25, 0.125, 0.0625 };
  output y[16];
  var acc;
  loop n = 0..16 {
    acc = 0.0;
    loop k = 0..4 unroll 2 {
      acc = acc + c[k] * x[n + k];
    }
    y[n] = acc;
  }
}
)";

// --- lexer ----------------------------------------------------------------------

TEST(Lexer, TokenStream) {
    const auto tokens = lex("loop n = 0..16 { y[n] = -1.5; }");
    ASSERT_GE(tokens.size(), 14u);
    EXPECT_EQ(tokens[0].kind, TokKind::KwLoop);
    EXPECT_EQ(tokens[1].kind, TokKind::Identifier);
    EXPECT_EQ(tokens[3].kind, TokKind::Number);
    EXPECT_EQ(tokens[4].kind, TokKind::DotDot);
    EXPECT_EQ(tokens.back().kind, TokKind::End);
}

TEST(Lexer, NumbersAndRanges) {
    const auto tokens = lex("0.5 1e-3 7..9");
    EXPECT_DOUBLE_EQ(tokens[0].number, 0.5);
    EXPECT_DOUBLE_EQ(tokens[1].number, 1e-3);
    EXPECT_DOUBLE_EQ(tokens[2].number, 7.0);
    EXPECT_EQ(tokens[3].kind, TokKind::DotDot);
    EXPECT_DOUBLE_EQ(tokens[4].number, 9.0);
}

TEST(Lexer, CommentsIgnored) {
    const auto tokens = lex("var a; # comment\n// another\nvar b;");
    int vars = 0;
    for (const Token& t : tokens) {
        if (t.kind == TokKind::KwVar) vars++;
    }
    EXPECT_EQ(vars, 2);
}

TEST(Lexer, IllegalCharacterThrows) {
    EXPECT_THROW(lex("var a @ b;"), ParseError);
}

// --- parser ----------------------------------------------------------------------

TEST(Parser, ParsesDotKernel) {
    const ast::KernelAst k = ast::parse(kDotSource);
    EXPECT_EQ(k.name, "dot4");
    ASSERT_EQ(k.decls.size(), 4u);
    EXPECT_EQ(k.decls[0].kind, ast::Decl::Kind::Input);
    EXPECT_EQ(k.decls[1].values.size(), 4u);
    EXPECT_DOUBLE_EQ(k.decls[1].values[1], -0.25);
    ASSERT_EQ(k.body.size(), 1u);
    EXPECT_EQ(k.body[0]->kind, ast::Stmt::Kind::Loop);
    EXPECT_EQ(k.body[0]->end, 16);
}

TEST(Parser, SyntaxErrorsCarryLocation) {
    try {
        ast::parse("kernel bad { output y[4] }");  // missing ';'
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_GE(e.line(), 1);
        EXPECT_NE(std::string(e.what()).find("expected"), std::string::npos);
    }
}

TEST(Parser, RejectsAssignToExpression) {
    EXPECT_THROW(ast::parse("kernel bad { var a; 1.0 = a; }"), ParseError);
}

// --- lowering / sema --------------------------------------------------------------

TEST(LowerAst, CompilesAndVerifies) {
    const Kernel k = compile_kernel_source(kDotSource);
    EXPECT_EQ(k.name(), "dot4");
    EXPECT_NO_THROW(verify_kernel(k));
    // unroll 2 leaves an inner loop of trip 2 with a 2-lane body.
    EXPECT_EQ(k.loops().size(), 2u);
}

TEST(LowerAst, SemanticErrors) {
    EXPECT_THROW(compile_kernel_source(
                     "kernel e { var a; loop n = 0..4 { a = b; } }"),
                 ParseError);  // undeclared variable
    EXPECT_THROW(compile_kernel_source(
                     "kernel e { output y[4]; loop n = 0..4 { y[n*n] = 0.0; } }"),
                 ParseError);  // non-affine index
    EXPECT_THROW(compile_kernel_source(
                     "kernel e { input x[4] range(-1.0, 1.0); var a; "
                     "loop n = 0..4 { x[n] = a; } }"),
                 Error);  // store to input (caught by the verifier)
    EXPECT_THROW(compile_kernel_source(
                     "kernel e { param c[2] = { 1.0 }; }"),
                 ParseError);  // size mismatch
}

TEST(LowerAst, DslMatchesBuilderSemantics) {
    // The DSL dot4 must compute exactly what a builder-made kernel does.
    const Kernel dsl = compile_kernel_source(kDotSource);

    KernelBuilder b("dot4_builder");
    const ArrayId x = b.input("x", 19, Interval(-1.0, 1.0));
    const ArrayId c = b.param("c", {0.5, -0.25, 0.125, 0.0625});
    const ArrayId y = b.output("y", 16);
    const VarId acc = b.user_var("acc");
    const LoopId n = b.begin_loop("n", 0, 16);
    b.set_const(acc, 0.0);
    for (int k = 0; k < 4; ++k) {  // manually unrolled reference
        const VarId prod =
            b.mul(b.load(c, Affine(k)), b.load(x, Affine::var(n) + k));
        b.add(acc, prod, acc);
    }
    b.store(y, Affine::var(n), acc);
    b.end_loop();
    const Kernel ref = b.take();

    const Stimulus stimulus = make_stimulus(dsl, 31);
    Stimulus ref_stimulus(ref.arrays().size());
    ref_stimulus[0] = stimulus[0];
    const auto out_dsl = run_double(dsl, stimulus);
    const auto out_ref = run_double(ref, ref_stimulus);
    ASSERT_EQ(out_dsl.outputs.size(), out_ref.outputs.size());
    for (size_t i = 0; i < out_dsl.outputs.size(); ++i) {
        EXPECT_NEAR(out_dsl.outputs[i], out_ref.outputs[i], 1e-12);
    }
}

TEST(LowerAst, FullFlowOnDslKernel) {
    // A DSL kernel must drive the complete optimization flow.
    const Kernel k = compile_kernel_source(kDotSource);
    const KernelContext ctx(k);
    FlowOptions options;
    options.accuracy_db = -25.0;
    const FlowResult result =
        run_wlo_slp_flow(ctx, targets::xentium(), options);
    EXPECT_GT(result.group_count, 0);
    EXPECT_LE(result.analytic_noise_db, -25.0 + 1e-9);
}

}  // namespace
}  // namespace slpwlo
