// Incremental (delta) evaluation vs full recompute: the sessions'
// contract is strict bit-identity, so every comparison here is on the
// raw IEEE-754 bits, never within a tolerance.
#include <gtest/gtest.h>

#include <cstring>

#include "accuracy/analytic_evaluator.hpp"
#include "core/wl_cost_model.hpp"
#include "support/rng.hpp"
#include "target/target_model.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

using ::slpwlo::testing::cached_evaluator;
using ::slpwlo::testing::initial_spec;
using ::slpwlo::testing::set_uniform_wl;
using ::slpwlo::testing::small_conv;
using ::slpwlo::testing::small_fir;
using ::slpwlo::testing::small_iir;

uint64_t bits_of(double v) {
    uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

const std::vector<const Kernel*>& test_kernels() {
    static const std::vector<const Kernel*> kernels = {
        &small_fir(), &small_iir(), &small_conv()};
    return kernels;
}

constexpr int kWlMenu[] = {8, 10, 12, 16, 20, 24, 32};

/// A random node/WL move drawn from the menu.
struct RandomMoves {
    explicit RandomMoves(const FixedPointSpec& spec, uint64_t seed)
        : nodes_(spec.nodes()), rng_(seed, "test/eval-delta") {}

    NodeRef node() {
        return nodes_[static_cast<size_t>(
            rng_.uniform_int(0, static_cast<int>(nodes_.size()) - 1))];
    }
    int wl() {
        return kWlMenu[static_cast<size_t>(
            rng_.uniform_int(0, static_cast<int>(std::size(kWlMenu)) - 1))];
    }

    std::vector<NodeRef> nodes_;
    Rng rng_;
};

TEST(EvalDelta, SessionTracksRandomCommittedMovesBitExactly) {
    for (const Kernel* kernel : test_kernels()) {
        const AnalyticEvaluator& evaluator = cached_evaluator(*kernel);
        FixedPointSpec spec = initial_spec(*kernel);
        set_uniform_wl(spec, 32);

        const auto session = evaluator.open_session(spec);
        RandomMoves moves(spec, 0xDE17A);
        for (int i = 0; i < 200; ++i) {
            spec.set_wl(moves.node(), moves.wl());
            ASSERT_EQ(bits_of(session->noise_power()),
                      bits_of(evaluator.noise_power(spec)))
                << kernel->name() << " move " << i;
        }
    }
}

TEST(EvalDelta, CostSessionTracksRandomCommittedMovesBitExactly) {
    const TargetModel target = targets::xentium();
    for (const Kernel* kernel : test_kernels()) {
        const WlCostModel model(*kernel, target);
        FixedPointSpec spec = initial_spec(*kernel);
        set_uniform_wl(spec, 32);

        const auto session = model.open_session(spec);
        RandomMoves moves(spec, 0xC057);
        for (int i = 0; i < 200; ++i) {
            spec.set_wl(moves.node(), moves.wl());
            ASSERT_EQ(bits_of(session->cost()), bits_of(model.cost(spec)))
                << kernel->name() << " move " << i;
        }
    }
}

TEST(EvalDelta, PreviewMoveIsExactAndLeavesSpecUnchanged) {
    const TargetModel target = targets::xentium();
    for (const Kernel* kernel : test_kernels()) {
        const AnalyticEvaluator& evaluator = cached_evaluator(*kernel);
        const WlCostModel model(*kernel, target);
        FixedPointSpec spec = initial_spec(*kernel);
        set_uniform_wl(spec, 24);

        const auto eval = evaluator.open_session(spec);
        const auto costs = model.open_session(spec);
        RandomMoves moves(spec, 0x9E3779);
        for (int i = 0; i < 100; ++i) {
            const NodeRef node = moves.node();
            const int wl = moves.wl();
            const FixedFormat before = spec.format(node);

            // Reference: apply the move on a copy, recompute from scratch.
            FixedPointSpec applied = spec;
            applied.set_wl(node, wl);
            const double want_noise = evaluator.noise_power(applied);
            const double want_cost = model.cost(applied);

            ASSERT_EQ(bits_of(eval->preview_move(node, wl)),
                      bits_of(want_noise))
                << kernel->name() << " preview " << i;
            ASSERT_EQ(bits_of(costs->preview_move(node, wl)),
                      bits_of(want_cost))
                << kernel->name() << " preview " << i;

            // The preview must not leak into the spec or the cache.
            ASSERT_EQ(spec.format(node).iwl, before.iwl);
            ASSERT_EQ(spec.format(node).fwl, before.fwl);
            ASSERT_EQ(bits_of(eval->noise_power()),
                      bits_of(evaluator.noise_power(spec)));
            ASSERT_EQ(bits_of(costs->cost()), bits_of(model.cost(spec)));

            // Occasionally commit so the walk covers many base specs.
            if (i % 7 == 0) {
                spec.set_wl(node, wl);
            }
        }
    }
}

TEST(EvalDelta, ProbeBracketsRestoreTheCacheBitExactly) {
    const TargetModel target = targets::xentium();
    const Kernel& kernel = small_fir();
    const AnalyticEvaluator& evaluator = cached_evaluator(kernel);
    const WlCostModel model(kernel, target);
    FixedPointSpec spec = initial_spec(kernel);
    set_uniform_wl(spec, 16);

    const auto eval = evaluator.open_session(spec);
    const auto costs = model.open_session(spec);
    RandomMoves moves(spec, 0xB0B);
    for (int i = 0; i < 200; ++i) {
        const NodeRef node = moves.node();
        const int wl = moves.wl();
        const FixedFormat saved = spec.format(node);

        // The Tabu candidate shape: one shared probe window, both sessions
        // bracketed, queries interleaved inside.
        eval->begin_move(node);
        costs->begin_move(node);
        spec.set_wl(node, wl);
        const double probe_noise = eval->noise_power();
        const double probe_cost = costs->cost();
        ASSERT_EQ(bits_of(probe_noise), bits_of(evaluator.noise_power(spec)));
        ASSERT_EQ(bits_of(probe_cost), bits_of(model.cost(spec)));
        spec.set_format(node, saved);
        eval->end_move();
        costs->end_move();

        ASSERT_EQ(bits_of(eval->noise_power()),
                  bits_of(evaluator.noise_power(spec)))
            << "probe " << i;
        ASSERT_EQ(bits_of(costs->cost()), bits_of(model.cost(spec)))
            << "probe " << i;

        if (i % 5 == 0) {
            spec.set_wl(moves.node(), moves.wl());  // drift the base spec
        }
    }
}

TEST(EvalDelta, SessionsResyncThroughCheckpointRevert) {
    const TargetModel target = targets::xentium();
    for (const Kernel* kernel : test_kernels()) {
        const AnalyticEvaluator& evaluator = cached_evaluator(*kernel);
        const WlCostModel model(*kernel, target);
        FixedPointSpec spec = initial_spec(*kernel);
        set_uniform_wl(spec, 20);

        const auto eval = evaluator.open_session(spec);
        const auto costs = model.open_session(spec);
        RandomMoves moves(spec, 0xCAFE);
        for (int round = 0; round < 20; ++round) {
            const auto cp = spec.checkpoint();
            for (int m = 0; m < 5; ++m) {
                spec.set_wl(moves.node(), moves.wl());
            }
            ASSERT_EQ(bits_of(eval->noise_power()),
                      bits_of(evaluator.noise_power(spec)));
            ASSERT_EQ(bits_of(costs->cost()), bits_of(model.cost(spec)));

            if (round % 2 == 0) {
                spec.revert(cp);
            } else {
                spec.commit(cp);
            }
            ASSERT_EQ(bits_of(eval->noise_power()),
                      bits_of(evaluator.noise_power(spec)))
                << kernel->name() << " round " << round;
            ASSERT_EQ(bits_of(costs->cost()), bits_of(model.cost(spec)))
                << kernel->name() << " round " << round;
        }
    }
}

}  // namespace
}  // namespace slpwlo
