// Unit tests for the fixed-point substrate: formats, quantization, spec
// checkpoints, range analysis, IWL determination.
#include <gtest/gtest.h>

#include <cmath>

#include "fixpoint/iwl.hpp"
#include "sim/fixed_sim.hpp"
#include "support/rng.hpp"
#include "fixpoint/quantize.hpp"
#include "fixpoint/range_analysis.hpp"
#include "fixpoint/spec.hpp"
#include "support/dbmath.hpp"
#include "support/diagnostics.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

using ::slpwlo::testing::small_fir;
using ::slpwlo::testing::small_iir;

// --- FixedFormat --------------------------------------------------------------

TEST(FixedFormat, Q1_15) {
    const FixedFormat q(1, 15);
    EXPECT_EQ(q.wl(), 16);
    EXPECT_DOUBLE_EQ(q.step(), pow2(-15));
    EXPECT_DOUBLE_EQ(q.min_value(), -1.0);
    EXPECT_DOUBLE_EQ(q.max_value(), 1.0 - pow2(-15));
}

TEST(FixedFormat, NegativeFwlIsCoarse) {
    const FixedFormat f(8, -2);  // resolution 4
    EXPECT_EQ(f.wl(), 6);
    EXPECT_DOUBLE_EQ(f.step(), 4.0);
    EXPECT_DOUBLE_EQ(f.max_value(), 128.0 - 4.0);
}

TEST(FixedFormat, FwlReductionKeepsWl) {
    const FixedFormat f(2, 14);
    const FixedFormat g = f.with_fwl_reduced_by(3);
    EXPECT_EQ(g.iwl, 5);
    EXPECT_EQ(g.fwl, 11);
    EXPECT_EQ(g.wl(), f.wl());
}

TEST(FixedFormat, WithWl) {
    const FixedFormat f(3, 0);
    EXPECT_EQ(f.with_wl(16).fwl, 13);
    EXPECT_EQ(f.with_wl(16).iwl, 3);
}

TEST(IwlForRange, TypicalCases) {
    EXPECT_EQ(iwl_for_range(Interval(-1.0, 1.0)), 1);   // Q1.f, saturating +1
    EXPECT_EQ(iwl_for_range(Interval(-0.5, 0.5)), 0);   // binary point shifts
    EXPECT_EQ(iwl_for_range(Interval(-1.0, 0.9)), 1);
    EXPECT_EQ(iwl_for_range(Interval(-2.0, 1.5)), 2);
    EXPECT_EQ(iwl_for_range(Interval(0.0, 3.0)), 3);
    EXPECT_EQ(iwl_for_range(Interval(-5.0, 5.0)), 4);
    EXPECT_EQ(iwl_for_range(Interval(0.0, 0.0)), 1);
    EXPECT_EQ(iwl_for_range(Interval::empty()), 1);
}

TEST(IwlForRange, NegativeIwlForSmallMagnitudes) {
    // 1/16 needs the binary point three places left of the sign bit.
    EXPECT_EQ(iwl_for_range(Interval(-0.0625, 0.0625)), -3);
    EXPECT_EQ(iwl_for_range(Interval(0.0, 0.25)), -1);
    const FixedFormat f(-3, 19);  // wl 16
    EXPECT_EQ(f.wl(), 16);
    EXPECT_DOUBLE_EQ(f.max_value(), 0.0625 - f.step());
}

/// Property: the chosen IWL admits the whole range under saturation-free
/// arithmetic (up to the saturating top value convention).
class IwlProperty : public ::testing::TestWithParam<int> {};

TEST_P(IwlProperty, RangeFitsFormat) {
    Rng rng(static_cast<uint64_t>(GetParam()), "iwl-prop");
    for (int trial = 0; trial < 200; ++trial) {
        const double a = rng.uniform(-100.0, 100.0);
        const double b = rng.uniform(-100.0, 100.0);
        const Interval range(std::min(a, b), std::max(a, b));
        const int iwl = iwl_for_range(range);
        EXPECT_LE(-pow2(iwl - 1), range.lo());
        EXPECT_LE(range.hi(), pow2(iwl - 1));
        // Minimality: one bit less must fail (unless iwl already 1).
        if (iwl > 1) {
            const bool fits = -pow2(iwl - 2) <= range.lo() &&
                              range.hi() <= pow2(iwl - 2);
            EXPECT_FALSE(fits);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IwlProperty, ::testing::Values(10, 20, 30));

// --- quantize -------------------------------------------------------------------

TEST(Quantize, TruncateAndRound) {
    EXPECT_DOUBLE_EQ(quantize_value(0.7, 1, QuantMode::Truncate), 0.5);
    EXPECT_DOUBLE_EQ(quantize_value(0.7, 1, QuantMode::Round), 0.5);
    EXPECT_DOUBLE_EQ(quantize_value(0.8, 1, QuantMode::Round), 1.0);
    EXPECT_DOUBLE_EQ(quantize_value(-0.7, 1, QuantMode::Truncate), -1.0);
    EXPECT_DOUBLE_EQ(quantize_value(-0.7, 1, QuantMode::Round), -0.5);
    EXPECT_DOUBLE_EQ(quantize_value(0.3, 8, QuantMode::Truncate),
                     std::floor(0.3 * 256) / 256);
}

TEST(Quantize, SaturateClamps) {
    const FixedFormat q(1, 7);
    bool overflow = false;
    EXPECT_DOUBLE_EQ(quantize_saturate(3.0, q, QuantMode::Truncate, &overflow),
                     q.max_value());
    EXPECT_TRUE(overflow);
    EXPECT_DOUBLE_EQ(
        quantize_saturate(-3.0, q, QuantMode::Truncate, &overflow),
        -1.0);
    EXPECT_TRUE(overflow);
    quantize_saturate(0.25, q, QuantMode::Truncate, &overflow);
    EXPECT_FALSE(overflow);
}

TEST(QuantizeStats, ContinuousLimits) {
    const auto t = continuous_quantization_stats(8, QuantMode::Truncate);
    const double q = pow2(-8);
    EXPECT_NEAR(t.mean, -q / 2, 1e-15);
    EXPECT_NEAR(t.variance, q * q / 12, 1e-18);
    const auto r = continuous_quantization_stats(8, QuantMode::Round);
    EXPECT_NEAR(r.mean, 0.0, 1e-15);
    EXPECT_NEAR(r.variance, q * q / 12, 1e-18);
}

TEST(QuantizeStats, NoDropNoNoise) {
    const auto s = quantization_stats(8, 0, QuantMode::Truncate);
    EXPECT_EQ(s.mean, 0.0);
    EXPECT_EQ(s.variance, 0.0);
    EXPECT_EQ(quantization_stats(8, -3, QuantMode::Truncate).power(), 0.0);
}

TEST(QuantizeStats, SingleBitDrop) {
    // k=1: mean -q/4, var q^2/16 for truncation.
    const auto s = quantization_stats(4, 1, QuantMode::Truncate);
    const double q = pow2(-4);
    EXPECT_NEAR(s.mean, -q / 4, 1e-15);
    EXPECT_NEAR(s.variance, q * q / 12 * 0.75, 1e-18);
}

/// Property: empirical truncation-error moments match the model.
class QuantStatsMatchEmpirical
    : public ::testing::TestWithParam<std::tuple<int, QuantMode>> {};

TEST_P(QuantStatsMatchEmpirical, MomentsAgree) {
    const auto [k, mode] = GetParam();
    const int f_in = 12 + k;
    const int f_out = 12;
    Rng rng(77, "quant-emp");
    double sum = 0.0, sum_sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = quantize_value(rng.uniform(-1.0, 1.0), f_in, mode);
        const double e = quantize_value(v, f_out, mode) - v;
        sum += e;
        sum_sq += e * e;
    }
    const auto model = quantization_stats(f_out, k, mode);
    const double emp_mean = sum / n;
    const double emp_var = sum_sq / n - emp_mean * emp_mean;
    const double q = pow2(-f_out);
    EXPECT_NEAR(emp_mean, model.mean, q * 0.02);
    EXPECT_NEAR(emp_var, model.variance, model.variance * 0.1 + q * q * 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    DropCounts, QuantStatsMatchEmpirical,
    ::testing::Combine(::testing::Values(1, 2, 3, 8),
                       ::testing::Values(QuantMode::Truncate,
                                         QuantMode::Round)));

// --- FixedPointSpec -----------------------------------------------------------

TEST(Spec, NodesCoverVarsAndArrays) {
    const Kernel& k = small_fir();
    const FixedPointSpec spec(k);
    // Nodes: arrays + defined non-load vars.
    size_t array_nodes = 0, var_nodes = 0;
    for (const NodeRef n : spec.nodes()) {
        (n.kind == NodeRef::Kind::Array ? array_nodes : var_nodes)++;
    }
    EXPECT_EQ(array_nodes, k.arrays().size());
    EXPECT_GT(var_nodes, 0u);
}

TEST(Spec, LoadResolvesToArrayFormat) {
    const Kernel& k = small_fir();
    FixedPointSpec spec(k);
    spec.set_format(NodeRef::of_array(ArrayId(0)), FixedFormat(1, 15));
    // Find a load op of array x.
    for (const BlockId b : k.blocks_in_order()) {
        for (const OpId op : k.block(b).ops) {
            if (k.op(op).kind == OpKind::Load && k.op(op).array == ArrayId(0)) {
                EXPECT_EQ(spec.result_format(op), FixedFormat(1, 15));
                EXPECT_EQ(spec.node_of(op), NodeRef::of_array(ArrayId(0)));
                return;
            }
        }
    }
    FAIL() << "no load of x found";
}

TEST(Spec, CheckpointRevertRestores) {
    FixedPointSpec spec(small_fir());
    const NodeRef node = spec.nodes().front();
    spec.set_format(node, FixedFormat(2, 10));
    const auto cp = spec.checkpoint();
    spec.set_format(node, FixedFormat(2, 4));
    EXPECT_EQ(spec.format(node).fwl, 4);
    spec.revert(cp);
    EXPECT_EQ(spec.format(node).fwl, 10);
}

TEST(Spec, CheckpointCommitKeeps) {
    FixedPointSpec spec(small_fir());
    const NodeRef node = spec.nodes().front();
    const auto cp = spec.checkpoint();
    spec.set_format(node, FixedFormat(3, 5));
    spec.commit(cp);
    EXPECT_EQ(spec.format(node), FixedFormat(3, 5));
    EXPECT_EQ(spec.open_checkpoints(), 0u);
}

TEST(Spec, NestedCheckpoints) {
    FixedPointSpec spec(small_fir());
    const NodeRef node = spec.nodes().front();
    spec.set_format(node, FixedFormat(1, 1));
    const auto cp1 = spec.checkpoint();
    spec.set_format(node, FixedFormat(1, 2));
    const auto cp2 = spec.checkpoint();
    spec.set_format(node, FixedFormat(1, 3));
    spec.revert(cp2);
    EXPECT_EQ(spec.format(node).fwl, 2);
    spec.revert(cp1);
    EXPECT_EQ(spec.format(node).fwl, 1);
}

TEST(Spec, SetWlKeepsIwl) {
    FixedPointSpec spec(small_fir());
    const NodeRef node = spec.nodes().front();
    spec.set_format(node, FixedFormat(3, 0));
    spec.set_wl(node, 16);
    EXPECT_EQ(spec.format(node).iwl, 3);
    EXPECT_EQ(spec.format(node).fwl, 13);
}

// --- Range analysis -------------------------------------------------------------

TEST(RangeAnalysis, FirConvergesWithIntervals) {
    RangeOptions options;
    options.method = RangeMethod::Interval;
    const RangeMap map = analyze_ranges(small_fir(), options);
    EXPECT_EQ(map.method_used, RangeMethod::Interval);
    // Input range is the declared one.
    EXPECT_EQ(map.array_ranges[0], Interval(-1.0, 1.0));
    // Output magnitude is bounded by the L1 norm of the coefficients.
    const auto& coeffs = small_fir().array(ArrayId(1)).values;
    double l1 = 0.0;
    for (const double c : coeffs) l1 += std::fabs(c);
    EXPECT_LE(map.array_ranges[2].max_abs(), l1 + 1e-9);
    EXPECT_GT(map.array_ranges[2].max_abs(), 0.0);
}

TEST(RangeAnalysis, IirIntervalDivergesAndAutoFallsBack) {
    RangeOptions interval_only;
    interval_only.method = RangeMethod::Interval;
    EXPECT_THROW(analyze_ranges(small_iir(), interval_only), Error);

    RangeOptions auto_options;
    auto_options.method = RangeMethod::Auto;
    const RangeMap map = analyze_ranges(small_iir(), auto_options);
    EXPECT_EQ(map.method_used, RangeMethod::Simulation);
    // Output stays bounded (stable filter).
    EXPECT_LT(map.array_ranges[3].max_abs(), 8.0);
}

TEST(RangeAnalysis, SimulatedRangesContainActualRuns) {
    RangeOptions options;
    options.method = RangeMethod::Simulation;
    const Kernel& k = small_iir();
    const RangeMap map = analyze_ranges(k, options);
    // A fresh run with a different seed must stay within the widened hulls.
    const Stimulus stimulus = make_stimulus(k, 0xDEAD);
    DoubleSimOptions sim_options;
    sim_options.record_ranges = true;
    const auto result = run_double(k, stimulus, sim_options);
    for (size_t v = 0; v < result.var_ranges.size(); ++v) {
        if (result.var_ranges[v].is_empty()) continue;
        EXPECT_TRUE(map.var_ranges[v].contains(result.var_ranges[v]))
            << "var " << v << ": " << map.var_ranges[v].str() << " vs "
            << result.var_ranges[v].str();
    }
}

TEST(RangeAnalysis, ConvRangesAreTight) {
    RangeOptions options;
    options.method = RangeMethod::Interval;
    const RangeMap map = analyze_ranges(::slpwlo::testing::small_conv(), options);
    // Gaussian kernel has unit L1 norm, so |out| <= 1.
    const ArrayId out = ::slpwlo::testing::small_conv().find_array("out");
    EXPECT_LE(map.array_ranges[out.index()].max_abs(), 1.0 + 1e-12);
}

// --- IWL determination ------------------------------------------------------------

TEST(Iwl, InputGetsQ1) {
    const FixedPointSpec spec = ::slpwlo::testing::initial_spec(small_fir());
    EXPECT_EQ(spec.array_format(ArrayId(0)).iwl, 1);  // x in [-1,1)
}

TEST(Iwl, CoefficientIwlReflectsMagnitude) {
    const Kernel& k = small_fir();
    const FixedPointSpec spec = ::slpwlo::testing::initial_spec(k);
    const auto& coeffs = k.array(ArrayId(1)).values;
    double max_abs = 0.0;
    for (const double c : coeffs) max_abs = std::max(max_abs, std::fabs(c));
    EXPECT_EQ(spec.array_format(ArrayId(1)).iwl,
              iwl_for_range(Interval(-max_abs, max_abs)));
}

TEST(Iwl, NoOverflowInFixedSimAtGenerousWl) {
    // Property: with IWLs from range analysis and plenty of fractional bits,
    // the bit-accurate simulation must never saturate.
    for (const Kernel* k : {&small_fir(), &::slpwlo::testing::small_conv()}) {
        FixedPointSpec spec = ::slpwlo::testing::initial_spec(*k);
        for (const NodeRef node : spec.nodes()) {
            spec.set_format(node, FixedFormat(spec.format(node).iwl, 24));
        }
        const auto result = run_fixed(*k, spec, make_stimulus(*k, 5));
        EXPECT_EQ(result.overflow_count, 0) << k->name();
    }
}

}  // namespace
}  // namespace slpwlo
