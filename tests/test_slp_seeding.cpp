// Tests for the 2-lane SLP seeding cliff fix: k-lane group seeding from
// adjacent-memory runs, pairwise fusion through virtual intermediate
// widths, mixed-array rejection, and a byte-identity fingerprint of the
// shipped-preset sweep report (NEON128 / SSE128 / DSP64), which run
// seeding and virtual fusion must never perturb.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "flow/sweep.hpp"
#include "ir/builder.hpp"
#include "slp/packing_cost.hpp"
#include "slp/plain_extractor.hpp"
#include "support/diagnostics.hpp"
#include "target/target_registry.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

using ::slpwlo::testing::initial_spec;
using ::slpwlo::testing::set_uniform_wl;
using ::slpwlo::testing::small_fir;

BlockId hot_block(const Kernel& k) {
    BlockId best = k.blocks_in_order().front();
    for (const BlockId b : k.blocks_in_order()) {
        if (k.block_frequency(b) > k.block_frequency(best)) best = b;
    }
    return best;
}

/// DSP64 widened to a 128-bit datapath: elements {32, 16, 8} give
/// k in {4, 8, 16} — no 2-lane configuration, the pair-seeding cliff.
TargetModel cliff_target() {
    return targets::by_name("DSP64").with_simd_width(128);
}

int widest_group(const std::vector<SimdGroup>& groups) {
    int widest = 0;
    for (const SimdGroup& g : groups) widest = std::max(widest, g.width());
    return widest;
}

// --- memory runs ---------------------------------------------------------------

TEST(MemoryRuns, FindsMaximalAdjacentRunsPerArray) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    const std::vector<MemoryRun> runs = find_memory_runs(view);
    // One maximal run per loaded array (x descends in program order, c
    // ascends — both are runs in ascending address order), 4 lanes each.
    ASSERT_EQ(runs.size(), 2u);
    for (const MemoryRun& run : runs) {
        EXPECT_EQ(run.length(), 4);
        // Ascending-adjacent by construction.
        std::vector<OpId> lanes;
        for (const int n : run.nodes) {
            lanes.push_back(view.node(n).lanes.front());
        }
        EXPECT_TRUE(lanes_memory_adjacent(view, lanes));
    }
    // Ordered by first node.
    EXPECT_LT(runs[0].nodes.front(), runs[1].nodes.front());
}

TEST(MemoryRuns, SeedingIsInertOnPairCapableTargets) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    // Every shipped preset with a 2-lane configuration must see zero run
    // seeds — that is what keeps existing-preset sweeps bit-identical.
    for (const char* name : {"XENTIUM", "ST240", "NEON128", "SSE128",
                             "DSP64"}) {
        EXPECT_TRUE(seed_runs(view, targets::by_name(name)).empty()) << name;
    }
    // And extract_candidates on a pair-capable target only emits pairs.
    for (const Candidate& c :
         extract_candidates(view, targets::by_name("NEON128"))) {
        EXPECT_EQ(c.node_count(), 2);
    }
}

TEST(MemoryRuns, SeedsKLaneChunksOnCliffTargets) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    const TargetModel cliff = cliff_target();
    ASSERT_FALSE(cliff.supports_group_size(2));

    const std::vector<Candidate> seeds = seed_runs(view, cliff);
    // Two length-4 runs, and only k = 4 fits (8- and 16-lane chunks need
    // longer runs): one 4-lane seed per array.
    ASSERT_EQ(seeds.size(), 2u);
    for (const Candidate& c : seeds) {
        EXPECT_EQ(c.node_count(), 4);
        const std::vector<OpId> lanes = fused_lanes(view, c);
        EXPECT_TRUE(lanes_memory_adjacent(view, lanes));
        // An adjacent k-lane load seed beats the scalar baseline in the
        // benefit model: k issues collapse into one vector load with no
        // packing.
        const Economics econ = evaluate_candidate(view, seeds, c, cliff);
        EXPECT_EQ(econ.saved_ops, 3.0);
        EXPECT_EQ(econ.pack_cost, 0.0);
    }

    // The seeds ride along in extract_candidates.
    const std::vector<Candidate> all = extract_candidates(view, cliff);
    int k4 = 0;
    for (const Candidate& c : all) {
        if (c.node_count() == 4) k4++;
    }
    EXPECT_EQ(k4, 2);
}

TEST(MemoryRuns, MixedArraysNeverRun) {
    // Interleaved adjacent loads from two arrays: runs (and therefore
    // seeds) must stay within one array — a mixed vector has no memory
    // instruction.
    KernelBuilder b("mixed");
    const ArrayId xa = b.input("xa", 8, Interval(-1.0, 1.0));
    const ArrayId xb = b.input("xb", 8, Interval(-1.0, 1.0));
    const ArrayId y = b.output("y", 4);
    const LoopId n = b.begin_loop("n", 0, 4);
    std::vector<VarId> loaded;
    for (int i = 0; i < 4; ++i) {
        loaded.push_back(b.load(xa, Affine::var(n) + i));
        loaded.push_back(b.load(xb, Affine::var(n) + i));
    }
    VarId sum = loaded[0];
    for (size_t i = 1; i < loaded.size(); ++i) {
        sum = b.add(sum, loaded[i]);
    }
    b.store(y, Affine::var(n), sum);
    b.end_loop();
    const Kernel k = b.take();

    PackedView view(k, hot_block(k));
    const std::vector<MemoryRun> runs = find_memory_runs(view);
    ASSERT_EQ(runs.size(), 2u);
    for (const MemoryRun& run : runs) {
        EXPECT_EQ(run.length(), 4);
        const ArrayId array =
            k.op(view.node(run.nodes.front()).lanes.front()).array;
        for (const int node : run.nodes) {
            EXPECT_EQ(k.op(view.node(node).lanes.front()).array, array);
        }
    }
    for (const Candidate& c : seed_runs(view, cliff_target())) {
        const std::vector<OpId> lanes = fused_lanes(view, c);
        const ArrayId array = k.op(lanes.front()).array;
        for (const OpId lane : lanes) {
            EXPECT_EQ(k.op(lane).array, array);
        }
    }
}

// --- virtual-width fusion ------------------------------------------------------

TEST(VirtualWidth, FusionClimbsToTheRealizationWidth) {
    // On the cliff target, pairwise fusion must pass through virtual
    // width 2 (not implementable) to reach the 4-lane configuration.
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    const TargetModel cliff = cliff_target();
    SlpStats stats;
    const auto groups = extract_slp_plain(view, cliff, spec, {}, &stats);
    EXPECT_GE(widest_group(groups), 4);
    // Every emitted group is realizable — nothing is left at a virtual
    // width (the engine splits stranded nodes back to scalars).
    for (const SimdGroup& g : groups) {
        EXPECT_TRUE(cliff.supports_group_size(g.width()))
            << "unrealizable group width " << g.width();
    }
    EXPECT_GE(stats.rounds, 1);
}

TEST(VirtualWidth, StarvedBlocksAreLeftAlone) {
    // XENTIUM@simd128 admits only k = 8, but the FIR block holds 4 lanes
    // of each op class: the availability gate must reject the doomed
    // virtual fusions outright, leaving the block scalar instead of
    // committing WL reductions toward a group that can never exist.
    const TargetModel starved =
        targets::xentium().with_simd_width(128);
    ASSERT_EQ(starved.feasible_group_sizes(), (std::vector<int>{8}));
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    EXPECT_TRUE(extract_candidates(view, starved).empty());
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    SlpStats stats;
    const auto groups = extract_slp_plain(view, starved, spec, {}, &stats);
    EXPECT_TRUE(groups.empty());
    EXPECT_EQ(stats.devirtualized, 0);
}

TEST(VirtualWidth, GroupsAreDisjointOnCliffTargets) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    const auto groups = extract_slp_plain(view, cliff_target(), spec, {});
    std::set<int32_t> seen;
    for (const SimdGroup& g : groups) {
        for (const OpId lane : g.lanes) {
            EXPECT_TRUE(seen.insert(lane.index()).second)
                << "op in two groups";
        }
    }
}

// --- end-to-end ----------------------------------------------------------------

TEST(CliffFlow, WloSlpFormsWideGroupsAndBeatsScalar) {
    // The full WLO-SLP flow on the cliff derivative: >= 4-lane groups and
    // a SIMD schedule faster than the scalar baseline.
    SweepOptions options;
    options.threads = 1;
    SweepDriver driver(options);
    SweepPoint point;
    point.kernel = "FIR";
    point.target = "DSP64@simd128";
    point.target_model = cliff_target();
    point.flow = "WLO-SLP";
    point.accuracy_db = -30.0;
    const std::vector<SweepResult> results = driver.run({point});
    ASSERT_EQ(results.size(), 1u);
    const FlowResult& flow = results[0].flow;
    EXPECT_GT(flow.group_count, 0);
    int widest = 0;
    for (const BlockGroups& bg : flow.groups) {
        widest = std::max(widest, widest_group(bg.groups));
    }
    EXPECT_GE(widest, 4);
    EXPECT_LT(flow.simd_cycles, flow.scalar_cycles);
}

// --- preset sweep byte-identity ------------------------------------------------

uint64_t fnv1a(const std::string& text) {
    uint64_t h = 0xcbf29ce484222325ull;
    for (const unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

/// The shipped-preset sweep this fingerprint locks down: FIR x
/// {NEON128, SSE128, DSP64} x the sweep_targets width menu x
/// {-30, -50} dB, WLO-SLP. Every non-cliff point must stay bit-identical
/// to the pre-run-seeding output forever; the one cliff derivative in
/// the grid (DSP64@simd128) is pinned to its fixed (grouping) result.
std::vector<SweepPoint> preset_grid() {
    const std::vector<std::string> kernels{"FIR"};
    const std::vector<double> constraints{-30.0, -50.0};
    const std::vector<int> width_menu{0, 32, 64, 128};
    std::vector<SweepPoint> points;
    for (const std::string isa : {"NEON128", "SSE128", "DSP64"}) {
        const TargetModel base = targets::by_name(isa);
        std::vector<int> widths;
        for (const int w : width_menu) {
            if (w == base.simd_width_bits) continue;
            if (!base.can_derive_simd_width(w)) continue;
            widths.push_back(w);
        }
        const std::vector<SweepPoint> slice = SweepDriver::grid(
            kernels, {isa}, widths, {"WLO-SLP"}, constraints);
        points.insert(points.end(), slice.begin(), slice.end());
    }
    return points;
}

/// FNV-1a of the preset_grid() sweep report JSON (sweep_to_json of the
/// results array). Recorded from the post-fix run whose non-cliff rows
/// were verified bit-identical to the pre-fix sweep. The report embeds
/// libm-derived doubles (log10 noise figures), so the constant is pinned
/// to the CI platform's libm: when porting to a toolchain whose last-ULP
/// rounding differs, re-audit the rows against a trusted run and re-pin.
constexpr uint64_t kPresetReportFingerprint = 0xbe9f4944aec640d1ull;

TEST(PresetSweep, ReportMatchesCheckedInFingerprintAtAnyThreadCount) {
    const std::vector<SweepPoint> points = preset_grid();
    ASSERT_EQ(points.size(), 18u);  // 3 ISAs x 3 widths x 2 constraints

    SweepOptions serial_options;
    serial_options.threads = 1;
    SweepDriver serial(serial_options);
    const std::string serial_json = sweep_to_json(serial.run(points));

    SweepOptions parallel_options;
    parallel_options.threads = 4;
    SweepDriver parallel(parallel_options);
    const std::string parallel_json = sweep_to_json(parallel.run(points));

    // Deterministic at any thread count...
    EXPECT_EQ(serial_json, parallel_json);
    // ...and byte-identical to the checked-in report fingerprint. If this
    // fails, the seeding/fusion change perturbed preset behavior — that
    // is a regression unless the new output was deliberately re-audited
    // point by point (update the constant only then).
    EXPECT_EQ(fnv1a(serial_json), kPresetReportFingerprint)
        << "preset sweep report changed; first 400 bytes:\n"
        << serial_json.substr(0, 400);
}

}  // namespace
}  // namespace slpwlo
