// FarmService: wire framing edge cases, the JobBoard state machine at
// ttl 0 (explicit clocks, no sleeps), incremental-re-sweep splicing, and
// socket end-to-end runs whose reports must be byte-identical to the
// 1-process sweep — including with a worker that dies mid-`complete`.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "dist/shard_manifest.hpp"
#include "dist/shard_merger.hpp"
#include "dist/shard_plan.hpp"
#include "farm/farm_client.hpp"
#include "farm/farm_server.hpp"
#include "farm/framing.hpp"
#include "farm/job_board.hpp"
#include "flow/sweep.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo {
namespace {

using namespace slpwlo::farm;
using namespace slpwlo::dist;

// --- framing -------------------------------------------------------------------

Message ping(const std::string& body = "") {
    Message m;
    m.verb = "hello";
    m.fields["worker"] = "w1";
    m.body = body;
    return m;
}

TEST(FarmFraming, FrameRoundTrip) {
    const Message sent = ping("opaque \x01 bytes\nwith newlines\n");
    std::string buffer = encode_frame(sent);
    const std::optional<Message> got = take_frame(buffer);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->verb, "hello");
    EXPECT_EQ(got->field("worker"), "w1");
    EXPECT_EQ(got->body, sent.body);
    EXPECT_TRUE(buffer.empty()) << "frame bytes must be consumed";
}

TEST(FarmFraming, PartialFramesWaitForMoreBytes) {
    const std::string frame = encode_frame(ping("some body"));
    // Byte by byte: no prefix short of the full frame may yield a
    // message (frames are atomic) — and none may throw.
    std::string buffer;
    for (size_t i = 0; i + 1 < frame.size(); ++i) {
        buffer += frame[i];
        std::string probe = buffer;
        EXPECT_FALSE(take_frame(probe).has_value()) << "at byte " << i;
        EXPECT_EQ(probe, buffer) << "incomplete frames must not consume";
    }
    buffer += frame.back();
    EXPECT_TRUE(take_frame(buffer).has_value());
}

TEST(FarmFraming, BackToBackFramesDrainInOrder) {
    Message second = ping();
    second.verb = "status";
    second.fields.clear();
    std::string buffer = encode_frame(ping()) + encode_frame(second);
    const std::optional<Message> a = take_frame(buffer);
    const std::optional<Message> b = take_frame(buffer);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->verb, "hello");
    EXPECT_EQ(b->verb, "status");
    EXPECT_FALSE(take_frame(buffer).has_value());
}

TEST(FarmFraming, GarbageHeaderPoisonsTheConnection) {
    std::string buffer = "GET / HTTP/1.1\r\nHost: farm\r\n\r\n";
    EXPECT_THROW(take_frame(buffer), Error);
    // No newline at all: tolerated only until the header-size bound.
    std::string silent(kMaxFrameBytes > 128 ? 128 : 65, 'x');
    EXPECT_THROW(take_frame(silent), Error);
    std::string still_arriving = "slpwlo-far";  // short, could become valid
    EXPECT_FALSE(take_frame(still_arriving).has_value());
}

TEST(FarmFraming, VersionMismatchIsNamedNotGarbage) {
    std::string buffer = "slpwlo-farm/2 5\nhello";
    try {
        take_frame(buffer);
        FAIL() << "a future protocol version must be rejected";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("version mismatch"), std::string::npos) << what;
        EXPECT_NE(what.find("slpwlo-farm/2"), std::string::npos) << what;
    }
}

TEST(FarmFraming, OversizedLengthRejectedBeforePayload) {
    // Only the header has arrived — the bogus length alone must kill the
    // connection (no buffering 2^60 bytes first).
    std::string buffer =
        "slpwlo-farm/1 " + std::to_string(kMaxFrameBytes + 1) + "\n";
    EXPECT_THROW(take_frame(buffer), Error);
    std::string absurd = "slpwlo-farm/1 1152921504606846976\n";
    EXPECT_THROW(take_frame(absurd), Error);
    std::string not_a_number = "slpwlo-farm/1 12q4\n";
    EXPECT_THROW(take_frame(not_a_number), Error);
}

TEST(FarmFraming, MessageFieldAccessors) {
    Message m = ping();
    EXPECT_EQ(m.field("missing"), "");
    EXPECT_THROW(m.require_field("missing"), Error);
    m.fields["n"] = "42";
    EXPECT_EQ(m.require_ll("n"), 42);
    m.fields["n"] = "4x2";
    EXPECT_THROW(m.require_ll("n"), Error);
}

TEST(FarmFraming, DecodeRejectsMalformedPayloads) {
    EXPECT_THROW(decode_message("no verb line\n\n"), Error);
    EXPECT_THROW(decode_message("worker = w1\nverb = hello\n\n"), Error)
        << "fields before the verb line";
    EXPECT_THROW(decode_message("verb = a\nverb = b\n\n"), Error);
    EXPECT_THROW(decode_message("verb = a\nk = 1\nk = 2\n\n"), Error);
}

// --- JobBoard at ttl 0 ----------------------------------------------------------

/// A small real whole-grid manifest (no flows are run — the board only
/// parses points and fingerprints).
std::string whole_grid_manifest(const std::vector<SweepPoint>& grid) {
    const std::vector<dist::ShardPlan> plans = dist::make_shard_plans(
        grid, 1, dist::ShardStrategy::RoundRobin);
    return shard_manifest_text(plans.front());
}

std::vector<SweepPoint> board_grid() {
    return SweepDriver::grid({"FIR", "DOT"}, {"XENTIUM"}, {"WLO-SLP"},
                             {-20.0, -30.0});
}

/// Synthetic rows for `slots` of `manifest` — content-correct headers and
/// fingerprints, placeholder JSON (the board never interprets row bytes).
std::string synthetic_rows(const ShardManifest& manifest,
                           const std::vector<size_t>& slots,
                           const std::string& tag = "r") {
    ShardResultsFile file;
    file.total_slots = manifest.total_slots;
    file.grid_fp = manifest.grid_fp;
    for (const size_t slot : slots) {
        ShardRow row;
        row.slot = slot;
        row.point_fp = dist::point_fingerprint(manifest.points[slot]);
        row.json = "{\"" + tag + "\": " + std::to_string(slot) + "}";
        file.rows.push_back(row);
    }
    return shard_results_text(file);
}

TEST(FarmJobBoard, RejectsPartialGridManifests) {
    JobBoard board(0);
    const std::vector<dist::ShardPlan> plans = dist::make_shard_plans(
        board_grid(), 2, dist::ShardStrategy::RoundRobin);
    EXPECT_THROW(
        board.submit(shard_manifest_text(plans[0]), ChunkOptions{}, "", 0),
        Error);
}

TEST(FarmJobBoard, ChunkLifecycleToFinalizedReport) {
    JobBoard board(1000);
    const std::string text = whole_grid_manifest(board_grid());
    const ShardManifest manifest = parse_shard_manifest(text, "<test>");

    ChunkOptions chunking;
    chunking.max_chunk_slots = 1;  // one slot per chunk: 4 chunks
    const size_t job = board.submit(text, chunking, "", 0);
    EXPECT_EQ(job, 0u);
    EXPECT_FALSE(board.drained());
    EXPECT_EQ(board.next_job(), std::optional<size_t>(0));
    EXPECT_EQ(board.manifest_text(job), text);

    // Claim all four chunks across two workers; every claim is a lease.
    std::vector<std::pair<uint64_t, std::vector<size_t>>> leases;
    for (int i = 0; i < 4; ++i) {
        const JobBoard::Acquired got =
            board.acquire(i % 2 == 0 ? "w1" : "w2", job, 0, 10);
        ASSERT_FALSE(got.slots.empty());
        leases.push_back({got.lease, got.slots});
    }
    // Pool empty but unfinished: an idle worker should wait, not leave.
    const JobBoard::Acquired empty = board.acquire("w3", job, 0, 11);
    EXPECT_TRUE(empty.slots.empty());
    EXPECT_TRUE(empty.wait);

    bool finalized = false;
    for (const auto& [lease, slots] : leases) {
        EXPECT_FALSE(finalized);
        finalized = board.complete(lease % 2 == 1 ? "w1" : "w2", job, lease,
                                   synthetic_rows(manifest, slots), 20);
    }
    EXPECT_TRUE(finalized) << "the last completion finalizes the job";
    EXPECT_TRUE(board.job_finalized(job));
    EXPECT_TRUE(board.drained());
    EXPECT_EQ(board.next_job(), std::nullopt);
    EXPECT_EQ(board.reissues(), 0u);

    // The streamed merge renders all rows in slot order.
    const std::string report = board.report(job);
    for (size_t slot = 0; slot < manifest.total_slots; ++slot) {
        EXPECT_NE(report.find("{\"r\": " + std::to_string(slot) + "}"),
                  std::string::npos);
    }
    // After finalize: acquire returns empty with wait=false — move on.
    const JobBoard::Acquired done = board.acquire("w1", job, 0, 30);
    EXPECT_TRUE(done.slots.empty());
    EXPECT_FALSE(done.wait);
}

TEST(FarmJobBoard, TtlZeroExpiryReissuesAndAcceptsStragglers) {
    // ttl 0: every worker is stale at the next expire() sweep. Explicit
    // clocks make the whole re-issue machine sleep-free.
    JobBoard board(0);
    const std::string text = whole_grid_manifest(board_grid());
    const ShardManifest manifest = parse_shard_manifest(text, "<test>");
    ChunkOptions chunking;
    chunking.chunk_cost = 1e18;  // a single chunk covering the grid
    const size_t job = board.submit(text, chunking, "", 0);

    const JobBoard::Acquired first = board.acquire("slow", job, 0, 1);
    ASSERT_FALSE(first.slots.empty());
    EXPECT_EQ(board.expire(1), 1u) << "ttl 0 expires the claim immediately";
    EXPECT_EQ(board.reissues(), 1u);

    // The replacement claims the same chunk under a fresh lease.
    const JobBoard::Acquired second = board.acquire("fast", job, 0, 2);
    ASSERT_EQ(second.slots, first.slots);
    EXPECT_NE(second.lease, first.lease);

    const std::string rows = synthetic_rows(manifest, second.slots);
    EXPECT_TRUE(board.complete("fast", job, second.lease, rows, 3));

    // The straggler finishes too: identical bytes deduplicate quietly
    // (stale lease ids stay resolvable), different bytes are a conflict
    // rejected whole.
    EXPECT_FALSE(board.complete("slow", job, first.lease, rows, 4));
    EXPECT_THROW(board.complete("slow", job, first.lease,
                                synthetic_rows(manifest, first.slots, "evil"),
                                5),
                 Error);
    EXPECT_TRUE(board.job_finalized(job));
}

TEST(FarmJobBoard, CompletionIsAtomic) {
    JobBoard board(1000);
    const std::string text = whole_grid_manifest(board_grid());
    const ShardManifest manifest = parse_shard_manifest(text, "<test>");
    ChunkOptions chunking;
    chunking.chunk_cost = 1e18;  // cost never cuts...
    chunking.max_chunk_slots = 2;  // ...so the slot cap rules: 2x2
    const size_t job = board.submit(text, chunking, "", 0);
    const JobBoard::Acquired got = board.acquire("w1", job, 0, 1);
    ASSERT_EQ(got.slots.size(), 2u);

    // Rows that do not cover the lease's slots exactly: rejected, and
    // nothing lands (no half-applied frame).
    EXPECT_THROW(board.complete("w1", job, got.lease,
                                synthetic_rows(manifest, {got.slots[0]}), 2),
                 Error);
    EXPECT_THROW(board.complete(
                     "w1", job, got.lease,
                     synthetic_rows(manifest, {got.slots[0], 3}), 2),
                 Error);
    EXPECT_FALSE(board.job_finalized(job));
    EXPECT_THROW(board.report(job), Error) << "no slot may have landed";

    // Unknown lease ids are a hard error (a confused worker, not a race).
    EXPECT_THROW(board.complete("w1", job, 9999,
                                synthetic_rows(manifest, got.slots), 3),
                 Error);
}

TEST(FarmJobBoard, AbandonReturnsChunksToThePool) {
    JobBoard board(1000);
    const std::string text = whole_grid_manifest(board_grid());
    ChunkOptions chunking;
    chunking.chunk_cost = 1e18;  // one chunk for the whole grid
    const size_t job = board.submit(text, chunking, "", 0);
    const JobBoard::Acquired got = board.acquire("w1", job, 0, 1);
    ASSERT_FALSE(got.slots.empty());
    board.abandon(job, got.lease);
    const JobBoard::Acquired again = board.acquire("w2", job, 0, 2);
    EXPECT_EQ(again.slots, got.slots);
    board.abandon(job, got.lease);  // stale: ignored, w2 keeps its claim
    const JobBoard::Acquired blocked = board.acquire("w3", job, 0, 3);
    EXPECT_TRUE(blocked.slots.empty());
    EXPECT_TRUE(blocked.wait);
}

TEST(FarmJobBoard, SubmitWithSpliceRowsFinalizesUnchangedGrids) {
    JobBoard board(1000);
    const std::string text = whole_grid_manifest(board_grid());
    const ShardManifest manifest = parse_shard_manifest(text, "<test>");

    // First run: everything executed (synthetically here).
    ChunkOptions chunking;
    chunking.chunk_cost = 1e18;  // one chunk for the whole grid
    const size_t first = board.submit(text, chunking, "", 0);
    const JobBoard::Acquired got = board.acquire("w1", first, 0, 1);
    board.complete("w1", first, got.lease,
                   synthetic_rows(manifest, got.slots), 2);
    const std::string rows = board.rows_text(first);

    // Re-submit the identical grid with the previous rows: every slot
    // splices, the job finalizes with zero chunks served.
    const size_t second = board.submit(text, chunking, rows, 10);
    EXPECT_TRUE(board.job_finalized(second));
    EXPECT_EQ(board.splice_count(second), manifest.total_slots);
    EXPECT_EQ(board.report(second), board.report(first))
        << "a fully-spliced job reproduces the original report bytes";
    const JobBoard::Acquired none = board.acquire("w1", second, 0, 11);
    EXPECT_TRUE(none.slots.empty());
    EXPECT_FALSE(none.wait);
}

TEST(FarmJobBoard, StatusJsonTracksLiveState) {
    JobBoard board(0);
    EXPECT_NE(board.status_json(0).find("\"drained\": true"),
              std::string::npos)
        << "an empty board is trivially drained";

    const std::string text = whole_grid_manifest(board_grid());
    const ShardManifest manifest = parse_shard_manifest(text, "<test>");
    ChunkOptions chunking;
    chunking.chunk_cost = 1e18;  // one chunk for the whole grid
    const size_t job = board.submit(text, chunking, "", 0);
    const JobBoard::Acquired got = board.acquire("wo\"rker", job, 0, 1);

    std::string status = board.status_json(5);
    EXPECT_NE(status.find("\"drained\": false"), std::string::npos);
    EXPECT_NE(status.find("\"claimed_chunks\": 1"), std::string::npos);
    EXPECT_NE(status.find("\"wo\\\"rker\""), std::string::npos)
        << "worker names are JSON-escaped";

    board.expire(6);
    status = board.status_json(7);
    EXPECT_NE(status.find("\"alive\": false"), std::string::npos);
    EXPECT_NE(status.find("\"reissues\": 1"), std::string::npos);

    board.complete("wo\"rker", job, got.lease,
                   synthetic_rows(manifest, got.slots), 8);
    status = board.status_json(9);
    EXPECT_NE(status.find("\"drained\": true"), std::string::npos);
    EXPECT_NE(status.find("\"finalized\": true"), std::string::npos);
}

// --- RowAccumulator atomicity / splice ------------------------------------------

TEST(FarmMergeSupport, AccumulatorAddIsAllOrNothing) {
    RowAccumulator acc(4, 0xABCD, DuplicatePolicy::AllowIdentical);

    ShardResultsFile good;
    good.total_slots = 4;
    good.grid_fp = 0xABCD;
    good.rows.push_back({0, 11, "{\"a\": 0}", 0, 0});
    EXPECT_EQ(acc.add(good), 1u);

    // One fresh row, one conflicting row in the same file: the fresh row
    // must not land either.
    ShardResultsFile mixed;
    mixed.total_slots = 4;
    mixed.grid_fp = 0xABCD;
    mixed.rows.push_back({1, 22, "{\"a\": 1}", 0, 0});
    mixed.rows.push_back({0, 11, "{\"a\": 666}", 0, 0});
    EXPECT_THROW(acc.add(mixed), Error);
    EXPECT_EQ(acc.done_slots(), 1u);
    EXPECT_FALSE(acc.has_slot(1)) << "the fresh row of a rejected file";
    EXPECT_EQ(acc.missing(8), (std::vector<size_t>{1, 2, 3}));
}

TEST(FarmMergeSupport, SpliceReSlotsByPointFingerprint) {
    ShardResultsFile old_file;
    old_file.total_slots = 3;
    old_file.grid_fp = 0x1;
    old_file.rows.push_back({0, 100, "{\"p\": 100}", 7, 0});
    old_file.rows.push_back({1, 200, "{\"p\": 200}", 7, 0});
    old_file.rows.push_back({2, 300, "{\"p\": 300}", 7, 0});

    // New grid: one point dropped, order permuted, one new point.
    const std::vector<uint64_t> slot_fps = {300, 999, 100};
    const ShardResultsFile spliced =
        dist::splice_rows({old_file}, slot_fps, 0x2);
    EXPECT_EQ(spliced.grid_fp, 0x2u);
    ASSERT_EQ(spliced.rows.size(), 2u);
    EXPECT_EQ(spliced.rows[0].slot, 0u);
    EXPECT_EQ(spliced.rows[0].json, "{\"p\": 300}");
    EXPECT_EQ(spliced.rows[1].slot, 2u);
    EXPECT_EQ(spliced.rows[1].json, "{\"p\": 100}");

    // Two old rows with one fingerprint but different bytes cannot both
    // be "the" result of that point: conflict.
    ShardResultsFile other = old_file;
    other.rows[0].json = "{\"p\": -1}";
    EXPECT_THROW(dist::splice_rows({old_file, other}, slot_fps, 0x2), Error);
}

// --- socket end to end ----------------------------------------------------------

int connect_loopback(int port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
}

/// A FarmServer on an ephemeral loopback port, run()ning on its own
/// thread for the duration of a test.
class FarmE2E : public ::testing::Test {
protected:
    void start(long long ttl_ms, long long tick_ms = 20) {
        ServerOptions options;
        options.port = 0;
        options.ttl_ms = ttl_ms;
        options.tick_ms = tick_ms;
        server_ = std::make_unique<FarmServer>(options);
        thread_ = std::thread([this] { server_->run(); });
    }

    void TearDown() override {
        if (server_ != nullptr) server_->stop();
        if (thread_.joinable()) thread_.join();
    }

    size_t submit_over_wire(const std::string& manifest_text,
                            size_t chunk_slots) {
        FarmClient client("127.0.0.1", server_->port());
        Message request;
        request.verb = "submit";
        request.fields["chunk_slots"] = std::to_string(chunk_slots);
        request.body = manifest_text;
        const Message response = client.call(request);
        return static_cast<size_t>(response.require_ll("job"));
    }

    std::string fetch_report(size_t job) {
        FarmClient client("127.0.0.1", server_->port());
        Message request;
        request.verb = "report";
        request.fields["job"] = std::to_string(job);
        return client.call(request).body;
    }

    std::unique_ptr<FarmServer> server_;
    std::thread thread_;
};

TEST_F(FarmE2E, FarmSweepIsByteIdenticalToSingleProcess) {
    const std::vector<SweepPoint> grid = SweepDriver::grid(
        {"FIR"}, {"XENTIUM"}, {"WLO-SLP"}, {-20.0, -30.0});
    SweepOptions options;
    options.threads = 1;
    SweepDriver reference(options);
    const std::string reference_json = sweep_to_json(reference.run(grid));

    start(/*ttl_ms=*/10000);
    const size_t job = submit_over_wire(whole_grid_manifest(grid), 1);

    // Two workers race for the two single-slot chunks.
    std::vector<std::thread> workers;
    std::vector<size_t> ran(2, 0);
    for (int w = 0; w < 2; ++w) {
        workers.emplace_back([this, w, &ran] {
            FarmWorkerOptions options;
            options.worker = "worker" + std::to_string(w);
            options.heartbeat_ms = 50;
            options.poll_ms = 20;
            options.exec.threads = 1;
            ran[static_cast<size_t>(w)] =
                run_farm_worker("127.0.0.1", server_->port(), options);
        });
    }
    for (std::thread& t : workers) t.join();

    EXPECT_EQ(ran[0] + ran[1], grid.size())
        << "the workers together executed the whole grid";
    EXPECT_TRUE(server_->board().job_finalized(job));
    EXPECT_EQ(fetch_report(job), reference_json)
        << "the streamed farm merge must reproduce the 1-process bytes";

    // The status verb over the wire reflects the finished state.
    FarmClient client("127.0.0.1", server_->port());
    Message status;
    status.verb = "status";
    const std::string body = client.call(status).body;
    EXPECT_NE(body.find("\"drained\": true"), std::string::npos);
    EXPECT_NE(body.find("\"protocol\": \"slpwlo-farm/1\""),
              std::string::npos);
}

TEST_F(FarmE2E, WorkerKilledMidCompleteDeliversNothing) {
    const std::vector<SweepPoint> grid =
        SweepDriver::grid({"FIR"}, {"XENTIUM"}, {"WLO-SLP"}, {-20.0});
    SweepOptions options;
    options.threads = 1;
    SweepDriver reference(options);
    const std::string reference_json = sweep_to_json(reference.run(grid));

    start(/*ttl_ms=*/150, /*tick_ms=*/20);
    const size_t job = submit_over_wire(whole_grid_manifest(grid), 1);

    // A ghost worker claims the only chunk...
    uint64_t ghost_lease = 0;
    {
        FarmClient ghost("127.0.0.1", server_->port());
        Message acquire;
        acquire.verb = "acquire";
        acquire.fields["worker"] = "ghost";
        acquire.fields["job"] = std::to_string(job);
        const Message got = ghost.call(acquire);
        ghost_lease = static_cast<uint64_t>(got.require_ll("lease"));
        EXPECT_FALSE(got.field("slots").empty());
    }
    // ...then dies mid-`complete`: half a frame, then SIGKILL (socket
    // close). The frame never completed, so the server must act on none
    // of it — not even parse it.
    {
        Message complete;
        complete.verb = "complete";
        complete.fields["worker"] = "ghost";
        complete.fields["job"] = std::to_string(job);
        complete.fields["lease"] = std::to_string(ghost_lease);
        complete.body = "# slpwlo shard results\ngarbage that would never "
                        "validate\n";
        const std::string frame = encode_frame(complete);
        const int fd = connect_loopback(server_->port());
        const size_t half = frame.size() / 2;
        ASSERT_EQ(::send(fd, frame.data(), half, MSG_NOSIGNAL),
                  static_cast<ssize_t>(half));
        ::close(fd);
    }
    EXPECT_FALSE(server_->board().job_finalized(job));

    // The ghost's heartbeat goes stale; the chunk expires back and a
    // real worker drains it. The report must still be byte-identical.
    FarmWorkerOptions worker;
    worker.worker = "real";
    worker.heartbeat_ms = 30;
    worker.poll_ms = 20;
    worker.exec.threads = 1;
    EXPECT_EQ(run_farm_worker("127.0.0.1", server_->port(), worker),
              grid.size());
    EXPECT_TRUE(server_->board().job_finalized(job));
    EXPECT_GE(server_->board().reissues(), 1u)
        << "the ghost's chunk must have been re-issued by expiry";
    EXPECT_EQ(fetch_report(job), reference_json);
}

TEST_F(FarmE2E, ServerAnswersProtocolErrorsAndStaysUp) {
    start(/*ttl_ms=*/10000);

    // Version mismatch: the server answers with a version-1 error frame
    // naming the peer's version, then closes that connection.
    {
        const int fd = connect_loopback(server_->port());
        const std::string frame = "slpwlo-farm/2 5\nhello";
        ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(frame.size()));
        const std::optional<Message> response = read_frame(fd);
        ASSERT_TRUE(response.has_value());
        EXPECT_EQ(response->verb, "error");
        EXPECT_NE(response->field("message").find("slpwlo-farm/2"),
                  std::string::npos);
        ::close(fd);
    }
    // Garbage: same shape, different diagnosis.
    {
        const int fd = connect_loopback(server_->port());
        const std::string junk = "GET /status HTTP/1.1\r\n\r\n";
        ASSERT_EQ(::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(junk.size()));
        const std::optional<Message> response = read_frame(fd);
        ASSERT_TRUE(response.has_value());
        EXPECT_EQ(response->verb, "error");
        ::close(fd);
    }
    // Unknown verbs and bad requests keep the connection usable.
    {
        FarmClient client("127.0.0.1", server_->port());
        Message bogus;
        bogus.verb = "frobnicate";
        EXPECT_THROW(client.call(bogus), Error);
        Message status;
        status.verb = "status";
        EXPECT_EQ(client.call(status).verb, "ok")
            << "an error response must not poison the connection";
    }
}

TEST(FarmEndpoint, ParseEndpointForms) {
    std::string host;
    int port = 0;
    parse_endpoint("farmhost:7477", host, port);
    EXPECT_EQ(host, "farmhost");
    EXPECT_EQ(port, 7477);
    parse_endpoint(":8080", host, port);
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 8080);
    parse_endpoint("9090", host, port);
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 9090);
    EXPECT_THROW(parse_endpoint("host:", host, port), Error);
    EXPECT_THROW(parse_endpoint("host:0", host, port), Error);
    EXPECT_THROW(parse_endpoint("host:x", host, port), Error);
    EXPECT_THROW(parse_endpoint("host:70000", host, port), Error);
}

}  // namespace
}  // namespace slpwlo
