// Tests for target models, machine lowering and the VLIW timing model.
#include <gtest/gtest.h>

#include "core/slp_aware_wlo.hpp"
#include "lower/lowering.hpp"
#include "schedule/cycle_model.hpp"
#include "target/target_model.hpp"
#include "support/diagnostics.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

using ::slpwlo::testing::cached_evaluator;
using ::slpwlo::testing::initial_spec;
using ::slpwlo::testing::set_uniform_wl;
using ::slpwlo::testing::small_fir;
using ::slpwlo::testing::small_iir;

// --- target models -----------------------------------------------------------------

TEST(Targets, BuiltinsValidate) {
    for (const TargetModel& t : targets::paper_targets()) {
        EXPECT_NO_THROW(t.validate());
    }
    EXPECT_NO_THROW(targets::generic32().validate());
}

TEST(Targets, EquationOneTable) {
    const TargetModel xentium = targets::xentium();
    EXPECT_EQ(xentium.simd_element_wl(1), 32);
    EXPECT_EQ(xentium.simd_element_wl(2), 16);
    EXPECT_EQ(xentium.simd_element_wl(4), std::nullopt);  // no 4x8
    EXPECT_EQ(xentium.max_group_size(), 2);

    const TargetModel vex = targets::vex4();
    EXPECT_EQ(vex.simd_element_wl(2), 16);
    EXPECT_EQ(vex.simd_element_wl(4), 8);
    EXPECT_EQ(vex.simd_element_wl(8), std::nullopt);
    EXPECT_EQ(vex.max_group_size(), 4);

    EXPECT_EQ(targets::generic32().simd_element_wl(2), std::nullopt);
}

TEST(Targets, RelativeCostIsWlProportional) {
    const TargetModel t = targets::xentium();
    EXPECT_DOUBLE_EQ(t.relative_op_cost(OpKind::Add, 32), 1.0);
    EXPECT_DOUBLE_EQ(t.relative_op_cost(OpKind::Add, 16), 0.5);
    EXPECT_DOUBLE_EQ(t.relative_op_cost(OpKind::Mul, 8), 0.25);
    EXPECT_DOUBLE_EQ(t.relative_op_cost(OpKind::Add, 12), 0.5);  // rounds up
    EXPECT_DOUBLE_EQ(targets::generic32().relative_op_cost(OpKind::Add, 8),
                     1.0);
}

TEST(Targets, ByNameLookup) {
    EXPECT_EQ(targets::by_name("xentium").name, "XENTIUM");
    EXPECT_EQ(targets::by_name("VEX-1").issue_width, 1);
    EXPECT_THROW(targets::by_name("TPU"), Error);
}

// --- lowering -----------------------------------------------------------------------

TEST(Lowering, ScalarFixedHasShiftsAndNoPacks) {
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    const MachineKernel machine = lower_kernel(
        k, &spec, nullptr, targets::xentium(), LowerMode::FixedScalar);
    EXPECT_GT(count_ops(machine, MachKind::Shift), 0);
    EXPECT_EQ(count_ops(machine, MachKind::Pack), 0);
    EXPECT_EQ(count_ops(machine, MachKind::Extract), 0);
    EXPECT_EQ(count_ops(machine, MachKind::SoftFloat), 0);
    for (const MachineBlock& b : machine.blocks) {
        for (const MachOp& op : b.ops) {
            EXPECT_EQ(op.lanes, 1);
        }
    }
}

TEST(Lowering, FloatModeUsesSoftFloatOnXentium) {
    const Kernel& k = small_fir();
    const MachineKernel machine =
        lower_kernel(k, nullptr, nullptr, targets::xentium(),
                     LowerMode::Float);
    EXPECT_GT(count_ops(machine, MachKind::SoftFloat), 0);
    EXPECT_EQ(count_ops(machine, MachKind::Shift), 0);
}

TEST(Lowering, FloatModeUsesHardFpOnSt240) {
    const Kernel& k = small_fir();
    const MachineKernel machine = lower_kernel(
        k, nullptr, nullptr, targets::st240(), LowerMode::Float);
    EXPECT_GT(count_ops(machine, MachKind::FloatOp), 0);
    EXPECT_EQ(count_ops(machine, MachKind::SoftFloat), 0);
}

TEST(Lowering, SimdModeEmitsVectorOps) {
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    WloSlpOptions options;
    options.accuracy_db = -30.0;
    const auto result = run_slp_aware_wlo(k, spec, cached_evaluator(k),
                                          targets::xentium(), options);
    const MachineKernel machine =
        lower_kernel(k, &spec, &result.block_groups, targets::xentium(),
                     LowerMode::FixedSimd);
    bool found_vector = false;
    for (const MachineBlock& b : machine.blocks) {
        for (const MachOp& op : b.ops) {
            if (op.lanes > 1) found_vector = true;
        }
    }
    EXPECT_TRUE(found_vector);
}

TEST(Lowering, DependencesPointBackwards) {
    const Kernel& k = small_iir();
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    const MachineKernel machine = lower_kernel(
        k, &spec, nullptr, targets::st240(), LowerMode::FixedScalar);
    for (const MachineBlock& b : machine.blocks) {
        for (size_t i = 0; i < b.ops.size(); ++i) {
            for (const int p : b.ops[i].preds) {
                EXPECT_GE(p, 0);
                EXPECT_LT(p, static_cast<int>(i));
            }
        }
    }
}

TEST(Lowering, IirHasLoopCarriedRecurrences) {
    const Kernel& k = small_iir();
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    const MachineKernel machine = lower_kernel(
        k, &spec, nullptr, targets::st240(), LowerMode::FixedScalar);
    bool found = false;
    for (const MachineBlock& b : machine.blocks) {
        if (!b.recurrences.empty()) found = true;
    }
    EXPECT_TRUE(found) << "IIR feedback must create recurrences";
}

// --- scheduler ---------------------------------------------------------------------

TEST(Scheduler, RespectsDependencesAndLatencies) {
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    const TargetModel target = targets::st240();
    const MachineKernel machine =
        lower_kernel(k, &spec, nullptr, target, LowerMode::FixedScalar);
    for (const MachineBlock& b : machine.blocks) {
        const BlockSchedule sched = schedule_block(b, target);
        for (size_t i = 0; i < b.ops.size(); ++i) {
            for (const int p : b.ops[i].preds) {
                EXPECT_GE(sched.cycle_of[i],
                          sched.cycle_of[static_cast<size_t>(p)] +
                              op_latency(b.ops[static_cast<size_t>(p)],
                                         target))
                    << "latency violated";
            }
        }
    }
}

TEST(Scheduler, RespectsIssueWidth) {
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    const TargetModel target = targets::vex4();
    const MachineKernel machine =
        lower_kernel(k, &spec, nullptr, target, LowerMode::FixedScalar);
    for (const MachineBlock& b : machine.blocks) {
        const BlockSchedule sched = schedule_block(b, target);
        std::map<int, int> per_cycle;
        for (size_t i = 0; i < b.ops.size(); ++i) {
            if (b.ops[i].kind == MachKind::SoftFloat) continue;
            per_cycle[sched.cycle_of[i]]++;
        }
        for (const auto& [cycle, count] : per_cycle) {
            (void)cycle;
            EXPECT_LE(count, target.issue_width);
        }
    }
}

TEST(Scheduler, NarrowMachineIsSlower) {
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    const MachineKernel m1 = lower_kernel(k, &spec, nullptr, targets::vex1(),
                                          LowerMode::FixedScalar);
    const MachineKernel m4 = lower_kernel(k, &spec, nullptr, targets::vex4(),
                                          LowerMode::FixedScalar);
    EXPECT_GT(estimate_cycles(m1, targets::vex1()).total_cycles,
              estimate_cycles(m4, targets::vex4()).total_cycles);
}

TEST(Scheduler, RecurrenceBoundsFeedbackII) {
    // Single-block first-order feedback: y[n] = a * y[n-1] + x[n].
    // The recurrence (load y[n-1] -> mul -> add -> store y[n], distance 1)
    // must bound the II at the path latency.
    KernelBuilder b("feedback");
    const ArrayId x = b.input("x", 65, Interval(-1.0, 1.0));
    const ArrayId a = b.param("a", {0.5});
    const ArrayId y = b.output("y", 65);
    const LoopId n = b.begin_loop("n", 0, 64);
    const VarId prev = b.load(y, Affine::var(n));
    const VarId prod = b.mul(prev, b.load(a, Affine(0)));
    const VarId next = b.add(prod, b.load(x, Affine::var(n) + 1));
    b.store(y, Affine::var(n) + 1, next);
    b.end_loop();
    const Kernel k = b.take();

    FixedPointSpec spec = build_initial_spec(k, [] {
        RangeOptions options;
        options.method = RangeMethod::Auto;
        return options;
    }());
    set_uniform_wl(spec, 16);
    const TargetModel target = targets::st240();
    const MachineKernel machine =
        lower_kernel(k, &spec, nullptr, target, LowerMode::FixedScalar);
    bool recurrence_bound = false;
    for (const MachineBlock& b2 : machine.blocks) {
        if (b2.ops.empty()) continue;
        const BlockSchedule sched = schedule_block(b2, target);
        EXPECT_GE(sched.ii, std::max(sched.res_mii, sched.rec_mii));
        // load(3) + mul(3) + add(1) + store at distance 1.
        if (sched.rec_mii >= 5) recurrence_bound = true;
    }
    EXPECT_TRUE(recurrence_bound);
}

TEST(Scheduler, SoftFloatSerializes) {
    const Kernel& k = small_fir();
    const TargetModel target = targets::xentium();
    const MachineKernel machine =
        lower_kernel(k, nullptr, nullptr, target, LowerMode::Float);
    for (const MachineBlock& b : machine.blocks) {
        const BlockSchedule sched = schedule_block(b, target);
        int expected = 0;
        for (const MachOp& op : b.ops) {
            if (op.kind == MachKind::SoftFloat) expected += op.soft_cycles;
        }
        EXPECT_EQ(sched.serial_cycles, expected);
        if (expected > 0) EXPECT_GE(sched.ii, expected);
    }
}

TEST(CycleModel, TotalsAreConsistent) {
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    const TargetModel target = targets::st240();
    const MachineKernel machine =
        lower_kernel(k, &spec, nullptr, target, LowerMode::FixedScalar);
    const CycleReport report = estimate_cycles(machine, target);
    long long sum = report.loop_overhead;
    for (const auto& b : report.blocks) sum += b.total;
    EXPECT_EQ(report.total_cycles, sum);
    EXPECT_GT(report.total_cycles, 0);
}

TEST(CycleModel, ShiftHeavySpecCostsMore) {
    // A spec with many format mismatches inserts more scaling shifts and
    // must not be faster than a uniform one on a 1-wide machine.
    const Kernel& k = small_fir();
    const TargetModel target = targets::vex1();
    FixedPointSpec uniform = initial_spec(k);
    set_uniform_wl(uniform, 16);
    FixedPointSpec ragged = initial_spec(k);
    int toggle = 0;
    for (const NodeRef node : ragged.nodes()) {
        ragged.set_wl(node, (toggle++ % 2) == 0 ? 16 : 24);
    }
    const auto cu = estimate_cycles(
        lower_kernel(k, &uniform, nullptr, target, LowerMode::FixedScalar),
        target);
    const auto cr = estimate_cycles(
        lower_kernel(k, &ragged, nullptr, target, LowerMode::FixedScalar),
        target);
    EXPECT_GE(cr.total_cycles, cu.total_cycles);
}

}  // namespace
}  // namespace slpwlo
