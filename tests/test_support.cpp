// Unit tests for the support library: intervals, RNG, polynomials, text,
// dB math, kv serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "support/dbmath.hpp"
#include "support/diagnostics.hpp"
#include "support/interval.hpp"
#include "support/kv_format.hpp"
#include "support/polynomial.hpp"
#include "support/rng.hpp"
#include "support/text.hpp"

namespace slpwlo {
namespace {

// --- Interval ----------------------------------------------------------------

TEST(Interval, DefaultIsEmpty) {
    Interval iv;
    EXPECT_TRUE(iv.is_empty());
    EXPECT_EQ(iv.max_abs(), 0.0);
    EXPECT_FALSE(iv.contains(0.0));
}

TEST(Interval, PointInterval) {
    Interval iv(2.5);
    EXPECT_FALSE(iv.is_empty());
    EXPECT_EQ(iv.lo(), 2.5);
    EXPECT_EQ(iv.hi(), 2.5);
    EXPECT_TRUE(iv.contains(2.5));
    EXPECT_EQ(iv.width(), 0.0);
}

TEST(Interval, InvalidBoundsThrow) {
    EXPECT_THROW(Interval(1.0, -1.0), Error);
    EXPECT_THROW(Interval(std::nan(""), 1.0), Error);
}

TEST(Interval, HullAndIntersect) {
    const Interval a(-1.0, 2.0);
    const Interval b(1.0, 5.0);
    EXPECT_EQ(a.hull(b), Interval(-1.0, 5.0));
    EXPECT_EQ(a.intersect(b), Interval(1.0, 2.0));
    EXPECT_TRUE(Interval(3.0, 4.0).intersect(Interval(-2.0, 2.0)).is_empty());
    EXPECT_EQ(Interval::empty().hull(a), a);
}

TEST(Interval, ArithmeticBasics) {
    const Interval a(-1.0, 2.0);
    const Interval b(3.0, 4.0);
    EXPECT_EQ(a + b, Interval(2.0, 6.0));
    EXPECT_EQ(a - b, Interval(-5.0, -1.0));
    EXPECT_EQ(-a, Interval(-2.0, 1.0));
    EXPECT_EQ(a * b, Interval(-4.0, 8.0));
    EXPECT_EQ(b / Interval(2.0, 2.0), Interval(1.5, 2.0));
    EXPECT_THROW(b / a, Error);  // a contains zero
}

TEST(Interval, ScaledPow2) {
    const Interval a(-1.0, 3.0);
    EXPECT_EQ(a.scaled_pow2(2), Interval(-4.0, 12.0));
    EXPECT_EQ(a.scaled_pow2(-1), Interval(-0.5, 1.5));
}

TEST(Interval, WidenedMovesAwayFromZero) {
    const Interval a(-0.5, 2.0);
    const Interval w = a.widened(2.0);
    EXPECT_DOUBLE_EQ(w.lo(), -1.0);
    EXPECT_DOUBLE_EQ(w.hi(), 4.0);
    EXPECT_TRUE(w.contains(a));
    EXPECT_THROW(a.widened(0.5), Error);
}

/// Property: interval ops are conservative — the result of the operation on
/// sampled points is contained in the interval of the operation.
class IntervalContainment : public ::testing::TestWithParam<int> {};

TEST_P(IntervalContainment, OpsContainPointResults) {
    Rng rng(static_cast<uint64_t>(GetParam()), "interval-prop");
    for (int trial = 0; trial < 50; ++trial) {
        const double a1 = rng.uniform(-10, 10), a2 = rng.uniform(-10, 10);
        const double b1 = rng.uniform(-10, 10), b2 = rng.uniform(-10, 10);
        const Interval ia(std::min(a1, a2), std::max(a1, a2));
        const Interval ib(std::min(b1, b2), std::max(b1, b2));
        for (int s = 0; s < 8; ++s) {
            const double pa = rng.uniform(ia.lo(), ia.hi());
            const double pb = rng.uniform(ib.lo(), ib.hi());
            EXPECT_TRUE((ia + ib).contains(pa + pb));
            EXPECT_TRUE((ia - ib).contains(pa - pb));
            EXPECT_TRUE((ia * ib).contains(pa * pb));
            EXPECT_TRUE((-ia).contains(-pa));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalContainment,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- Rng -----------------------------------------------------------------------

TEST(Rng, DeterministicPerSeedAndStream) {
    Rng a(42, "stream");
    Rng b(42, "stream");
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
    Rng c(42, "other");
    Rng d(43, "stream");
    EXPECT_NE(Rng(42, "stream").next_u64(), c.next_u64());
    EXPECT_NE(Rng(42, "stream").next_u64(), d.next_u64());
}

TEST(Rng, UniformInRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
        const int k = rng.uniform_int(-3, 3);
        EXPECT_GE(k, -3);
        EXPECT_LE(k, 3);
    }
}

TEST(Rng, UniformMeanIsCentered) {
    Rng rng(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.next_double();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
    Rng rng(13);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sum_sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.1);
}

// --- Polynomial -------------------------------------------------------------

TEST(Polynomial, MulMatchesHandExpansion) {
    // (1 + 2x)(3 - x) = 3 + 5x - 2x^2
    const Polynomial p = poly_mul({1, 2}, {3, -1});
    ASSERT_EQ(p.size(), 3u);
    EXPECT_DOUBLE_EQ(p[0], 3.0);
    EXPECT_DOUBLE_EQ(p[1], 5.0);
    EXPECT_DOUBLE_EQ(p[2], -2.0);
}

TEST(Polynomial, EvalHorner) {
    const Polynomial p{1, -2, 3};  // 1 - 2x + 3x^2
    EXPECT_DOUBLE_EQ(poly_eval(p, 2.0), 1 - 4 + 12);
    EXPECT_DOUBLE_EQ(poly_eval(p, 0.0), 1.0);
}

TEST(Polynomial, ExpandBiquadsDegree) {
    const Polynomial p = expand_biquad_sections({{0.5, 0.25}, {-0.3, 0.09}});
    ASSERT_EQ(p.size(), 5u);
    EXPECT_DOUBLE_EQ(p[0], 1.0);
    // Evaluate the product directly at a point to validate the expansion.
    const double x = 0.7;
    const double direct = (1 + 0.5 * x + 0.25 * x * x) *
                          (1 - 0.3 * x + 0.09 * x * x);
    EXPECT_NEAR(poly_eval(p, x), direct, 1e-12);
}

TEST(Polynomial, L1Norm) {
    EXPECT_DOUBLE_EQ(poly_l1({1.0, -2.0, 0.5}), 3.5);
    EXPECT_DOUBLE_EQ(poly_l1({}), 0.0);
}

// --- dB math -------------------------------------------------------------------

TEST(DbMath, PowerRoundTrip) {
    for (const double db : {-60.0, -20.0, 0.0, 10.0}) {
        EXPECT_NEAR(power_to_db(db_to_power(db)), db, 1e-9);
    }
    EXPECT_EQ(power_to_db(0.0), -std::numeric_limits<double>::infinity());
}

TEST(DbMath, CeilLog2) {
    EXPECT_EQ(ceil_log2(1.0), 0);
    EXPECT_EQ(ceil_log2(1.5), 1);
    EXPECT_EQ(ceil_log2(2.0), 1);
    EXPECT_EQ(ceil_log2(2.1), 2);
    EXPECT_EQ(ceil_log2(0.5), -1);
    EXPECT_EQ(ceil_log2(0.3), -1);
    EXPECT_EQ(ceil_log2(0.25), -2);
}

TEST(DbMath, Pow2) {
    EXPECT_DOUBLE_EQ(pow2(3), 8.0);
    EXPECT_DOUBLE_EQ(pow2(-3), 0.125);
    EXPECT_DOUBLE_EQ(pow2(0), 1.0);
}

// --- text ------------------------------------------------------------------------

TEST(Text, Join) {
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Text, Pad) {
    EXPECT_EQ(pad_left("ab", 4), "  ab");
    EXPECT_EQ(pad_right("ab", 4), "ab  ");
    EXPECT_EQ(pad_left("abcdef", 4), "abcdef");
}

TEST(Text, FormatDouble) {
    EXPECT_EQ(format_double(1.5), "1.5");
    EXPECT_EQ(format_double(0.125), "0.125");
    EXPECT_EQ(format_double(1234567.0, 4), "1.235e+06");
}

TEST(Text, RenderTableAligns) {
    const std::string table =
        render_table({{"name", "value"}, {"x", "10"}, {"long-name", "2"}});
    EXPECT_TRUE(contains(table, "name"));
    EXPECT_TRUE(contains(table, "long-name"));
    // Header separator present.
    EXPECT_TRUE(contains(table, "---"));
}

TEST(Text, ReplaceAll) {
    EXPECT_EQ(replace_all("a.b.c", ".", "::"), "a::b::c");
    EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
}

// --- diagnostics ------------------------------------------------------------------

TEST(Diagnostics, CheckThrowsError) {
    EXPECT_THROW(SLPWLO_CHECK(false, "boom"), Error);
    EXPECT_NO_THROW(SLPWLO_CHECK(true, "fine"));
}

TEST(Diagnostics, AssertThrowsInternalError) {
    try {
        SLPWLO_ASSERT(1 == 2, "math broke");
        FAIL() << "expected InternalError";
    } catch (const InternalError& e) {
        EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
    }
}

TEST(Diagnostics, ParseErrorCarriesLocation) {
    const ParseError e("bad token", 3, 14);
    EXPECT_EQ(e.line(), 3);
    EXPECT_EQ(e.column(), 14);
    EXPECT_NE(std::string(e.what()).find("3:14"), std::string::npos);
}

// --- kv serialization ---------------------------------------------------------

TEST(KvFormat, WritePairRoundTripsThroughTheReader) {
    std::ostringstream os;
    kv::write_pair(os, "name", "MYDSP64");
    kv::write_pair(os, "label", "a value with spaces");
    kv::KvReader reader(os.str(), "<round-trip>");
    kv::KvLine line;
    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line.key, "name");
    EXPECT_EQ(line.value, "MYDSP64");
    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line.key, "label");
    EXPECT_EQ(line.value, "a value with spaces");
    EXPECT_FALSE(reader.next(line));
}

TEST(KvFormat, WriteRejectsValuesTheParserWouldCorrupt) {
    std::ostringstream os;
    // Regression: an embedded newline used to serialize silently and come
    // back as two lines (corrupting every container format built on the
    // line-oriented reader). It must hard-error on write instead.
    EXPECT_THROW(kv::write_pair(os, "name", "two\nlines"), Error);
    EXPECT_THROW(kv::write_pair(os, "name", "cr\rreturn"), Error);
    EXPECT_THROW(kv::write_pair(os, "name", "half # comment"), Error);
    EXPECT_THROW(kv::write_pair(os, "name", " padded "), Error);
    EXPECT_THROW(kv::check_round_trips("label", "a\nb"), Error);
    EXPECT_NO_THROW(kv::check_round_trips("label", "clean value"));
    // Keys that would not split back at the same place are rejected too.
    EXPECT_THROW(kv::write_pair(os, "", "v"), Error);
    EXPECT_THROW(kv::write_pair(os, "k=ey", "v"), Error);
    EXPECT_THROW(kv::write_pair(os, "key\nkey", "v"), Error);
    EXPECT_EQ(os.str(), "");  // nothing corrupt ever reached the stream
}

}  // namespace
}  // namespace slpwlo
