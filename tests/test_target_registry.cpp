// Target subsystem tests: the TargetRegistry, the description-file
// parser/serializer round trip, validate() hardening, derived-target
// transforms, and content-fingerprint memoization through the sweep
// layer (same-name/different-model separation, renamed-model cache hits).
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "flow/pass.hpp"
#include "flow/sweep.hpp"
#include "support/diagnostics.hpp"
#include "target/target_desc.hpp"
#include "target/target_model.hpp"
#include "target/target_registry.hpp"

namespace slpwlo {
namespace {

// --- registry ------------------------------------------------------------------

TEST(TargetRegistry, HasBuiltinsAndPresets) {
    TargetRegistry& registry = TargetRegistry::instance();
    for (const char* name : {"XENTIUM", "ST240", "VEX-1", "VEX-4",
                             "GENERIC32", "NEON128", "SSE128", "DSP64"}) {
        EXPECT_TRUE(registry.contains(name)) << name;
        EXPECT_NO_THROW(registry.get(name).validate()) << name;
    }
    // Lookup is case-insensitive and returns the registered casing.
    EXPECT_EQ(registry.get("neon128").name, "NEON128");
    EXPECT_EQ(registry.get("Vex-4").issue_width, 4);
}

TEST(TargetRegistry, PresetsMatchTheShippedDescriptions) {
    // The presets are parsed from the same text CMake embeds from
    // targets/*.target, so the registry exercises the parser at startup.
    const std::vector<TargetModel> presets = targets::preset_targets();
    ASSERT_EQ(presets.size(), 3u);
    EXPECT_EQ(presets[0].name, "NEON128");
    EXPECT_EQ(presets[0].simd_width_bits, 128);
    EXPECT_EQ(presets[1].name, "SSE128");
    EXPECT_EQ(presets[1].pack2_ops, 2);
    EXPECT_EQ(presets[2].name, "DSP64");
    EXPECT_FALSE(presets[2].fp.hardware);
    EXPECT_DOUBLE_EQ(
        presets[2].op_class_cost[static_cast<size_t>(OpClass::MulUnit)], 1.5);
}

TEST(TargetRegistry, UnknownNameListsRegisteredTargets) {
    try {
        TargetRegistry::instance().get("TPU");
        FAIL() << "expected Error";
    } catch (const Error& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("unknown target `TPU`"), std::string::npos)
            << message;
        for (const char* name : {"XENTIUM", "ST240", "NEON128", "DSP64"}) {
            EXPECT_NE(message.find(name), std::string::npos) << message;
        }
    }
    // by_name is a thin wrapper over the registry: same behavior.
    try {
        targets::by_name("TPU");
        FAIL() << "expected Error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("NEON128"), std::string::npos);
    }
}

TEST(TargetRegistry, AddRegistersAndReplaces) {
    TargetModel custom = targets::generic32();
    custom.name = "TEST-ADD";
    TargetRegistry::instance().add(custom);
    EXPECT_TRUE(TargetRegistry::instance().contains("test-add"));
    EXPECT_EQ(TargetRegistry::instance().get("TEST-ADD").issue_width, 1);

    custom.issue_width = 2;
    custom.alu_slots = 2;
    TargetRegistry::instance().add(custom);
    EXPECT_EQ(TargetRegistry::instance().get("TEST-ADD").issue_width, 2);

    // add() validates: a broken model never lands in the registry.
    TargetModel broken = custom;
    broken.name = "TEST-BROKEN";
    broken.alu_latency = 0;
    EXPECT_THROW(TargetRegistry::instance().add(broken), Error);
    EXPECT_FALSE(TargetRegistry::instance().contains("TEST-BROKEN"));
}

TEST(TargetRegistry, NamesAreSorted) {
    const std::vector<std::string> names = TargetRegistry::instance().names();
    EXPECT_GE(names.size(), 8u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

// --- description parser --------------------------------------------------------

TEST(TargetDesc, RoundTripsEveryRegisteredTarget) {
    for (const std::string& name : TargetRegistry::instance().names()) {
        const TargetModel original = TargetRegistry::instance().get(name);
        const TargetModel reparsed =
            parse_target_description(target_description(original), name);
        EXPECT_EQ(reparsed.name, original.name);
        EXPECT_EQ(target_fingerprint(reparsed), target_fingerprint(original))
            << name;
    }
}

TEST(TargetDesc, ParsesListsCommentsAndWhitespace) {
    const TargetModel model = parse_target_description(
        "# leading comment\n"
        "name = SPACED   \n"
        "\n"
        "  scalar_wls = 32 16 8   # space-separated works too\n"
        "  simd_width_bits = 32\n"
        "  simd_element_wls = 16,8\n"
        "  op_cost.mul = 2.0\n");
    EXPECT_EQ(model.name, "SPACED");
    EXPECT_EQ(model.scalar_wls, (std::vector<int>{32, 16, 8}));
    EXPECT_EQ(model.simd_element_wls, (std::vector<int>{16, 8}));
    EXPECT_DOUBLE_EQ(model.relative_op_cost(OpKind::Mul, 32), 2.0);
    EXPECT_DOUBLE_EQ(model.relative_op_cost(OpKind::Add, 32), 1.0);
}

TEST(TargetDesc, RejectsMalformedInputWithPositions) {
    const auto expect_error = [](const std::string& text,
                                 const std::string& needle) {
        try {
            parse_target_description(text, "desc");
            FAIL() << "expected Error for: " << text;
        } catch (const Error& e) {
            EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
                << e.what();
        }
    };
    expect_error("name = X\nbogus_key = 1\n", "desc:2: unknown key");
    expect_error("name = X\nissue_width = fast\n", "not an integer");
    expect_error("name = X\nbarrel_shifter = maybe\n", "expected true/false");
    expect_error("name = X\nop_cost.simd = 1\n", "unknown op class");
    expect_error("name = X\nname = Y\n", "duplicate key");
    expect_error("name = X\nno equals sign\n", "desc:2: expected");
    expect_error("issue_width = 2\n", "no `name` key");
    // validate() failures carry the source name too.
    expect_error("name = X\nalu_latency = 0\n", "desc: ");
}

TEST(TargetDesc, LoadsFromFile) {
    const std::string path =
        ::testing::TempDir() + "slpwlo_test_target.target";
    {
        std::ofstream out(path);
        out << "name = FROMFILE\n"
            << "issue_width = 2\n"
            << "alu_slots = 2\n"
            << "simd_width_bits = 64\n"
            << "simd_element_wls = 32, 16, 8\n"
            << "scalar_wls = 32, 16, 8\n";
    }
    const TargetModel model = load_target_description(path);
    EXPECT_EQ(model.name, "FROMFILE");
    EXPECT_EQ(model.simd_width_bits, 64);
    EXPECT_EQ(model.max_group_size(), 8);

    EXPECT_THROW(load_target_description(path + ".does-not-exist"), Error);
}

// --- validate() hardening ------------------------------------------------------

TEST(TargetModel, ValidateRejectsInconsistentModels) {
    const auto expect_invalid = [](void (*doctor)(TargetModel&),
                                   const std::string& needle) {
        TargetModel model = targets::st240();
        doctor(model);
        try {
            model.validate();
            FAIL() << "expected Error containing: " << needle;
        } catch (const Error& e) {
            EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
                << e.what();
        }
    };
    expect_invalid([](TargetModel& t) { t.scalar_wls = {8, 16, 32}; },
                   "strictly descending");
    expect_invalid([](TargetModel& t) { t.scalar_wls = {32, 16, 16}; },
                   "strictly descending");
    expect_invalid([](TargetModel& t) { t.simd_element_wls = {8, 16}; },
                   "strictly descending");
    // No element width divides the datapath.
    expect_invalid([](TargetModel& t) { t.simd_element_wls = {12}; },
                   "divide the datapath");
    // Elements divide but never into >= 2 lanes (32-bit datapath, 32-bit
    // elements only): no equation-1 group exists.
    expect_invalid([](TargetModel& t) { t.simd_element_wls = {32}; },
                   ">= 2 lanes");
    expect_invalid([](TargetModel& t) { t.alu_latency = 0; },
                   "latencies must be positive");
    expect_invalid([](TargetModel& t) { t.mul_latency = -3; },
                   "latencies must be positive");
    expect_invalid([](TargetModel& t) { t.mem_latency = 0; },
                   "latencies must be positive");
    expect_invalid(
        [](TargetModel& t) {
            t.op_class_cost[static_cast<size_t>(OpClass::Alu)] = 0.0;
        },
        "cost weights must be positive");
    expect_invalid(
        [](TargetModel& t) {
            t.op_class_cost[static_cast<size_t>(OpClass::Mem)] = -1.0;
        },
        "cost weights must be positive");

    // Elements wider than native_wl are lane containers, not scalar
    // storage: a 128-bit datapath with 2x64 configurations (the NEON128
    // and SSE128 presets) is consistent.
    TargetModel wide = targets::st240();
    wide.simd_width_bits = 128;
    wide.simd_element_wls = {64, 32, 16, 8};
    EXPECT_NO_THROW(wide.validate());
    EXPECT_TRUE(wide.supports_group_size(2));  // 2x64 seeds pairwise SLP
}

// --- derived-target transforms -------------------------------------------------

TEST(TargetModel, WithSimdWidthDerivesValidatedVariants) {
    const TargetModel neon = targets::by_name("NEON128");
    EXPECT_TRUE(neon.can_derive_simd_width(64));
    EXPECT_TRUE(neon.can_derive_simd_width(0));
    EXPECT_FALSE(neon.can_derive_simd_width(8));   // narrowest element is 8
    EXPECT_FALSE(neon.can_derive_simd_width(-1));

    const TargetModel narrow = neon.with_simd_width(64);
    EXPECT_EQ(narrow.name, "NEON128@simd64");
    EXPECT_EQ(narrow.simd_width_bits, 64);
    EXPECT_EQ(narrow.simd_element_wls, (std::vector<int>{32, 16, 8}));
    EXPECT_EQ(narrow.issue_width, neon.issue_width);

    // Element widths that stop fitting are dropped: a 16-bit datapath
    // keeps only the 8-bit lanes.
    const TargetModel tiny = neon.with_simd_width(16);
    EXPECT_EQ(tiny.simd_element_wls, (std::vector<int>{8}));

    const TargetModel scalar = neon.with_simd_width(0);
    EXPECT_EQ(scalar.simd_width_bits, 0);
    EXPECT_TRUE(scalar.simd_element_wls.empty());
    EXPECT_EQ(scalar.max_group_size(), 1);

    // XENTIUM only implements 16-bit elements: no width under 32 works.
    EXPECT_THROW(targets::xentium().with_simd_width(24), Error);
    EXPECT_THROW(targets::xentium().with_simd_width(16), Error);
}

TEST(TargetModel, WithSimdWidthErrorNamesTheInfeasibleElement) {
    // The failure message must say which element cannot pair at the new
    // width and why, not just that validation failed.
    try {
        targets::xentium().with_simd_width(24);  // 24 % 16 != 0
        FAIL() << "expected Error";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("element 16 bits"), std::string::npos) << what;
        EXPECT_NE(what.find("does not divide 24"), std::string::npos) << what;
    }
    try {
        targets::xentium().with_simd_width(16);  // one 16-bit lane only
        FAIL() << "expected Error";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("element 16 bits"), std::string::npos) << what;
        EXPECT_NE(what.find("yields only 1 lane"), std::string::npos) << what;
    }
}

TEST(TargetModel, LaneFeasibilityQueries) {
    // DSP64: 64-bit datapath, elements {32, 16, 8} -> k in {2, 4, 8}.
    const TargetModel dsp = targets::by_name("DSP64");
    EXPECT_EQ(dsp.feasible_group_sizes(), (std::vector<int>{2, 4, 8}));
    EXPECT_EQ(dsp.min_group_size(), 2);
    EXPECT_EQ(dsp.realization_group_size(2), 2);
    EXPECT_EQ(dsp.realization_group_size(3), std::nullopt);  // 3, 6, 12...
    EXPECT_TRUE(dsp.fusion_can_reach(4));

    // DSP64@simd128 keeps {32, 16, 8} -> k in {4, 8, 16}: the cliff.
    const TargetModel cliff = dsp.with_simd_width(128);
    EXPECT_FALSE(cliff.supports_group_size(2));
    EXPECT_EQ(cliff.feasible_group_sizes(), (std::vector<int>{4, 8, 16}));
    EXPECT_EQ(cliff.min_group_size(), 4);
    // Width 2 is virtual: it realizes by doubling into the 4-lane config.
    EXPECT_EQ(cliff.realization_group_size(2), 4);
    EXPECT_TRUE(cliff.fusion_can_reach(2));
    EXPECT_EQ(cliff.realized_element_wl(2), 32);
    EXPECT_EQ(cliff.realized_element_wl(4), 32);
    EXPECT_EQ(cliff.realization_group_size(32), std::nullopt);

    // No SIMD at all: nothing is feasible or reachable.
    const TargetModel scalar = targets::generic32();
    EXPECT_TRUE(scalar.feasible_group_sizes().empty());
    EXPECT_EQ(scalar.min_group_size(), 1);
    EXPECT_FALSE(scalar.fusion_can_reach(2));
}

TEST(TargetModel, WithElementWlsDerivesValidatedVariants) {
    const TargetModel st = targets::st240();
    const TargetModel only16 = st.with_element_wls({16});
    EXPECT_EQ(only16.name, "ST240@e16");
    EXPECT_EQ(only16.max_group_size(), 2);
    EXPECT_TRUE(only16.supports_group_size(2));
    EXPECT_FALSE(only16.supports_group_size(4));

    // The variant is validated like any other model.
    EXPECT_THROW(st.with_element_wls({12}), Error);
    EXPECT_THROW(st.with_element_wls({8, 16}), Error);
}

TEST(TargetModel, OpClassCostScalesRelativeCost) {
    TargetModel dsp = targets::by_name("DSP64");
    // The shipped DSP64 preset prices multiplies at 1.5 ALU ops.
    EXPECT_DOUBLE_EQ(dsp.relative_op_cost(OpKind::Mul, 32), 1.5);
    EXPECT_DOUBLE_EQ(dsp.relative_op_cost(OpKind::Mul, 16), 0.75);
    EXPECT_DOUBLE_EQ(dsp.relative_op_cost(OpKind::Add, 32), 1.0);
    EXPECT_DOUBLE_EQ(dsp.relative_op_cost(OpKind::Load, 32), 1.0);
    EXPECT_EQ(op_class_for(OpKind::Mul), OpClass::MulUnit);
    EXPECT_EQ(op_class_for(OpKind::Div), OpClass::MulUnit);
    EXPECT_EQ(op_class_for(OpKind::Load), OpClass::Mem);
    EXPECT_EQ(op_class_for(OpKind::Store), OpClass::Mem);
    EXPECT_EQ(op_class_for(OpKind::Add), OpClass::Alu);
}

// --- content fingerprints ------------------------------------------------------

TEST(TargetFingerprint, NameFreeContentIdentity) {
    const TargetModel base = targets::xentium();

    // Renaming does not change the fingerprint (identical models under
    // different names share evaluation cache entries)...
    TargetModel renamed = base;
    renamed.name = "XENTIUM-CLONE";
    EXPECT_EQ(target_fingerprint(base), target_fingerprint(renamed));

    // ...and every semantic field changes it (same-name models with
    // different parameters never collide).
    TargetModel wider = base;
    wider.simd_width_bits = 64;
    EXPECT_NE(target_fingerprint(base), target_fingerprint(wider));

    TargetModel priced = base;
    priced.op_class_cost[static_cast<size_t>(OpClass::MulUnit)] = 2.0;
    EXPECT_NE(target_fingerprint(base), target_fingerprint(priced));

    TargetModel slower = base;
    slower.mul_latency = 5;
    EXPECT_NE(target_fingerprint(base), target_fingerprint(slower));
}

// --- sweep integration ---------------------------------------------------------

TEST(TargetSweep, SameNameDifferentModelsNeverShareCacheEntries) {
    // Two points whose targets share the label "CLASH" but are different
    // machines: a scalar one and a SIMD one. If evaluation were keyed by
    // name the second point would replay the first's cached cycles.
    TargetModel scalar = targets::generic32();
    scalar.name = "CLASH";
    TargetModel simd = targets::st240();
    simd.name = "CLASH";

    SweepOptions options;
    options.threads = 1;
    SweepDriver driver(options);
    const std::vector<SweepResult> results =
        driver.run({SweepPoint{"FIR", "CLASH", "WLO-SLP", -30.0, {}, scalar},
                    SweepPoint{"FIR", "CLASH", "WLO-SLP", -30.0, {}, simd}});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].flow.target_name, "CLASH");
    EXPECT_EQ(results[1].flow.target_name, "CLASH");
    EXPECT_NE(results[0].flow.target_fp, results[1].flow.target_fp);
    EXPECT_EQ(results[0].flow.group_count, 0);  // scalar machine: no SLP
    EXPECT_GT(results[1].flow.group_count, 0);
    EXPECT_NE(results[0].flow.simd_cycles, results[1].flow.simd_cycles);
    const SweepCacheStats stats = driver.cache_stats();
    EXPECT_EQ(stats.eval_hits, 0u);
    EXPECT_EQ(stats.eval_entries, 2u);
}

TEST(TargetSweep, RenamedIdenticalModelHitsTheCache) {
    TargetModel original = targets::xentium();
    TargetModel renamed = original;
    renamed.name = "XENTIUM-UNDER-ANOTHER-NAME";

    SweepOptions options;
    options.threads = 1;
    SweepDriver driver(options);
    const std::vector<SweepResult> first = driver.run(
        {SweepPoint{"FIR", original.name, "WLO-SLP", -30.0, {}, original}});
    const size_t hits_before = driver.cache_stats().eval_hits;
    const std::vector<SweepResult> second = driver.run(
        {SweepPoint{"FIR", renamed.name, "WLO-SLP", -30.0, {}, renamed}});
    EXPECT_GT(driver.cache_stats().eval_hits, hits_before);
    EXPECT_EQ(first[0].flow.target_fp, second[0].flow.target_fp);
    EXPECT_EQ(first[0].flow.scalar_cycles, second[0].flow.scalar_cycles);
    EXPECT_EQ(first[0].flow.simd_cycles, second[0].flow.simd_cycles);
    EXPECT_NE(first[0].flow.target_name, second[0].flow.target_name);
}

TEST(TargetSweep, WidthAxisGridAcrossRegistryAndFileTargets) {
    // The acceptance grid: one kernel x three registry targets (one of
    // them loaded from a description file) x a SIMD-width axis,
    // bit-identical at 1 vs 4 threads.
    const std::string path =
        ::testing::TempDir() + "slpwlo_sweep_target.target";
    {
        std::ofstream out(path);
        out << "name = FILEDSP\n"
            << "issue_width = 2\n"
            << "alu_slots = 2\n"
            << "scalar_wls = 32, 16, 8\n"
            << "simd_width_bits = 64\n"
            << "simd_element_wls = 32, 16, 8\n"
            << "op_cost.mul = 1.25\n";
    }
    TargetRegistry::instance().add(load_target_description(path));

    const std::vector<SweepPoint> points = SweepDriver::grid(
        {"FIR"}, {"XENTIUM", "NEON128", "FILEDSP"}, {0, 64},
        {"WLO-SLP"}, {-25.0, -45.0});
    ASSERT_EQ(points.size(), 12u);
    // Width 0 keeps the base model; width 64 derives a renamed variant
    // carried as a per-point override.
    EXPECT_EQ(points[0].target, "XENTIUM");
    EXPECT_EQ(points[2].target, "XENTIUM@simd64");
    ASSERT_TRUE(points[2].target_model.has_value());
    EXPECT_EQ(points[2].target_model->simd_width_bits, 64);

    SweepOptions serial_options;
    serial_options.threads = 1;
    SweepDriver serial(serial_options);
    const std::vector<SweepResult> serial_results = serial.run(points);

    SweepOptions parallel_options;
    parallel_options.threads = 4;
    SweepDriver parallel(parallel_options);
    const std::vector<SweepResult> parallel_results = parallel.run(points);

    ASSERT_EQ(serial_results.size(), parallel_results.size());
    for (size_t i = 0; i < serial_results.size(); ++i) {
        const FlowResult& a = serial_results[i].flow;
        const FlowResult& b = parallel_results[i].flow;
        EXPECT_EQ(a.target_name, b.target_name);
        EXPECT_EQ(a.target_fp, b.target_fp);
        EXPECT_EQ(a.scalar_cycles, b.scalar_cycles);
        EXPECT_EQ(a.simd_cycles, b.simd_cycles);
        EXPECT_EQ(a.group_count, b.group_count);
        EXPECT_EQ(a.analytic_noise_db, b.analytic_noise_db);
        for (const NodeRef node : a.spec.nodes()) {
            EXPECT_EQ(a.spec.format(node), b.spec.format(node));
        }
    }
    // The FILEDSP width-64 variant re-derives the same machine as the
    // base (64 == its native datapath minus the name): same fingerprint,
    // so the two rows share cached evaluations instead of recomputing.
    const uint64_t file_fp = target_fingerprint(targets::by_name("FILEDSP"));
    const uint64_t derived_fp = target_fingerprint(
        targets::by_name("FILEDSP").with_simd_width(64));
    EXPECT_EQ(file_fp, derived_fp);
}

TEST(TargetSweep, OverrideModelsAreValidatedBeforeRunning) {
    TargetModel broken = targets::xentium();
    broken.scalar_wls = {8, 16, 32};
    SweepDriver driver;
    EXPECT_THROW(
        driver.run({SweepPoint{"FIR", "X", "WLO-SLP", -20.0, {}, broken}}),
        Error);
}

}  // namespace
}  // namespace slpwlo
