// Tests for the SLP substrate: packed view, candidates, conflicts,
// economics, extraction engine and the plain (WLO-First) extractor.
#include <gtest/gtest.h>

#include "slp/plain_extractor.hpp"
#include "support/diagnostics.hpp"
#include "target/target_model.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

using ::slpwlo::testing::initial_spec;
using ::slpwlo::testing::set_uniform_wl;
using ::slpwlo::testing::small_fir;

BlockId hot_block(const Kernel& k) {
    BlockId best = k.blocks_in_order().front();
    for (const BlockId b : k.blocks_in_order()) {
        if (k.block_frequency(b) > k.block_frequency(best)) best = b;
    }
    return best;
}

// --- PackedView ---------------------------------------------------------------

TEST(PackedView, InitialNodesAreScalar) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    EXPECT_EQ(view.size(), 16);  // 4 lanes x (2 loads + mul + add)
    for (int i = 0; i < view.size(); ++i) {
        EXPECT_EQ(view.width(i), 1);
    }
    EXPECT_TRUE(view.groups().empty());
}

TEST(PackedView, FuseCreatesWiderNodes) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    // Find two independent muls.
    std::vector<int> muls;
    for (int i = 0; i < view.size(); ++i) {
        if (view.kind(i) == OpKind::Mul) muls.push_back(i);
    }
    ASSERT_GE(muls.size(), 2u);
    ASSERT_TRUE(view.independent(muls[0], muls[1]));
    view.fuse({{muls[0], muls[1]}});
    EXPECT_EQ(view.size(), 15);
    const auto groups = view.groups();
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].width(), 2);
}

TEST(PackedView, DependenceThroughLanes) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    // The add consuming a mul's result depends on it; fusing keeps that.
    int mul = -1, add = -1;
    for (int i = 0; i < view.size(); ++i) {
        if (view.kind(i) == OpKind::Mul && mul < 0) mul = i;
        if (view.kind(i) == OpKind::Add && add < 0) add = i;
    }
    ASSERT_GE(mul, 0);
    ASSERT_GE(add, 0);
    EXPECT_TRUE(view.depends(add, mul) || view.independent(add, mul));
}

TEST(PackedView, SelfAccumulatorHasExternalUses) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    for (int i = 0; i < view.size(); ++i) {
        if (view.kind(i) == OpKind::Add) {
            // acc feeds the reduction in another block.
            EXPECT_TRUE(view.has_external_uses(view.node(i).lanes[0]));
        }
    }
}

TEST(PackedView, IncrementalDepsMatchFullRebuild) {
    // fuse/split maintain the node dependence matrix incrementally; every
    // intermediate state must match the from-scratch recomputation bit
    // for bit.
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));

    const auto check = [&](const std::string& stage) {
        const auto full = view.full_node_deps();
        for (int i = 0; i < view.size(); ++i) {
            for (int j = 0; j < view.size(); ++j) {
                if (i == j) continue;
                ASSERT_EQ(view.depends(i, j), full[i][j])
                    << stage << ": nodes (" << i << ", " << j << ")";
            }
        }
    };
    check("initial");

    // Greedy rounds of same-kind equal-width pair fusion: round 1 builds
    // 2-lane groups, round 2 widens to 4, exercising multi-lane unions.
    for (int round = 0; round < 3; ++round) {
        std::vector<std::vector<int>> tuples;
        std::vector<bool> used(static_cast<size_t>(view.size()), false);
        for (int i = 0; i < view.size(); ++i) {
            if (used[static_cast<size_t>(i)]) continue;
            for (int j = i + 1; j < view.size(); ++j) {
                if (used[static_cast<size_t>(j)]) continue;
                if (view.kind(i) != view.kind(j)) continue;
                if (view.width(i) != view.width(j)) continue;
                if (!view.independent(i, j)) continue;
                tuples.push_back({i, j});
                used[static_cast<size_t>(i)] = true;
                used[static_cast<size_t>(j)] = true;
                break;
            }
        }
        if (tuples.empty()) break;
        view.fuse(tuples);
        check("after fuse round " + std::to_string(round));
    }
    ASSERT_FALSE(view.groups().empty());

    // Split half the groups (narrowing only the affected rows/columns),
    // then the rest (back to the all-scalar view).
    std::vector<int> wide;
    for (int i = 0; i < view.size(); ++i) {
        if (view.width(i) >= 2) wide.push_back(i);
    }
    std::vector<int> first_half(wide.begin(),
                                wide.begin() + (wide.size() + 1) / 2);
    view.split_to_scalars(first_half);
    check("after partial split");

    wide.clear();
    for (int i = 0; i < view.size(); ++i) {
        if (view.width(i) >= 2) wide.push_back(i);
    }
    view.split_to_scalars(wide);
    check("after full split");
    for (int i = 0; i < view.size(); ++i) {
        EXPECT_EQ(view.width(i), 1);
    }
}

// --- candidates -----------------------------------------------------------------

TEST(Candidates, IsomorphismRules) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    const TargetModel target = targets::xentium();
    const auto candidates = extract_candidates(view, target);
    EXPECT_FALSE(candidates.empty());
    for (const Candidate& c : candidates) {
        EXPECT_EQ(view.kind(c.nodes.front()), view.kind(c.nodes.back()));
        EXPECT_TRUE(view.independent(c.nodes.front(), c.nodes.back()));
        if (view.kind(c.nodes.front()) == OpKind::Load) {
            EXPECT_EQ(k.op(view.node(c.nodes.front()).lanes[0]).array,
                      k.op(view.node(c.nodes.back()).lanes[0]).array);
        }
    }
}

TEST(Candidates, NoneWithoutSimd) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    const auto candidates =
        extract_candidates(view, targets::generic32());
    EXPECT_TRUE(candidates.empty());
}

TEST(Candidates, AdjacentLoadsOrientedAscending) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    const auto candidates = extract_candidates(view, targets::xentium());
    for (const Candidate& c : candidates) {
        if (view.kind(c.nodes.front()) != OpKind::Load) continue;
        const auto diff =
            k.op(view.node(c.nodes.back()).lanes[0])
                .index.constant_difference(k.op(view.node(c.nodes.front()).lanes[0]).index);
        if (diff.has_value() && std::abs(*diff) == 1) {
            // Oriented so the pair is ascending-adjacent.
            EXPECT_EQ(*diff, 1);
        }
    }
}

// --- conflicts -------------------------------------------------------------------

TEST(Conflicts, SharedNodeConflicts) {
    const Candidate c1{1, 2}, c2{2, 3}, c3{4, 5};
    EXPECT_TRUE(shares_node(c1, c2));
    EXPECT_FALSE(shares_node(c1, c3));
}

TEST(Conflicts, DetectedSetIsSymmetric) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    const auto candidates = extract_candidates(view, targets::xentium());
    const ConflictSet conflicts =
        detect_structural_conflicts(view, candidates);
    for (size_t i = 0; i < candidates.size(); ++i) {
        EXPECT_FALSE(conflicts.conflict(i, i));
        for (size_t j = 0; j < candidates.size(); ++j) {
            EXPECT_EQ(conflicts.conflict(i, j), conflicts.conflict(j, i));
        }
    }
}

TEST(Conflicts, CyclicDependencyCase) {
    // a -> b and c -> d with cross dependencies: groups {a,d} and {b,c}
    // would deadlock.
    KernelBuilder b("cycle");
    const ArrayId x = b.input("x", 8, Interval(-1.0, 1.0));
    const ArrayId y = b.output("y", 4);
    const LoopId n = b.begin_loop("n", 0, 4);
    const VarId a1 = b.load(x, Affine::var(n));        // 0
    const VarId a2 = b.load(x, Affine::var(n) + 4);    // 1
    const VarId m1 = b.mul(a1, a1);                    // 2
    const VarId m2 = b.mul(a2, m1);                    // 3: depends on m1
    const VarId m3 = b.mul(a1, m2);                    // 4: depends on m2
    b.store(y, Affine::var(n), b.add(m3, m2));
    b.end_loop();
    const Kernel k = b.take();
    PackedView view(k, k.blocks_in_order()[0]);
    // Candidate {2,4} x candidate {3, anything 3 depends on / that depends
    // on it} — verify the primitive directly: {m1,m3} and a singleton pair
    // containing m2 on both sides is impossible, so check cross deps.
    EXPECT_TRUE(view.depends(4, 3));
    EXPECT_TRUE(view.depends(3, 2));
    const Candidate g1{2, 4};
    // g1 is NOT a legal candidate (m3 depends on m1 transitively).
    EXPECT_FALSE(view.independent(2, 4));
    (void)g1;
}

// --- economics --------------------------------------------------------------------

TEST(Economics, AdjacentLoadPairIsCheap) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    const TargetModel target = targets::xentium();
    const auto candidates = extract_candidates(view, target);
    bool found_cheap_load = false;
    for (const Candidate& c : candidates) {
        if (view.kind(c.nodes.front()) != OpKind::Load) continue;
        const Economics econ = evaluate_candidate(view, candidates, c, target);
        if (lanes_memory_adjacent(view, fused_lanes(view, c))) {
            EXPECT_EQ(econ.pack_cost, 0.0);
            found_cheap_load = true;
        } else {
            EXPECT_GT(econ.pack_cost, 0.0);
        }
    }
    EXPECT_TRUE(found_cheap_load);
}

TEST(Economics, SelfAccumulationCountsAsReuse) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    const TargetModel target = targets::xentium();
    const auto candidates = extract_candidates(view, target);
    for (const Candidate& c : candidates) {
        if (view.kind(c.nodes.front()) != OpKind::Add) continue;
        const Economics econ = evaluate_candidate(view, candidates, c, target);
        EXPECT_GE(econ.reuse, 1.0);  // acc operand is a held vector register
    }
}

TEST(Economics, BenefitModes) {
    Economics econ;
    econ.reuse = 2.0;
    econ.pack_cost = 1.0;
    econ.saved_ops = 1.0;
    EXPECT_DOUBLE_EQ(benefit_score(econ, BenefitMode::ReuseOverCost), 1.5);
    EXPECT_DOUBLE_EQ(benefit_score(econ, BenefitMode::SavingsOnly), 1.0);
}

// --- extraction ------------------------------------------------------------------

TEST(Extraction, FirPairsEverythingOn2x16) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    SlpStats stats;
    const auto groups =
        extract_slp_plain(view, targets::xentium(), spec, {}, &stats);
    // 2 load pairs x2, 2 mul pairs, 2 add pairs = 8 groups of width 2.
    EXPECT_EQ(groups.size(), 8u);
    for (const SimdGroup& g : groups) {
        EXPECT_EQ(g.width(), 2);
    }
    EXPECT_GE(stats.rounds, 1);
    EXPECT_EQ(stats.selected, 8);
}

TEST(Extraction, WidensTo4On8BitCapableTarget) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 8);
    const auto groups = extract_slp_plain(view, targets::vex4(), spec, {});
    bool found_quad = false;
    for (const SimdGroup& g : groups) {
        if (g.width() == 4) found_quad = true;
    }
    EXPECT_TRUE(found_quad);
}

TEST(Extraction, EqualWlRuleBlocksMixedGroups) {
    const Kernel& k = small_fir();
    PackedView view(k, hot_block(k));
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    // Make one mul temporary 32-bit: its pair partner stays 16.
    for (const auto& op : k.ops()) {
        if (op.kind == OpKind::Mul) {
            spec.set_wl(NodeRef::of_var(op.dest), 32);
            break;
        }
    }
    const auto groups = extract_slp_plain(view, targets::xentium(), spec, {});
    for (const SimdGroup& g : groups) {
        const int wl = spec.result_format(g.lanes[0]).wl();
        for (const OpId lane : g.lanes) {
            EXPECT_EQ(spec.result_format(lane).wl(), wl);
        }
    }
}

TEST(Extraction, SelectionIsDeterministic) {
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    std::vector<std::vector<SimdGroup>> runs;
    for (int r = 0; r < 3; ++r) {
        PackedView view(k, hot_block(k));
        runs.push_back(extract_slp_plain(view, targets::xentium(), spec, {}));
    }
    for (size_t r = 1; r < runs.size(); ++r) {
        ASSERT_EQ(runs[r].size(), runs[0].size());
        for (size_t g = 0; g < runs[0].size(); ++g) {
            EXPECT_EQ(runs[r][g].lanes, runs[0][g].lanes);
        }
    }
}

TEST(Extraction, GroupsAreDisjointAndIndependent) {
    // Property: no op appears in two groups.
    for (const Kernel* k :
         {&small_fir(), &::slpwlo::testing::small_conv()}) {
        PackedView view(*k, hot_block(*k));
        FixedPointSpec spec = initial_spec(*k);
        set_uniform_wl(spec, 16);
        const auto groups = extract_slp_plain(view, targets::vex4(), spec, {});
        std::set<int32_t> seen;
        for (const SimdGroup& g : groups) {
            for (const OpId lane : g.lanes) {
                EXPECT_TRUE(seen.insert(lane.index()).second)
                    << "op in two groups";
            }
        }
    }
}

}  // namespace
}  // namespace slpwlo
