// Tests for the KernelRegistry: built-in parity with the direct builders,
// name resolution, idempotent/conflicting registration, and the name-free
// content fingerprint.
#include <gtest/gtest.h>

#include <algorithm>

#include "frontend/kernel_file.hpp"
#include "ir/printer.hpp"
#include "kernels/kernel_registry.hpp"
#include "kernels/kernels.hpp"
#include "support/diagnostics.hpp"
#include "flow/sweep.hpp"
#include "target/target_model.hpp"

namespace slpwlo {
namespace {

TEST(KernelRegistry, BuiltinsMatchDirectBuilders) {
    // The registry wrapper must hand out exactly what the builders make —
    // same printed IR, same range method — so every pinned sweep
    // fingerprint survives the refactor bit for bit.
    const auto expect_same = [](const std::string& name, const Kernel& direct,
                                RangeMethod method) {
        const kernels::BenchmarkKernel bench =
            kernels::make_benchmark_kernel(name);
        EXPECT_EQ(bench.name, name);
        EXPECT_EQ(print_kernel(bench.kernel), print_kernel(direct));
        EXPECT_EQ(bench.range_options.method, method);
    };
    expect_same("FIR", kernels::make_fir64(), RangeMethod::Interval);
    expect_same("IIR", kernels::make_iir10(), RangeMethod::Simulation);
    expect_same("CONV", kernels::make_conv3x3(), RangeMethod::Interval);
    expect_same("DOT", kernels::make_dot(), RangeMethod::Interval);
}

TEST(KernelRegistry, LookupIsCaseInsensitive) {
    const kernels::BenchmarkKernel upper =
        kernels::make_benchmark_kernel("FIR");
    const kernels::BenchmarkKernel lower =
        kernels::make_benchmark_kernel("fir");
    EXPECT_EQ(print_kernel(upper.kernel), print_kernel(lower.kernel));
    EXPECT_TRUE(kernels::KernelRegistry::instance().contains("FiR"));
}

TEST(KernelRegistry, UnknownNameListsRegisteredSorted) {
    try {
        kernels::make_benchmark_kernel("NOPE");
        FAIL() << "expected Error";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("unknown benchmark kernel `NOPE`"),
                  std::string::npos)
            << what;
        // The built-ins appear in sorted order within the listing.
        const size_t conv = what.find("CONV");
        const size_t dot = what.find("DOT");
        const size_t fir = what.find("FIR");
        const size_t iir = what.find("IIR");
        ASSERT_NE(conv, std::string::npos) << what;
        EXPECT_LT(conv, dot);
        EXPECT_LT(dot, fir);
        EXPECT_LT(fir, iir);
    }
}

TEST(KernelRegistry, NamesAreSortedAndContainBuiltins) {
    const std::vector<std::string> names =
        kernels::KernelRegistry::instance().names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    for (const char* builtin : {"CONV", "DOT", "FIR", "IIR"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), builtin),
                  names.end())
            << builtin;
    }
}

TEST(KernelRegistry, ReRegisteringIdenticalContentIsANoOp) {
    const std::string source =
        "kernel reg_idem {\n"
        "  input x[4] range(-1.0, 1.0);\n"
        "  output y[4];\n"
        "  loop n = 0..4 { y[n] = x[n] * 0.5; }\n"
        "}\n";
    const std::string name = frontend::register_kernel_source(source);
    EXPECT_EQ(name, "reg_idem");
    // Same content again: silently accepted (the manifest path registers
    // the same kernel once per point).
    EXPECT_EQ(frontend::register_kernel_source(source), "reg_idem");
    // Comments and blank lines do not change content identity.
    EXPECT_EQ(frontend::register_kernel_source("# a comment\n\n" + source),
              "reg_idem");
}

TEST(KernelRegistry, ConflictingContentUnderOneNameThrows) {
    const std::string a =
        "kernel reg_clash { output y[1]; y[0] = 0.25; }\n";
    const std::string b =
        "kernel reg_clash { output y[1]; y[0] = 0.75; }\n";
    EXPECT_EQ(frontend::register_kernel_source(a), "reg_clash");
    try {
        frontend::register_kernel_source(b);
        FAIL() << "expected Error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("already registered"),
                  std::string::npos)
            << e.what();
    }
}

TEST(KernelRegistry, FingerprintIsNameFreeButContentSensitive) {
    // Two kernels that differ only in name hash identically; changing a
    // coefficient (or the range method) moves the fingerprint.
    const auto fingerprint = [](const std::string& source) {
        return kernels::benchmark_kernel_fingerprint(
            frontend::compile_benchmark_source(source));
    };
    const std::string body =
        " { input x[4] range(-1.0, 1.0); output y[4]; "
        "loop n = 0..4 { y[n] = x[n] * 0.5; } }";
    EXPECT_EQ(fingerprint("kernel fp_a" + body),
              fingerprint("kernel fp_b" + body));
    const std::string other =
        " { input x[4] range(-1.0, 1.0); output y[4]; "
        "loop n = 0..4 { y[n] = x[n] * 0.25; } }";
    EXPECT_NE(fingerprint("kernel fp_a" + body),
              fingerprint("kernel fp_a" + other));
    EXPECT_NE(fingerprint("kernel fp_a" + body),
              fingerprint("kernel fp_a { range simulation;" + body.substr(2)));
}

TEST(KernelRegistry, RegisteredEntryKeepsCanonicalSource) {
    const std::string source = "# banner\n\nkernel reg_canon {\n"
                               "  output y[1];\n  y[0] = 0.5;\n}\n";
    frontend::register_kernel_source(source);
    const kernels::KernelEntry entry =
        kernels::KernelRegistry::instance().entry("reg_canon");
    EXPECT_EQ(entry.dsl_source, frontend::canonical_kernel_source(source));
    EXPECT_EQ(entry.fingerprint,
              kernels::benchmark_kernel_fingerprint(entry.bench));
    // Built-ins are builder-made: no DSL source to embed.
    EXPECT_TRUE(
        kernels::KernelRegistry::instance().entry("FIR").dsl_source.empty());
}

TEST(KernelRegistry, FileKernelRunsThroughSweepByName) {
    // The point of the registry: once registered, a DSL kernel is a
    // first-class sweep axis value, indistinguishable from a built-in.
    frontend::register_kernel_source(
        "kernel reg_sweep {\n"
        "  input x[11] range(-1.0, 1.0);\n"
        "  param c[4] = { 0.5, -0.25, 0.125, 0.0625 };\n"
        "  output y[8];\n"
        "  var acc;\n"
        "  loop n = 0..8 {\n"
        "    acc = 0.0;\n"
        "    loop k = 0..4 unroll 2 { acc = acc + c[k] * x[n + k]; }\n"
        "    y[n] = acc;\n"
        "  }\n"
        "}\n");
    SweepDriver driver;
    const std::vector<SweepResult> results = driver.run(SweepDriver::grid(
        {"reg_sweep"}, {"XENTIUM"}, {"WLO-SLP"}, {-30.0}));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].flow.kernel_name, "reg_sweep");
    EXPECT_GT(results[0].flow.simd_cycles, 0);
    EXPECT_LE(results[0].flow.analytic_noise_db, -30.0 + 1e-9);
}

}  // namespace
}  // namespace slpwlo
