// Tests for the accuracy model: noise-source enumeration, gain calibration,
// and agreement between the analytical evaluator and bit-accurate simulation.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "accuracy/analytic_evaluator.hpp"
#include "accuracy/sim_evaluator.hpp"
#include "sim/fixed_sim.hpp"
#include "support/dbmath.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

using ::slpwlo::testing::cached_evaluator;
using ::slpwlo::testing::initial_spec;
using ::slpwlo::testing::make_two_tap;
using ::slpwlo::testing::set_uniform_wl;
using ::slpwlo::testing::small_conv;
using ::slpwlo::testing::small_fir;
using ::slpwlo::testing::small_iir;

// --- noise-source enumeration ---------------------------------------------------

TEST(NoiseSources, WideSpecHasOnlyContinuousSources) {
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    // Give everything the same generous fwl: no discrete narrowing remains
    // except input/coefficient quantization (and mul full-product drops).
    for (const NodeRef node : spec.nodes()) {
        spec.set_format(node, FixedFormat(spec.format(node).iwl, 20));
    }
    const auto def_nodes = compute_var_def_nodes(k);
    const auto sources = enumerate_noise_sources(k, spec, def_nodes);
    bool has_input = false, has_coeff = false, has_mul = false;
    for (const auto& s : sources) {
        if (std::string(s.why) == "input quantization") has_input = true;
        if (std::string(s.why) == "coefficient quantization") has_coeff = true;
        if (std::string(s.why) == "mul result") has_mul = true;
        EXPECT_NE(std::string(s.why), "align arg0");  // fwls are uniform
    }
    EXPECT_TRUE(has_input);
    EXPECT_TRUE(has_coeff);
    EXPECT_TRUE(has_mul);  // products drop from fwl 40 to 20
}

TEST(NoiseSources, AlignmentAppearsWhenFwlsDiffer) {
    const Kernel k = make_two_tap();
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    // Make one product wider than the sum -> alignment shift at the add.
    const auto def_nodes = compute_var_def_nodes(k);
    // Find the add op and give its first operand's node a bigger fwl.
    for (const auto& op : k.ops()) {
        if (op.kind == OpKind::Add) {
            const NodeRef src = def_nodes[op.args[0].index()];
            spec.set_format(src, FixedFormat(spec.format(src).iwl, 24));
        }
    }
    const auto sources = enumerate_noise_sources(k, spec, def_nodes);
    bool found_align = false;
    for (const auto& s : sources) {
        if (std::string(s.why) == "align arg0") found_align = true;
    }
    EXPECT_TRUE(found_align);
}

TEST(NoiseSources, ConstErrorIsExactAndDeterministic) {
    KernelBuilder b("const_noise");
    const ArrayId y = b.output("y", 4);
    const LoopId n = b.begin_loop("n", 0, 4);
    const VarId c = b.set_const(b.user_var("c"), 0.3);  // not a dyadic value
    b.store(y, Affine::var(n), c);
    b.end_loop();
    const Kernel k = b.take();

    FixedPointSpec spec(k);
    spec.set_format(NodeRef::of_var(c), FixedFormat(1, 4));
    spec.set_format(NodeRef::of_array(y), FixedFormat(1, 4));
    const auto sources =
        enumerate_noise_sources(k, spec, compute_var_def_nodes(k));
    ASSERT_EQ(sources.size(), 1u);
    EXPECT_EQ(std::string(sources[0].why), "const literal");
    EXPECT_NEAR(sources[0].stats.mean,
                quantize_value(0.3, 4, QuantMode::Truncate) - 0.3, 1e-12);
    EXPECT_EQ(sources[0].stats.variance, 0.0);
}

TEST(NoiseSources, ZeroConstIsNoiseless) {
    const Kernel& k = small_fir();  // accumulators initialized to 0.0
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 8);
    const auto sources =
        enumerate_noise_sources(k, spec, compute_var_def_nodes(k));
    for (const auto& s : sources) {
        EXPECT_NE(std::string(s.why), "const literal");
    }
}

// --- gain calibration ------------------------------------------------------------

TEST(Gains, TwoTapHandComputed) {
    const Kernel k = make_two_tap(0.5, 0.25);
    const KernelGains gains = analyze_gains(k);

    // Store op: unit gain, one instance per sample.
    // Muls: unit gain into the output through the add.
    for (size_t i = 0; i < k.ops().size(); ++i) {
        const Op& op = k.ops()[i];
        if (op.kind == OpKind::Store || op.kind == OpKind::Mul ||
            op.kind == OpKind::Add) {
            EXPECT_NEAR(gains.op_gains[i].a, 1.0, 1e-6) << to_string(op.kind);
            EXPECT_NEAR(gains.op_gains[i].b, 1.0, 1e-6);
        }
    }
    // Input array: A = c0^2 + c1^2, B = c0 + c1.
    EXPECT_NEAR(gains.array_gains[0].a, 0.25 + 0.0625, 1e-6);
    EXPECT_NEAR(gains.array_gains[0].b, 0.75, 1e-6);
}

TEST(Gains, FirInputGainMatchesCoefficientEnergy) {
    const Kernel& k = small_fir();
    const KernelGains& gains = cached_evaluator(k).gains();
    const auto& c = k.array(ArrayId(1)).values;
    double energy = 0.0, dc = 0.0;
    for (const double v : c) {
        energy += v * v;
        dc += v;
    }
    EXPECT_NEAR(gains.array_gains[0].a, energy, energy * 0.02);
    EXPECT_NEAR(gains.array_gains[0].b, dc, 0.02);
}

TEST(Gains, FirMulGainCountsInstances) {
    // Each static mul op runs taps/lanes times per sample, each instance
    // reaching the output with unit gain: A = taps/lanes.
    const Kernel& k = small_fir();
    const KernelGains& gains = cached_evaluator(k).gains();
    const int expected = 16 / 4;
    for (size_t i = 0; i < k.ops().size(); ++i) {
        if (k.ops()[i].kind == OpKind::Mul) {
            EXPECT_NEAR(gains.op_gains[i].a, expected, expected * 0.01);
            EXPECT_NEAR(gains.op_gains[i].b, expected, expected * 0.01);
        }
    }
}

TEST(Gains, IirFeedbackAmplifiesStoreGain) {
    // In an IIR, noise injected at the output store recirculates: its L2
    // gain must exceed the feed-forward-only value of 1.
    const Kernel& k = small_iir();
    const KernelGains& gains = cached_evaluator(k).gains();
    for (size_t i = 0; i < k.ops().size(); ++i) {
        if (k.ops()[i].kind == OpKind::Store) {
            EXPECT_GT(gains.op_gains[i].a, 1.2);
        }
    }
}

TEST(Gains, ConvGainsAreLocal) {
    // No feedback: the store gain is exactly 1.
    const Kernel& k = small_conv();
    const KernelGains& gains = cached_evaluator(k).gains();
    for (size_t i = 0; i < k.ops().size(); ++i) {
        if (k.ops()[i].kind == OpKind::Store) {
            EXPECT_NEAR(gains.op_gains[i].a, 1.0, 0.01);
        }
    }
}

// --- analytic vs simulated ------------------------------------------------------

struct AgreementCase {
    const char* name;
    const Kernel* kernel;
    int wl;
    double tolerance_db;
};

class AnalyticMatchesSimulation
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(AnalyticMatchesSimulation, WithinTolerance) {
    const auto [name, wl] = GetParam();
    const bool is_iir = std::string(name) == "iir";
    const Kernel& k = std::string(name) == "fir" ? small_fir()
                      : is_iir                   ? small_iir()
                                                 : small_conv();
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, wl);

    const double analytic = cached_evaluator(k).noise_power_db(spec);
    const SimulationEvaluator sim(k, 2);
    const double simulated = sim.noise_power_db(spec);

    // The analytical model is a statistical approximation; 3 dB agreement is
    // the standard bar for this class of estimator. Exception: recursive
    // kernels under very coarse quantization (q comparable to the signal)
    // violate the white-noise assumption — truncation errors correlate with
    // the signal and recirculate coherently — so the linear model
    // underestimates there (a known limitation it shares with the paper's
    // analytical evaluator [11]). We then only require the analytic value to
    // be a sane, non-overestimating bound.
    if (is_iir && wl < 14) {
        EXPECT_LT(analytic, simulated + 3.0);
        EXPECT_NEAR(analytic, simulated, 12.0)
            << name << " wl=" << wl;
    } else {
        EXPECT_NEAR(analytic, simulated, 3.0)
            << name << " wl=" << wl << " analytic=" << analytic
            << " simulated=" << simulated;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, AnalyticMatchesSimulation,
    ::testing::Combine(::testing::Values("fir", "iir", "conv"),
                       ::testing::Values(8, 10, 12, 16, 20)));

TEST(Analytic, MixedSpecAgreesToo) {
    // Non-uniform word lengths (the WLO's actual working regime).
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    Rng rng(123, "mixed-spec");
    for (const NodeRef node : spec.nodes()) {
        spec.set_wl(node, rng.uniform_int(10, 20));
    }
    const double analytic = cached_evaluator(k).noise_power_db(spec);
    const SimulationEvaluator sim(k, 2);
    EXPECT_NEAR(analytic, sim.noise_power_db(spec), 3.5);
}

TEST(Analytic, MonotoneInWordLength) {
    // Property: growing any single node's WL does not materially increase
    // noise power. (Strict monotonicity can be broken by truncation-bias
    // cancellation between sources with opposite DC gains, so a small
    // relative slack is allowed.)
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 12);
    const AnalyticEvaluator& eval = cached_evaluator(k);
    const double base = eval.noise_power(spec);
    for (const NodeRef node : spec.nodes()) {
        const auto cp = spec.checkpoint();
        spec.set_wl(node, 16);
        EXPECT_LE(eval.noise_power(spec), base * 1.15);
        spec.revert(cp);
    }
}

TEST(Analytic, PerNodeWideningIsBoundedAbove) {
    // Per-node monotonicity is genuinely false in fixed-point systems:
    // widening one node makes every consumer re-truncate (new alignment
    // sources appear at its fan-out), which can raise total noise slightly.
    // The property that does hold: the increase is bounded — each consumer
    // adds at most one quantization step of noise at its own resolution, so
    // the node-local move can never blow the budget by a large factor.
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    spec.set_quant_mode(QuantMode::Round);
    set_uniform_wl(spec, 12);
    const AnalyticEvaluator& eval = cached_evaluator(k);
    const double base = eval.noise_power(spec);
    for (const NodeRef node : spec.nodes()) {
        const auto cp = spec.checkpoint();
        spec.set_wl(node, 16);
        EXPECT_LE(eval.noise_power(spec), base * 1.25);
        spec.revert(cp);
    }
}

TEST(Analytic, MonotoneWhenAllNodesWiden) {
    // Widening every node at once must strictly reduce noise power.
    const Kernel& k = small_fir();
    const AnalyticEvaluator& eval = cached_evaluator(k);
    double previous = std::numeric_limits<double>::infinity();
    for (const int wl : {8, 10, 12, 16, 20, 24}) {
        FixedPointSpec spec = initial_spec(k);
        set_uniform_wl(spec, wl);
        const double power = eval.noise_power(spec);
        EXPECT_LT(power, previous) << "wl=" << wl;
        previous = power;
    }
}

TEST(Analytic, EvaluatorIsFast) {
    // EVALACC must be usable inside O(n^2) conflict loops: demand at least
    // ~10k evaluations per second (typically far more).
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    const AnalyticEvaluator& eval = cached_evaluator(k);
    const auto start = std::chrono::steady_clock::now();
    double acc = 0.0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) acc += eval.noise_power(spec);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_GT(acc, 0.0);
    EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 0.5)
        << "2000 EVALACC calls took too long";
}

TEST(Analytic, ViolatesChecksDbThreshold) {
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 12);
    const AnalyticEvaluator& eval = cached_evaluator(k);
    const double level = eval.noise_power_db(spec);
    EXPECT_TRUE(eval.violates(spec, level - 5.0));
    EXPECT_FALSE(eval.violates(spec, level + 5.0));
}

TEST(Analytic, RoundModeBeatsTruncation) {
    const Kernel& k = small_fir();
    FixedPointSpec trunc = initial_spec(k);
    set_uniform_wl(trunc, 12);
    FixedPointSpec round = trunc;
    round.set_quant_mode(QuantMode::Round);
    const AnalyticEvaluator& eval = cached_evaluator(k);
    EXPECT_LT(eval.noise_power(round), eval.noise_power(trunc));
}

}  // namespace
}  // namespace slpwlo
