// Tests for the exact-optimization subsystem (src/solver): the 0/1 ILP
// branch-and-bound core against brute force, exact word-length
// optimization against an exhaustive oracle, the optimal flows
// (WLO-Optimal, SLP-Optimal) and their gap invariants, and the
// heuristic/optimal sweep axis (spelling errors, memo isolation,
// resolution to the exact flows).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "accuracy/analytic_evaluator.hpp"
#include "core/wl_cost_model.hpp"
#include "flow/flow.hpp"
#include "flow/pass.hpp"
#include "flow/report.hpp"
#include "flow/sweep.hpp"
#include "solver/bnb.hpp"
#include "solver/wlo_exact.hpp"
#include "support/diagnostics.hpp"
#include "target/target_model.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

using namespace slpwlo::solver;
using ::slpwlo::testing::cached_evaluator;
using ::slpwlo::testing::initial_spec;
using ::slpwlo::testing::small_fir;

// --- branch-and-bound core -----------------------------------------------------

TEST(Bnb, SolvesPairwiseExclusionModelExactly) {
    // The shape every solver model in this repo has: pairwise exclusions.
    // Optimum: pick 5 over 4, 3 over 2, and the free 1.
    BnbProblem problem;
    problem.weights = {5.0, 4.0, 3.0, 2.0, 1.0};
    problem.constraints.push_back(BnbConstraint{{{0, 1.0}, {1, 1.0}}, 1.0});
    problem.constraints.push_back(BnbConstraint{{{2, 1.0}, {3, 1.0}}, 1.0});
    const BnbResult result = solve_bnb(problem);
    EXPECT_TRUE(result.stats.proven_optimal);
    ASSERT_TRUE(result.stats.has_incumbent);
    EXPECT_DOUBLE_EQ(result.stats.best_objective, 9.0);
    EXPECT_EQ(result.assignment, (std::vector<char>{1, 0, 1, 0, 1}));
}

TEST(Bnb, MinimizeSenseSelectsNegativeWeights) {
    BnbProblem problem;
    problem.sense = BnbProblem::Sense::Minimize;
    problem.weights = {2.0, -3.0, 1.0, -0.5};
    const BnbResult result = solve_bnb(problem);
    EXPECT_TRUE(result.stats.proven_optimal);
    EXPECT_DOUBLE_EQ(result.stats.best_objective, -3.5);
    EXPECT_EQ(result.assignment, (std::vector<char>{0, 1, 0, 1}));
}

/// Exhaustive reference: best objective over all 2^n assignments that
/// satisfy every constraint.
double brute_force(const BnbProblem& problem) {
    const size_t n = problem.weights.size();
    const bool maximize = problem.sense == BnbProblem::Sense::Maximize;
    double best = maximize ? -std::numeric_limits<double>::infinity()
                           : std::numeric_limits<double>::infinity();
    for (size_t mask = 0; mask < (size_t(1) << n); ++mask) {
        bool feasible = true;
        for (const BnbConstraint& c : problem.constraints) {
            double lhs = 0.0;
            for (const auto& [var, coeff] : c.terms) {
                if ((mask >> var) & 1) lhs += coeff;
            }
            if (lhs > c.rhs + 1e-12) {
                feasible = false;
                break;
            }
        }
        if (!feasible) continue;
        double value = 0.0;
        for (size_t i = 0; i < n; ++i) {
            if ((mask >> i) & 1) value += problem.weights[i];
        }
        best = maximize ? std::max(best, value) : std::min(best, value);
    }
    return best;
}

TEST(Bnb, MatchesBruteForceOnMixedSignInstances) {
    // Deterministic pseudo-random instances (fixed LCG): mixed-sign
    // weights, random pairwise exclusions, both senses.
    uint64_t state = 0x5eed;
    const auto next = [&state]() {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    };
    for (int trial = 0; trial < 24; ++trial) {
        const size_t n = 2 + next() % 9;  // 2..10 variables
        BnbProblem problem;
        problem.sense = (trial % 2 == 0) ? BnbProblem::Sense::Maximize
                                         : BnbProblem::Sense::Minimize;
        for (size_t i = 0; i < n; ++i) {
            problem.weights.push_back(
                (static_cast<double>(next() % 41) - 20.0) / 4.0);
        }
        for (size_t i = 0; i < n; ++i) {
            for (size_t j = i + 1; j < n; ++j) {
                if (next() % 3 == 0) {
                    problem.constraints.push_back(BnbConstraint{
                        {{static_cast<int>(i), 1.0},
                         {static_cast<int>(j), 1.0}},
                        1.0});
                }
            }
        }
        const BnbResult result = solve_bnb(problem);
        EXPECT_TRUE(result.stats.proven_optimal) << "trial " << trial;
        ASSERT_TRUE(result.stats.has_incumbent) << "trial " << trial;
        EXPECT_NEAR(result.stats.best_objective, brute_force(problem), 1e-9)
            << "trial " << trial;

        // Determinism: the same problem expands the same tree.
        const BnbResult replay = solve_bnb(problem);
        EXPECT_EQ(replay.stats.nodes, result.stats.nodes);
        EXPECT_EQ(replay.assignment, result.assignment);
    }
}

TEST(Bnb, BudgetExhaustionKeepsSeededIncumbentUnproven) {
    BnbProblem problem;
    for (int i = 0; i < 24; ++i) {
        problem.weights.push_back(1.0 + 0.01 * i);
    }
    BnbOptions options;
    options.budget.max_nodes = 3;
    std::vector<char> seed(24, 0);
    seed[0] = 1;
    const BnbResult result = solve_bnb(problem, options, {}, &seed);
    EXPECT_FALSE(result.stats.proven_optimal);
    ASSERT_TRUE(result.stats.has_incumbent);
    // Anytime contract: never worse than the seed, never past the budget.
    EXPECT_GE(result.stats.best_objective, 1.0 - 1e-12);
    EXPECT_LE(result.stats.nodes, 3);
}

TEST(Bnb, HookVetoExcludesBranchAndUnfixNestsLifo) {
    BnbProblem problem;
    problem.weights = {5.0, 3.0, 2.0};
    std::vector<int> stack;
    BnbHooks hooks;
    hooks.on_fix = [&stack](int var) {
        if (var == 0) return false;  // veto the heaviest variable outright
        stack.push_back(var);
        return true;
    };
    hooks.on_unfix = [&stack](int var) {
        ASSERT_FALSE(stack.empty());
        EXPECT_EQ(stack.back(), var);
        stack.pop_back();
    };
    const BnbResult result = solve_bnb(problem, {}, hooks);
    // Exact with respect to the hook: optimal over admitted solutions.
    EXPECT_TRUE(result.stats.proven_optimal);
    EXPECT_DOUBLE_EQ(result.stats.best_objective, 5.0);
    EXPECT_EQ(result.assignment, (std::vector<char>{0, 1, 1}));
    EXPECT_TRUE(stack.empty());  // every fix was unwound
}

// --- exact word-length optimization --------------------------------------------

TEST(WloExact, NeverWorseThanTabuAndMeetsConstraint) {
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    const TargetModel target = targets::xentium();
    const WloExactResult out =
        run_wlo_exact(spec, cached_evaluator(k), target, -30.0);
    EXPECT_EQ(out.heuristic_cost, out.tabu.best_cost);  // tabu seeds
    EXPECT_LE(out.best_cost, out.heuristic_cost + 1e-9);
    EXPECT_LE(cached_evaluator(k).noise_power_db(spec), -30.0 + 1e-9);
    // The spec left behind is the incumbent the stats describe.
    EXPECT_DOUBLE_EQ(WlCostModel(k, target).cost(spec), out.best_cost);
}

TEST(WloExact, MatchesExhaustiveOracleOnTinyKernel) {
    const Kernel k = ::slpwlo::testing::make_two_tap();
    const AnalyticEvaluator evaluator(k);
    // Two supported WLs keep the full space enumerable: 2^nodes specs.
    TargetModel target = targets::xentium();
    target.scalar_wls = {32, 16};
    const double accuracy = -25.0;

    FixedPointSpec spec = initial_spec(k);
    const WloExactResult out = run_wlo_exact(spec, evaluator, target, accuracy);
    ASSERT_TRUE(out.solve.proven_optimal);

    const WlCostModel model(k, target);
    FixedPointSpec probe = initial_spec(k);
    const std::vector<NodeRef> nodes = probe.nodes();
    ASSERT_LE(nodes.size(), 16u) << "oracle enumeration would be too large";
    double oracle = std::numeric_limits<double>::infinity();
    for (size_t mask = 0; mask < (size_t(1) << nodes.size()); ++mask) {
        for (size_t i = 0; i < nodes.size(); ++i) {
            probe.set_wl(nodes[i], ((mask >> i) & 1) != 0 ? 16 : 32);
        }
        if (evaluator.noise_power_db(probe) > accuracy) continue;
        oracle = std::min(oracle, model.cost(probe));
    }
    ASSERT_TRUE(std::isfinite(oracle));
    EXPECT_NEAR(out.best_cost, oracle, 1e-9);
    EXPECT_DOUBLE_EQ(model.cost(spec), out.best_cost);
}

// --- the optimal flows ---------------------------------------------------------

TEST(OptimalFlows, RegisteredAndResolvedFromOptimizerAxis) {
    FlowRegistry& registry = FlowRegistry::instance();
    EXPECT_TRUE(registry.contains("WLO-Optimal"));
    EXPECT_TRUE(registry.contains("SLP-Optimal"));
    EXPECT_EQ(optimal_flow_for("WLO-SLP"), "SLP-Optimal");
    EXPECT_EQ(optimal_flow_for("WLO-First"), "WLO-Optimal");
    // Flows with no exact counterpart resolve to themselves.
    EXPECT_EQ(optimal_flow_for("Float"), "Float");
    EXPECT_EQ(optimal_flow_for("WLO-Optimal"), "WLO-Optimal");
}

TEST(OptimalFlows, OptimizerSpellingErrorsListValidValues) {
    EXPECT_EQ(to_string(optimizer_from_string("heuristic")), "heuristic");
    EXPECT_EQ(to_string(optimizer_from_string("optimal")), "optimal");
    try {
        optimizer_from_string("optimla");
        FAIL() << "expected Error for unknown optimizer";
    } catch (const Error& e) {
        const std::string message = e.what();
        // The misspelling is echoed and the valid values are listed, in
        // sorted order, so the fix is visible in the error itself.
        EXPECT_NE(message.find("optimla"), std::string::npos) << message;
        const size_t heuristic = message.find("heuristic");
        const size_t optimal = message.find("optimal");
        ASSERT_NE(heuristic, std::string::npos) << message;
        ASSERT_NE(optimal, std::string::npos) << message;
        EXPECT_LT(heuristic, optimal) << message;
    }
}

TEST(OptimalFlows, WloOptimalNeverWorseThanWloFirst) {
    FlowOptions options;
    options.accuracy_db = -30.0;
    const KernelContext context(small_fir());
    const TargetModel target = targets::xentium();
    const FlowResult exact =
        FlowRegistry::instance().flow("WLO-Optimal").run(context, target,
                                                         options);
    const FlowResult heuristic =
        FlowRegistry::instance().flow("WLO-First").run(context, target,
                                                       options);
    ASSERT_TRUE(exact.solver_stats.ran);
    EXPECT_FALSE(heuristic.solver_stats.ran);
    // The heuristic objective is exactly the Tabu incumbent WLO-First
    // reports, and the exact search can only improve on it.
    EXPECT_EQ(exact.solver_stats.heuristic_objective,
              heuristic.tabu_stats.best_cost);
    EXPECT_LE(exact.solver_stats.best_objective,
              exact.solver_stats.heuristic_objective + 1e-9);
    EXPECT_GE(exact.solver_stats.gap, -1e-9);
    EXPECT_LE(exact.analytic_noise_db, -30.0 + 1e-9);
}

TEST(OptimalFlows, SlpOptimalProvesOptimalityOnRegistryKernels) {
    // The acceptance bar: SLP-Optimal proves per-round optimality on all
    // four registry kernels for a shipped target within default budget.
    SweepOptions sweep_options;
    sweep_options.threads = 2;
    SweepDriver driver(sweep_options);
    const std::vector<SweepResult> results = driver.run(
        SweepDriver::grid({"FIR", "IIR", "CONV", "DOT"}, {"XENTIUM"},
                          {"SLP-Optimal"}, {-30.0}));
    ASSERT_EQ(results.size(), 4u);
    for (const SweepResult& result : results) {
        const SolverStats& stats = result.flow.solver_stats;
        EXPECT_TRUE(stats.ran) << result.point.kernel;
        EXPECT_TRUE(stats.proven_optimal) << result.point.kernel;
        EXPECT_GE(stats.best_objective, stats.heuristic_objective - 1e-9)
            << result.point.kernel;
        EXPECT_GE(stats.gap, -1e-9) << result.point.kernel;
        EXPECT_LE(result.flow.analytic_noise_db, -30.0 + 1e-9)
            << result.point.kernel;
    }
}

// --- the heuristic/optimal sweep axis ------------------------------------------

TEST(OptimalFlows, OptimizerAxisResolvesToExactFlows) {
    // `--optimizer optimal` over the heuristic flow names must produce
    // the same rows as naming the exact flows directly.
    SweepOptions axis_options;
    axis_options.threads = 1;
    axis_options.flow_options.solver.optimizer = Optimizer::Optimal;
    SweepDriver axis(axis_options);
    const std::vector<SweepResult> via_axis = axis.run(
        SweepDriver::grid({"FIR"}, {"XENTIUM"}, {"WLO-First"}, {-25.0}));

    SweepOptions direct_options;
    direct_options.threads = 1;
    SweepDriver direct(direct_options);
    const std::vector<SweepResult> named = direct.run(
        SweepDriver::grid({"FIR"}, {"XENTIUM"}, {"WLO-Optimal"}, {-25.0}));

    ASSERT_EQ(via_axis.size(), 1u);
    ASSERT_EQ(named.size(), 1u);
    EXPECT_EQ(via_axis[0].flow.flow_name, "WLO-Optimal");
    EXPECT_EQ(to_json(via_axis[0].flow), to_json(named[0].flow));
    EXPECT_TRUE(via_axis[0].flow.solver_stats.ran);
}

TEST(OptimalFlows, StageMemoKeyIsolatesOptimizerChoice) {
    const KernelContext context(small_fir());
    const TargetModel target = targets::xentium();
    FlowOptions heuristic;
    FlowOptions optimal;
    optimal.solver.optimizer = Optimizer::Optimal;
    // A heuristic sweep must never serve a memoized optimal stage (or
    // vice versa), and the budget is part of the identity too: a bigger
    // budget can change the incumbent.
    EXPECT_NE(stage_memo_key(context, target, "WLO-SLP", heuristic),
              stage_memo_key(context, target, "WLO-SLP", optimal));
    FlowOptions bigger = optimal;
    bigger.solver.budget.max_nodes += 1;
    EXPECT_NE(stage_memo_key(context, target, "WLO-SLP", optimal),
              stage_memo_key(context, target, "WLO-SLP", bigger));
    FlowOptions longer = optimal;
    longer.solver.budget.max_millis = 1000;
    EXPECT_NE(stage_memo_key(context, target, "WLO-SLP", optimal),
              stage_memo_key(context, target, "WLO-SLP", longer));
}

TEST(OptimalFlows, MemoizedOptimalSweepReproducesSolverStats) {
    const std::vector<SweepPoint> points = SweepDriver::grid(
        {"FIR"}, {"XENTIUM"}, {"SLP-Optimal"}, {-25.0});
    SweepOptions options;
    options.threads = 1;
    SweepDriver driver(options);
    const std::vector<SweepResult> cold = driver.run(points);
    const std::vector<SweepResult> warm = driver.run(points);
    ASSERT_EQ(cold.size(), 1u);
    ASSERT_EQ(warm.size(), 1u);
    EXPECT_GT(driver.cache_stats().eval_hits, 0u);
    ASSERT_TRUE(cold[0].flow.solver_stats.ran);
    ASSERT_TRUE(warm[0].flow.solver_stats.ran);
    // The memoized run reports the cold run's solver stats bit for bit
    // (they are part of the stage entry, not recomputed).
    const SolverStats& a = cold[0].flow.solver_stats;
    const SolverStats& b = warm[0].flow.solver_stats;
    EXPECT_EQ(a.nodes, b.nodes);
    EXPECT_EQ(a.solves, b.solves);
    EXPECT_EQ(a.proven_optimal, b.proven_optimal);
    EXPECT_EQ(a.heuristic_objective, b.heuristic_objective);
    EXPECT_EQ(a.best_objective, b.best_objective);
    EXPECT_EQ(a.gap, b.gap);
    EXPECT_EQ(to_json(cold[0].flow), to_json(warm[0].flow));
}

TEST(OptimalFlows, SolverStatsLandInMeasuredReportsOnly) {
    FlowOptions options;
    options.accuracy_db = -25.0;
    const KernelContext context(small_fir());
    FlowResult result = FlowRegistry::instance()
                            .flow("WLO-Optimal")
                            .run(context, targets::xentium(), options);
    ASSERT_TRUE(result.solver_stats.ran);
    // Identity bytes (the cross-shard byte-compare surface) exclude the
    // solver block; the measured report carries it.
    EXPECT_EQ(to_json(result).find("\"solver\""), std::string::npos);
    const std::string measured = to_json(result, /*include_measured=*/true);
    EXPECT_NE(measured.find("\"solver\":{\"nodes\":"), std::string::npos);
    EXPECT_NE(measured.find("\"proven_optimal\":"), std::string::npos);
    EXPECT_NE(measured.find("\"gap\":"), std::string::npos);
}

}  // namespace
}  // namespace slpwlo
