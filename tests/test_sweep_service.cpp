// SweepService and the WorkSource seam: VectorSource/PlanSource
// equivalence with SweepDriver::run, lease directory round trips, expiry
// re-issue with duplicate-row resolution, and in-process elastic runs
// byte-identical to the single-process report (flow/work_source.hpp,
// dist/lease_coordinator.hpp).
#include <gtest/gtest.h>

#include <stdlib.h>

#include <chrono>
#include <filesystem>
#include <thread>

#include "dist/lease_coordinator.hpp"
#include "dist/shard_manifest.hpp"
#include "dist/shard_merger.hpp"
#include "dist/shard_plan.hpp"
#include "dist/shard_runner.hpp"
#include "flow/work_source.hpp"
#include "support/diagnostics.hpp"
#include "target/target_model.hpp"

namespace slpwlo {
namespace {

using namespace slpwlo::dist;
namespace fs = std::filesystem;

std::vector<SweepPoint> tiny_grid() {
    return SweepDriver::grid({"FIR"}, {"XENTIUM"}, {"WLO-SLP"},
                             {-20.0, -30.0});
}

/// The single-process reference bytes every other execution shape must
/// reproduce exactly.
std::string reference_json(const std::vector<SweepPoint>& grid) {
    SweepOptions options;
    options.threads = 2;
    SweepDriver driver(options);
    return sweep_to_json(driver.run(grid));
}

ShardManifest whole_grid_manifest(const std::vector<SweepPoint>& grid) {
    const std::vector<ShardPlan> plans =
        make_shard_plans(grid, 1, ShardStrategy::RoundRobin);
    return parse_shard_manifest(shard_manifest_text(plans[0]), "<test>");
}

/// A scoped temporary directory for lease tests.
struct TempDir {
    TempDir() {
        char tmpl[] = "/tmp/slpwlo_lease.XXXXXX";
        const char* created = mkdtemp(tmpl);
        SLPWLO_CHECK(created != nullptr, "mkdtemp failed");
        path = created;
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string sub(const std::string& name) const { return path + "/" + name; }
    std::string path;
};

/// Run one lease's points on `driver` and package the rows the way
/// SweepService::drain does.
std::vector<WorkRow> run_lease(SweepDriver& driver, const Lease& lease) {
    std::vector<long long> micros;
    std::vector<SweepResult> results = driver.run_timed(lease.points, &micros);
    std::vector<WorkRow> rows;
    rows.reserve(results.size());
    for (size_t i = 0; i < results.size(); ++i) {
        rows.push_back(WorkRow{std::move(results[i]), micros[i]});
    }
    return rows;
}

// --- VectorSource mechanics ----------------------------------------------------

TEST(VectorSource, AcquireCompleteAbandonRoundTrip) {
    std::vector<SweepPoint> grid = tiny_grid();
    grid.push_back(grid.front());  // 3 points
    VectorSource source(grid);
    EXPECT_EQ(source.total_slots(), 3u);

    // Bounded acquires hand out ascending slots.
    Lease first = source.acquire(2);
    ASSERT_EQ(first.slots, (std::vector<size_t>{0, 1}));
    Lease second = source.acquire(0);
    ASSERT_EQ(second.slots, (std::vector<size_t>{2}));
    EXPECT_TRUE(source.acquire(0).empty());

    // Abandoned slots come back first.
    source.abandon(first);
    Lease retry = source.acquire(0);
    ASSERT_EQ(retry.slots, (std::vector<size_t>{0, 1}));

    SweepDriver driver;
    source.complete(retry, run_lease(driver, retry));
    source.complete(second, run_lease(driver, second));
    const std::vector<SweepResult> results = source.take_results();
    ASSERT_EQ(results.size(), 3u);
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].point.accuracy_db, grid[i].accuracy_db);
    }
}

TEST(VectorSource, IncompleteDrainThrows) {
    VectorSource source(tiny_grid());
    Lease lease = source.acquire(1);
    SweepDriver driver;
    source.complete(lease, run_lease(driver, lease));
    EXPECT_THROW(source.take_results(), Error);  // slot 1 never completed
}

// --- SweepService equivalence --------------------------------------------------

TEST(SweepService, ChunkedVectorSourceMatchesDriverRunBytes) {
    const std::vector<SweepPoint> grid = tiny_grid();
    const std::string reference = reference_json(grid);

    // One point per lease, single-threaded: maximally different execution
    // shape from the one-pool-run reference, identical bytes required.
    VectorSource source(grid);
    SweepService service(ExecOptions{});
    EXPECT_EQ(service.drain(source, 1), grid.size());
    EXPECT_EQ(sweep_to_json(source.take_results()), reference);
}

TEST(SweepService, PlanSourceMatchesDriverRunBytes) {
    const std::vector<SweepPoint> grid = tiny_grid();
    const std::string reference = reference_json(grid);

    const std::vector<ShardPlan> plans =
        make_shard_plans(grid, 2, ShardStrategy::RoundRobin);
    std::vector<ShardResultsFile> files;
    for (const ShardPlan& plan : plans) {
        const ShardManifest manifest =
            parse_shard_manifest(shard_manifest_text(plan), "<test>");
        PlanSource source(manifest);
        SweepService service(ExecOptions{});
        service.drain(source, 1);
        PlanSource::Output out = source.take();
        EXPECT_EQ(out.sweep.size(), plan.points.size());
        files.push_back(std::move(out.results));
    }
    EXPECT_EQ(merge_shard_results(files), reference);
}

TEST(SweepService, RunShardStillMatchesReferenceSlice) {
    // dist::run_shard is now a PlanSource + SweepService wrapper; its rows
    // must still be the exact reference slice (the pre-redesign contract).
    const std::vector<SweepPoint> grid = tiny_grid();
    const std::string reference = reference_json(grid);

    const std::vector<ShardPlan> plans =
        make_shard_plans(grid, 2, ShardStrategy::CostBalanced);
    std::vector<ShardResultsFile> files;
    for (const ShardPlan& plan : plans) {
        const ShardManifest manifest =
            parse_shard_manifest(shard_manifest_text(plan), "<test>");
        files.push_back(run_shard(manifest).results);
    }
    EXPECT_EQ(merge_shard_results(files), reference);
}

// --- estimate_point_cost width awareness ---------------------------------------

TEST(PointCost, SeesTargetModelOverrides) {
    SweepPoint base{"FIR", "XENTIUM", "WLO-SLP", -30.0, {}, {}};
    SweepPoint embedded = base;
    embedded.target_model = targets::xentium();
    SweepPoint wide = base;
    wide.target_model = targets::xentium().with_simd_width(64);

    // A width-derived model admits more lanes and must cost more than its
    // base; an un-embedded point stays at the neutral weight.
    EXPECT_GT(estimate_point_cost(wide), estimate_point_cost(embedded));
    EXPECT_GT(estimate_point_cost(embedded), estimate_point_cost(base));

    // The Float reference skips the SLP machinery: width is free there.
    SweepPoint float_base = base;
    float_base.flow = "Float";
    SweepPoint float_wide = float_base;
    float_wide.target_model = wide.target_model;
    EXPECT_EQ(estimate_point_cost(float_base),
              estimate_point_cost(float_wide));
}

// --- merge duplicate policy ----------------------------------------------------

TEST(MergePolicy, AllowIdenticalResolvesReissuedDuplicates) {
    ShardResultsFile a;
    a.total_slots = 2;
    a.grid_fp = 0xabc;
    a.rows.push_back(ShardRow{0, 0x1, "{\"x\":1}", 100});
    a.rows.push_back(ShardRow{1, 0x2, "{\"x\":2}", 100});
    ShardResultsFile b;
    b.total_slots = 2;
    b.grid_fp = 0xabc;
    // The re-run of slot 1: identical bytes, different measured micros.
    b.rows.push_back(ShardRow{1, 0x2, "{\"x\":2}", 999});

    // Default policy still refuses overlap (static plans are disjoint).
    EXPECT_THROW(merge_shard_results({a, b}), Error);
    EXPECT_EQ(merge_shard_results({a, b}, DuplicatePolicy::AllowIdentical),
              "[\n  {\"x\":1},\n  {\"x\":2}\n]\n");

    // Differing bytes stay a hard conflict under either policy.
    ShardResultsFile conflict;
    conflict.total_slots = 2;
    conflict.grid_fp = 0xabc;
    conflict.rows.push_back(ShardRow{1, 0x2, "{\"x\":9}", 999});
    EXPECT_THROW(
        merge_shard_results({a, conflict}, DuplicatePolicy::AllowIdentical),
        Error);
}

// --- lease directory -----------------------------------------------------------

TEST(LeaseDir, ServeStatusAndWorkerRoundTrip) {
    const std::vector<SweepPoint> grid = tiny_grid();
    const ShardManifest manifest = whole_grid_manifest(grid);
    TempDir tmp;
    const std::string dir = tmp.sub("farm");

    LeaseOptions options;
    options.max_chunk_slots = 1;  // one chunk per point, deterministic
    const size_t chunks = init_lease_dir(dir, manifest, options);
    EXPECT_EQ(chunks, grid.size());
    // Re-initializing an existing directory is refused.
    EXPECT_THROW(init_lease_dir(dir, manifest, options), Error);

    LeaseDirStatus status = lease_dir_status(dir);
    EXPECT_EQ(status.chunks, chunks);
    EXPECT_EQ(status.completed, 0u);
    EXPECT_EQ(status.claimed, 0u);
    EXPECT_EQ(status.reissued, 0u);

    LeaseWorkerOptions worker;
    worker.worker_id = "a";
    LeaseWorkSource source(dir, worker);
    EXPECT_EQ(source.total_slots(), grid.size());
    EXPECT_EQ(source.manifest().grid_fp, manifest.grid_fp);

    // Acquire claims chunk 0; abandon releases it for re-acquire.
    Lease lease = source.acquire(0);
    ASSERT_EQ(lease.slots, (std::vector<size_t>{0}));
    EXPECT_EQ(lease_dir_status(dir).claimed, 1u);
    source.abandon(lease);
    EXPECT_EQ(lease_dir_status(dir).claimed, 0u);
    Lease again = source.acquire(0);
    EXPECT_EQ(again.slots, lease.slots);

    // Complete publishes the chunk and releases the claim.
    SweepDriver driver;
    source.complete(again, run_lease(driver, again));
    status = lease_dir_status(dir);
    EXPECT_EQ(status.completed, 1u);
    EXPECT_EQ(status.claimed, 0u);
    // Collecting with chunks outstanding names the holes.
    EXPECT_THROW(collect_lease_results(dir), Error);

    // Drain the rest through the service; acquire() then reports empty.
    SweepService service(driver);
    EXPECT_EQ(service.drain(source), grid.size() - 1);
    EXPECT_TRUE(source.acquire(0).empty());
    EXPECT_EQ(lease_dir_status(dir).completed, chunks);
    EXPECT_EQ(collect_lease_results(dir), reference_json(grid));
}

TEST(LeaseDir, ExpiryReissueAndDuplicateRowsMerge) {
    const std::vector<SweepPoint> grid = tiny_grid();
    const ShardManifest manifest = whole_grid_manifest(grid);
    TempDir tmp;
    const std::string dir = tmp.sub("farm");

    LeaseOptions options;
    options.max_chunk_slots = 1;
    options.ttl_ms = 0;  // every claim is stealable as soon as time moves
    init_lease_dir(dir, manifest, options);

    LeaseWorkerOptions a_opts, b_opts;
    a_opts.worker_id = "a";
    b_opts.worker_id = "b";
    LeaseWorkSource a(dir, a_opts);
    LeaseWorkSource b(dir, b_opts);

    // a claims chunk 0 and stalls; once the ttl passes, b steals the same
    // chunk (re-issue) and runs it too.
    Lease held = a.acquire(0);
    ASSERT_EQ(held.slots, (std::vector<size_t>{0}));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Lease stolen = b.acquire(0);
    ASSERT_EQ(stolen.slots, held.slots);
    EXPECT_EQ(b.steals(), 1u);
    EXPECT_EQ(lease_dir_status(dir).reissued, 1u);

    // Both finish: two rows files for chunk 0, byte-identical modulo the
    // measured micros, resolved at merge. The straggler's publish after
    // being stolen must not disturb anything.
    SweepDriver driver;
    b.complete(stolen, run_lease(driver, stolen));
    a.complete(held, run_lease(driver, held));
    SweepService service(driver);
    service.drain(b);  // the remaining chunk

    const LeaseDirStatus status = lease_dir_status(dir);
    EXPECT_EQ(status.completed, status.chunks);
    EXPECT_EQ(status.reissued, 1u);
    EXPECT_EQ(collect_lease_results(dir), reference_json(grid));
}

TEST(LeaseDir, BoundedAcquireSplitsOversizedChunks) {
    // One big chunk, workers that only want one slot at a time: acquire
    // re-chops on claim, publishing the remainder as new claimable
    // chunks, and the merged bytes still match the reference exactly.
    const std::vector<SweepPoint> grid = SweepDriver::grid(
        {"FIR"}, {"XENTIUM"}, {"WLO-SLP"}, {-20.0, -30.0, -40.0});
    const ShardManifest manifest = whole_grid_manifest(grid);
    const std::string reference = reference_json(grid);
    TempDir tmp;
    const std::string dir = tmp.sub("farm");

    LeaseOptions options;
    options.chunk_cost = 1e12;  // everything lands in one chunk
    ASSERT_EQ(init_lease_dir(dir, manifest, options), 1u);

    LeaseWorkerOptions small_opts;
    small_opts.worker_id = "small";
    LeaseWorkSource small(dir, small_opts);

    // The bounded acquire keeps the first slot and splits the rest off.
    Lease head = small.acquire(1);
    ASSERT_EQ(head.slots, (std::vector<size_t>{0}));
    ASSERT_EQ(head.points.size(), 1u);
    EXPECT_EQ(lease_dir_status(dir).chunks, 2u);

    // The split-off tail is immediately claimable by a second worker
    // while the head is still held — and that worker's own bound splits
    // it again (fresh-id allocation past an existing split chunk).
    LeaseWorkerOptions peer_opts;
    peer_opts.worker_id = "peer";
    LeaseWorkSource peer(dir, peer_opts);
    Lease mid = peer.acquire(1);
    ASSERT_EQ(mid.slots, (std::vector<size_t>{1}));
    const LeaseDirStatus in_flight = lease_dir_status(dir);
    EXPECT_EQ(in_flight.chunks, 3u);
    EXPECT_EQ(in_flight.claimed, 2u);

    SweepDriver driver;
    small.complete(head, run_lease(driver, head));
    peer.complete(mid, run_lease(driver, mid));

    // The last tail ([2]) fits the bound — claimed whole, no new split.
    Lease last = small.acquire(1);
    ASSERT_EQ(last.slots, (std::vector<size_t>{2}));
    EXPECT_EQ(lease_dir_status(dir).chunks, 3u);
    small.complete(last, run_lease(driver, last));
    EXPECT_TRUE(small.acquire(1).empty());

    const LeaseDirStatus status = lease_dir_status(dir);
    EXPECT_EQ(status.completed, 3u);
    EXPECT_EQ(status.claimed, 0u);
    EXPECT_EQ(collect_lease_results(dir), reference);
}

TEST(LeaseDir, InProcessElasticMatchesReferenceAtOneAndNWorkers) {
    const std::vector<SweepPoint> grid = tiny_grid();
    const ShardManifest manifest = whole_grid_manifest(grid);
    const std::string reference = reference_json(grid);

    // One worker drains everything.
    {
        TempDir tmp;
        const std::string dir = tmp.sub("solo");
        LeaseOptions options;
        options.max_chunk_slots = 1;
        init_lease_dir(dir, manifest, options);
        LeaseWorkerOptions worker;
        worker.worker_id = "solo";
        LeaseWorkSource source(dir, worker);
        SweepService service{ExecOptions{}};
        EXPECT_EQ(service.drain(source), grid.size());
        EXPECT_EQ(collect_lease_results(dir), reference);
    }

    // N workers race over the same directory; the union of what they ran
    // is the whole grid, and the merged bytes do not change.
    {
        TempDir tmp;
        const std::string dir = tmp.sub("farm");
        LeaseOptions options;
        options.max_chunk_slots = 1;
        init_lease_dir(dir, manifest, options);

        constexpr int kWorkers = 2;
        size_t executed[kWorkers] = {};
        std::vector<std::thread> threads;
        for (int w = 0; w < kWorkers; ++w) {
            threads.emplace_back([&, w] {
                LeaseWorkerOptions worker;
                worker.worker_id = "w" + std::to_string(w);
                LeaseWorkSource source(dir, worker);
                SweepService service{ExecOptions{}};
                executed[w] = service.drain(source);
            });
        }
        for (std::thread& thread : threads) thread.join();
        EXPECT_EQ(executed[0] + executed[1], grid.size());
        EXPECT_EQ(collect_lease_results(dir), reference);
    }
}

}  // namespace
}  // namespace slpwlo
