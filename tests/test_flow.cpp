// End-to-end flow tests: the full WLO-SLP / WLO-First / float pipelines on
// the benchmark kernels, checking the paper's qualitative claims.
#include <gtest/gtest.h>

#include "flow/flow.hpp"
#include "flow/report.hpp"
#include "target/target_model.hpp"
#include "support/diagnostics.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

/// Shared contexts on the small kernels (cheap gain calibration).
const KernelContext& ctx_fir() {
    static const KernelContext ctx(::slpwlo::testing::small_fir());
    return ctx;
}
const KernelContext& ctx_iir() {
    static const KernelContext ctx = [] {
        RangeOptions options;
        options.method = RangeMethod::Auto;
        return KernelContext(::slpwlo::testing::small_iir(), options);
    }();
    return ctx;
}
const KernelContext& ctx_conv() {
    static const KernelContext ctx(::slpwlo::testing::small_conv());
    return ctx;
}

TEST(Flow, WloSlpProducesGroupsAndMeetsConstraint) {
    FlowOptions options;
    options.accuracy_db = -30.0;
    for (const KernelContext* ctx : {&ctx_fir(), &ctx_iir(), &ctx_conv()}) {
        const FlowResult result =
            run_wlo_slp_flow(*ctx, targets::xentium(), options);
        EXPECT_GT(result.group_count, 0) << ctx->kernel().name();
        EXPECT_LE(result.analytic_noise_db, -30.0 + 1e-9);
        EXPECT_GT(result.scalar_cycles, 0);
        EXPECT_GT(result.simd_cycles, 0);
    }
}

TEST(Flow, SimdBeatsScalarForJointFlowAtLooseConstraint) {
    FlowOptions options;
    options.accuracy_db = -15.0;
    for (const KernelContext* ctx : {&ctx_fir(), &ctx_conv()}) {
        const FlowResult result =
            run_wlo_slp_flow(*ctx, targets::xentium(), options);
        EXPECT_LT(result.simd_cycles, result.scalar_cycles)
            << ctx->kernel().name();
    }
}

TEST(Flow, JointBeatsDecoupledOnAverage) {
    // The paper's headline claim, on the small kernels: averaged over a
    // constraint sweep, WLO-SLP's SIMD code is at least as fast as
    // WLO-First's.
    double joint = 0.0, decoupled = 0.0;
    for (const double a : {-15.0, -30.0, -45.0}) {
        FlowOptions options;
        options.accuracy_db = a;
        for (const KernelContext* ctx : {&ctx_fir(), &ctx_conv()}) {
            joint += static_cast<double>(
                run_wlo_slp_flow(*ctx, targets::vex4(), options).simd_cycles);
            decoupled += static_cast<double>(
                run_wlo_first_flow(*ctx, targets::vex4(), options)
                    .simd_cycles);
        }
    }
    EXPECT_LE(joint, decoupled * 1.02);
}

TEST(Flow, FloatCyclesDominateOnSoftFloatTarget) {
    FlowOptions options;
    options.accuracy_db = -30.0;
    const long long fc = float_cycles(ctx_fir(), targets::xentium());
    const FlowResult fixed =
        run_wlo_slp_flow(ctx_fir(), targets::xentium(), options);
    EXPECT_GT(speedup(fc, fixed.simd_cycles), 5.0);
}

TEST(Flow, FloatCompetitiveOnHardFpTarget) {
    FlowOptions options;
    options.accuracy_db = -30.0;
    const long long fc = float_cycles(ctx_fir(), targets::st240());
    const FlowResult fixed =
        run_wlo_slp_flow(ctx_fir(), targets::st240(), options);
    const double s = speedup(fc, fixed.simd_cycles);
    EXPECT_GT(s, 0.5);
    EXPECT_LT(s, 4.0);
}

TEST(Flow, DeterministicAcrossRuns) {
    FlowOptions options;
    options.accuracy_db = -25.0;
    const FlowResult a = run_wlo_slp_flow(ctx_fir(), targets::vex1(), options);
    const FlowResult b = run_wlo_slp_flow(ctx_fir(), targets::vex1(), options);
    EXPECT_EQ(a.simd_cycles, b.simd_cycles);
    EXPECT_EQ(a.group_count, b.group_count);
    EXPECT_EQ(a.analytic_noise_db, b.analytic_noise_db);
}

TEST(Flow, Vex1GainsMoreThanVex4) {
    // The paper's ILP observation: SIMD speedup on the 1-wide VEX exceeds
    // the 4-wide VEX (which hides op-count savings in its ILP).
    FlowOptions options;
    options.accuracy_db = -15.0;
    const FlowResult r1 = run_wlo_slp_flow(ctx_fir(), targets::vex1(), options);
    const FlowResult r4 = run_wlo_slp_flow(ctx_fir(), targets::vex4(), options);
    const double s1 = speedup(r1.scalar_cycles, r1.simd_cycles);
    const double s4 = speedup(r4.scalar_cycles, r4.simd_cycles);
    EXPECT_GT(s1, s4 * 0.95);
}

TEST(Flow, ReportHelpers) {
    FlowOptions options;
    options.accuracy_db = -25.0;
    const FlowResult result =
        run_wlo_slp_flow(ctx_fir(), targets::xentium(), options);
    const std::string summary = summarize(result);
    EXPECT_NE(summary.find("WLO-SLP"), std::string::npos);
    EXPECT_NE(summary.find("XENTIUM"), std::string::npos);
    const std::string histogram = wl_histogram(result.spec);
    EXPECT_NE(histogram.find("wl"), std::string::npos);
    EXPECT_THROW(speedup(100, 0), Error);
    EXPECT_DOUBLE_EQ(speedup(100, 50), 2.0);
}

TEST(Flow, MeasuredNoiseTracksAnalytic) {
    FlowOptions options;
    options.accuracy_db = -40.0;
    const FlowResult result =
        run_wlo_slp_flow(ctx_fir(), targets::vex4(), options);
    const double measured = measured_noise_db(ctx_fir(), result);
    EXPECT_NEAR(measured, result.analytic_noise_db, 4.0);
}

}  // namespace
}  // namespace slpwlo
