// FlowEngine tests: pass-sequence equivalence with the monolithic
// pre-refactor flows, evaluation memoization, sweep determinism across
// thread counts, the registry, and the thread pool itself.
#include <gtest/gtest.h>

#include <atomic>

#include "core/slp_aware_wlo.hpp"
#include "core/tabu_wlo.hpp"
#include "flow/flow.hpp"
#include "flow/pass.hpp"
#include "flow/report.hpp"
#include "flow/sweep.hpp"
#include "slp/plain_extractor.hpp"
#include "support/diagnostics.hpp"
#include "support/thread_pool.hpp"
#include "target/target_model.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

const KernelContext& ctx_fir() {
    static const KernelContext ctx(::slpwlo::testing::small_fir());
    return ctx;
}
const KernelContext& ctx_iir() {
    static const KernelContext ctx = [] {
        RangeOptions options;
        options.method = RangeMethod::Auto;
        return KernelContext(::slpwlo::testing::small_iir(), options);
    }();
    return ctx;
}
const KernelContext& ctx_conv() {
    static const KernelContext ctx(::slpwlo::testing::small_conv());
    return ctx;
}

/// The pre-refactor monolithic WLO-SLP flow, reproduced verbatim: spec
/// initialization, joint optimization, then scalar/SIMD lowering, cycle
/// estimation and analytic noise.
FlowResult legacy_wlo_slp(const KernelContext& context,
                          const TargetModel& target,
                          const FlowOptions& options) {
    FlowResult result{.flow_name = "WLO-SLP",
                      .kernel_name = context.kernel().name(),
                      .target_name = target.name,
                      .accuracy_db = options.accuracy_db,
                      .spec = context.initial_spec(options.quant_mode)};
    WloSlpOptions wlo = options.wlo_slp;
    wlo.accuracy_db = options.accuracy_db;
    const WloSlpResult out = run_slp_aware_wlo(
        context.kernel(), result.spec, context.evaluator(), target, wlo);
    result.groups = out.block_groups;
    result.slp_stats = out.slp_stats;
    result.scaling_stats = out.scaling_stats;
    result.group_count = out.group_count();

    const MachineKernel scalar = lower_kernel(
        context.kernel(), &result.spec, nullptr, target,
        LowerMode::FixedScalar);
    result.scalar_cycles = estimate_cycles(scalar, target).total_cycles;
    const MachineKernel simd =
        lower_kernel(context.kernel(), &result.spec, &result.groups, target,
                     LowerMode::FixedSimd);
    result.simd_cycles = estimate_cycles(simd, target).total_cycles;
    result.analytic_noise_db = context.evaluator().noise_power_db(result.spec);
    return result;
}

/// The pre-refactor monolithic WLO-First flow, reproduced verbatim.
FlowResult legacy_wlo_first(const KernelContext& context,
                            const TargetModel& target,
                            const FlowOptions& options) {
    FlowResult result{.flow_name = "WLO-First",
                      .kernel_name = context.kernel().name(),
                      .target_name = target.name,
                      .accuracy_db = options.accuracy_db,
                      .spec = context.initial_spec(options.quant_mode)};
    result.tabu_stats =
        run_tabu_wlo(result.spec, context.evaluator(), target,
                     options.accuracy_db, options.wlo_first.tabu);
    for (const BlockId block : blocks_by_priority(context.kernel())) {
        if (context.kernel().block(block).ops.size() < 2) continue;
        PackedView view(context.kernel(), block);
        std::vector<SimdGroup> groups =
            extract_slp_plain(view, target, result.spec,
                              options.wlo_first.slp, &result.slp_stats);
        if (!groups.empty()) {
            result.groups.push_back(BlockGroups{block, std::move(groups)});
        }
    }
    for (const BlockGroups& bg : result.groups) {
        result.group_count += static_cast<int>(bg.groups.size());
    }

    const MachineKernel scalar = lower_kernel(
        context.kernel(), &result.spec, nullptr, target,
        LowerMode::FixedScalar);
    result.scalar_cycles = estimate_cycles(scalar, target).total_cycles;
    const MachineKernel simd =
        lower_kernel(context.kernel(), &result.spec, &result.groups, target,
                     LowerMode::FixedSimd);
    result.simd_cycles = estimate_cycles(simd, target).total_cycles;
    result.analytic_noise_db = context.evaluator().noise_power_db(result.spec);
    return result;
}

void expect_identical(const FlowResult& a, const FlowResult& b) {
    EXPECT_EQ(a.scalar_cycles, b.scalar_cycles);
    EXPECT_EQ(a.simd_cycles, b.simd_cycles);
    EXPECT_EQ(a.group_count, b.group_count);
    EXPECT_EQ(a.analytic_noise_db, b.analytic_noise_db);  // bit-exact
    ASSERT_EQ(a.groups.size(), b.groups.size());
    for (size_t i = 0; i < a.groups.size(); ++i) {
        EXPECT_EQ(a.groups[i].block, b.groups[i].block);
        ASSERT_EQ(a.groups[i].groups.size(), b.groups[i].groups.size());
        for (size_t g = 0; g < a.groups[i].groups.size(); ++g) {
            EXPECT_EQ(a.groups[i].groups[g].lanes,
                      b.groups[i].groups[g].lanes);
        }
    }
    for (const NodeRef node : a.spec.nodes()) {
        EXPECT_EQ(a.spec.format(node), b.spec.format(node));
    }
}

// --- pass-sequence equivalence -------------------------------------------------

TEST(FlowEngine, WloSlpMatchesMonolithicFlow) {
    FlowOptions options;
    options.accuracy_db = -30.0;
    for (const KernelContext* ctx : {&ctx_fir(), &ctx_iir(), &ctx_conv()}) {
        for (const TargetModel& target :
             {targets::xentium(), targets::vex4()}) {
            const FlowResult engine =
                run_wlo_slp_flow(*ctx, target, options);
            const FlowResult legacy = legacy_wlo_slp(*ctx, target, options);
            expect_identical(engine, legacy);
        }
    }
}

TEST(FlowEngine, WloFirstMatchesMonolithicFlow) {
    FlowOptions options;
    options.accuracy_db = -30.0;
    for (const KernelContext* ctx : {&ctx_fir(), &ctx_iir(), &ctx_conv()}) {
        const TargetModel target = targets::xentium();
        const FlowResult engine = run_wlo_first_flow(*ctx, target, options);
        const FlowResult legacy = legacy_wlo_first(*ctx, target, options);
        expect_identical(engine, legacy);
    }
}

TEST(FlowEngine, FloatFlowMatchesDirectLowering) {
    for (const TargetModel& target : {targets::xentium(), targets::st240()}) {
        const MachineKernel machine = lower_kernel(
            ctx_fir().kernel(), nullptr, nullptr, target, LowerMode::Float);
        EXPECT_EQ(float_cycles(ctx_fir(), target),
                  estimate_cycles(machine, target).total_cycles);
    }
}

// --- registry ------------------------------------------------------------------

TEST(FlowEngine, RegistryHasBuiltinFlows) {
    FlowRegistry& registry = FlowRegistry::instance();
    for (const char* name :
         {"WLO-SLP", "WLO-First", "WLO-First+Scaling", "Float"}) {
        EXPECT_TRUE(registry.contains(name)) << name;
        EXPECT_FALSE(registry.flow(name).passes().empty()) << name;
    }
    EXPECT_THROW(registry.flow("NO-SUCH-FLOW"), Error);
}

TEST(FlowEngine, ScalingVariantRunsAndMeetsConstraint) {
    FlowOptions options;
    options.accuracy_db = -30.0;
    const FlowResult result =
        FlowRegistry::instance()
            .flow("WLO-First+Scaling")
            .run(ctx_fir(), targets::xentium(), options);
    EXPECT_GT(result.simd_cycles, 0);
    EXPECT_LE(result.analytic_noise_db, -30.0 + 1e-9);
    // The standalone Fig. 1b pass examined the extracted superword reuses.
    const FlowResult plain =
        run_wlo_first_flow(ctx_fir(), targets::xentium(), options);
    EXPECT_LE(result.simd_cycles, plain.simd_cycles);
}

TEST(FlowEngine, CustomPipelineIsARegistryEntry) {
    // A new scenario is a registry entry: WLO-SLP without the final cycle
    // evaluation would be silly, so register a fixed-point "no-SLP" flow
    // (range + iwl + tabu + lowering + cycles) and run it.
    FlowRegistry::instance().add(FlowPipeline(
        "Tabu-Only",
        {make_range_analysis_pass(), make_iwl_determination_pass(),
         make_tabu_wlo_pass(), make_lowering_pass(), make_cycle_eval_pass()}));
    FlowOptions options;
    options.accuracy_db = -25.0;
    const FlowResult result = FlowRegistry::instance()
                                  .flow("Tabu-Only")
                                  .run(ctx_fir(), targets::vex1(), options);
    EXPECT_EQ(result.group_count, 0);
    EXPECT_GT(result.scalar_cycles, 0);
    EXPECT_LE(result.analytic_noise_db, -25.0 + 1e-9);
}

// --- memoization ---------------------------------------------------------------

TEST(FlowEngine, MemoizedSweepIsIdenticalToCold) {
    const std::vector<SweepPoint> points = SweepDriver::grid(
        {"FIR"}, {"XENTIUM"}, {"WLO-SLP", "WLO-First"},
        {-20.0, -35.0, -50.0});

    SweepOptions no_memo;
    no_memo.threads = 1;
    no_memo.memoize = false;
    SweepDriver cold(no_memo);
    const std::vector<SweepResult> reference = cold.run(points);

    SweepOptions memo;
    memo.threads = 1;
    SweepDriver warm(memo);
    const std::vector<SweepResult> first = warm.run(points);
    const std::vector<SweepResult> second = warm.run(points);

    const SweepCacheStats stats = warm.cache_stats();
    EXPECT_GT(stats.eval_hits, 0u);  // the repeat run hit the cache
    ASSERT_EQ(reference.size(), first.size());
    ASSERT_EQ(reference.size(), second.size());
    for (size_t i = 0; i < reference.size(); ++i) {
        expect_identical(reference[i].flow, first[i].flow);
        expect_identical(first[i].flow, second[i].flow);
    }
}

TEST(FlowEngine, EvaluationKeySeparatesSpecs) {
    FlowOptions options;
    options.accuracy_db = -20.0;
    const TargetModel xentium = targets::xentium();
    FlowResult a = run_wlo_slp_flow(ctx_fir(), xentium, options);
    const uint64_t key_a = evaluation_key(ctx_fir(), xentium, a);
    EXPECT_EQ(key_a, evaluation_key(ctx_fir(), xentium, a));  // stable

    FlowResult b = a;
    b.spec.set_wl(b.spec.nodes().front(), 24);
    EXPECT_NE(evaluation_key(ctx_fir(), xentium, b), key_a);

    EXPECT_NE(evaluation_key(ctx_fir(), xentium, a, /*float_variant=*/true),
              key_a);

    // Same name, different configuration must not alias: a doctored
    // XENTIUM and a different kernel both change the key.
    TargetModel doctored = xentium;
    doctored.simd_width_bits = 64;
    doctored.simd_element_wls = {32, 16};
    EXPECT_NE(evaluation_key(ctx_fir(), doctored, a), key_a);
    EXPECT_NE(ctx_fir().fingerprint(), ctx_conv().fingerprint());
    EXPECT_NE(target_fingerprint(xentium), target_fingerprint(doctored));
}

// --- determinism across thread counts ------------------------------------------

TEST(FlowEngine, SweepDeterministicAcrossThreadCounts) {
    const std::vector<SweepPoint> points = SweepDriver::grid(
        {"FIR", "CONV"}, {"XENTIUM", "VEX-4"}, {"WLO-SLP"},
        {-15.0, -40.0});

    SweepOptions serial_options;
    serial_options.threads = 1;
    SweepDriver serial(serial_options);
    const std::vector<SweepResult> serial_results = serial.run(points);

    SweepOptions parallel_options;
    parallel_options.threads = 4;
    SweepDriver parallel(parallel_options);
    const std::vector<SweepResult> parallel_results = parallel.run(points);

    ASSERT_EQ(serial_results.size(), parallel_results.size());
    for (size_t i = 0; i < serial_results.size(); ++i) {
        EXPECT_EQ(serial_results[i].point.kernel,
                  parallel_results[i].point.kernel);
        expect_identical(serial_results[i].flow, parallel_results[i].flow);
    }
}

TEST(FlowEngine, SweepReportsConfigErrorsBeforeRunning) {
    SweepDriver driver;
    EXPECT_THROW(driver.run({{"FFT", "XENTIUM", "WLO-SLP", -20.0, {}, {}}}),
                 Error);
    EXPECT_THROW(driver.run({{"FIR", "TPU", "WLO-SLP", -20.0, {}, {}}}), Error);
    EXPECT_THROW(driver.run({{"FIR", "XENTIUM", "NO-SUCH", -20.0, {}, {}}}),
                 Error);
}

TEST(FlowEngine, SweepRunsDotThroughRegistry) {
    SweepDriver driver;
    const std::vector<SweepResult> results = driver.run(
        SweepDriver::grid({"DOT"}, {"VEX-4"}, {"WLO-SLP"}, {-25.0}));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].flow.group_count, 0);
    EXPECT_LE(results[0].flow.analytic_noise_db, -25.0 + 1e-9);
    EXPECT_LT(results[0].flow.simd_cycles, results[0].flow.scalar_cycles);
}

// --- thread pool ---------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 500; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, NestedSubmitsComplete) {
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int i = 0; i < 20; ++i) {
        pool.submit([&pool, &counter] {
            for (int j = 0; j < 10; ++j) {
                pool.submit([&counter] { counter.fetch_add(1); });
            }
        });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
    ThreadPool pool(2);
    pool.wait_idle();  // must not hang
    EXPECT_EQ(pool.thread_count(), 2);
}

// --- structured reports --------------------------------------------------------

TEST(FlowEngine, JsonEmissionIsWellFormed) {
    FlowOptions options;
    options.accuracy_db = -25.0;
    const FlowResult result =
        run_wlo_slp_flow(ctx_fir(), targets::xentium(), options);
    const std::string json = to_json(result);
    EXPECT_NE(json.find("\"flow\":\"WLO-SLP\""), std::string::npos);
    EXPECT_NE(json.find("\"target\":\"XENTIUM\""), std::string::npos);
    EXPECT_NE(json.find("\"wl_histogram\":{"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');

    EXPECT_EQ(json_escape("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    EXPECT_EQ(json_number(-35.25), "-35.25");
    EXPECT_EQ(json_number(-1.0 / 0.0), "null");

    SweepDriver driver;
    const auto results = driver.run(
        SweepDriver::grid({"FIR"}, {"XENTIUM"}, {"Float"}, {0.0}));
    const std::string array = sweep_to_json(results);
    EXPECT_EQ(array.front(), '[');
    EXPECT_NE(array.find("\"flow\":\"Float\""), std::string::npos);
}

}  // namespace
}  // namespace slpwlo
