// Tests for the paper's core algorithms: SLP-aware WLO (Fig. 1a),
// accuracy-aware SLP (Fig. 1c), scaling optimization (Fig. 1b), plus the
// Tabu WLO / WLO-First baseline.
#include <gtest/gtest.h>

#include "accuracy/sim_evaluator.hpp"
#include "core/slp_aware_wlo.hpp"
#include "core/wlo_first.hpp"
#include "support/diagnostics.hpp"
#include "target/target_model.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

using ::slpwlo::testing::cached_evaluator;
using ::slpwlo::testing::initial_spec;
using ::slpwlo::testing::small_conv;
using ::slpwlo::testing::small_fir;
using ::slpwlo::testing::small_iir;

// --- Fig. 1a ---------------------------------------------------------------------

TEST(SlpAwareWlo, RespectsEquationOne) {
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    const TargetModel target = targets::vex4();
    WloSlpOptions options;
    options.accuracy_db = -20.0;
    const WloSlpResult result = run_slp_aware_wlo(
        k, spec, cached_evaluator(k), target, options);
    for (const BlockGroups& bg : result.block_groups) {
        for (const SimdGroup& g : bg.groups) {
            const auto m = target.simd_element_wl(g.width());
            ASSERT_TRUE(m.has_value());
            for (const OpId lane : g.lanes) {
                EXPECT_LE(spec.result_format(lane).wl(), *m)
                    << "equation (1) violated";
            }
        }
    }
}

TEST(SlpAwareWlo, NonGroupedNodesKeepMaxWl) {
    const Kernel& k = small_conv();
    FixedPointSpec spec = initial_spec(k);
    const TargetModel target = targets::xentium();
    WloSlpOptions options;
    options.accuracy_db = -30.0;
    const WloSlpResult result = run_slp_aware_wlo(
        k, spec, cached_evaluator(k), target, options);
    // The serial accumulator is never groupable -> stays at 32.
    const VarId acc = k.find_var("acc");
    ASSERT_TRUE(acc.valid());
    EXPECT_EQ(spec.var_format(acc).wl(), target.max_wl());
    (void)result;
}

/// The central contract: across the whole constraint sweep the final spec
/// satisfies the analytic accuracy constraint.
class WloConstraintSweep : public ::testing::TestWithParam<double> {};

TEST_P(WloConstraintSweep, FinalSpecMeetsConstraint) {
    const double a = GetParam();
    for (const Kernel* k : {&small_fir(), &small_iir(), &small_conv()}) {
        FixedPointSpec spec = initial_spec(*k);
        WloSlpOptions options;
        options.accuracy_db = a;
        run_slp_aware_wlo(*k, spec, cached_evaluator(*k),
                          targets::vex4(), options);
        EXPECT_LE(cached_evaluator(*k).noise_power_db(spec), a + 1e-9)
            << k->name() << " at " << a << " dB";
    }
}

INSTANTIATE_TEST_SUITE_P(Constraints, WloConstraintSweep,
                         ::testing::Values(-10.0, -25.0, -40.0, -55.0,
                                           -70.0));

TEST(SlpAwareWlo, MeasuredNoiseNearConstraintRegime) {
    // Cross-validation with the bit-accurate simulator: the *measured*
    // noise of the optimized spec must not exceed the constraint by more
    // than the analytic model's error margin in its valid regime.
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    WloSlpOptions options;
    options.accuracy_db = -40.0;
    run_slp_aware_wlo(k, spec, cached_evaluator(k), targets::vex4(), options);
    const SimulationEvaluator sim(k, 2);
    EXPECT_LE(sim.noise_power_db(spec), -40.0 + 4.0);
}

TEST(SlpAwareWlo, InfeasibleConstraintThrows) {
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    WloSlpOptions options;
    options.accuracy_db = -500.0;  // impossible even at 32 bits
    EXPECT_THROW(run_slp_aware_wlo(k, spec, cached_evaluator(k),
                                   targets::xentium(), options),
                 Error);
}

TEST(SlpAwareWlo, StricterConstraintNeverMoreCoverage) {
    // Group *count* is not monotone (width-4 merges reduce it), but the
    // number of ops covered by SIMD groups must not grow as the accuracy
    // constraint tightens.
    const Kernel& k = small_fir();
    const TargetModel target = targets::vex4();
    int previous = 1 << 30;
    for (const double a : {-10.0, -30.0, -50.0, -70.0}) {
        FixedPointSpec spec = initial_spec(k);
        WloSlpOptions options;
        options.accuracy_db = a;
        const auto result = run_slp_aware_wlo(k, spec, cached_evaluator(k),
                                              target, options);
        int lanes = 0;
        for (const BlockGroups& bg : result.block_groups) {
            for (const SimdGroup& g : bg.groups) lanes += g.width();
        }
        EXPECT_LE(lanes, previous)
            << "SIMD coverage should shrink as A tightens";
        previous = lanes;
    }
}

TEST(SlpAwareWlo, BlocksVisitedByPriority) {
    const Kernel& k = small_fir();
    const auto order = blocks_by_priority(k);
    for (size_t i = 1; i < order.size(); ++i) {
        EXPECT_GE(k.block_frequency(order[i - 1]),
                  k.block_frequency(order[i]));
    }
}

// --- Fig. 1b ---------------------------------------------------------------------

TEST(ScalingOptim, EqualizesConvMulAmounts) {
    // CONV's 9 products have heterogeneous IWLs; after optimization the
    // mul groups' per-lane quantization amounts must be uniform.
    const Kernel& k = small_conv();
    FixedPointSpec spec = initial_spec(k);
    WloSlpOptions options;
    options.accuracy_db = -30.0;
    const auto result = run_slp_aware_wlo(k, spec, cached_evaluator(k),
                                          targets::st240(), options);
    EXPECT_GT(result.scaling_stats.equalized, 0);

    const auto def_nodes = compute_var_def_nodes(k);
    for (const BlockGroups& bg : result.block_groups) {
        for (const SimdGroup& g : bg.groups) {
            if (k.op(g.lanes[0]).kind != OpKind::Mul) continue;
            std::set<int> amounts;
            for (const OpId lane : g.lanes) {
                const Op& op = k.op(lane);
                const int full =
                    spec.format(def_nodes[op.args[0].index()]).fwl +
                    spec.format(def_nodes[op.args[1].index()]).fwl;
                amounts.insert(full - spec.result_format(lane).fwl);
            }
            EXPECT_EQ(amounts.size(), 1u)
                << "mul group scalings not equalized";
        }
    }
}

TEST(ScalingOptim, KeepsWordLengthsIntact) {
    // Fig. 1b trades FWL for IWL but never changes WL.
    const Kernel& k = small_conv();
    FixedPointSpec with = initial_spec(k);
    FixedPointSpec without = initial_spec(k);
    WloSlpOptions on;
    on.accuracy_db = -30.0;
    WloSlpOptions off = on;
    off.scaling_optim = false;
    run_slp_aware_wlo(k, with, cached_evaluator(k), targets::st240(), on);
    run_slp_aware_wlo(k, without, cached_evaluator(k), targets::st240(), off);
    for (const NodeRef node : with.nodes()) {
        EXPECT_EQ(with.format(node).wl(), without.format(node).wl());
    }
}

TEST(ScalingOptim, StillMeetsConstraint) {
    const Kernel& k = small_conv();
    FixedPointSpec spec = initial_spec(k);
    WloSlpOptions options;
    options.accuracy_db = -35.0;
    run_slp_aware_wlo(k, spec, cached_evaluator(k), targets::st240(),
                      options);
    EXPECT_LE(cached_evaluator(k).noise_power_db(spec), -35.0 + 1e-9);
}

// --- Tabu / WLO-First -------------------------------------------------------------

TEST(TabuWlo, ReturnsFeasibleAndCheaper) {
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    const TabuStats stats = run_tabu_wlo(spec, cached_evaluator(k),
                                         targets::xentium(), -30.0);
    EXPECT_TRUE(stats.feasible);
    EXPECT_LT(stats.best_cost, stats.initial_cost);
    EXPECT_LE(cached_evaluator(k).noise_power_db(spec), -30.0 + 1e-9);
}

TEST(TabuWlo, StricterConstraintCostsMore) {
    const Kernel& k = small_fir();
    const WlCostModel cost_model(k, targets::xentium());
    double previous = 0.0;
    for (const double a : {-10.0, -40.0, -70.0}) {
        FixedPointSpec spec = initial_spec(k);
        run_tabu_wlo(spec, cached_evaluator(k), targets::xentium(), a);
        const double cost = cost_model.cost(spec);
        EXPECT_GE(cost, previous - 1e-9);
        previous = cost;
    }
}

TEST(TabuWlo, Deterministic) {
    const Kernel& k = small_fir();
    FixedPointSpec a = initial_spec(k);
    FixedPointSpec b = initial_spec(k);
    run_tabu_wlo(a, cached_evaluator(k), targets::vex4(), -35.0);
    run_tabu_wlo(b, cached_evaluator(k), targets::vex4(), -35.0);
    for (const NodeRef node : a.nodes()) {
        EXPECT_EQ(a.format(node), b.format(node));
    }
}

TEST(WlCostModel, WlProportionalProxy) {
    const Kernel& k = small_fir();
    const TargetModel target = targets::xentium();
    const WlCostModel model(k, target);
    FixedPointSpec wide = initial_spec(k);
    ::slpwlo::testing::set_uniform_wl(wide, 32);
    FixedPointSpec narrow = initial_spec(k);
    ::slpwlo::testing::set_uniform_wl(narrow, 16);
    EXPECT_NEAR(model.cost(narrow), model.cost(wide) / 2.0,
                model.cost(wide) * 0.01);
    EXPECT_DOUBLE_EQ(model.cost(wide), model.max_cost());
}

TEST(WloFirst, GroupsRespectEqualWlRule) {
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    WloFirstOptions options;
    options.accuracy_db = -30.0;
    const WloFirstResult result = run_wlo_first(
        k, spec, cached_evaluator(k), targets::vex4(), options);
    for (const BlockGroups& bg : result.block_groups) {
        for (const SimdGroup& g : bg.groups) {
            const int wl = spec.result_format(g.lanes[0]).wl();
            for (const OpId lane : g.lanes) {
                EXPECT_EQ(spec.result_format(lane).wl(), wl);
            }
        }
    }
}

TEST(WloFirst, NeverChangesSpecDuringExtraction) {
    // The decoupled baseline's SLP stage must not touch word lengths.
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    WloFirstOptions options;
    options.accuracy_db = -30.0;
    run_tabu_wlo(spec, cached_evaluator(k), targets::vex4(), -30.0,
                 options.tabu);
    std::vector<FixedFormat> before;
    for (const NodeRef node : spec.nodes()) before.push_back(spec.format(node));
    PackedView view(k, blocks_by_priority(k).front());
    extract_slp_plain(view, targets::vex4(), spec, options.slp);
    size_t i = 0;
    for (const NodeRef node : spec.nodes()) {
        EXPECT_EQ(spec.format(node), before[i++]);
    }
}

}  // namespace
}  // namespace slpwlo
