// Differential tests for the compile-and-execute backend (src/exec).
//
// The compiled artifact must be a bit-exact stand-in for the interpreted
// simulators: raw fixed-point outputs and overflow counts identical to
// SimTape::run_fixed (and the tree walker), reference traces identical to
// run_double, and CompiledEvaluator's noise power identical to
// SimulationEvaluator's — across the registry kernels, word-length presets
// and quantization modes. Tests that need the host toolchain skip when no
// compiler is usable (matching tests/test_codegen.cpp).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "accuracy/sim_backend.hpp"
#include "accuracy/sim_evaluator.hpp"
#include "codegen/fixed_c.hpp"
#include "exec/compiled_evaluator.hpp"
#include "exec/compiled_kernel.hpp"
#include "exec/jit_cache.hpp"
#include "exec/measured_cost.hpp"
#include "exec/toolchain.hpp"
#include "flow/flow.hpp"
#include "flow/report.hpp"
#include "kernels/kernels.hpp"
#include "sim/fixed_sim.hpp"
#include "sim/sim_tape.hpp"
#include "target/target_model.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

namespace fs = std::filesystem;

uint64_t bits_of(double v) {
    uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

/// Scoped jit-cache directory so cache-counter tests are deterministic and
/// the suite never litters the shared default directory.
class TempJitDir {
public:
    TempJitDir() {
        path_ = (fs::temp_directory_path() /
                 ("slpwlo-jit-test-" + std::to_string(::getpid()) + "-" +
                  std::to_string(counter_++)))
                    .string();
        exec::set_jit_cache_directory(path_);
    }
    ~TempJitDir() {
        exec::set_jit_cache_directory("");
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string& path() const { return path_; }

private:
    static inline int counter_ = 0;
    std::string path_;
};

bool toolchain_usable() { return exec::host_toolchain().usable; }

/// The WL preset of tests/test_sim.cpp's differential matrix: non-uniform
/// WLs and a deliberately tight IWL so saturation paths are exercised.
FixedPointSpec preset_spec(const Kernel& kernel, int base_wl,
                           QuantMode mode) {
    FixedPointSpec spec(kernel);
    spec.set_quant_mode(mode);
    size_t i = 0;
    for (const NodeRef node : spec.nodes()) {
        const int wl = base_wl + static_cast<int>(i++ % 3);
        spec.set_format(node, FixedFormat(4, wl - 4));
    }
    return spec;
}

/// Raw-integer view of a value-domain output trace (exact: every simulator
/// output is an integer multiple of its store's step).
long long raw_of(double value, double step) {
    return std::llround(value / step);
}

TEST(CompiledExec, FixedMatchesTapeAndWalkerBitwiseAcrossRegistry) {
    if (!toolchain_usable()) GTEST_SKIP() << "no host C compiler";
    TempJitDir jit_dir;
    for (const std::string& name : kernels::benchmark_kernel_names()) {
        const kernels::BenchmarkKernel bk =
            kernels::make_benchmark_kernel(name);
        const SimTape tape(bk.kernel);
        const Stimulus stimulus = make_stimulus(bk.kernel, 29);

        for (const int base_wl : {8, 12, 16}) {
            for (const QuantMode mode :
                 {QuantMode::Truncate, QuantMode::Round}) {
                const FixedPointSpec spec =
                    preset_spec(bk.kernel, base_wl, mode);
                const std::string what = name + " wl" +
                                         std::to_string(base_wl) + " " +
                                         to_string(mode);

                std::string error;
                const auto ck =
                    exec::CompiledKernel::create(bk.kernel, spec, &error);
                ASSERT_NE(ck, nullptr) << what << ": " << error;

                std::vector<int64_t> in(ck->input_elems());
                std::vector<int64_t> out(ck->output_count());
                long long ovf = ck->param_overflow_count() +
                                ck->pack_stimulus(stimulus, in.data());
                ck->run_fixed_batch(in.data(), out.data(), &ovf, 1);

                const FixedSimResult sim = run_fixed(tape, spec, stimulus);
                ASSERT_EQ(sim.outputs.size(), out.size()) << what;
                for (size_t i = 0; i < out.size(); ++i) {
                    ASSERT_EQ(out[i],
                              raw_of(sim.outputs[i], ck->output_step(i)))
                        << what << " output " << i;
                }
                EXPECT_EQ(ovf, sim.overflow_count) << what;

                if (base_wl == 12) {
                    // Close the three-way loop through the tree walker.
                    const FixedSimResult walker =
                        run_fixed_walker(bk.kernel, spec, stimulus);
                    ASSERT_EQ(walker.outputs.size(), out.size()) << what;
                    for (size_t i = 0; i < out.size(); ++i) {
                        ASSERT_EQ(out[i], raw_of(walker.outputs[i],
                                                 ck->output_step(i)))
                            << what << " output " << i;
                    }
                    EXPECT_EQ(ovf, walker.overflow_count) << what;
                }
            }
        }
    }
}

TEST(CompiledExec, RefBatchMatchesRunDoubleBitwiseAcrossRegistry) {
    if (!toolchain_usable()) GTEST_SKIP() << "no host C compiler";
    TempJitDir jit_dir;
    for (const std::string& name : kernels::benchmark_kernel_names()) {
        const kernels::BenchmarkKernel bk =
            kernels::make_benchmark_kernel(name);
        const SimTape tape(bk.kernel);
        const FixedPointSpec spec =
            preset_spec(bk.kernel, 12, QuantMode::Truncate);
        std::string error;
        const auto ck = exec::CompiledKernel::create(bk.kernel, spec, &error);
        ASSERT_NE(ck, nullptr) << name << ": " << error;

        // Two stimuli through one batched call.
        const Stimulus s0 = make_stimulus(bk.kernel, 0x5E1F);
        const Stimulus s1 = make_stimulus(bk.kernel, 0x5E1F + 1);
        const size_t elems = ck->input_elems();
        const size_t oc = ck->output_count();
        std::vector<double> in(2 * elems);
        std::vector<double> out(2 * oc);
        ck->pack_stimulus_ref(s0, in.data());
        ck->pack_stimulus_ref(s1, in.data() + elems);
        ck->run_ref_batch(in.data(), out.data(), 2);

        const std::vector<double> ref0 = run_double(tape, s0).outputs;
        const std::vector<double> ref1 = run_double(tape, s1).outputs;
        ASSERT_EQ(ref0.size(), oc) << name;
        for (size_t i = 0; i < oc; ++i) {
            ASSERT_EQ(bits_of(out[i]), bits_of(ref0[i]))
                << name << " ref output " << i;
            ASSERT_EQ(bits_of(out[oc + i]), bits_of(ref1[i]))
                << name << " ref output " << i << " (second stimulus)";
        }
    }
}

TEST(CompiledExec, EvaluatorNoisePowerBitIdenticalToSimulation) {
    if (!toolchain_usable()) GTEST_SKIP() << "no host C compiler";
    TempJitDir jit_dir;
    for (const std::string& name : kernels::benchmark_kernel_names()) {
        const kernels::BenchmarkKernel bk =
            kernels::make_benchmark_kernel(name);
        const SimulationEvaluator sim_eval(bk.kernel);
        const WalkerEvaluator walker_eval(bk.kernel);
        const exec::CompiledEvaluator compiled_eval(bk.kernel);
        for (const int base_wl : {10, 14}) {
            const FixedPointSpec spec =
                preset_spec(bk.kernel, base_wl, QuantMode::Truncate);
            const double sim_power = sim_eval.noise_power(spec);
            EXPECT_EQ(bits_of(compiled_eval.noise_power(spec)),
                      bits_of(sim_power))
                << name << " wl" << base_wl;
            EXPECT_EQ(bits_of(walker_eval.noise_power(spec)),
                      bits_of(sim_power))
                << name << " wl" << base_wl;
        }
        EXPECT_FALSE(compiled_eval.degraded()) << name;
    }
}

TEST(CompiledExec, JitCacheHitsAndRebuildsOnFingerprintChange) {
    if (!toolchain_usable()) GTEST_SKIP() << "no host C compiler";
    TempJitDir jit_dir;
    const Kernel& kernel = ::slpwlo::testing::small_fir();
    const FixedPointSpec spec = preset_spec(kernel, 12, QuantMode::Truncate);

    exec::reset_jit_cache_stats();
    std::string error;
    ASSERT_NE(exec::CompiledKernel::create(kernel, spec, &error), nullptr)
        << error;
    exec::JitCacheStats stats = exec::jit_cache_stats();
    EXPECT_EQ(stats.builds, 1);
    EXPECT_EQ(stats.hits, 0);

    // Same formats again: the object is served from disk.
    ASSERT_NE(exec::CompiledKernel::create(kernel, spec, &error), nullptr);
    stats = exec::jit_cache_stats();
    EXPECT_EQ(stats.builds, 1);
    EXPECT_EQ(stats.hits, 1);

    // Any format change changes the fingerprint and forces a rebuild.
    FixedPointSpec changed = spec;
    changed.set_wl(changed.nodes().front(), 20);
    EXPECT_NE(exec::spec_format_fingerprint(changed),
              exec::spec_format_fingerprint(spec));
    ASSERT_NE(exec::CompiledKernel::create(kernel, changed, &error), nullptr);
    stats = exec::jit_cache_stats();
    EXPECT_EQ(stats.builds, 2);
    EXPECT_EQ(stats.hits, 1);

    // Quantization mode is part of the key too.
    FixedPointSpec rounded = spec;
    rounded.set_quant_mode(QuantMode::Round);
    ASSERT_NE(exec::CompiledKernel::create(kernel, rounded, &error), nullptr);
    stats = exec::jit_cache_stats();
    EXPECT_EQ(stats.builds, 3);
}

TEST(CompiledExec, StaleTempFilesAreSweptByAgeOnly) {
    TempJitDir jit_dir;
    fs::create_directories(jit_dir.path());
    const fs::path stale = fs::path(jit_dir.path()) / "dead.so.tmp.999.0";
    const fs::path fresh = fs::path(jit_dir.path()) / "live.so.tmp.1000.0";
    const fs::path object = fs::path(jit_dir.path()) / "0123456789abcdef.so";
    for (const fs::path& p : {stale, fresh, object}) {
        std::ofstream(p) << "x";
    }
    fs::last_write_time(stale, fs::file_time_type::clock::now() -
                                   std::chrono::hours(1));

    EXPECT_EQ(exec::jit_cleanup_stale(jit_dir.path(), 60000), 1);
    EXPECT_FALSE(fs::exists(stale));
    EXPECT_TRUE(fs::exists(fresh));   // young temp: a build may be running
    EXPECT_TRUE(fs::exists(object));  // published objects are never swept
    EXPECT_EQ(exec::jit_cleanup_stale("/nonexistent-dir", 1), 0);
}

TEST(CompiledExec, EvaluatorDegradesToTapeWhenBuildFails) {
    // An unusable cache directory makes every build fail, which must leave
    // the evaluator bit-identical to the tape backend instead of throwing.
    exec::set_jit_cache_directory("/dev/null/unwritable");
    const Kernel& kernel = ::slpwlo::testing::small_fir();
    const exec::CompiledEvaluator compiled_eval(kernel);
    const SimulationEvaluator sim_eval(kernel);
    const FixedPointSpec spec = preset_spec(kernel, 12, QuantMode::Truncate);
    EXPECT_EQ(bits_of(compiled_eval.noise_power(spec)),
              bits_of(sim_eval.noise_power(spec)));
    EXPECT_TRUE(compiled_eval.degraded());
    exec::set_jit_cache_directory("");
}

TEST(CompiledExec, DegenerateFormatsDegradeToTapeBitIdentically) {
    // A spec straight out of range analysis can carry wl <= 0 formats
    // (fwl stays 0 until WLO runs); those cannot be represented in the
    // generated C's raw integer domain. The evaluator must refuse to
    // compile — before invoking any toolchain — and replay the tape,
    // staying bit-identical to the simulation backend instead of
    // executing undefined-behavior shifts (caught by the corpus
    // differential harness on kernels with sub-unit value ranges).
    TempJitDir jit_dir;
    const Kernel& kernel = ::slpwlo::testing::small_fir();
    FixedPointSpec spec = preset_spec(kernel, 12, QuantMode::Truncate);
    spec.set_wl(spec.nodes().front(), 0);
    ASSERT_FALSE(spec_fits_c_domain(spec));
    std::string why;
    EXPECT_EQ(exec::CompiledKernel::create(kernel, spec, &why), nullptr);
    EXPECT_NE(why.find("raw integer domain"), std::string::npos) << why;
    EXPECT_THROW(emit_fixed_c(kernel, spec), Error);

    const exec::CompiledEvaluator compiled_eval(kernel);
    const SimulationEvaluator sim_eval(kernel);
    EXPECT_EQ(bits_of(compiled_eval.noise_power(spec)),
              bits_of(sim_eval.noise_power(spec)));
    EXPECT_TRUE(compiled_eval.degraded());

    // A well-formed spec on the same evaluator still compiles.
    const FixedPointSpec good = preset_spec(kernel, 12, QuantMode::Truncate);
    EXPECT_EQ(bits_of(compiled_eval.noise_power(good)),
              bits_of(sim_eval.noise_power(good)));
}

TEST(CompiledExec, MeasuredCostReportsPlausibleTiming) {
    TempJitDir jit_dir;
    const Kernel& kernel = ::slpwlo::testing::small_fir();
    const FixedPointSpec spec = preset_spec(kernel, 12, QuantMode::Truncate);
    exec::MeasureOptions options;
    options.reps = 3;
    options.batch = 8;
    options.calibrate_ns = 200000;
    const long long ns = exec::measure_kernel_ns(kernel, spec, options);
    if (!toolchain_usable()) {
        EXPECT_EQ(ns, 0);
    } else {
        EXPECT_GT(ns, 0);
        EXPECT_LT(ns, 1000000000LL);  // a 16-tap FIR is not a second
    }
}

// The `--evaluator` axis must actually execute during a measured flow:
// the post-flow hook verifies the final spec on the configured backend
// (FlowResult::sim_noise_db) while the identity JSON stays byte-identical
// across backends — including the degraded compiled-without-a-compiler
// case, which falls back to the tape.
TEST(CompiledExec, FlowMeasureRunsConfiguredEvaluator) {
    TempJitDir jit_dir;
    const KernelContext context(::slpwlo::testing::small_fir());
    FlowOptions tape;
    tape.accuracy_db = -25.0;
    tape.measure = true;
    tape.evaluator = SimBackend::Tape;
    FlowOptions compiled = tape;
    compiled.evaluator = SimBackend::Compiled;

    const FlowResult a = run_wlo_slp_flow(context, targets::xentium(), tape);
    const FlowResult b =
        run_wlo_slp_flow(context, targets::xentium(), compiled);

    EXPECT_NE(a.sim_noise_db, 0.0);
    EXPECT_EQ(bits_of(a.sim_noise_db), bits_of(b.sim_noise_db));
    EXPECT_EQ(to_json(a), to_json(b));

    const std::string measured = to_json(a, /*include_measured=*/true);
    EXPECT_NE(measured.find("\"sim_noise_db\":"), std::string::npos);
    EXPECT_NE(measured.find("\"measured_ns\":"), std::string::npos);
    if (toolchain_usable()) EXPECT_GT(b.measured_ns, 0);

    FlowOptions unmeasured = tape;
    unmeasured.measure = false;
    const FlowResult c =
        run_wlo_slp_flow(context, targets::xentium(), unmeasured);
    EXPECT_EQ(c.sim_noise_db, 0.0);
    EXPECT_EQ(c.measured_ns, 0);
    EXPECT_EQ(to_json(c), to_json(a));
}

TEST(CompiledExec, FactoryCoversAllBackends) {
    const Kernel& kernel = ::slpwlo::testing::small_fir();
    EXPECT_NE(exec::make_noise_evaluator(kernel, SimBackend::Tape), nullptr);
    EXPECT_NE(exec::make_noise_evaluator(kernel, SimBackend::Walker),
              nullptr);
    EXPECT_NE(exec::make_noise_evaluator(kernel, SimBackend::Compiled),
              nullptr);
    EXPECT_EQ(parse_sim_backend("tape"), SimBackend::Tape);
    EXPECT_EQ(parse_sim_backend("walker"), SimBackend::Walker);
    EXPECT_EQ(parse_sim_backend("compiled"), SimBackend::Compiled);
    EXPECT_EQ(to_string(SimBackend::Compiled), "compiled");
    EXPECT_THROW(parse_sim_backend("native"), Error);
}

}  // namespace
}  // namespace slpwlo
