// Code-generation tests: structural checks on the emitted C, plus the
// compile-and-run integration test — the generated fixed-point and SIMD C
// must be bit-exact with the bit-accurate simulator (host compiler
// required; skipped if none is available).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "codegen/fixed_c.hpp"
#include "codegen/simd_c.hpp"
#include "flow/flow.hpp"
#include "sim/fixed_sim.hpp"
#include "support/dbmath.hpp"
#include "support/text.hpp"
#include "target/target_model.hpp"
#include "codegen/c_emitter.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

using ::slpwlo::testing::initial_spec;
using ::slpwlo::testing::set_uniform_wl;
using ::slpwlo::testing::small_fir;

bool host_cc_available() {
    static const bool available =
        std::system("cc --version > /dev/null 2>&1") == 0;
    return available;
}

TEST(FixedC, StructuralContent) {
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    const FixedCResult result = emit_fixed_c(k, spec);
    EXPECT_EQ(result.function_name, "fir16_fixed");
    EXPECT_TRUE(contains(result.code, "void fir16_fixed("));
    EXPECT_TRUE(contains(result.code, "static const int16_t c[16]"));
    EXPECT_TRUE(contains(result.code, "for (int"));
    EXPECT_TRUE(contains(result.code, "slpwlo_shr"));  // scaling shifts
    EXPECT_TRUE(contains(result.code, "slpwlo_sat"));
}

TEST(FixedC, RawCoefficientValues) {
    const Kernel& k = ::slpwlo::testing::make_two_tap(0.5, 0.25);
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    const FixedCResult result = emit_fixed_c(k, spec);
    // c in format <iwl=0 (|c|<=0.5), fwl=16>: 0.5 saturates to 0.5-2^-16.
    const FixedFormat fmt = spec.array_format(k.find_array("c"));
    const long long raw0 = raw_fixed_value(0.5, fmt, QuantMode::Truncate);
    EXPECT_TRUE(contains(result.code, std::to_string(raw0)));
}

TEST(SimdC, StructuralContent) {
    const KernelContext ctx(small_fir());
    FlowOptions options;
    options.accuracy_db = -30.0;
    const FlowResult flow =
        run_wlo_slp_flow(ctx, targets::xentium(), options);
    const FixedCResult result =
        emit_simd_c(ctx.kernel(), flow.spec, flow.groups);
    EXPECT_TRUE(contains(result.code, "SLPWLO_VLOAD"));
    EXPECT_TRUE(contains(result.code, "SLPWLO_VMUL"));
    EXPECT_TRUE(contains(result.code, "SLPWLO_VADD"));
    EXPECT_TRUE(contains(result.code, "slpwlo_simd_emu.h"));
}

TEST(SimdC, EmulationHeaderAndMappingNotes) {
    const std::string header = simd_emulation_header();
    EXPECT_TRUE(contains(header, "SLPWLO_VADD"));
    EXPECT_TRUE(contains(header, "slpwlo_vec"));
    const std::string notes =
        simd_target_mapping_comment(targets::xentium());
    EXPECT_TRUE(contains(notes, "XENTIUM"));
    EXPECT_TRUE(contains(notes, "32 bits"));
}

/// Compile-and-run equivalence: generated code vs bit-accurate simulator.
class CodegenRoundTrip : public ::testing::Test {
protected:
    /// Writes a main() that feeds raw inputs, runs the generated function
    /// and prints outputs; returns the printed raw outputs.
    std::vector<long long> compile_and_run(const std::string& code,
                                           const std::string& fn,
                                           const Kernel& kernel,
                                           const FixedPointSpec& spec,
                                           const Stimulus& stimulus,
                                           const std::string& tag) {
        const std::string dir = ::testing::TempDir() + "slpwlo_" + tag;
        std::system(("mkdir -p " + dir).c_str());
        {
            std::ofstream emu(dir + "/slpwlo_simd_emu.h");
            emu << simd_emulation_header();
        }
        std::ofstream src(dir + "/gen.c");
        src << code << "\n#include <stdio.h>\n";
        // Driver.
        const ArrayDecl& in = kernel.arrays()[0];
        const FixedFormat in_fmt = spec.array_format(ArrayId(0));
        src << "int main(void) {\n";
        src << "  static " << (in_fmt.wl() <= 8    ? "int8_t"
                               : in_fmt.wl() <= 16 ? "int16_t"
                                                   : "int32_t")
            << " in[" << in.size << "] = {";
        for (int i = 0; i < in.size; ++i) {
            src << raw_fixed_value(stimulus[0][static_cast<size_t>(i)],
                                   in_fmt, spec.quant_mode())
                << (i + 1 < in.size ? "," : "");
        }
        src << "};\n";
        ArrayId out_id;
        for (size_t a = 0; a < kernel.arrays().size(); ++a) {
            if (kernel.arrays()[a].storage == StorageClass::Output) {
                out_id = ArrayId(static_cast<int32_t>(a));
            }
        }
        const ArrayDecl& out = kernel.array(out_id);
        const FixedFormat out_fmt = spec.array_format(out_id);
        src << "  static " << (out_fmt.wl() <= 8    ? "int8_t"
                               : out_fmt.wl() <= 16 ? "int16_t"
                                                    : "int32_t")
            << " out[" << out.size << "] = {0};\n";
        src << "  " << fn << "(in, out);\n";
        src << "  for (int i = 0; i < " << out.size
            << "; ++i) printf(\"%lld\\n\", (long long)out[i]);\n";
        src << "  return 0;\n}\n";
        src.close();

        const std::string bin = dir + "/gen";
        const std::string cmd =
            "cc -std=c99 -O1 -I " + dir + " -o " + bin + " " + dir + "/gen.c";
        EXPECT_EQ(std::system(cmd.c_str()), 0) << "generated C must compile";

        std::vector<long long> values;
        FILE* pipe = popen((bin).c_str(), "r");
        EXPECT_NE(pipe, nullptr);
        long long v = 0;
        while (fscanf(pipe, "%lld", &v) == 1) values.push_back(v);
        pclose(pipe);
        return values;
    }

    void expect_matches_simulator(const Kernel& kernel,
                                  const FixedPointSpec& spec,
                                  const std::vector<long long>& raw_outputs) {
        const Stimulus stimulus = make_stimulus(kernel, 0xC0DE);
        const FixedSimResult sim = run_fixed(kernel, spec, stimulus);
        ArrayId out_id;
        for (size_t a = 0; a < kernel.arrays().size(); ++a) {
            if (kernel.arrays()[a].storage == StorageClass::Output) {
                out_id = ArrayId(static_cast<int32_t>(a));
            }
        }
        const double step = spec.array_format(out_id).step();
        // The driver prints the whole output array; kernels that shift
        // their writes (IIR warm-up region) leave a zero prefix.
        ASSERT_GE(raw_outputs.size(), sim.outputs.size());
        const size_t offset = raw_outputs.size() - sim.outputs.size();
        for (size_t i = 0; i < offset; ++i) {
            EXPECT_EQ(raw_outputs[i], 0) << "warm-up element " << i;
        }
        for (size_t i = 0; i < sim.outputs.size(); ++i) {
            const long long expected =
                static_cast<long long>(std::llround(sim.outputs[i] / step));
            EXPECT_EQ(raw_outputs[i + offset], expected) << "output " << i;
        }
    }
};

TEST_F(CodegenRoundTrip, FixedCMatchesSimulatorBitExactly) {
    if (!host_cc_available()) GTEST_SKIP() << "no host C compiler";
    const Kernel& k = small_fir();
    FixedPointSpec spec = initial_spec(k);
    set_uniform_wl(spec, 16);
    const Stimulus stimulus = make_stimulus(k, 0xC0DE);
    const FixedCResult gen = emit_fixed_c(k, spec);
    const auto raw = compile_and_run(gen.code, gen.function_name, k, spec,
                                     stimulus, "fixed");
    expect_matches_simulator(k, spec, raw);
}

TEST_F(CodegenRoundTrip, SimdCMatchesSimulatorBitExactly) {
    if (!host_cc_available()) GTEST_SKIP() << "no host C compiler";
    const KernelContext ctx(small_fir());
    FlowOptions options;
    options.accuracy_db = -30.0;
    const FlowResult flow = run_wlo_slp_flow(ctx, targets::vex4(), options);
    const Stimulus stimulus = make_stimulus(ctx.kernel(), 0xC0DE);
    const FixedCResult gen =
        emit_simd_c(ctx.kernel(), flow.spec, flow.groups);
    const auto raw = compile_and_run(gen.code, gen.function_name,
                                     ctx.kernel(), flow.spec, stimulus,
                                     "simd");
    expect_matches_simulator(ctx.kernel(), flow.spec, raw);
}

TEST_F(CodegenRoundTrip, IirFixedCMatches) {
    if (!host_cc_available()) GTEST_SKIP() << "no host C compiler";
    const Kernel& k = ::slpwlo::testing::small_iir();
    RangeOptions range;
    range.method = RangeMethod::Auto;
    FixedPointSpec spec = build_initial_spec(k, range);
    set_uniform_wl(spec, 16);
    const Stimulus stimulus = make_stimulus(k, 0xC0DE);
    const FixedCResult gen = emit_fixed_c(k, spec);
    const auto raw = compile_and_run(gen.code, gen.function_name, k, spec,
                                     stimulus, "iir");
    expect_matches_simulator(k, spec, raw);
}

}  // namespace
}  // namespace slpwlo
