// Tests for the built-in benchmark kernels and their filter designers.
#include <gtest/gtest.h>

#include <cmath>

#include "ir/verifier.hpp"
#include "kernels/kernels.hpp"
#include "sim/double_sim.hpp"
#include "support/polynomial.hpp"
#include "support/diagnostics.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

TEST(FirDesign, UnitDcGainAndSymmetry) {
    const auto c = kernels::design_fir_lowpass(64);
    ASSERT_EQ(c.size(), 64u);
    double sum = 0.0;
    for (const double v : c) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    for (size_t k = 0; k < c.size() / 2; ++k) {
        EXPECT_NEAR(c[k], c[c.size() - 1 - k], 1e-12) << k;
    }
}

TEST(FirDesign, MagnitudesSpreadOverOrders) {
    // Heterogeneous coefficient magnitudes drive heterogeneous IWLs, the
    // mechanism behind scaling mismatches (DESIGN.md). Expect > 100x spread.
    const auto c = kernels::design_fir_lowpass(64);
    double min_abs = 1e9, max_abs = 0.0;
    for (const double v : c) {
        min_abs = std::min(min_abs, std::fabs(v));
        max_abs = std::max(max_abs, std::fabs(v));
    }
    EXPECT_GT(max_abs / min_abs, 100.0);
}

TEST(IirDesign, StableAndUnitShape) {
    const auto design = kernels::design_iir(10);
    EXPECT_EQ(design.b.size(), 11u);
    EXPECT_EQ(design.a.size(), 10u);
    // DC gain of the designed transfer function is 0.25.
    Polynomial a_full{1.0};
    for (const double v : design.a) a_full.push_back(v);
    EXPECT_NEAR(poly_eval(design.b, 1.0) / poly_eval(a_full, 1.0), 0.25,
                1e-9);
}

TEST(IirDesign, ImpulseResponseDecays) {
    const auto design = kernels::design_iir(10);
    // Direct-form simulation of the impulse response.
    std::vector<double> y(400, 0.0);
    for (int n = 0; n < 400; ++n) {
        double acc = n <= 10 ? design.b[static_cast<size_t>(n)] : 0.0;
        for (int t = 1; t <= 10 && t <= n; ++t) {
            acc -= design.a[static_cast<size_t>(t - 1)] * y[n - t];
        }
        y[static_cast<size_t>(n)] = acc;
    }
    double tail = 0.0;
    for (int n = 350; n < 400; ++n) tail += std::fabs(y[n]);
    EXPECT_LT(tail, 1e-6);
}

TEST(ConvDesign, GaussianL1IsOne) {
    const auto k = kernels::design_conv3x3();
    ASSERT_EQ(k.size(), 9u);
    double sum = 0.0;
    for (const double v : k) sum += v;
    EXPECT_DOUBLE_EQ(sum, 1.0);
    EXPECT_DOUBLE_EQ(k[4], 0.25);  // center dominates
}

TEST(BenchmarkKernels, AllVerifyAndRun) {
    for (const std::string& name : kernels::benchmark_kernel_names()) {
        const auto bench = kernels::make_benchmark_kernel(name);
        EXPECT_NO_THROW(verify_kernel(bench.kernel)) << name;
        const Stimulus stimulus = make_stimulus(bench.kernel, 42);
        const auto result = run_double(bench.kernel, stimulus);
        EXPECT_FALSE(result.outputs.empty()) << name;
        for (const double v : result.outputs) {
            EXPECT_TRUE(std::isfinite(v)) << name;
        }
    }
}

TEST(BenchmarkKernels, UnknownNameThrows) {
    EXPECT_THROW(kernels::make_benchmark_kernel("FFT"), Error);
}

TEST(BenchmarkKernels, FirOutputCountMatchesSamples) {
    const auto bench = kernels::make_benchmark_kernel("FIR");
    const auto result = run_double(bench.kernel, make_stimulus(bench.kernel, 1));
    EXPECT_EQ(result.outputs.size(), 512u);
}

TEST(BenchmarkKernels, ConvOutputIsImageSized) {
    const auto bench = kernels::make_benchmark_kernel("CONV");
    const auto result = run_double(bench.kernel, make_stimulus(bench.kernel, 1));
    EXPECT_EQ(result.outputs.size(), 256u);
}

TEST(BenchmarkKernels, IirOutputsBounded) {
    const auto bench = kernels::make_benchmark_kernel("IIR");
    const auto result = run_double(bench.kernel, make_stimulus(bench.kernel, 1));
    EXPECT_EQ(result.outputs.size(), 512u);
    for (const double v : result.outputs) {
        EXPECT_LT(std::fabs(v), 4.0);
    }
}

TEST(BenchmarkKernels, IirMatchesDirectForm) {
    // The kernel IR implementation must agree with a plain C++ direct-form
    // implementation of the same filter.
    kernels::IirConfig config;
    config.order = 10;
    config.samples = 64;
    const Kernel k = kernels::make_iir10(config);
    const auto design = kernels::design_iir(10);
    const Stimulus stimulus = make_stimulus(k, 13);
    const auto result = run_double(k, stimulus);

    const auto& x = stimulus[0];
    const int x_shift = static_cast<int>(k.array(ArrayId(0)).size) - 64;
    std::vector<double> y(64, 0.0);
    for (int n = 0; n < 64; ++n) {
        double acc = 0.0;
        for (int t = 0; t <= 10; ++t) {
            const int xi = n - t + x_shift;
            if (xi >= 0) acc += design.b[t] * x[xi];
        }
        for (int t = 1; t <= 10; ++t) {
            if (n - t >= 0) acc -= design.a[t - 1] * y[n - t];
        }
        y[n] = acc;
        EXPECT_NEAR(result.outputs[n], acc, 1e-9) << "sample " << n;
    }
}

TEST(BenchmarkKernels, ConvMatchesDirectStencil) {
    kernels::ConvConfig config;
    config.height = 4;
    config.width = 4;
    const Kernel k = kernels::make_conv3x3(config);
    const Stimulus stimulus = make_stimulus(k, 17);
    const auto result = run_double(k, stimulus);
    const auto& img = stimulus[0];
    const auto coef = kernels::design_conv3x3();
    const int in_w = 6;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            double acc = 0.0;
            for (int u = 0; u < 3; ++u) {
                for (int v = 0; v < 3; ++v) {
                    acc += coef[u * 3 + v] * img[(i + u) * in_w + (j + v)];
                }
            }
            EXPECT_NEAR(result.outputs[i * 4 + j], acc, 1e-12);
        }
    }
}

TEST(BenchmarkKernels, FirTapBlockShape) {
    // The unrolled tap block must contain exactly 4 lanes of
    // load/load/mul/add (SLP raw material).
    const auto bench = kernels::make_benchmark_kernel("FIR");
    const auto blocks = bench.kernel.blocks_in_order();
    ASSERT_EQ(blocks.size(), 3u);
    int loads = 0, muls = 0, adds = 0;
    for (const OpId op : bench.kernel.block(blocks[1]).ops) {
        switch (bench.kernel.op(op).kind) {
            case OpKind::Load: ++loads; break;
            case OpKind::Mul: ++muls; break;
            case OpKind::Add: ++adds; break;
            default: break;
        }
    }
    EXPECT_EQ(loads, 8);
    EXPECT_EQ(muls, 4);
    EXPECT_EQ(adds, 4);
}

}  // namespace
}  // namespace slpwlo
