// Unit tests for the IR: affine indices, builder, printer, verifier,
// dependence analysis, unrolling.
#include <gtest/gtest.h>

#include <functional>

#include "ir/builder.hpp"
#include "ir/dependence.hpp"
#include "ir/printer.hpp"
#include "ir/unroll.hpp"
#include "ir/verifier.hpp"
#include "sim/double_sim.hpp"
#include "support/diagnostics.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

using ::slpwlo::testing::small_fir;

// --- Affine ---------------------------------------------------------------------

TEST(Affine, ConstantAlgebra) {
    const Affine a(5);
    EXPECT_TRUE(a.is_constant());
    EXPECT_EQ((a + 3).offset(), 8);
    EXPECT_EQ((a - 7).offset(), -2);
    EXPECT_EQ((a * 2).offset(), 10);
    EXPECT_EQ((-a).offset(), -5);
}

TEST(Affine, VariableAlgebra) {
    const LoopId l0(0), l1(1);
    const Affine idx = Affine::var(l0) * 3 - Affine::var(l1) + 7;
    EXPECT_EQ(idx.coeff(l0), 3);
    EXPECT_EQ(idx.coeff(l1), -1);
    EXPECT_EQ(idx.offset(), 7);
    EXPECT_FALSE(idx.is_constant());
}

TEST(Affine, ZeroCoefficientsPruned) {
    const LoopId l0(0);
    const Affine idx = Affine::var(l0) - Affine::var(l0);
    EXPECT_TRUE(idx.is_constant());
    EXPECT_EQ(idx.offset(), 0);
    EXPECT_TRUE((Affine::var(l0) * 0).is_constant());
}

TEST(Affine, ComparableAndDifference) {
    const LoopId l0(0), l1(1);
    const Affine a = Affine::var(l0) + 5;
    const Affine b = Affine::var(l0) + 2;
    const Affine c = Affine::var(l1) + 5;
    EXPECT_TRUE(a.comparable(b));
    EXPECT_EQ(a.constant_difference(b), 3);
    EXPECT_FALSE(a.comparable(c));
    EXPECT_EQ(a.constant_difference(c), std::nullopt);
}

TEST(Affine, Substitution) {
    const LoopId k(0), j(1);
    // i = 4j + 2 substituted into (3i + 1) gives 12j + 7.
    const Affine idx = Affine::var(k) * 3 + 1;
    const Affine sub = idx.substituted(k, Affine::var(j) * 4 + 2);
    EXPECT_EQ(sub.coeff(j), 12);
    EXPECT_EQ(sub.offset(), 7);
    EXPECT_EQ(sub.coeff(k), 0);
}

TEST(Affine, Evaluate) {
    const LoopId l0(0), l1(1);
    const Affine idx = Affine::var(l0) * 2 + Affine::var(l1) * -1 + 3;
    EXPECT_EQ(idx.evaluate({{l0, 5}, {l1, 4}}), 9);
    EXPECT_THROW(idx.evaluate({{l0, 5}}), Error);
}

// --- Builder / printer / structure -------------------------------------------------

TEST(Builder, SmallKernelStructure) {
    const Kernel& k = small_fir();
    EXPECT_EQ(k.name(), "fir16");
    ASSERT_EQ(k.arrays().size(), 3u);
    EXPECT_EQ(k.array(ArrayId(0)).name, "x");
    EXPECT_EQ(k.array(ArrayId(1)).storage, StorageClass::Param);
    EXPECT_EQ(k.array(ArrayId(2)).storage, StorageClass::Output);
    EXPECT_EQ(k.loops().size(), 2u);
    EXPECT_EQ(k.find_array("c"), ArrayId(1));
    EXPECT_FALSE(k.find_array("nonexistent").valid());
}

TEST(Builder, RejectsDuplicatesAndBadLoops) {
    KernelBuilder b("bad");
    b.output("y", 4);
    EXPECT_THROW(b.output("y", 4), Error);
    EXPECT_THROW(b.begin_loop("n", 5, 5), Error);
    EXPECT_THROW(b.param("empty", {}), Error);
}

TEST(Builder, TakeRequiresClosedLoops) {
    KernelBuilder b("open");
    b.output("y", 4);
    b.begin_loop("n", 0, 4);
    EXPECT_THROW(b.take(), Error);
}

TEST(Builder, BlockFrequencies) {
    const Kernel& k = small_fir();
    // Blocks: [acc init] [taps] [reduce+store] — taps block runs
    // samples * taps/lanes times.
    const auto blocks = k.blocks_in_order();
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_EQ(k.block_frequency(blocks[0]), 128);
    EXPECT_EQ(k.block_frequency(blocks[1]), 128 * 4);
    EXPECT_EQ(k.block_frequency_per_sample(blocks[1]), 4);
    EXPECT_EQ(k.block_frequency_per_sample(blocks[2]), 1);
}

TEST(Builder, EnclosingLoops) {
    const Kernel& k = small_fir();
    const auto blocks = k.blocks_in_order();
    EXPECT_EQ(k.enclosing_loops(blocks[0]).size(), 1u);
    EXPECT_EQ(k.enclosing_loops(blocks[1]).size(), 2u);
    // Outermost first.
    EXPECT_EQ(k.enclosing_loops(blocks[1])[0],
              k.enclosing_loops(blocks[0])[0]);
}

TEST(Printer, MentionsDeclarationsAndOps) {
    const std::string text = print_kernel(small_fir());
    EXPECT_NE(text.find("kernel fir16"), std::string::npos);
    EXPECT_NE(text.find("input x[143] range [-1, 1]"), std::string::npos);
    EXPECT_NE(text.find("mul"), std::string::npos);
    EXPECT_NE(text.find("store y["), std::string::npos);
    EXPECT_NE(text.find("loop n"), std::string::npos);
}

// --- Verifier -----------------------------------------------------------------

TEST(Verifier, AcceptsBuiltKernels) {
    EXPECT_NO_THROW(verify_kernel(small_fir()));
    EXPECT_NO_THROW(verify_kernel(::slpwlo::testing::small_iir()));
    EXPECT_NO_THROW(verify_kernel(::slpwlo::testing::small_conv()));
}

TEST(Verifier, CatchesOutOfBounds) {
    KernelBuilder b("oob");
    const ArrayId x = b.input("x", 4, Interval(-1.0, 1.0));
    const ArrayId y = b.output("y", 8);
    const LoopId n = b.begin_loop("n", 0, 8);
    b.store(y, Affine::var(n), b.load(x, Affine::var(n)));  // x[7] overflows
    b.end_loop();
    const Kernel k = b.take();
    EXPECT_THROW(verify_kernel(k), Error);
}

TEST(Verifier, CatchesWriteToReadOnly) {
    KernelBuilder b("ro");
    const ArrayId x = b.input("x", 4, Interval(-1.0, 1.0));
    const VarId v = b.constant(1.0);
    b.store(x, Affine(0), v);
    const Kernel k = b.take();
    EXPECT_THROW(verify_kernel(k), Error);
}

TEST(Verifier, CatchesForeignLoopIndex) {
    KernelBuilder b("foreign");
    const ArrayId y = b.output("y", 8);
    const LoopId n = b.begin_loop("n", 0, 4);
    b.set_const(b.user_var("t"), 0.0);
    b.end_loop();
    // Index references loop n outside its body.
    const VarId v = b.constant(1.0);
    b.store(y, Affine::var(n), v);
    const Kernel k = b.take();
    EXPECT_THROW(verify_kernel(k), Error);
}

// --- Dependence analysis -----------------------------------------------------------

/// Builds: t0 = x[i]; t1 = x[i+1]; a = t0*c; b = t1*c; s = a+b; store y[i] = s
/// plus an accumulator chain to exercise flow deps.
struct DepFixture {
    DepFixture() : builder("deps") {
        x = builder.input("x", 10, Interval(-1.0, 1.0));
        y = builder.output("y", 8);
        n = builder.begin_loop("n", 0, 8);
    }

    Kernel finish() {
        builder.end_loop();
        return builder.take();
    }

    KernelBuilder builder;
    ArrayId x, y;
    LoopId n;
};

TEST(Dependence, IndependentMulsAndChains) {
    DepFixture f;
    const VarId t0 = f.builder.load(f.x, Affine::var(f.n));
    const VarId t1 = f.builder.load(f.x, Affine::var(f.n) + 1);
    const VarId m0 = f.builder.mul(t0, t0);
    const VarId m1 = f.builder.mul(t1, t1);
    const VarId s = f.builder.add(m0, m1);
    f.builder.store(f.y, Affine::var(f.n), s);
    const Kernel k = f.finish();

    const BlockDeps deps(k, k.blocks_in_order()[0]);
    // loads (0,1) independent; muls (2,3) independent.
    EXPECT_TRUE(deps.independent(0, 1));
    EXPECT_TRUE(deps.independent(2, 3));
    // mul depends on its load; add depends on both muls transitively.
    EXPECT_TRUE(deps.depends(2, 0));
    EXPECT_FALSE(deps.depends(2, 1));
    EXPECT_TRUE(deps.depends(4, 0));
    EXPECT_TRUE(deps.depends(4, 3));
    // store depends on everything upstream.
    EXPECT_TRUE(deps.depends(5, 0));
}

TEST(Dependence, AccumulatorCreatesSerialChain) {
    DepFixture f;
    const VarId acc = f.builder.user_var("acc");
    f.builder.set_const(acc, 0.0);                           // 0
    const VarId t0 = f.builder.load(f.x, Affine::var(f.n));  // 1
    f.builder.add(acc, t0, acc);                             // 2
    const VarId t1 = f.builder.load(f.x, Affine::var(f.n) + 1);  // 3
    f.builder.add(acc, t1, acc);                                 // 4
    f.builder.store(f.y, Affine::var(f.n), acc);                 // 5
    const Kernel k = f.finish();

    const BlockDeps deps(k, k.blocks_in_order()[0]);
    // The two accumulate ops are serialized (flow through acc).
    EXPECT_FALSE(deps.independent(2, 4));
    EXPECT_TRUE(deps.depends(4, 2));
    // Loads stay independent of each other.
    EXPECT_TRUE(deps.independent(1, 3));
}

TEST(Dependence, MemoryAliasConservatism) {
    KernelBuilder b("mem");
    const ArrayId buf = b.buffer("buf", 16);
    const ArrayId y = b.output("y", 8);
    const LoopId n = b.begin_loop("n", 0, 8);
    const VarId v = b.constant(1.0);
    b.store(buf, Affine::var(n), v);                       // 1
    const VarId r1 = b.load(buf, Affine::var(n));          // 2: same index
    const VarId r2 = b.load(buf, Affine::var(n) + 4);      // 3: disjoint
    b.store(y, Affine::var(n), b.add(r1, r2));
    b.end_loop();
    const Kernel k = b.take();

    const BlockDeps deps(k, k.blocks_in_order()[0]);
    EXPECT_TRUE(deps.depends(2, 1));    // load after aliasing store
    EXPECT_FALSE(deps.depends(3, 1));   // provably disjoint
    EXPECT_TRUE(deps.independent(1, 3));
}

TEST(Dependence, LoopCarriedDistance) {
    const LoopId n(0);
    // store y[n], load y[n-1] -> distance 1.
    EXPECT_EQ(loop_carried_distance(Affine::var(n), Affine::var(n) - 1, n), 1);
    // store y[n], load y[n-4] -> distance 4.
    EXPECT_EQ(loop_carried_distance(Affine::var(n), Affine::var(n) - 4, n), 4);
    // store y[n], load y[n+1] -> never (reads ahead of writes).
    EXPECT_EQ(loop_carried_distance(Affine::var(n), Affine::var(n) + 1, n),
              std::nullopt);
    // Same element every iteration.
    EXPECT_EQ(loop_carried_distance(Affine(3), Affine(3), n), 1);
    EXPECT_EQ(loop_carried_distance(Affine(3), Affine(4), n), std::nullopt);
}

TEST(Dependence, MayAlias) {
    const LoopId n(0), m(1);
    EXPECT_TRUE(may_alias(Affine::var(n), Affine::var(n)));
    EXPECT_FALSE(may_alias(Affine::var(n), Affine::var(n) + 1));
    // Incomparable -> conservative.
    EXPECT_TRUE(may_alias(Affine::var(n), Affine::var(m)));
}

// --- Unrolling ---------------------------------------------------------------------

Kernel make_unroll_test_kernel(int unroll) {
    KernelBuilder b("unroll_test");
    const ArrayId x = b.input("x", 16, Interval(-1.0, 1.0));
    const ArrayId c = b.param("c", {0.5, -0.25, 0.125, 0.75});
    const ArrayId y = b.output("y", 8);
    const VarId acc = b.user_var("acc");
    const LoopId n = b.begin_loop("n", 0, 8);
    b.set_const(acc, 0.0);
    const LoopId k = b.begin_loop("k", 0, 4, unroll);
    const VarId prod =
        b.mul(b.load(x, Affine::var(n) + Affine::var(k)), b.load(c, Affine::var(k)));
    b.add(acc, prod, acc);
    b.end_loop();
    b.store(y, Affine::var(n), acc);
    b.end_loop();
    return b.take();
}

TEST(Unroll, FullUnrollRemovesLoop) {
    const Kernel unrolled = unroll_kernel(make_unroll_test_kernel(0));
    EXPECT_NO_THROW(verify_kernel(unrolled));
    // Only the outer loop remains.
    int live_loops = 0;
    const std::function<void(const Region&)> count = [&](const Region& r) {
        for (const auto& item : r.items) {
            if (item.kind == RegionItem::Kind::Loop) {
                ++live_loops;
                count(unrolled.loop(item.loop).body);
            }
        }
    };
    count(unrolled.body());
    EXPECT_EQ(live_loops, 1);
    // The merged body block contains all 4 taps: 8 loads, 4 muls, 4 adds,
    // 1 const, 1 store.
    const auto blocks = unrolled.blocks_in_order();
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_EQ(unrolled.block(blocks[0]).ops.size(), 1u + 4u * 4u + 1u);
}

TEST(Unroll, PartialUnrollKeepsResidualLoop) {
    const Kernel unrolled = unroll_kernel(make_unroll_test_kernel(2));
    EXPECT_NO_THROW(verify_kernel(unrolled));
    // Inner loop now has trip count 2 and an 8-op body (2 lanes x 4 ops).
    bool found = false;
    const std::function<void(const Region&)> scan = [&](const Region& r) {
        for (const auto& item : r.items) {
            if (item.kind == RegionItem::Kind::Loop) {
                const Loop& loop = unrolled.loop(item.loop);
                if (!loop.body.items.empty() &&
                    loop.body.items[0].kind == RegionItem::Kind::Block) {
                    const auto& ops =
                        unrolled.block(loop.body.items[0].block).ops;
                    if (ops.size() == 8u) found = true;
                }
                scan(loop.body);
            }
        }
    };
    scan(unrolled.body());
    EXPECT_TRUE(found);
}

TEST(Unroll, NonDividingFactorThrows) {
    EXPECT_THROW(unroll_kernel(make_unroll_test_kernel(3)), Error);
}

/// Property: unrolling must not change kernel semantics.
class UnrollEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(UnrollEquivalence, OutputsMatchOriginal) {
    const Kernel original = make_unroll_test_kernel(1);
    const Kernel unrolled = unroll_kernel(make_unroll_test_kernel(GetParam()));
    const Stimulus stimulus = make_stimulus(original, 99);
    const auto ref = run_double(original, stimulus);
    const auto got = run_double(unrolled, stimulus);
    ASSERT_EQ(ref.outputs.size(), got.outputs.size());
    for (size_t i = 0; i < ref.outputs.size(); ++i) {
        EXPECT_NEAR(ref.outputs[i], got.outputs[i], 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Factors, UnrollEquivalence,
                         ::testing::Values(0, 1, 2, 4));

}  // namespace
}  // namespace slpwlo
