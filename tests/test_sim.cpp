// Tests for the functional simulators (double reference and bit-accurate
// fixed-point).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "fixpoint/iwl.hpp"
#include "kernels/kernels.hpp"
#include "sim/double_sim.hpp"
#include "sim/fixed_sim.hpp"
#include "sim/sim_tape.hpp"
#include "support/dbmath.hpp"
#include "test_util.hpp"

namespace slpwlo {
namespace {

using ::slpwlo::testing::make_two_tap;
using ::slpwlo::testing::small_fir;

TEST(DoubleSim, TwoTapMatchesClosedForm) {
    const Kernel k = make_two_tap(0.5, 0.25);
    const Stimulus stimulus = make_stimulus(k, 1);
    const auto result = run_double(k, stimulus);
    ASSERT_EQ(result.outputs.size(), 64u);
    const auto& x = stimulus[0];
    for (size_t n = 0; n < result.outputs.size(); ++n) {
        EXPECT_NEAR(result.outputs[n], 0.5 * x[n] + 0.25 * x[n + 1], 1e-12);
    }
}

TEST(DoubleSim, FirMatchesDirectConvolution) {
    const Kernel& k = small_fir();
    const Stimulus stimulus = make_stimulus(k, 2);
    const auto result = run_double(k, stimulus);
    const auto& x = stimulus[0];
    const auto& c = k.array(ArrayId(1)).values;
    const int taps = static_cast<int>(c.size());
    ASSERT_EQ(result.outputs.size(), 128u);
    for (int n = 0; n < 128; n += 17) {
        double expected = 0.0;
        for (int t = 0; t < taps; ++t) {
            expected += c[t] * x[n + taps - 1 - t];
        }
        EXPECT_NEAR(result.outputs[n], expected, 1e-12);
    }
}

TEST(DoubleSim, IirImpulseResponseIsStable) {
    // Feed an impulse through the IIR and check the response decays.
    const Kernel& k = ::slpwlo::testing::small_iir();
    Stimulus stimulus(k.arrays().size());
    const ArrayDecl& x = k.array(ArrayId(0));
    stimulus[0].assign(static_cast<size_t>(x.size), 0.0);
    stimulus[0][20] = 1.0;  // impulse after warm-up
    const auto result = run_double(k, stimulus);
    double early = 0.0, late = 0.0;
    for (int i = 20; i < 50; ++i) early += std::fabs(result.outputs[i]);
    for (int i = 90; i < 120; ++i) late += std::fabs(result.outputs[i]);
    EXPECT_GT(early, 1e-6);
    EXPECT_LT(late, early * 0.05);
}

TEST(DoubleSim, StimulusIsDeterministicAndInRange) {
    const Kernel& k = small_fir();
    const Stimulus a = make_stimulus(k, 7);
    const Stimulus b = make_stimulus(k, 7);
    EXPECT_EQ(a[0], b[0]);
    const Stimulus c = make_stimulus(k, 8);
    EXPECT_NE(a[0], c[0]);
    for (const double v : a[0]) {
        EXPECT_GE(v, -1.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(DoubleSim, InjectionAddsDeltaOnce) {
    const Kernel k = make_two_tap(1.0, 0.0);
    const Stimulus stimulus = make_stimulus(k, 3);
    const auto base = run_double(k, stimulus);

    // Find the store op and perturb its 10th occurrence.
    OpId store_op;
    for (const auto& op : k.ops()) {
        if (op.kind == OpKind::Store) {
            store_op = OpId(static_cast<int32_t>(&op - k.ops().data()));
        }
    }
    DoubleSimOptions options;
    options.injections.push_back({store_op, 10, 0.5});
    const auto perturbed = run_double(k, stimulus, options);
    for (size_t i = 0; i < base.outputs.size(); ++i) {
        const double expected = base.outputs[i] + (i == 10 ? 0.5 : 0.0);
        EXPECT_NEAR(perturbed.outputs[i], expected, 1e-12);
    }
}

TEST(DoubleSim, ArrayInjectionPerturbsInitialContents) {
    const Kernel k = make_two_tap(1.0, 0.0);  // y[n] = x[n]
    const Stimulus stimulus = make_stimulus(k, 4);
    const auto base = run_double(k, stimulus);
    DoubleSimOptions options;
    options.array_injections.push_back({ArrayId(0), 5, 0.25});
    const auto perturbed = run_double(k, stimulus, options);
    for (size_t i = 0; i < base.outputs.size(); ++i) {
        const double expected = base.outputs[i] + (i == 5 ? 0.25 : 0.0);
        EXPECT_NEAR(perturbed.outputs[i], expected, 1e-12);
    }
}

TEST(DoubleSim, RecordedRangesCoverOutputs) {
    const Kernel& k = small_fir();
    DoubleSimOptions options;
    options.record_ranges = true;
    const auto result = run_double(k, make_stimulus(k, 5), options);
    const Interval y_range = result.array_ranges[2];
    for (const double v : result.outputs) {
        EXPECT_TRUE(y_range.contains(v));
    }
}

// --- fixed-point simulator ------------------------------------------------------

TEST(FixedSim, ExactWhenFormatsAreWide) {
    // With very wide formats the fixed-point outputs should be very close
    // to the reference (inputs/coefficients still get quantized at 2^-28).
    const Kernel& k = small_fir();
    FixedPointSpec spec = ::slpwlo::testing::initial_spec(k);
    for (const NodeRef node : spec.nodes()) {
        spec.set_format(node, FixedFormat(spec.format(node).iwl, 28));
    }
    const Stimulus stimulus = make_stimulus(k, 6);
    const double power = measure_noise_power(k, spec, stimulus);
    EXPECT_LT(power_to_db(power), -140.0);
}

TEST(FixedSim, OutputsAreOnTheGrid) {
    const Kernel k = make_two_tap();
    FixedPointSpec spec = ::slpwlo::testing::initial_spec(k);
    ::slpwlo::testing::set_uniform_wl(spec, 8);
    const ArrayId y = k.find_array("y");
    const double step = spec.array_format(y).step();
    const auto result = run_fixed(k, spec, make_stimulus(k, 7));
    for (const double v : result.outputs) {
        const double ratio = v / step;
        EXPECT_NEAR(ratio, std::round(ratio), 1e-9);
    }
}

TEST(FixedSim, TruncationBiasIsNegative) {
    // With truncation, the mean error must be <= 0 (biased down).
    const Kernel& k = small_fir();
    FixedPointSpec spec = ::slpwlo::testing::initial_spec(k);
    ::slpwlo::testing::set_uniform_wl(spec, 12);
    const Stimulus stimulus = make_stimulus(k, 8);
    const auto ref = run_double(k, stimulus);
    const auto fix = run_fixed(k, spec, stimulus);
    double bias = 0.0;
    for (size_t i = 0; i < ref.outputs.size(); ++i) {
        bias += fix.outputs[i] - ref.outputs[i];
    }
    EXPECT_LT(bias / static_cast<double>(ref.outputs.size()), 0.0);
}

TEST(FixedSim, RoundingBeatsTruncation) {
    const Kernel& k = small_fir();
    FixedPointSpec trunc_spec = ::slpwlo::testing::initial_spec(k);
    ::slpwlo::testing::set_uniform_wl(trunc_spec, 12);
    FixedPointSpec round_spec = trunc_spec;
    round_spec.set_quant_mode(QuantMode::Round);
    const Stimulus stimulus = make_stimulus(k, 9);
    EXPECT_LT(measure_noise_power(k, round_spec, stimulus),
              measure_noise_power(k, trunc_spec, stimulus));
}

/// Property: noise power decreases (monotonically, roughly) with word length.
class FixedSimWlSweep : public ::testing::TestWithParam<int> {};

TEST_P(FixedSimWlSweep, MoreBitsLessNoise) {
    const int wl = GetParam();
    const Kernel& k = small_fir();
    const Stimulus stimulus = make_stimulus(k, 10);

    FixedPointSpec narrow = ::slpwlo::testing::initial_spec(k);
    ::slpwlo::testing::set_uniform_wl(narrow, wl);
    FixedPointSpec wide = ::slpwlo::testing::initial_spec(k);
    ::slpwlo::testing::set_uniform_wl(wide, wl + 4);

    EXPECT_GT(measure_noise_power(k, narrow, stimulus),
              measure_noise_power(k, wide, stimulus));
}

INSTANTIATE_TEST_SUITE_P(WordLengths, FixedSimWlSweep,
                         ::testing::Values(8, 10, 12, 16, 20));

TEST(FixedSim, OverflowCountedWhenIwlTooSmall) {
    const Kernel k = make_two_tap(1.0, 1.0);  // |y| can reach 2
    FixedPointSpec spec = ::slpwlo::testing::initial_spec(k);
    ::slpwlo::testing::set_uniform_wl(spec, 16);
    // Sabotage the output IWL.
    const ArrayId y = k.find_array("y");
    spec.set_format(NodeRef::of_array(y), FixedFormat(1, 15));
    // Sum node too.
    const auto result = run_fixed(k, spec, make_stimulus(k, 11));
    EXPECT_GT(result.overflow_count, 0);
}

// --- compiled tape vs tree walker ----------------------------------------
// The SimTape replay is an optimization, not a semantic change: for every
// registry kernel, word-length preset and quantization mode, outputs (and
// overflow counts) must match the walkers bit for bit.

uint64_t bits_of(double v) {
    uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

void expect_outputs_bitwise_equal(const std::vector<double>& tape,
                                  const std::vector<double>& walker,
                                  const std::string& what) {
    ASSERT_EQ(tape.size(), walker.size()) << what;
    for (size_t i = 0; i < tape.size(); ++i) {
        ASSERT_EQ(bits_of(tape[i]), bits_of(walker[i]))
            << what << " output " << i << ": tape " << tape[i] << " walker "
            << walker[i];
    }
}

TEST(SimTape, DoubleReplayMatchesWalkerBitwiseAcrossRegistry) {
    for (const std::string& name : kernels::benchmark_kernel_names()) {
        const kernels::BenchmarkKernel bk =
            kernels::make_benchmark_kernel(name);
        const SimTape tape(bk.kernel);
        const Stimulus stimulus = make_stimulus(bk.kernel, 23);

        DoubleSimOptions options;
        options.record_ranges = true;
        const DoubleSimResult walker =
            run_double_walker(bk.kernel, stimulus, options);
        const DoubleSimResult replay = run_double(tape, stimulus, options);

        expect_outputs_bitwise_equal(replay.outputs, walker.outputs, name);
        ASSERT_EQ(replay.var_ranges.size(), walker.var_ranges.size());
        for (size_t i = 0; i < replay.var_ranges.size(); ++i) {
            EXPECT_EQ(bits_of(replay.var_ranges[i].lo()),
                      bits_of(walker.var_ranges[i].lo()))
                << name << " var " << i;
            EXPECT_EQ(bits_of(replay.var_ranges[i].hi()),
                      bits_of(walker.var_ranges[i].hi()))
                << name << " var " << i;
        }
        ASSERT_EQ(replay.array_ranges.size(), walker.array_ranges.size());
        for (size_t i = 0; i < replay.array_ranges.size(); ++i) {
            EXPECT_EQ(bits_of(replay.array_ranges[i].lo()),
                      bits_of(walker.array_ranges[i].lo()))
                << name << " array " << i;
            EXPECT_EQ(bits_of(replay.array_ranges[i].hi()),
                      bits_of(walker.array_ranges[i].hi()))
                << name << " array " << i;
        }
    }
}

TEST(SimTape, FixedReplayMatchesWalkerBitwiseAcrossRegistry) {
    for (const std::string& name : kernels::benchmark_kernel_names()) {
        const kernels::BenchmarkKernel bk =
            kernels::make_benchmark_kernel(name);
        const SimTape tape(bk.kernel);
        const Stimulus stimulus = make_stimulus(bk.kernel, 29);

        for (const int base_wl : {8, 12, 16}) {
            for (const QuantMode mode :
                 {QuantMode::Truncate, QuantMode::Round}) {
                FixedPointSpec spec(bk.kernel);
                spec.set_quant_mode(mode);
                // Non-uniform WLs (and a deliberately tight IWL) so the
                // comparison also covers saturation paths.
                size_t i = 0;
                for (const NodeRef node : spec.nodes()) {
                    const int wl = base_wl + static_cast<int>(i++ % 3);
                    spec.set_format(node, FixedFormat(4, wl - 4));
                }

                const FixedSimResult walker =
                    run_fixed_walker(bk.kernel, spec, stimulus);
                const FixedSimResult replay = run_fixed(tape, spec, stimulus);

                const std::string what = name + " wl" +
                                         std::to_string(base_wl) + " " +
                                         to_string(mode);
                expect_outputs_bitwise_equal(replay.outputs, walker.outputs,
                                             what);
                EXPECT_EQ(replay.overflow_count, walker.overflow_count)
                    << what;
            }
        }
    }
}

}  // namespace
}  // namespace slpwlo
