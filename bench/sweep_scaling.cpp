// SweepDriver scaling harness: the full FIR x IIR x CONV x {-30..-70 dB}
// grid for both fixed-point flows, run three ways:
//
//   1. cold, 1 worker thread;
//   2. cold, 4 worker threads        — same results, less wall clock
//      (bounded by the machine's core count);
//   3. warm, on the run-2 driver     — every evaluation is a memo hit.
//
// Verifies bit-identical results across all three runs and prints the
// wall-clock times and the evaluation-cache statistics.
//
//   $ ./sweep_scaling [--threads N] [--json[=FILE]]
#include <chrono>
#include <thread>

#include "bench_util.hpp"
#include "target/target_model.hpp"

using namespace slpwlo;
using namespace slpwlo::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

bool identical(const std::vector<SweepResult>& a,
               const std::vector<SweepResult>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
        const FlowResult& x = a[i].flow;
        const FlowResult& y = b[i].flow;
        if (x.scalar_cycles != y.scalar_cycles ||
            x.simd_cycles != y.simd_cycles ||
            x.group_count != y.group_count ||
            x.analytic_noise_db != y.analytic_noise_db) {
            return false;
        }
        for (const NodeRef node : x.spec.nodes()) {
            if (!(x.spec.format(node) == y.spec.format(node))) return false;
        }
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    print_header("SweepDriver scaling — threads and memoization",
                 "FlowEngine infrastructure (no paper figure)");

    const BenchOptions args = parse_bench_args(argc, argv);
    const int parallel_threads = args.threads;

    const std::vector<SweepPoint> points = SweepDriver::grid(
        kernels::paper_kernel_names(), {"XENTIUM"},
        {"WLO-SLP", "WLO-First"}, accuracy_grid(-30.0, -70.0, 5.0));
    std::printf("grid: %zu points (3 kernels x 2 flows x 9 constraints)\n\n",
                points.size());

    SweepOptions serial_options;
    serial_options.threads = 1;
    SweepDriver serial(serial_options);
    auto start = std::chrono::steady_clock::now();
    const std::vector<SweepResult> serial_results = serial.run(points);
    const double serial_seconds = seconds_since(start);

    SweepOptions parallel_options;
    parallel_options.threads = parallel_threads;
    SweepDriver parallel(parallel_options);
    start = std::chrono::steady_clock::now();
    const std::vector<SweepResult> parallel_results = parallel.run(points);
    const double parallel_seconds = seconds_since(start);

    start = std::chrono::steady_clock::now();
    const std::vector<SweepResult> warm_results = parallel.run(points);
    const double warm_seconds = seconds_since(start);

    const SweepCacheStats stats = parallel.cache_stats();

    std::printf("1 thread,  cold : %8.3f s\n", serial_seconds);
    std::printf("%d threads, cold : %8.3f s  (%.2fx vs 1 thread; ceiling is "
                "the core count: %u)\n",
                parallel_threads, parallel_seconds,
                serial_seconds / parallel_seconds,
                std::thread::hardware_concurrency());
    std::printf("%d threads, warm : %8.3f s  (%.0fx; every evaluation "
                "memoized)\n",
                parallel_threads, warm_seconds,
                serial_seconds / warm_seconds);
    std::printf("\neval cache: %zu entries, %zu hits / %zu misses\n",
                stats.eval_entries, stats.eval_hits, stats.eval_misses);
    std::printf("results identical (1 vs %d threads): %s\n", parallel_threads,
                identical(serial_results, parallel_results) ? "yes" : "NO");
    std::printf("results identical (cold vs warm)   : %s\n",
                identical(parallel_results, warm_results) ? "yes" : "NO");

    const bool ok = identical(serial_results, parallel_results) &&
                    identical(parallel_results, warm_results);
    maybe_emit_json(args, parallel_results, &stats);
    return ok ? 0 : 1;
}
