// Corpus differential robustness harness: every kernel that enters the
// system as *data* — the checked-in `.slp` corpus plus seeded random
// kernels from the generator — must behave exactly like the built-in
// builder kernels do. Three hard exit-code gates:
//
//   1. Evaluator agreement — for every corpus and generated kernel, the
//      tape, walker and compiled noise backends return bit-identical
//      noise_power on both the initial spec and a flow-optimized spec
//      (the compiled backend may degrade to the tape without a host
//      compiler; degradation is reported, never a failure).
//   2. Flow consistency — every registered flow runs every kernel at the
//      reference constraint; each result must form SIMD groups' cycles
//      (simd_cycles > 0) and meet the accuracy constraint (Float, the
//      unconstrained reference, is exempt from the latter). Exact flows
//      run under a deterministic node budget.
//   3. Determinism — the whole sweep runs twice (1 thread, then N) and
//      the serialized reports must be byte-identical.
//
// Emits a JSON gate report (--json / --json=FILE) for CI artifacts.
//
//   $ ./corpus_differential [--corpus DIR]... [--generated N]
//                           [--hostile N] [--smoke]
//                           [--threads N] [--json[=FILE]]
//
// --corpus defaults to ./kernels (the checked-in corpus); --generated
// seeds that many random kernels (default 8); --hostile adds that many
// SLP-*hostile* generated kernels (default 4) — non-adjacent strides and
// mixed-array lanes where a correct extractor finds nothing profitable
// to pack, so "the flow still meets its constraint when SLP comes up
// empty" is exercised every run; --smoke skips the exact flows, keeping
// CI wall-clock down without narrowing the kernel set.
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "exec/compiled_evaluator.hpp"
#include "flow/pass.hpp"
#include "frontend/kernel_file.hpp"
#include "frontend/kernel_gen.hpp"
#include "kernels/kernel_registry.hpp"
#include "target/target_model.hpp"

using namespace slpwlo;
using namespace slpwlo::bench;

namespace {

constexpr double kConstraintDb = -30.0;

uint64_t bits_of(double v) {
    uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

struct KernelGates {
    std::string name;
    bool evaluators_agree = true;
    bool compiled_degraded = false;
};

/// Gate 1: tape vs walker vs compiled, bitwise, on the initial spec and
/// on the spec WLO-SLP converged to.
KernelGates check_evaluators(const std::string& name) {
    KernelGates gates;
    gates.name = name;
    const kernels::BenchmarkKernel bench =
        kernels::KernelRegistry::instance().get(name);
    const KernelContext context(bench.kernel, bench.range_options);

    FlowOptions options;
    options.accuracy_db = kConstraintDb;
    const TargetModel target = targets::by_name("XENTIUM");
    const FlowResult optimized =
        FlowRegistry::instance().flow("WLO-SLP").run(context, target, options);

    const auto tape = exec::make_noise_evaluator(context.kernel(),
                                                 SimBackend::Tape);
    const auto walker = exec::make_noise_evaluator(context.kernel(),
                                                   SimBackend::Walker);
    const auto compiled = exec::make_noise_evaluator(context.kernel(),
                                                     SimBackend::Compiled);
    for (const FixedPointSpec& spec :
         {context.initial_spec(), optimized.spec}) {
        const uint64_t reference = bits_of(tape->noise_power(spec));
        if (bits_of(walker->noise_power(spec)) != reference ||
            bits_of(compiled->noise_power(spec)) != reference) {
            gates.evaluators_agree = false;
        }
    }
    if (const auto* c =
            dynamic_cast<const exec::CompiledEvaluator*>(compiled.get())) {
        gates.compiled_degraded = c->degraded();
    }
    return gates;
}

}  // namespace

int main(int argc, char** argv) {
    print_header("Corpus differential — .slp corpus + generated kernels",
                 "kernels-as-data robustness harness (no paper figure)");

    int generated = 8;
    int hostile = 4;
    BenchArgSpec spec;
    spec.smoke = true;
    spec.kernel_files = true;
    spec.extra.push_back(
        {"--generated", true, "N  seeded random kernels (default 8)",
         [&](const std::string& v) { generated = std::atoi(v.c_str()); }});
    spec.extra.push_back(
        {"--hostile", true, "N  seeded SLP-hostile kernels (default 4)",
         [&](const std::string& v) { hostile = std::atoi(v.c_str()); }});
    const BenchOptions args = parse_bench_args(argc, argv, spec);

    // The kernel set: every corpus directory (default: the checked-in
    // ./kernels), any --kernel-file extras, then the generated tail.
    std::vector<std::string> corpus_dirs = args.corpus_dirs;
    if (corpus_dirs.empty()) corpus_dirs.push_back("kernels");
    std::vector<std::string> names;
    for (const std::string& dir : corpus_dirs) {
        for (std::string& name : frontend::load_kernel_corpus(dir)) {
            names.push_back(std::move(name));
        }
    }
    const size_t corpus_count = names.size();
    for (const std::string& path : args.kernel_files) {
        names.push_back(frontend::register_kernel_file(path));
    }
    for (int seed = 1; seed <= generated; ++seed) {
        const frontend::GeneratedKernel gen =
            frontend::generate_kernel_source(static_cast<uint64_t>(seed));
        names.push_back(frontend::register_kernel_source(
            gen.source, "<generated seed " + std::to_string(seed) + ">"));
    }
    frontend::GenOptions hostile_options;
    hostile_options.slp_hostile = true;
    for (int seed = 1; seed <= hostile; ++seed) {
        const frontend::GeneratedKernel gen = frontend::generate_kernel_source(
            static_cast<uint64_t>(seed), hostile_options);
        names.push_back(frontend::register_kernel_source(
            gen.source, "<hostile seed " + std::to_string(seed) + ">"));
    }
    std::printf("kernel set: %zu corpus + %zu file + %d generated + "
                "%d slp-hostile\n\n",
                corpus_count, args.kernel_files.size(), generated, hostile);

    // Gate 1: evaluator agreement, kernel by kernel.
    bool evaluators_agree = true;
    size_t degraded = 0;
    std::vector<KernelGates> rows;
    rows.reserve(names.size());
    for (const std::string& name : names) {
        rows.push_back(check_evaluators(name));
        const KernelGates& gates = rows.back();
        if (!gates.evaluators_agree) evaluators_agree = false;
        if (gates.compiled_degraded) degraded++;
        std::printf("  %-24s tape/walker/compiled %s%s\n", name.c_str(),
                    gates.evaluators_agree ? "agree" : "DISAGREE",
                    gates.compiled_degraded ? " (compiled degraded to tape)"
                                            : "");
    }
    if (degraded == names.size() && !names.empty()) {
        std::printf("\n(no host compiler: compiled backend degraded on every "
                    "kernel — agreement still checked via the tape path)\n");
    }

    // Gates 2+3: every registered flow over every kernel, twice.
    std::vector<std::string> flows;
    for (const std::string& flow : FlowRegistry::instance().names()) {
        if (args.smoke &&
            (flow == "WLO-Optimal" || flow == "SLP-Optimal")) {
            continue;
        }
        flows.push_back(flow);
    }
    SweepOptions serial_options;
    serial_options.threads = 1;
    // Exact flows must stay deterministic *and* bounded here: cap the
    // branch-and-bound by node count (never wall-clock, which would break
    // the byte-identity gate) well below the prove-everything default.
    serial_options.flow_options.solver.budget.max_nodes = 200000;
    SweepOptions parallel_options = serial_options;
    parallel_options.threads = args.threads;

    const std::vector<SweepPoint> grid =
        SweepDriver::grid(names, {"XENTIUM"}, flows, {kConstraintDb});
    std::printf("\nflow grid: %zu points (%zu kernels x %zu flows)\n",
                grid.size(), names.size(), flows.size());

    SweepDriver serial(serial_options);
    const std::vector<SweepResult> first = serial.run(grid);
    SweepDriver parallel(parallel_options);
    const std::vector<SweepResult> second = parallel.run(grid);

    const std::string first_json = sweep_to_json(first);
    const std::string second_json = sweep_to_json(second);
    const bool deterministic = first_json == second_json;

    bool cycles_positive = true;
    bool constraints_met = true;
    for (const SweepResult& r : first) {
        if (r.flow.simd_cycles <= 0 || r.flow.scalar_cycles <= 0) {
            cycles_positive = false;
            std::printf("  NON-POSITIVE CYCLES: %s / %s\n",
                        r.point.kernel.c_str(), r.point.flow.c_str());
        }
        // Float is the unconstrained reference; every other flow promises
        // the analytic noise stays within the budget it was given.
        if (r.point.flow != "Float" &&
            r.flow.analytic_noise_db > r.point.accuracy_db) {
            constraints_met = false;
            std::printf("  CONSTRAINT MISSED: %s / %s (%.2f dB > %.2f dB)\n",
                        r.point.kernel.c_str(), r.point.flow.c_str(),
                        r.flow.analytic_noise_db, r.point.accuracy_db);
        }
    }

    std::printf("\nevaluator agreement: %s (%zu/%zu compiled degraded)\n",
                evaluators_agree ? "yes" : "NO", degraded, names.size());
    std::printf("reports byte-identical (1 vs %d threads): %s\n",
                args.threads, deterministic ? "yes" : "NO");
    std::printf("cycles positive everywhere: %s\n",
                cycles_positive ? "yes" : "NO");
    std::printf("constraints met everywhere: %s\n",
                constraints_met ? "yes" : "NO");

    const bool ok =
        evaluators_agree && deterministic && cycles_positive && constraints_met;
    if (args.json_path.has_value()) {
        std::ostringstream os;
        os << "{\"kernels\":[";
        for (size_t i = 0; i < rows.size(); ++i) {
            if (i != 0) os << ",";
            os << "{\"name\":\"" << rows[i].name << "\",\"evaluators_agree\":"
               << (rows[i].evaluators_agree ? "true" : "false")
               << ",\"compiled_degraded\":"
               << (rows[i].compiled_degraded ? "true" : "false") << "}";
        }
        os << "],\"corpus_kernels\":" << corpus_count
           << ",\"generated_kernels\":" << generated
           << ",\"hostile_kernels\":" << hostile
           << ",\"flows\":" << flows.size()
           << ",\"gates\":{\"evaluator_agreement\":"
           << (evaluators_agree ? "true" : "false")
           << ",\"determinism\":" << (deterministic ? "true" : "false")
           << ",\"cycles_positive\":" << (cycles_positive ? "true" : "false")
           << ",\"constraints_met\":" << (constraints_met ? "true" : "false")
           << "},\"ok\":" << (ok ? "true" : "false") << "}\n";
        emit_json_to(*args.json_path, os.str(), rows.size());
    }
    std::printf("\ncorpus differential: %s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
