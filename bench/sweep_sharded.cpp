// ShardEngine acceptance harness: the same grid, five ways.
//
//   1. single process, one SweepDriver        — the reference report;
//   2. N worker *processes* (fork/exec of the slpwlo-shard CLI), one
//      manifest each, merged                  — must be byte-identical,
//      for both assignment strategies;
//   3. shard 0 re-run warm from the merged    — must be byte-identical
//      cache snapshot of run 2                  and show nonzero cache
//                                               hits in its report;
//   4. elastic: a lease directory drained by N workers plus one
//      artificially-slowed straggler whose lease expires, is stolen and
//      re-run — the duplicate rows both publish must resolve at merge
//      and the report must stay byte-identical;
//   5. elastic again with the straggler SIGKILLed while holding a lease
//      — its chunk must be re-issued (assert >= 1 re-issue) and the
//      merged report must still match byte for byte.
//
// This is the end-to-end proof behind DESIGN.md §7 and §9: sharding a
// sweep across processes (and by extension machines) — statically or
// through elastic leases with expiry — changes wall-clock, never bytes.
//
//   $ ./sweep_sharded [--threads N] [--smoke] [--shards N]
//                     [--shard-tool PATH] [--json[=FILE]]
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "dist/cache_snapshot.hpp"
#include "dist/lease_coordinator.hpp"
#include "dist/shard_manifest.hpp"
#include "dist/shard_merger.hpp"
#include "dist/shard_plan.hpp"
#include "target/target_model.hpp"

using namespace slpwlo;
using namespace slpwlo::bench;
using namespace slpwlo::dist;

namespace {

std::string tool_path_from(const char* argv0) {
    const std::string self = argv0;
    const size_t slash = self.rfind('/');
    if (slash == std::string::npos) return "slpwlo-shard";
    return self.substr(0, slash + 1) + "slpwlo-shard";
}

/// fork/exec one worker without waiting; returns the pid (or -1).
pid_t spawn_process(const std::vector<std::string>& command) {
    std::vector<char*> argv;
    argv.reserve(command.size() + 1);
    for (const std::string& arg : command) {
        argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid < 0) {
        std::perror("fork");
        return -1;
    }
    if (pid == 0) {
        execvp(argv[0], argv.data());
        std::perror(argv[0]);
        _exit(127);
    }
    return pid;
}

/// Wait for `pid`; returns its exit status (shell-style).
int wait_process(pid_t pid) {
    int status = 0;
    if (waitpid(pid, &status, 0) != pid) return -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
}

/// fork/exec one worker; returns its exit status (shell-style).
int run_process(const std::vector<std::string>& command) {
    const pid_t pid = spawn_process(command);
    if (pid < 0) return -1;
    return wait_process(pid);
}

/// Poll `predicate` every 25 ms until it holds or `timeout_ms` passes.
bool wait_for(const std::function<bool()>& predicate, long long timeout_ms) {
    const auto start = std::chrono::steady_clock::now();
    for (;;) {
        if (predicate()) return true;
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (elapsed > timeout_ms) return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
}

void write_file(const std::string& path, const std::string& text) {
    std::ofstream out(path);
    out << text;
    out.flush();
    if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
}

bool plans_identical(const std::vector<ShardPlan>& a,
                     const std::vector<ShardPlan>& b) {
    if (a.size() != b.size()) return false;
    for (size_t s = 0; s < a.size(); ++s) {
        if (a[s].slots != b[s].slots || a[s].grid_fp != b[s].grid_fp) {
            return false;
        }
    }
    return true;
}

bool rows_identical(const ShardResultsFile& a, const ShardResultsFile& b) {
    if (a.rows.size() != b.rows.size()) return false;
    for (size_t i = 0; i < a.rows.size(); ++i) {
        if (a.rows[i].slot != b.rows[i].slot ||
            a.rows[i].point_fp != b.rows[i].point_fp ||
            a.rows[i].json != b.rows[i].json) {
            return false;
        }
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    print_header("Sharded sweep — N processes vs one, byte for byte",
                 "ShardEngine infrastructure (no paper figure)");

    int shards = 4;
    std::string tool = tool_path_from(argc > 0 ? argv[0] : "sweep_sharded");
    BenchArgSpec spec;
    spec.smoke = true;
    spec.extra = {
        {"--shards", true, "N  worker processes to fork (default 4)",
         [&](const std::string& v) { shards = std::atoi(v.c_str()); }},
        {"--shard-tool", true, "PATH  slpwlo-shard binary (default: sibling)",
         [&](const std::string& v) { tool = v; }},
    };
    const BenchOptions args = parse_bench_args(argc, argv, spec);
    if (shards < 1) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return 2;
    }

    // The grid mixes base and derived-width targets (the derived variants
    // are exactly the models a worker machine could never resolve by
    // name) and, off smoke, both fixed-point flows.
    const std::vector<std::string> kernels =
        args.smoke ? std::vector<std::string>{"FIR"}
                   : std::vector<std::string>{"FIR", "DOT"};
    const std::vector<std::string> flows =
        args.smoke ? std::vector<std::string>{"WLO-SLP"}
                   : std::vector<std::string>{"WLO-SLP", "WLO-First"};
    const std::vector<double> constraints =
        args.smoke ? std::vector<double>{-20.0, -30.0}
                   : accuracy_grid(-20.0, -50.0, 10.0);
    std::vector<int> widths{0};
    if (targets::xentium().can_derive_simd_width(64)) widths.push_back(64);
    const std::vector<SweepPoint> grid = SweepDriver::grid(
        kernels, {"XENTIUM"}, widths, flows, constraints);
    std::printf("grid: %zu points, %d shard processes, tool: %s\n\n",
                grid.size(), shards, tool.c_str());

    // Reference: one process, one driver.
    SweepOptions sweep_options;
    sweep_options.threads = args.threads;
    SweepDriver reference(sweep_options);
    const std::vector<SweepResult> reference_results = reference.run(grid);
    const std::string reference_json = sweep_to_json(reference_results);

    char tmp_template[] = "sweep_sharded.XXXXXX";
    const char* tmp = mkdtemp(tmp_template);
    if (tmp == nullptr) {
        std::perror("mkdtemp");
        return 1;
    }
    const std::string dir = tmp;

    bool ok = true;
    std::vector<std::string> snapshot_paths;

    for (const ShardStrategy strategy :
         {ShardStrategy::RoundRobin, ShardStrategy::CostBalanced}) {
        const std::string tag = to_string(strategy);

        // Plans must be a pure function of (grid, N).
        const std::vector<ShardPlan> plans =
            make_shard_plans(grid, shards, strategy);
        if (!plans_identical(plans,
                             make_shard_plans(grid, shards, strategy))) {
            std::printf("[%s] plans are NOT deterministic\n", tag.c_str());
            ok = false;
            continue;
        }

        std::vector<std::string> results_paths;
        bool round_ok = true;
        for (const ShardPlan& plan : plans) {
            const std::string base =
                dir + "/" + tag + "." + std::to_string(plan.shard_index);
            write_file(base + ".manifest", shard_manifest_text(plan));
            std::vector<std::string> command{
                tool,   "run",  "--manifest", base + ".manifest",
                "--out", base + ".results", "--threads",
                std::to_string(args.threads)};
            if (strategy == ShardStrategy::RoundRobin) {
                command.push_back("--snapshot-out");
                command.push_back(base + ".snap");
            }
            const int status = run_process(command);
            if (status != 0) {
                std::printf("[%s] shard %d worker failed (exit %d)\n",
                            tag.c_str(), plan.shard_index, status);
                round_ok = false;
                break;
            }
            results_paths.push_back(base + ".results");
            if (strategy == ShardStrategy::RoundRobin) {
                snapshot_paths.push_back(base + ".snap");
            }
        }
        if (!round_ok) {
            ok = false;
            continue;
        }

        std::vector<ShardResultsFile> shard_results;
        for (const std::string& path : results_paths) {
            shard_results.push_back(load_shard_results(path));
        }
        const std::string merged = merge_shard_results(shard_results);
        const bool identical = merged == reference_json;
        std::printf("[%s] merged %d-process report byte-identical to "
                    "1-process: %s\n",
                    tag.c_str(), shards, identical ? "yes" : "NO");
        ok = ok && identical;
    }

    // Warm re-run: shard 0 against the union of every shard's snapshot.
    if (ok && !snapshot_paths.empty()) {
        std::vector<CacheSnapshot> snapshots;
        for (const std::string& path : snapshot_paths) {
            snapshots.push_back(load_cache_snapshot(path));
        }
        const CacheSnapshot warm = merge_cache_snapshots(snapshots);
        const std::string warm_path = dir + "/warm.snap";
        write_file(warm_path, cache_snapshot_text(warm));
        std::printf("\nwarm snapshot: %zu eval + %zu stage entries merged "
                    "from %zu shards\n",
                    warm.entries.size(), warm.stage_entries.size(),
                    snapshot_paths.size());

        const std::string base = dir + "/round-robin.0";
        const std::string warm_results_path = dir + "/warm.0.results";
        const int status = run_process(
            {tool, "run", "--manifest", base + ".manifest", "--out",
             warm_results_path, "--threads", std::to_string(args.threads),
             "--snapshot-in", warm_path});
        if (status != 0) {
            std::printf("warm shard worker failed (exit %d)\n", status);
            ok = false;
        } else {
            const ShardResultsFile warm_results =
                load_shard_results(warm_results_path);
            const ShardResultsFile cold_results =
                load_shard_results(base + ".results");
            const bool hits = warm_results.eval_hits > 0;
            // A stage-memo hit means the warm worker skipped Tabu/SLP for
            // that point entirely; every preloaded point must hit.
            const bool stage_hits = warm_results.stage_hits > 0;
            const bool same = rows_identical(warm_results, cold_results);
            std::printf("warm-snapshot shard 0: %zu eval hits (%s), %zu "
                        "stage hits (%s), rows identical to cold run: %s\n",
                        warm_results.eval_hits, hits ? "ok" : "NONE",
                        warm_results.stage_hits, stage_hits ? "ok" : "NONE",
                        same ? "yes" : "NO");
            ok = ok && hits && stage_hits && same;
        }
    }

    // --- elastic rounds: lease directory, stragglers, re-issue ----------------
    // Round one: a slowed straggler holds its first lease well past the
    // ttl — a fast worker must steal and re-run it, then both publish
    // (duplicate rows resolved at merge). Round two: the straggler is
    // SIGKILLed while holding a lease — its chunk must be re-issued. In
    // both rounds the merged report must equal the 1-process bytes and at
    // least one lease must have been re-issued.
    const long long ttl_ms = 1000;
    for (const bool kill_straggler : {false, true}) {
        if (!ok) break;
        const std::string tag =
            kill_straggler ? "elastic-kill" : "elastic-slow";
        const std::string lease_dir = dir + "/" + tag;

        const std::vector<ShardPlan> whole =
            make_shard_plans(grid, 1, ShardStrategy::RoundRobin);
        const ShardManifest manifest =
            parse_shard_manifest(shard_manifest_text(whole[0]), tag);
        LeaseOptions lease_options;
        lease_options.ttl_ms = ttl_ms;
        const size_t chunks =
            init_lease_dir(lease_dir, manifest, lease_options);

        const pid_t straggler = spawn_process(
            {tool, "work", "--dir", lease_dir, "--worker", "straggler",
             "--threads", "1", "--straggle-ms",
             kill_straggler ? "600000" : std::to_string(ttl_ms * 5 / 2)});
        if (straggler < 0) {
            ok = false;
            break;
        }
        // Let the straggler claim its first lease before the fast workers
        // start, so there is always a lease to expire and steal.
        if (!wait_for(
                [&] { return lease_dir_status(lease_dir).claimed >= 1; },
                30000)) {
            std::printf("[%s] straggler never claimed a lease\n",
                        tag.c_str());
            kill(straggler, SIGKILL);
            wait_process(straggler);
            ok = false;
            break;
        }
        if (kill_straggler) {
            kill(straggler, SIGKILL);
            wait_process(straggler);
        }

        std::vector<pid_t> workers;
        for (int w = 0; w < shards; ++w) {
            workers.push_back(spawn_process(
                {tool, "work", "--dir", lease_dir, "--worker",
                 "w" + std::to_string(w), "--threads",
                 std::to_string(args.threads)}));
        }
        bool round_ok = true;
        for (const pid_t pid : workers) {
            if (pid < 0 || wait_process(pid) != 0) round_ok = false;
        }
        if (!kill_straggler && wait_process(straggler) != 0) round_ok = false;

        const LeaseDirStatus status = lease_dir_status(lease_dir);
        const std::string merged =
            round_ok ? collect_lease_results(lease_dir) : std::string();
        const bool identical = merged == reference_json;
        const bool reissued = status.reissued >= 1;
        std::printf("[%s] %zu chunks, %zu re-issued (%s); merged %d-worker "
                    "elastic report byte-identical to 1-process: %s\n",
                    tag.c_str(), chunks, status.reissued,
                    reissued ? "ok" : "NONE", shards,
                    identical ? "yes" : "NO");
        ok = ok && round_ok && identical && reissued;
    }

    if (ok) std::filesystem::remove_all(dir);
    else std::printf("keeping %s for inspection\n", dir.c_str());

    const SweepCacheStats stats = reference.cache_stats();
    maybe_emit_json(args, reference_results, &stats);
    std::printf("sharded sweep: %s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}
