// Heuristic-vs-optimal gap smoke: the CI guard for the exact flows
// (src/solver) and for the heuristic flows they must never perturb.
//
// Three checks, each a hard exit-code gate:
//
//   1. Gap direction — every registry kernel runs its heuristic flow
//      (WLO-First, WLO-SLP) and the exact counterpart the --optimizer
//      axis resolves to (WLO-Optimal, SLP-Optimal). Per point the solver
//      must start from the heuristic incumbent and only improve on it:
//      WLO-Optimal's cost objective <= the Tabu cost (bit-equal seeds),
//      SLP-Optimal's pack benefit >= the greedy benefit, gap >= 0. At
//      the acceptance constraint (-30 dB) every solve must also *prove*
//      optimality within the default node budget.
//   2. Oracle — on a two-tap kernel small enough to enumerate (2^nodes
//      specs over two supported WLs), the proven-optimal WLO answer must
//      match the exhaustive minimum exactly.
//   3. Pinned heuristic fingerprint — the heuristic-flow sweep report
//      over a fixed grid is fingerprinted and compared against a
//      checked-in constant. The sharded merge path reassembles this very
//      byte stream (sweep_sharded proves merge == in-process), so this
//      one constant pins the merged heuristic reports too: the solver
//      subsystem must be able to ride along without moving a single
//      heuristic byte.
//
// Emits a JSON report (--json / --json=FILE). Exits non-zero when any
// gate fails.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "accuracy/analytic_evaluator.hpp"
#include "bench_util.hpp"
#include "core/wl_cost_model.hpp"
#include "fixpoint/iwl.hpp"
#include "flow/report.hpp"
#include "ir/builder.hpp"
#include "solver/wlo_exact.hpp"
#include "target/target_model.hpp"

namespace {

using namespace slpwlo;

/// The acceptance constraint: every registry kernel must prove
/// optimality here within the default node budget (ROADMAP criterion).
constexpr double kAcceptanceDb = -30.0;

/// FNV-1a of the pinned heuristic sweep report (same hash the preset
/// byte-identity test uses).
uint64_t fnv1a(const std::string& text) {
    uint64_t h = 0xcbf29ce484222325ull;
    for (const unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

bool bits_equal(double a, double b) {
    uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    return ab == bb;
}

struct GapPoint {
    std::string kernel;
    std::string flow;  ///< the exact flow that ran (resolved name)
    double accuracy_db = 0.0;
    long long nodes = 0;
    long long solves = 0;
    bool proven = false;
    double heuristic_objective = 0.0;
    double best_objective = 0.0;
    double gap = 0.0;
};

struct GapReport {
    std::vector<GapPoint> points;
    bool solver_ran_everywhere = true;
    /// WLO-Optimal never costs more than Tabu, and its seed is the Tabu
    /// incumbent bit-for-bit.
    bool wlo_cost_never_worse = true;
    bool wlo_seed_matches_tabu = true;
    /// SLP-Optimal's selected benefit never drops below the greedy one.
    bool slp_benefit_never_worse = true;
    bool gaps_nonnegative = true;
    /// Every solve at kAcceptanceDb proved optimality in-budget.
    bool proven_at_acceptance = true;
};

/// Runs the heuristic and exact legs of the same grid and checks the
/// gap direction point by point. Both legs share one grid; the exact
/// leg flips only the --optimizer axis, exactly what a sweep user does.
GapReport run_gap_checks(const std::vector<double>& constraints,
                         int threads) {
    const std::vector<SweepPoint> grid = SweepDriver::grid(
        kernels::benchmark_kernel_names(), {"XENTIUM"},
        {"WLO-First", "WLO-SLP"}, constraints);

    SweepOptions heuristic_options;
    heuristic_options.threads = threads;
    SweepDriver heuristic(heuristic_options);
    const std::vector<SweepResult> base = heuristic.run(grid);

    SweepOptions optimal_options;
    optimal_options.threads = threads;
    optimal_options.flow_options.solver.optimizer = Optimizer::Optimal;
    SweepDriver optimal(optimal_options);
    const std::vector<SweepResult> exact = optimal.run(grid);

    GapReport report;
    for (size_t i = 0; i < grid.size(); ++i) {
        const FlowResult& h = base[i].flow;
        const FlowResult& o = exact[i].flow;
        const SolverStats& stats = o.solver_stats;

        GapPoint point;
        point.kernel = o.kernel_name;
        point.flow = o.flow_name;
        point.accuracy_db = o.accuracy_db;
        point.nodes = stats.nodes;
        point.solves = stats.solves;
        point.proven = stats.proven_optimal;
        point.heuristic_objective = stats.heuristic_objective;
        point.best_objective = stats.best_objective;
        point.gap = stats.gap;
        report.points.push_back(point);

        if (!stats.ran) report.solver_ran_everywhere = false;
        if (stats.gap < 0.0) report.gaps_nonnegative = false;
        if (o.flow_name == "WLO-Optimal") {
            // Minimization: the exact cost may only go down from the
            // Tabu incumbent it was seeded with.
            if (stats.best_objective > stats.heuristic_objective) {
                report.wlo_cost_never_worse = false;
            }
            if (!bits_equal(stats.heuristic_objective,
                            h.tabu_stats.best_cost)) {
                report.wlo_seed_matches_tabu = false;
            }
        } else {
            // Maximization (pack benefit): only up from greedy.
            if (stats.best_objective < stats.heuristic_objective) {
                report.slp_benefit_never_worse = false;
            }
        }
        if (o.accuracy_db == kAcceptanceDb && !stats.proven_optimal) {
            report.proven_at_acceptance = false;
        }
    }
    return report;
}

struct OracleReport {
    bool proven = false;
    bool matches = false;
    double exact_cost = 0.0;
    double oracle_cost = 0.0;
};

/// Two-tap kernel, two supported WLs: 2^nodes specs, small enough to
/// enumerate. The proven-optimal solver answer must equal the
/// exhaustive minimum-cost spec meeting the constraint.
OracleReport run_oracle_check() {
    KernelBuilder b("two_tap");
    const ArrayId x = b.input("x", 65, Interval(-1.0, 1.0));
    const ArrayId c = b.param("c", {0.5, 0.25});
    const ArrayId y = b.output("y", 64);
    const LoopId n = b.begin_loop("n", 0, 64);
    const VarId p0 = b.mul(b.load(x, Affine::var(n)), b.load(c, Affine(0)));
    const VarId p1 =
        b.mul(b.load(x, Affine::var(n) + 1), b.load(c, Affine(1)));
    b.store(y, Affine::var(n), b.add(p0, p1));
    b.end_loop();
    const Kernel kernel = b.take();

    const AnalyticEvaluator evaluator(kernel);
    TargetModel target = targets::xentium();
    target.scalar_wls = {32, 16};
    const double accuracy = -25.0;

    OracleReport report;
    FixedPointSpec spec = build_initial_spec(kernel, RangeOptions{});
    const solver::WloExactResult out =
        solver::run_wlo_exact(spec, evaluator, target, accuracy);
    report.proven = out.solve.proven_optimal;
    report.exact_cost = out.best_cost;

    const WlCostModel model(kernel, target);
    FixedPointSpec probe = build_initial_spec(kernel, RangeOptions{});
    const std::vector<NodeRef> nodes = probe.nodes();
    double oracle = std::numeric_limits<double>::infinity();
    for (size_t mask = 0; mask < (size_t(1) << nodes.size()); ++mask) {
        for (size_t i = 0; i < nodes.size(); ++i) {
            probe.set_wl(nodes[i], ((mask >> i) & 1) != 0 ? 16 : 32);
        }
        if (evaluator.noise_power_db(probe) > accuracy) continue;
        oracle = std::min(oracle, model.cost(probe));
    }
    report.oracle_cost = oracle;
    report.matches = std::isfinite(oracle) &&
                     std::abs(out.best_cost - oracle) <= 1e-9;
    return report;
}

struct PinnedReport {
    uint64_t fingerprint = 0;
    bool match = false;
    std::string first_bytes;  ///< diagnostic on mismatch
};

/// The pinned grid is fixed — independent of --smoke and --threads — so
/// the constant below means one thing everywhere: all four registry
/// kernels x XENTIUM x both heuristic flows x {-20, -30, -40} dB.
/// Update the constant only after re-auditing the report point by point;
/// a drive-by change from the solver subsystem is a regression.
constexpr uint64_t kPinnedHeuristicFingerprint = 0x938bb977faaa8a30ull;

PinnedReport run_pinned_check(int threads) {
    const std::vector<SweepPoint> grid = SweepDriver::grid(
        kernels::benchmark_kernel_names(), {"XENTIUM"},
        {"WLO-SLP", "WLO-First"}, {-20.0, -30.0, -40.0});

    SweepOptions options;
    options.threads = threads;
    SweepDriver driver(options);
    const std::string json = sweep_to_json(driver.run(grid));

    PinnedReport report;
    report.fingerprint = fnv1a(json);
    report.match = report.fingerprint == kPinnedHeuristicFingerprint;
    if (!report.match) report.first_bytes = json.substr(0, 400);
    return report;
}

std::string report_json(const GapReport& gap, const OracleReport& oracle,
                        const PinnedReport& pinned) {
    std::ostringstream os;
    os << "{\"gap\":{\"points\":[";
    for (size_t i = 0; i < gap.points.size(); ++i) {
        const GapPoint& p = gap.points[i];
        os << (i == 0 ? "" : ",") << "{\"kernel\":\"" << p.kernel
           << "\",\"flow\":\"" << p.flow
           << "\",\"accuracy_db\":" << json_number(p.accuracy_db)
           << ",\"nodes\":" << p.nodes << ",\"solves\":" << p.solves
           << ",\"proven_optimal\":" << (p.proven ? "true" : "false")
           << ",\"heuristic_objective\":"
           << json_number(p.heuristic_objective)
           << ",\"best_objective\":" << json_number(p.best_objective)
           << ",\"gap\":" << json_number(p.gap) << "}";
    }
    const auto flag = [&](const char* name, bool value, bool comma = true) {
        os << (comma ? "," : "") << "\"" << name
           << "\":" << (value ? "true" : "false");
    };
    os << "]";
    flag("solver_ran_everywhere", gap.solver_ran_everywhere);
    flag("wlo_cost_never_worse", gap.wlo_cost_never_worse);
    flag("wlo_seed_matches_tabu", gap.wlo_seed_matches_tabu);
    flag("slp_benefit_never_worse", gap.slp_benefit_never_worse);
    flag("gaps_nonnegative", gap.gaps_nonnegative);
    flag("proven_at_acceptance", gap.proven_at_acceptance);
    os << "},\"oracle\":{";
    flag("proven", oracle.proven, /*comma=*/false);
    flag("matches", oracle.matches);
    os << ",\"exact_cost\":" << json_number(oracle.exact_cost)
       << ",\"oracle_cost\":" << json_number(oracle.oracle_cost)
       << "},\"pinned\":{\"fingerprint\":\""
       << fingerprint_hex(pinned.fingerprint) << "\"";
    flag("match", pinned.match);
    os << "}}\n";
    return os.str();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace slpwlo;
    namespace bench = slpwlo::bench;

    bench::BenchArgSpec spec;
    spec.smoke = true;
    const bench::BenchOptions options =
        bench::parse_bench_args(argc, argv, spec);

    bench::print_header(
        "gap_smoke: heuristic-vs-optimal gap guard",
        "exact flows must only improve on the paper's heuristics");

    // Smoke covers the acceptance constraint alone; the full run widens
    // the constraint axis (the exact leg stays in seconds — CONV's
    // ~5.6M-node pack selection is the ceiling).
    const std::vector<double> constraints =
        options.smoke ? std::vector<double>{kAcceptanceDb}
                      : std::vector<double>{-20.0, kAcceptanceDb, -45.0};

    const GapReport gap = run_gap_checks(constraints, options.threads);
    std::printf("\nheuristic vs exact, per point (XENTIUM)\n");
    for (const GapPoint& p : gap.points) {
        std::printf(
            "  %-6s %-12s %6.1f dB  heuristic %12.2f  best %12.2f  "
            "gap %10.2f  %9lld nodes  proven: %s\n",
            p.kernel.c_str(), p.flow.c_str(), p.accuracy_db,
            p.heuristic_objective, p.best_objective, p.gap, p.nodes,
            p.proven ? "yes" : "NO");
    }
    std::printf(
        "  solver ran everywhere: %s   gap direction: %s   "
        "tabu seed bit-equal: %s   proven at %.0f dB: %s\n",
        gap.solver_ran_everywhere ? "yes" : "NO",
        gap.wlo_cost_never_worse && gap.slp_benefit_never_worse &&
                gap.gaps_nonnegative
            ? "ok"
            : "VIOLATED",
        gap.wlo_seed_matches_tabu ? "yes" : "NO", kAcceptanceDb,
        gap.proven_at_acceptance ? "yes" : "NO");

    const OracleReport oracle = run_oracle_check();
    std::printf("\nexhaustive oracle (two-tap, WLs {32,16}, -25 dB)\n");
    std::printf("  exact %12.4f   oracle %12.4f   proven: %s   match: %s\n",
                oracle.exact_cost, oracle.oracle_cost,
                oracle.proven ? "yes" : "NO", oracle.matches ? "yes" : "NO");

    const PinnedReport pinned = run_pinned_check(options.threads);
    std::printf("\npinned heuristic sweep fingerprint\n");
    std::printf("  %s   match: %s\n",
                fingerprint_hex(pinned.fingerprint).c_str(),
                pinned.match ? "yes" : "NO");
    if (!pinned.match) {
        std::printf("  first 400 bytes:\n%s\n", pinned.first_bytes.c_str());
    }

    const std::string json = report_json(gap, oracle, pinned);
    if (options.json_path.has_value()) {
        bench::emit_json_to(*options.json_path, json, 3);
    }

    const bool ok = gap.solver_ran_everywhere && gap.wlo_cost_never_worse &&
                    gap.wlo_seed_matches_tabu &&
                    gap.slp_benefit_never_worse && gap.gaps_nonnegative &&
                    gap.proven_at_acceptance && oracle.proven &&
                    oracle.matches && pinned.match;
    if (!ok) {
        std::printf("\nFAIL: exact-flow gap guard violated\n");
        return 1;
    }
    std::printf("\nall gap checks passed\n");
    return 0;
}
