// Shared helpers for the experiment harnesses.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "flow/report.hpp"
#include "kernels/kernels.hpp"

namespace slpwlo::bench {

/// Per-kernel context cache: range analysis + IWLs + gain calibration are
/// paid once per kernel across the whole sweep.
inline const KernelContext& context_for(const std::string& kernel_name) {
    static std::map<std::string, std::unique_ptr<KernelContext>> cache;
    auto& slot = cache[kernel_name];
    if (!slot) {
        auto bench = kernels::make_benchmark_kernel(kernel_name);
        slot = std::make_unique<KernelContext>(std::move(bench.kernel),
                                               bench.range_options);
    }
    return *slot;
}

/// The paper's x-axis: accuracy constraints in dB, loose to strict.
inline std::vector<double> constraint_grid(double from = -5.0,
                                           double to = -70.0,
                                           double step = 5.0) {
    std::vector<double> grid;
    for (double a = from; a >= to; a -= step) grid.push_back(a);
    return grid;
}

inline void print_header(const char* title, const char* paper_ref) {
    std::printf("==========================================================\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("==========================================================\n");
}

}  // namespace slpwlo::bench
