// Shared helpers for the experiment harnesses.
//
// Every bench is a sweep through the SweepDriver (flow/sweep.hpp): one
// process-wide driver shares the per-kernel contexts (range analysis,
// IWLs, gain calibration) and the evaluation memo cache across all grids
// a harness runs. Pass `--json` (stdout) or `--json=FILE` to any harness
// to emit the machine-readable results after the tables.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "flow/report.hpp"
#include "flow/sweep.hpp"
#include "kernels/kernels.hpp"

namespace slpwlo::bench {

// --- command-line parsing ------------------------------------------------------
// One parser for the flags every sweep harness shares (--threads, --smoke,
// --target-file, --json[=FILE]) plus harness-specific extras. Unknown
// flags are a hard error: a typo like --smok must abort the run, not
// silently sweep the full grid.

/// A harness-specific flag. `apply` receives the flag's value (or "" for
/// boolean flags).
struct BenchFlag {
    const char* name;        ///< e.g. "--shards"
    bool takes_value;
    const char* help;        ///< e.g. "N  number of shards (default 4)"
    std::function<void(const std::string&)> apply;
};

struct BenchOptions {
    int threads = 4;
    bool smoke = false;
    std::vector<std::string> target_files;
    /// `.slp` files given via --kernel-file (harnesses register these
    /// through frontend/kernel_file.hpp and may add them to kernel axes).
    std::vector<std::string> kernel_files;
    /// Directories given via --corpus (every *.slp inside, sorted).
    std::vector<std::string> corpus_dirs;
    /// Set when --json was given; "-" means stdout.
    std::optional<std::string> json_path;
};

/// Which of the shared flags a harness accepts (rejected flags error out
/// like unknown ones, instead of being accepted and silently ignored).
struct BenchArgSpec {
    bool threads = true;
    bool smoke = false;
    bool target_files = false;
    bool kernel_files = false;
    bool json = true;
    std::vector<BenchFlag> extra;
};

inline BenchOptions parse_bench_args(int argc, char** argv,
                                     const BenchArgSpec& spec = {}) {
    const auto usage = [&](FILE* out) {
        std::fprintf(out, "usage: %s", argc > 0 ? argv[0] : "bench");
        if (spec.threads) std::fprintf(out, " [--threads N]");
        if (spec.smoke) std::fprintf(out, " [--smoke]");
        if (spec.target_files) std::fprintf(out, " [--target-file FILE]...");
        if (spec.kernel_files) {
            std::fprintf(out, " [--kernel-file FILE]... [--corpus DIR]...");
        }
        if (spec.json) std::fprintf(out, " [--json[=FILE]]");
        for (const BenchFlag& flag : spec.extra) {
            std::fprintf(out, " [%s%s]", flag.name,
                         flag.takes_value ? " ..." : "");
        }
        std::fprintf(out, "\n");
        for (const BenchFlag& flag : spec.extra) {
            std::fprintf(out, "  %s %s\n", flag.name, flag.help);
        }
    };
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                usage(stderr);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            std::exit(0);
        } else if (spec.threads && arg == "--threads") {
            options.threads = std::atoi(value().c_str());
        } else if (spec.smoke && arg == "--smoke") {
            options.smoke = true;
        } else if (spec.target_files && arg == "--target-file") {
            options.target_files.push_back(value());
        } else if (spec.kernel_files && arg == "--kernel-file") {
            options.kernel_files.push_back(value());
        } else if (spec.kernel_files && arg == "--corpus") {
            options.corpus_dirs.push_back(value());
        } else if (spec.json && arg == "--json") {
            options.json_path = "-";
        } else if (spec.json && arg.rfind("--json=", 0) == 0) {
            options.json_path = arg.substr(7);
        } else {
            bool matched = false;
            for (const BenchFlag& flag : spec.extra) {
                if (arg == flag.name) {
                    flag.apply(flag.takes_value ? value() : std::string());
                    matched = true;
                    break;
                }
            }
            if (!matched) {
                std::fprintf(stderr, "unknown flag `%s`\n", arg.c_str());
                usage(stderr);
                std::exit(2);
            }
        }
    }
    return options;
}

/// Process-wide sweep driver: kernel contexts and the evaluation cache are
/// shared across every sweep a harness runs.
inline SweepDriver& driver() {
    static SweepDriver instance;
    return instance;
}

/// Per-kernel context cache: range analysis + IWLs + gain calibration are
/// paid once per kernel across the whole harness.
inline const KernelContext& context_for(const std::string& kernel_name) {
    return driver().context(kernel_name);
}

/// The paper's x-axis: accuracy constraints in dB, loose to strict.
inline std::vector<double> constraint_grid(double from = -5.0,
                                           double to = -70.0,
                                           double step = 5.0) {
    return accuracy_grid(from, to, step);
}

inline void print_header(const char* title, const char* paper_ref) {
    std::printf("==========================================================\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("==========================================================\n");
}

/// Write `json` to `path` ("-" = stdout); exits on I/O failure.
inline void emit_json_to(const std::string& path, const std::string& json,
                         size_t result_count) {
    if (path == "-") {
        std::fputs(json.c_str(), stdout);
        return;
    }
    std::ofstream out(path);
    out << json;
    out.flush();
    if (out.good()) {
        std::printf("wrote %zu results to %s\n", result_count, path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
}

/// Emit `results` when --json was parsed into `options`. With `stats`,
/// emits the full report object ({"results":[...],"eval_cache":{...}});
/// without, the plain results array.
inline void maybe_emit_json(const BenchOptions& options,
                            const std::vector<SweepResult>& results,
                            const SweepCacheStats* stats = nullptr) {
    if (!options.json_path.has_value()) return;
    const std::string json = stats != nullptr
                                 ? sweep_to_json(results, *stats)
                                 : sweep_to_json(results);
    emit_json_to(*options.json_path, json, results.size());
}

/// Emit `results` as JSON when `--json` / `--json=FILE` is on the command
/// line ("-" writes to stdout).
inline void maybe_emit_json(int argc, char** argv,
                            const std::vector<SweepResult>& results) {
    for (int i = 1; i < argc; ++i) {
        std::string path;
        if (std::strcmp(argv[i], "--json") == 0) {
            path = "-";
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            path = argv[i] + 7;
        } else {
            continue;
        }
        emit_json_to(path, sweep_to_json(results), results.size());
        return;
    }
}

}  // namespace slpwlo::bench
