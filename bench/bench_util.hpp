// Shared helpers for the experiment harnesses.
//
// Every bench is a sweep through the SweepDriver (flow/sweep.hpp): one
// process-wide driver shares the per-kernel contexts (range analysis,
// IWLs, gain calibration) and the evaluation memo cache across all grids
// a harness runs. Pass `--json` (stdout) or `--json=FILE` to any harness
// to emit the machine-readable results after the tables.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "flow/report.hpp"
#include "flow/sweep.hpp"
#include "kernels/kernels.hpp"

namespace slpwlo::bench {

/// Process-wide sweep driver: kernel contexts and the evaluation cache are
/// shared across every sweep a harness runs.
inline SweepDriver& driver() {
    static SweepDriver instance;
    return instance;
}

/// Per-kernel context cache: range analysis + IWLs + gain calibration are
/// paid once per kernel across the whole harness.
inline const KernelContext& context_for(const std::string& kernel_name) {
    return driver().context(kernel_name);
}

/// The paper's x-axis: accuracy constraints in dB, loose to strict.
inline std::vector<double> constraint_grid(double from = -5.0,
                                           double to = -70.0,
                                           double step = 5.0) {
    return accuracy_grid(from, to, step);
}

inline void print_header(const char* title, const char* paper_ref) {
    std::printf("==========================================================\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("==========================================================\n");
}

/// Emit `results` as JSON when `--json` / `--json=FILE` is on the command
/// line ("-" writes to stdout).
inline void maybe_emit_json(int argc, char** argv,
                            const std::vector<SweepResult>& results) {
    for (int i = 1; i < argc; ++i) {
        std::string path;
        if (std::strcmp(argv[i], "--json") == 0) {
            path = "-";
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            path = argv[i] + 7;
        } else {
            continue;
        }
        const std::string json = sweep_to_json(results);
        if (path == "-") {
            std::fputs(json.c_str(), stdout);
        } else {
            std::ofstream out(path);
            out << json;
            out.flush();
            if (out.good()) {
                std::printf("wrote %zu results to %s\n", results.size(),
                            path.c_str());
            } else {
                std::fprintf(stderr, "cannot write %s\n", path.c_str());
                std::exit(1);
            }
        }
        return;
    }
}

}  // namespace slpwlo::bench
