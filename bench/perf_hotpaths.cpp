// Hot-path performance harness: delta evaluation + the compiled
// simulation tape.
//
// Three measurements, each paired with a bit-identity check so a speedup
// can never come from computing something different:
//
//   1. Tabu move evaluation — incremental sessions (EvalSession +
//      WlCostSession) against full noise/cost recomputation per candidate
//      move, the inner loop of run_tabu_wlo.
//   2. Simulation noise evaluation — the compiled SimTape with
//      pregenerated stimuli and cached double reference traces against
//      the tree-walking simulators regenerating both per call (what
//      SimulationEvaluator::noise_power did before the tape).
//   3. Sweep wall-clock — a cold constraint sweep against a warm rerun
//      preloaded with the cold run's EvalCache snapshot (stage memo +
//      eval memo), with the report bytes compared.
//   4. Compiled noise evaluation — the emit->compile->execute backend
//      (CompiledEvaluator, src/exec) against the tape-backed
//      SimulationEvaluator on the same stimuli; gated on bit-identical
//      noise powers across a spread of specs. Skipped (reported as
//      available:false) when the host has no usable C compiler.
//   5. Exact solver — SLP-Optimal per kernel at the default node
//      budget: nodes expanded, time to the incumbent, and the gap
//      closed over the greedy heuristic. Gated on every solve running,
//      proving optimality, and never regressing below its heuristic
//      seed.
//
// Emits a JSON report (--json / --json=FILE). Exits non-zero when any
// bit-identity check fails — walker/tape divergence, delta/full
// divergence or compiled/tape divergence is a correctness bug, not a
// performance result.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "accuracy/analytic_evaluator.hpp"
#include "accuracy/sim_evaluator.hpp"
#include "bench_util.hpp"
#include "core/wl_cost_model.hpp"
#include "dist/cache_snapshot.hpp"
#include "exec/compiled_evaluator.hpp"
#include "sim/fixed_sim.hpp"
#include "sim/sim_tape.hpp"
#include "support/rng.hpp"
#include "target/target_model.hpp"

namespace {

using namespace slpwlo;

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

bool bits_equal(double a, double b) {
    uint64_t ab, bb;
    std::memcpy(&ab, &a, sizeof(ab));
    std::memcpy(&bb, &b, sizeof(bb));
    return ab == bb;
}

struct TabuReport {
    std::string kernel;
    long long moves = 0;
    double full_moves_per_sec = 0.0;
    double delta_moves_per_sec = 0.0;
    double speedup = 0.0;
    bool bit_identical = true;
};

/// One random single-WL move per iteration, exactly the candidate shape
/// the Tabu loop evaluates; every `commit_every`-th move is committed so
/// the spec keeps drifting like a real search. Both legs are run several
/// times interleaved and the best rate kept, so a frequency dip in one
/// leg cannot masquerade as (or hide) a speedup.
TabuReport bench_tabu_moves(const Kernel& kernel, const TargetModel& target,
                            long long moves, int repeats) {
    TabuReport report;
    report.kernel = kernel.name();
    report.moves = moves;

    const AnalyticEvaluator evaluator(kernel);
    const WlCostModel cost_model(kernel, target);
    const std::vector<int>& wls = target.scalar_wls;
    constexpr int kCommitEvery = 16;

    // Pregenerate the move sequence so the timed loops measure evaluation,
    // not random-number generation, and both legs replay identical moves.
    struct MoveCandidate {
        uint32_t node_index;
        int wl;
    };
    std::vector<MoveCandidate> sequence;
    {
        const FixedPointSpec probe(kernel);
        Rng rng(0xD1CE, "perf/tabu-moves");
        sequence.reserve(static_cast<size_t>(moves));
        for (long long i = 0; i < moves; ++i) {
            sequence.push_back(MoveCandidate{
                static_cast<uint32_t>(rng.uniform_int(
                    0, static_cast<int>(probe.nodes().size()) - 1)),
                wls[static_cast<size_t>(rng.uniform_int(
                    0, static_cast<int>(wls.size()) - 1))]});
        }
    }

    const auto run = [&](long long count, bool delta, bool check) {
        FixedPointSpec spec(kernel);
        for (const NodeRef node : spec.nodes()) {
            spec.set_wl(node, wls.back());
        }
        const std::vector<NodeRef> nodes = spec.nodes();

        std::unique_ptr<EvalSession> eval;
        std::unique_ptr<WlCostSession> costs;
        if (delta || check) {
            eval = evaluator.open_session(spec);
            costs = cost_model.open_session(spec);
        }

        double sink = 0.0;
        const auto start = std::chrono::steady_clock::now();
        for (long long i = 0; i < count; ++i) {
            const MoveCandidate& mc = sequence[static_cast<size_t>(i)];
            const NodeRef node = nodes[mc.node_index];
            const int wl = mc.wl;

            const FixedFormat saved = spec.format(node);
            double noise_db, cost;
            if (delta) {
                // The exact probe shape of the Tabu candidate loop: one
                // shared set/restore window bracketed on both sessions.
                eval->begin_move(node);
                costs->begin_move(node);
                spec.set_wl(node, wl);
                noise_db = eval->noise_power_db();
                cost = costs->cost();
                spec.set_format(node, saved);
                eval->end_move();
                costs->end_move();
            } else {
                spec.set_wl(node, wl);
                noise_db = evaluator.noise_power_db(spec);
                cost = cost_model.cost(spec);
                if (check) {
                    // The sessions see the same journaled mutations; their
                    // answers must be bit-equal to the full recompute.
                    if (!bits_equal(eval->noise_power_db(), noise_db) ||
                        !bits_equal(costs->cost(), cost)) {
                        report.bit_identical = false;
                    }
                }
                spec.set_format(node, saved);
            }
            sink += noise_db + cost;
            if (i % kCommitEvery == kCommitEvery - 1) {
                spec.set_wl(node, wl);  // commit the move
            }
        }
        const double elapsed = seconds_since(start);
        if (sink == 0.12345) std::printf("unlikely\n");  // keep `sink` live
        return static_cast<double>(count) / elapsed;
    };

    // Correctness pass first (every move cross-checked), then clean timed
    // legs with no checking overhead on either side.
    run(std::min<long long>(moves, 512), /*delta=*/false, /*check=*/true);
    for (int r = 0; r < repeats; ++r) {
        report.full_moves_per_sec =
            std::max(report.full_moves_per_sec,
                     run(moves, /*delta=*/false, /*check=*/false));
        report.delta_moves_per_sec =
            std::max(report.delta_moves_per_sec,
                     run(moves, /*delta=*/true, /*check=*/false));
    }
    report.speedup = report.delta_moves_per_sec / report.full_moves_per_sec;
    return report;
}

struct NoiseReport {
    long long evals = 0;
    double walker_evals_per_sec = 0.0;
    double tape_evals_per_sec = 0.0;
    double speedup = 0.0;
    bool bit_identical = true;
};

double mse_against(const std::vector<double>& ref,
                   const std::vector<double>& outputs) {
    double total = 0.0;
    for (size_t i = 0; i < ref.size(); ++i) {
        const double err = outputs[i] - ref[i];
        total += err * err;
    }
    return ref.empty() ? 0.0 : total / static_cast<double>(ref.size());
}

NoiseReport bench_noise_evals(const Kernel& kernel, long long evals) {
    NoiseReport report;
    report.evals = evals;

    // A mid-precision spec so quantization (and the occasional overflow)
    // actually exercises the fixed-point path.
    FixedPointSpec spec(kernel);
    for (const NodeRef node : spec.nodes()) spec.set_wl(node, 12);

    const SimTape tape(kernel);
    constexpr uint64_t kSeed = 0x5EED;

    // Divergence gate: tape and walker must agree bit-for-bit on the
    // double reference, the fixed outputs and the overflow count.
    {
        const Stimulus stimulus = make_stimulus(kernel, kSeed);
        const DoubleSimResult ref_tape = run_double(tape, stimulus);
        const DoubleSimResult ref_walk = run_double_walker(kernel, stimulus);
        const FixedSimResult fx_tape = run_fixed(tape, spec, stimulus);
        const FixedSimResult fx_walk =
            run_fixed_walker(kernel, spec, stimulus);
        bool same = ref_tape.outputs.size() == ref_walk.outputs.size() &&
                    fx_tape.outputs.size() == fx_walk.outputs.size() &&
                    fx_tape.overflow_count == fx_walk.overflow_count;
        for (size_t i = 0; same && i < ref_tape.outputs.size(); ++i) {
            same = bits_equal(ref_tape.outputs[i], ref_walk.outputs[i]);
        }
        for (size_t i = 0; same && i < fx_tape.outputs.size(); ++i) {
            same = bits_equal(fx_tape.outputs[i], fx_walk.outputs[i]);
        }
        report.bit_identical = same;
    }

    // Walker leg: the pre-tape noise_power — stimulus regenerated, double
    // reference re-walked, fixed tree re-walked, every call.
    {
        double sink = 0.0;
        const auto start = std::chrono::steady_clock::now();
        for (long long i = 0; i < evals; ++i) {
            const Stimulus stimulus = make_stimulus(kernel, kSeed + i % 4);
            const DoubleSimResult ref = run_double_walker(kernel, stimulus);
            const FixedSimResult fx =
                run_fixed_walker(kernel, spec, stimulus);
            sink += mse_against(ref.outputs, fx.outputs);
        }
        report.walker_evals_per_sec =
            static_cast<double>(evals) / seconds_since(start);
        if (sink == 0.12345) std::printf("unlikely\n");
    }

    // Tape leg: what SimulationEvaluator does now — stimuli and reference
    // traces pregenerated once, one fixed tape replay per eval.
    {
        std::vector<Stimulus> stimuli;
        std::vector<std::vector<double>> refs;
        for (uint64_t s = 0; s < 4; ++s) {
            stimuli.push_back(make_stimulus(kernel, kSeed + s));
            refs.push_back(run_double(tape, stimuli.back()).outputs);
        }
        double sink = 0.0;
        const auto start = std::chrono::steady_clock::now();
        for (long long i = 0; i < evals; ++i) {
            const size_t s = static_cast<size_t>(i % 4);
            sink += measure_noise_power(tape, spec, stimuli[s], refs[s]);
        }
        report.tape_evals_per_sec =
            static_cast<double>(evals) / seconds_since(start);
        if (sink == 0.12345) std::printf("unlikely\n");
    }

    report.speedup = report.tape_evals_per_sec / report.walker_evals_per_sec;
    return report;
}

struct CompiledReport {
    long long evals = 0;
    double tape_evals_per_sec = 0.0;
    double compiled_evals_per_sec = 0.0;
    double speedup = 0.0;
    bool bit_identical = true;
    bool available = true;  ///< host toolchain usable; timing skipped if not
};

CompiledReport bench_compiled_evals(const Kernel& kernel, long long evals) {
    CompiledReport report;
    report.evals = evals;

    const SimulationEvaluator tape_eval(kernel);
    const exec::CompiledEvaluator compiled_eval(kernel);

    // A spread of specs: three uniform precisions plus a ragged one, so
    // the gate covers distinct emitted bodies (and the evaluator's MRU).
    std::vector<FixedPointSpec> specs;
    for (const int wl : {8, 10, 12, 14}) {
        FixedPointSpec spec(kernel);
        for (const NodeRef node : spec.nodes()) spec.set_wl(node, wl);
        specs.push_back(std::move(spec));
    }
    {
        FixedPointSpec ragged(kernel);
        int wl = 8;
        for (const NodeRef node : ragged.nodes()) {
            ragged.set_wl(node, wl);
            wl = wl == 16 ? 8 : wl + 1;
        }
        specs.push_back(std::move(ragged));
    }

    // Divergence gate (doubles as the compile warm-up): every spec's
    // compiled noise power must be bit-equal to the tape's.
    for (const FixedPointSpec& spec : specs) {
        const double tape_np = tape_eval.noise_power(spec);
        const double compiled_np = compiled_eval.noise_power(spec);
        if (!bits_equal(tape_np, compiled_np)) report.bit_identical = false;
    }
    if (compiled_eval.degraded()) {
        // No usable host compiler: the evaluator already fell back to the
        // tape (which is why the gate still passed) — nothing to time.
        report.available = false;
        report.speedup = 1.0;
        return report;
    }

    const auto time_leg = [&](const AccuracyEvaluator& evaluator,
                              long long count) {
        double sink = 0.0;
        const auto start = std::chrono::steady_clock::now();
        for (long long i = 0; i < count; ++i) {
            sink += evaluator.noise_power(
                specs[static_cast<size_t>(i) % specs.size()]);
        }
        const double elapsed = seconds_since(start);
        if (sink == 0.12345) std::printf("unlikely\n");
        return static_cast<double>(count) / elapsed;
    };

    report.tape_evals_per_sec = time_leg(tape_eval, evals);
    // The compiled leg is orders of magnitude faster; run it longer so
    // the clock resolution cannot dominate the rate.
    report.compiled_evals_per_sec = time_leg(compiled_eval, evals * 20);
    report.speedup =
        report.compiled_evals_per_sec / report.tape_evals_per_sec;
    return report;
}

struct SweepReport {
    size_t points = 0;
    double cold_ms = 0.0;
    double warm_ms = 0.0;
    double speedup = 0.0;
    size_t stage_hits = 0;
    bool bytes_identical = true;
};

struct SolverKernelReport {
    std::string kernel;
    long long nodes = 0;   ///< B&B nodes expanded (all solves summed)
    long long solves = 0;  ///< exact solves (one per extraction round)
    bool proven = false;   ///< search space exhausted within budget
    double gap = 0.0;      ///< objective improvement over the heuristic
    /// Wall time of the whole exact flow point — by construction the
    /// time to its final incumbent (the solver is anytime: the answer
    /// it returns is the incumbent standing when the search ends).
    double incumbent_ms = 0.0;
};

struct SolverReport {
    std::vector<SolverKernelReport> kernels;
    bool ran_everywhere = true;
    bool all_proven = true;
    bool gaps_nonnegative = true;
};

/// The exact-flow hot path: SLP-Optimal (B&B pack selection seeded by
/// the greedy incumbent) per kernel at the default node budget, at the
/// acceptance constraint every kernel is known to prove within budget.
/// Reported per kernel: nodes expanded, time to the incumbent, and the
/// gap the exact search closed over the heuristic.
SolverReport bench_solver(const std::vector<std::string>& kernel_names,
                          int threads) {
    SolverReport report;

    SweepOptions options;
    options.threads = threads;
    options.flow_options.solver.optimizer = Optimizer::Optimal;
    SweepDriver driver(options);

    std::vector<SweepPoint> points;
    for (const std::string& name : kernel_names) {
        points.push_back(SweepPoint{name, "XENTIUM", "WLO-SLP", -30.0});
    }
    std::vector<long long> micros;
    const std::vector<SweepResult> results =
        driver.run_timed(points, &micros);

    for (size_t i = 0; i < results.size(); ++i) {
        const SolverStats& stats = results[i].flow.solver_stats;
        SolverKernelReport kr;
        kr.kernel = results[i].flow.kernel_name;
        kr.nodes = stats.nodes;
        kr.solves = stats.solves;
        kr.proven = stats.proven_optimal;
        kr.gap = stats.gap;
        kr.incumbent_ms = static_cast<double>(micros[i]) / 1000.0;
        report.kernels.push_back(kr);

        if (!stats.ran) report.ran_everywhere = false;
        if (!stats.proven_optimal) report.all_proven = false;
        if (stats.gap < 0.0) report.gaps_nonnegative = false;
    }
    return report;
}

SweepReport bench_sweep(const std::vector<SweepPoint>& grid, int threads) {
    SweepReport report;
    report.points = grid.size();

    SweepOptions options;
    options.threads = threads;

    SweepDriver cold(options);
    const auto cold_start = std::chrono::steady_clock::now();
    const std::vector<SweepResult> cold_results = cold.run(grid);
    report.cold_ms = seconds_since(cold_start) * 1000.0;

    const dist::CacheSnapshot snapshot = dist::snapshot_cache(cold.eval_cache());

    SweepDriver warm(options);
    dist::preload_cache(warm.eval_cache(), snapshot);
    const auto warm_start = std::chrono::steady_clock::now();
    const std::vector<SweepResult> warm_results = warm.run(grid);
    report.warm_ms = seconds_since(warm_start) * 1000.0;

    report.speedup = report.cold_ms / report.warm_ms;
    report.stage_hits = warm.eval_cache().stage_hits();
    report.bytes_identical =
        sweep_to_json(cold_results) == sweep_to_json(warm_results);
    return report;
}

/// Geometric mean of the per-kernel speedups — the one-number summary
/// that doesn't let a single large kernel drown out a regression on a
/// small one.
double tabu_speedup_geomean(const std::vector<TabuReport>& reports) {
    double log_sum = 0.0;
    for (const TabuReport& r : reports) log_sum += std::log(r.speedup);
    return std::exp(log_sum / static_cast<double>(reports.size()));
}

std::string report_json(const std::vector<TabuReport>& tabu,
                        const NoiseReport& noise,
                        const CompiledReport& compiled,
                        const SweepReport& sweep,
                        const SolverReport& solver) {
    const bool tabu_identical =
        std::all_of(tabu.begin(), tabu.end(),
                    [](const TabuReport& r) { return r.bit_identical; });
    std::ostringstream os;
    os << "{\"tabu\":{\"moves\":" << tabu.front().moves << ",\"kernels\":[";
    for (size_t i = 0; i < tabu.size(); ++i) {
        const TabuReport& r = tabu[i];
        os << (i == 0 ? "" : ",") << "{\"kernel\":\"" << r.kernel
           << "\",\"full_moves_per_sec\":" << json_number(r.full_moves_per_sec)
           << ",\"delta_moves_per_sec\":"
           << json_number(r.delta_moves_per_sec)
           << ",\"speedup\":" << json_number(r.speedup)
           << ",\"bit_identical\":" << (r.bit_identical ? "true" : "false")
           << "}";
    }
    os << "],\"speedup_geomean\":" << json_number(tabu_speedup_geomean(tabu))
       << ",\"bit_identical\":" << (tabu_identical ? "true" : "false")
       << "},\"noise\":{\"evals\":" << noise.evals
       << ",\"walker_evals_per_sec\":"
       << json_number(noise.walker_evals_per_sec)
       << ",\"tape_evals_per_sec\":" << json_number(noise.tape_evals_per_sec)
       << ",\"speedup\":" << json_number(noise.speedup)
       << ",\"bit_identical\":" << (noise.bit_identical ? "true" : "false")
       << "},\"compiled\":{\"evals\":" << compiled.evals
       << ",\"tape_evals_per_sec\":"
       << json_number(compiled.tape_evals_per_sec)
       << ",\"compiled_evals_per_sec\":"
       << json_number(compiled.compiled_evals_per_sec)
       << ",\"speedup\":" << json_number(compiled.speedup)
       << ",\"bit_identical\":"
       << (compiled.bit_identical ? "true" : "false")
       << ",\"available\":" << (compiled.available ? "true" : "false")
       << "},\"sweep\":{\"points\":" << sweep.points
       << ",\"cold_ms\":" << json_number(sweep.cold_ms)
       << ",\"warm_ms\":" << json_number(sweep.warm_ms)
       << ",\"speedup\":" << json_number(sweep.speedup)
       << ",\"stage_hits\":" << sweep.stage_hits
       << ",\"bytes_identical\":" << (sweep.bytes_identical ? "true" : "false")
       << "},\"solver\":{\"kernels\":[";
    for (size_t i = 0; i < solver.kernels.size(); ++i) {
        const SolverKernelReport& r = solver.kernels[i];
        os << (i == 0 ? "" : ",") << "{\"kernel\":\"" << r.kernel
           << "\",\"nodes\":" << r.nodes << ",\"solves\":" << r.solves
           << ",\"proven_optimal\":" << (r.proven ? "true" : "false")
           << ",\"gap\":" << json_number(r.gap)
           << ",\"incumbent_ms\":" << json_number(r.incumbent_ms) << "}";
    }
    os << "],\"ran_everywhere\":"
       << (solver.ran_everywhere ? "true" : "false")
       << ",\"all_proven\":" << (solver.all_proven ? "true" : "false")
       << ",\"gaps_nonnegative\":"
       << (solver.gaps_nonnegative ? "true" : "false") << "}}\n";
    return os.str();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace slpwlo;
    namespace bench = slpwlo::bench;

    bench::BenchArgSpec spec;
    spec.smoke = true;
    const bench::BenchOptions options =
        bench::parse_bench_args(argc, argv, spec);

    bench::print_header(
        "perf_hotpaths: delta evaluation + compiled simulation tape",
        "inner-loop cost of the WLO flows (Section IV hot paths)");

    const long long tabu_moves = options.smoke ? 4000 : 40000;
    const long long noise_evals = options.smoke ? 200 : 2000;
    const int tabu_repeats = options.smoke ? 2 : 3;

    kernels::BenchmarkKernel fir = kernels::make_benchmark_kernel("FIR");
    const TargetModel target = targets::by_name("XENTIUM");

    std::vector<TabuReport> tabu;
    std::printf("\ntabu move evaluation (%lld moves x %d legs, XENTIUM)\n",
                tabu_moves, tabu_repeats);
    for (const std::string& name : kernels::benchmark_kernel_names()) {
        const kernels::BenchmarkKernel bk =
            kernels::make_benchmark_kernel(name);
        tabu.push_back(
            bench_tabu_moves(bk.kernel, target, tabu_moves, tabu_repeats));
        const TabuReport& r = tabu.back();
        std::printf(
            "  %-6s full %10.0f /s   delta %10.0f /s   %6.2fx   "
            "bit-identical: %s\n",
            r.kernel.c_str(), r.full_moves_per_sec, r.delta_moves_per_sec,
            r.speedup, r.bit_identical ? "yes" : "NO");
    }
    const bool tabu_identical =
        std::all_of(tabu.begin(), tabu.end(),
                    [](const TabuReport& r) { return r.bit_identical; });
    std::printf("  geomean speedup: %12.2fx\n", tabu_speedup_geomean(tabu));

    const NoiseReport noise = bench_noise_evals(fir.kernel, noise_evals);
    std::printf("\nsimulation noise evaluation (%lld evals, FIR)\n",
                noise.evals);
    std::printf("  tree walker    : %12.1f evals/sec\n",
                noise.walker_evals_per_sec);
    std::printf("  compiled tape  : %12.1f evals/sec\n",
                noise.tape_evals_per_sec);
    std::printf("  speedup        : %12.2fx   bit-identical: %s\n",
                noise.speedup, noise.bit_identical ? "yes" : "NO");

    const CompiledReport compiled =
        bench_compiled_evals(fir.kernel, noise_evals);
    std::printf("\ncompiled noise evaluation (%lld evals, FIR)\n",
                compiled.evals);
    if (compiled.available) {
        std::printf("  tape evaluator : %12.1f evals/sec\n",
                    compiled.tape_evals_per_sec);
        std::printf("  compiled       : %12.1f evals/sec\n",
                    compiled.compiled_evals_per_sec);
        std::printf("  speedup        : %12.2fx   bit-identical: %s\n",
                    compiled.speedup,
                    compiled.bit_identical ? "yes" : "NO");
    } else {
        std::printf("  no usable host compiler — degraded to the tape "
                    "(bit-identical: %s), timing skipped\n",
                    compiled.bit_identical ? "yes" : "NO");
    }

    const std::vector<SweepPoint> grid = SweepDriver::grid(
        {"FIR", "DOT"}, {"XENTIUM"}, {"WLO-SLP", "WLO-First"},
        options.smoke ? std::vector<double>{-20.0, -40.0}
                      : bench::constraint_grid());
    const SweepReport sweep = bench_sweep(grid, options.threads);
    std::printf("\nconstraint sweep, cold vs stage-memo warm (%zu points)\n",
                sweep.points);
    std::printf("  cold           : %12.1f ms\n", sweep.cold_ms);
    std::printf("  warm           : %12.1f ms   (%zu stage hits)\n",
                sweep.warm_ms, sweep.stage_hits);
    std::printf("  speedup        : %12.2fx   report bytes identical: %s\n",
                sweep.speedup, sweep.bytes_identical ? "yes" : "NO");

    const SolverReport solver = bench_solver(
        options.smoke ? std::vector<std::string>{"FIR", "DOT"}
                      : kernels::benchmark_kernel_names(),
        options.threads);
    std::printf("\nexact solver (SLP-Optimal @ -30 dB, default budget)\n");
    for (const SolverKernelReport& r : solver.kernels) {
        std::printf(
            "  %-8s %9lld nodes  %3lld solves  incumbent %9.1f ms  "
            "gap %10.2f  proven: %s\n",
            r.kernel.c_str(), r.nodes, r.solves, r.incumbent_ms, r.gap,
            r.proven ? "yes" : "NO");
    }
    std::printf("  ran everywhere: %s   all proven: %s   gaps >= 0: %s\n",
                solver.ran_everywhere ? "yes" : "NO",
                solver.all_proven ? "yes" : "NO",
                solver.gaps_nonnegative ? "yes" : "NO");

    const std::string json =
        report_json(tabu, noise, compiled, sweep, solver);
    if (options.json_path.has_value()) {
        bench::emit_json_to(*options.json_path, json, 3);
    }

    const bool ok = tabu_identical && noise.bit_identical &&
                    compiled.bit_identical && sweep.bytes_identical &&
                    sweep.stage_hits > 0 && solver.ran_everywhere &&
                    solver.all_proven && solver.gaps_nonnegative;
    if (!ok) {
        std::printf("\nFAIL: divergence between fast and reference paths\n");
        return 1;
    }
    std::printf("\nall bit-identity checks passed\n");
    return 0;
}
