// Figure 4: speedup of the SIMD versions of WLO-First and WLO-SLP over the
// scalar fixed-point baseline (the WLO-First spec without SIMD), as a
// function of the accuracy constraint, for every benchmark on every target.
//
// Paper shapes this harness regenerates:
//  * WLO-SLP dominates WLO-First at (nearly) every point;
//  * WLO-First varies erratically and degrades below 1.0 at some points;
//  * higher-ILP targets (VEX-4) gain less from SIMD than VEX-1.
#include "bench_util.hpp"
#include "target/target_model.hpp"

using namespace slpwlo;
using namespace slpwlo::bench;

int main(int argc, char** argv) {
    print_header("Fig. 4 — SIMD speedup vs accuracy constraint",
                 "DATE'17 Figure 4 (3 benchmarks x 4 targets)");

    // Build the grid in print order: kernel-major, then target, then the
    // constraint axis, with both flows per point.
    std::vector<SweepPoint> points;
    for (const std::string& kernel_name : kernels::paper_kernel_names()) {
        for (const TargetModel& target : targets::paper_targets()) {
            for (const double a : constraint_grid()) {
                points.push_back({kernel_name, target.name, "WLO-First", a, {}, {}});
                points.push_back({kernel_name, target.name, "WLO-SLP", a, {}, {}});
            }
        }
    }
    const std::vector<SweepResult> results = driver().run(points);

    int points_seen = 0;
    int slp_wins_or_ties = 0;
    int first_below_one = 0;

    size_t i = 0;
    for (const std::string& kernel_name : kernels::paper_kernel_names()) {
        for (const TargetModel& target : targets::paper_targets()) {
            std::printf("\n-- %s on %s --\n", kernel_name.c_str(),
                        target.name.c_str());
            std::printf("%8s %12s %12s %14s %14s\n", "A(dB)", "WLO-First",
                        "WLO-SLP", "first-groups", "slp-groups");
            for (const double a : constraint_grid()) {
                const FlowResult& first = results[i++].flow;
                const FlowResult& slp = results[i++].flow;
                const double speedup_first =
                    speedup(first.scalar_cycles, first.simd_cycles);
                const double speedup_slp =
                    speedup(first.scalar_cycles, slp.simd_cycles);
                std::printf("%8.0f %12.3f %12.3f %14d %14d\n", a,
                            speedup_first, speedup_slp, first.group_count,
                            slp.group_count);
                points_seen++;
                if (speedup_slp >= speedup_first - 1e-9) slp_wins_or_ties++;
                if (speedup_first < 1.0 - 1e-9) first_below_one++;
            }
        }
    }

    std::printf("\n=== Fig. 4 summary ===\n");
    std::printf("points: %d\n", points_seen);
    std::printf("WLO-SLP >= WLO-First: %d/%d (paper: nearly all)\n",
                slp_wins_or_ties, points_seen);
    std::printf("WLO-First below 1.0x: %d (paper: frequent degradation)\n",
                first_below_one);
    maybe_emit_json(argc, argv, results);
    return 0;
}
