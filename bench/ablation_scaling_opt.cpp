// Ablation A1: the SLP-aware scaling optimization (Fig. 1b) on vs off.
//
// With it off, superword reuses whose per-lane scaling amounts differ pay
// the Fig. 2 penalty (unpack / per-lane shift / repack) in the lowered
// code. This isolates the contribution of the paper's second algorithm.
#include "bench_util.hpp"
#include "target/target_model.hpp"

using namespace slpwlo;
using namespace slpwlo::bench;

int main(int argc, char** argv) {
    print_header("Ablation A1 — scaling optimization on/off",
                 "DATE'17 Section III.C / Fig. 2 mechanism");

    FlowOptions off_options;
    off_options.wlo_slp.scaling_optim = false;

    std::vector<SweepPoint> points;
    for (const std::string& kernel_name : kernels::paper_kernel_names()) {
        for (const TargetModel& target : targets::paper_targets()) {
            for (const double a : {-15.0, -35.0, -55.0}) {
                points.push_back({kernel_name, target.name, "WLO-SLP", a, {}, {}});
                points.push_back(
                    {kernel_name, target.name, "WLO-SLP", a, off_options, {}});
            }
        }
    }
    const std::vector<SweepResult> results = driver().run(points);

    std::printf("%-6s %-9s %8s %12s %12s %9s %10s\n", "kernel", "target",
                "A(dB)", "with", "without", "gain", "equalized");
    int improved = 0, total = 0;
    size_t i = 0;
    for (const std::string& kernel_name : kernels::paper_kernel_names()) {
        for (const TargetModel& target : targets::paper_targets()) {
            for (const double a : {-15.0, -35.0, -55.0}) {
                const FlowResult& with = results[i++].flow;
                const FlowResult& without = results[i++].flow;
                const double gain =
                    speedup(without.simd_cycles, with.simd_cycles);
                std::printf("%-6s %-9s %8.0f %12lld %12lld %8.3fx %10d\n",
                            kernel_name.c_str(), target.name.c_str(), a,
                            with.simd_cycles, without.simd_cycles, gain,
                            with.scaling_stats.equalized);
                total++;
                if (gain > 1.0 + 1e-9) improved++;
            }
        }
    }
    std::printf("\n=== A1 summary ===\n");
    std::printf("scaling optimization improved %d/%d configurations; it "
                "never hurt (save/revert is accuracy-guarded)\n",
                improved, total);
    maybe_emit_json(argc, argv, results);
    return 0;
}
