// Ablation A1: the SLP-aware scaling optimization (Fig. 1b) on vs off.
//
// With it off, superword reuses whose per-lane scaling amounts differ pay
// the Fig. 2 penalty (unpack / per-lane shift / repack) in the lowered
// code. This isolates the contribution of the paper's second algorithm.
#include "bench_util.hpp"
#include "target/target_model.hpp"

using namespace slpwlo;
using namespace slpwlo::bench;

int main() {
    print_header("Ablation A1 — scaling optimization on/off",
                 "DATE'17 Section III.C / Fig. 2 mechanism");

    std::printf("%-6s %-9s %8s %12s %12s %9s %10s\n", "kernel", "target",
                "A(dB)", "with", "without", "gain", "equalized");
    int improved = 0, total = 0;
    for (const std::string& kernel_name : kernels::benchmark_kernel_names()) {
        const KernelContext& ctx = context_for(kernel_name);
        for (const TargetModel& target : targets::paper_targets()) {
            for (const double a : {-15.0, -35.0, -55.0}) {
                FlowOptions on;
                on.accuracy_db = a;
                FlowOptions off = on;
                off.wlo_slp.scaling_optim = false;
                const FlowResult with = run_wlo_slp_flow(ctx, target, on);
                const FlowResult without = run_wlo_slp_flow(ctx, target, off);
                const double gain =
                    speedup(without.simd_cycles, with.simd_cycles);
                std::printf("%-6s %-9s %8.0f %12lld %12lld %8.3fx %10d\n",
                            kernel_name.c_str(), target.name.c_str(), a,
                            with.simd_cycles, without.simd_cycles, gain,
                            with.scaling_stats.equalized);
                total++;
                if (gain > 1.0 + 1e-9) improved++;
            }
        }
    }
    std::printf("\n=== A1 summary ===\n");
    std::printf("scaling optimization improved %d/%d configurations; it "
                "never hurt (save/revert is accuracy-guarded)\n",
                improved, total);
    return 0;
}
