// Ablation A2: the accuracy-awareness of the extraction (Fig. 1c) —
// accuracy-conflict detection and the strict per-selection feasibility
// recheck — on vs off.
//
// With both off, the extractor still applies equation (1) WL reductions
// but never consults the evaluator during selection: the final spec can
// then violate the accuracy constraint (measured with the analytical
// evaluator), which is exactly why the paper couples the two.
#include "bench_util.hpp"
#include "target/target_model.hpp"

using namespace slpwlo;
using namespace slpwlo::bench;

int main(int argc, char** argv) {
    print_header("Ablation A2 — accuracy-aware extraction on/off",
                 "DATE'17 Fig. 1c lines 6-25");

    FlowOptions blind_options;
    blind_options.wlo_slp.accuracy_conflicts = false;
    blind_options.wlo_slp.strict_feasibility = false;

    const std::vector<TargetModel> ablation_targets{targets::xentium(),
                                                    targets::vex4()};
    std::vector<SweepPoint> points;
    for (const std::string& kernel_name : kernels::paper_kernel_names()) {
        for (const TargetModel& target : ablation_targets) {
            for (const double a : {-25.0, -45.0, -65.0}) {
                points.push_back({kernel_name, target.name, "WLO-SLP", a, {}, {}});
                points.push_back(
                    {kernel_name, target.name, "WLO-SLP", a, blind_options, {}});
            }
        }
    }
    const std::vector<SweepResult> results = driver().run(points);

    std::printf("%-6s %-9s %8s | %10s %10s | %10s %10s %9s\n", "kernel",
                "target", "A(dB)", "aware-n", "aware-ok", "blind-n",
                "blind-ok", "blind-g");
    int blind_violations = 0, aware_violations = 0, total = 0;
    size_t i = 0;
    for (const std::string& kernel_name : kernels::paper_kernel_names()) {
        for (const TargetModel& target : ablation_targets) {
            for (const double a : {-25.0, -45.0, -65.0}) {
                const FlowResult& with = results[i++].flow;
                const FlowResult& without = results[i++].flow;
                const bool aware_ok = with.analytic_noise_db <= a + 1e-9;
                const bool blind_ok = without.analytic_noise_db <= a + 1e-9;
                std::printf("%-6s %-9s %8.0f | %10.1f %10s | %10.1f %10s "
                            "%9d\n",
                            kernel_name.c_str(), target.name.c_str(), a,
                            with.analytic_noise_db, aware_ok ? "yes" : "NO",
                            without.analytic_noise_db,
                            blind_ok ? "yes" : "VIOLATED",
                            without.group_count);
                total++;
                if (!blind_ok) blind_violations++;
                if (!aware_ok) aware_violations++;
            }
        }
    }
    std::printf("\n=== A2 summary ===\n");
    std::printf("constraint violations: aware %d/%d, blind %d/%d\n",
                aware_violations, total, blind_violations, total);
    std::printf("(the aware flow must never violate; the blind flow "
                "over-commits WL reductions at strict constraints)\n");
    maybe_emit_json(argc, argv, results);
    return 0;
}
