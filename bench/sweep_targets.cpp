// Cross-ISA design-space sweep: kernels x TargetRegistry models x SIMD
// datapath widths, on the SweepDriver. Each base ISA (paper VLIWs plus
// the shipped NEON128/SSE128/DSP64 description presets, plus any model
// loaded from a description file on the command line) spawns derived
// width variants via TargetModel::with_simd_width, and every point runs
// with a per-point TargetModel override memoized by content fingerprint.
//
// The grid runs twice — 1 worker thread, then N — and the harness fails
// unless the results are bit-identical.
//
//   $ ./sweep_targets [--threads N] [--smoke] [--target-file FILE]...
//                     [--kernel-file FILE]... [--json[=FILE]]
//
// --target-file loads and registers a textual target description (see
// targets/*.target for the format) and adds it to the ISA axis;
// --kernel-file does the same on the kernel axis with a `.slp` DSL file
// (kernels/*.slp for examples); --smoke shrinks the grid to one kernel
// and one constraint for CI.
#include <algorithm>
#include <cctype>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "frontend/kernel_file.hpp"
#include "target/target_desc.hpp"
#include "target/target_registry.hpp"

using namespace slpwlo;
using namespace slpwlo::bench;

namespace {

bool identical(const std::vector<SweepResult>& a,
               const std::vector<SweepResult>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
        const FlowResult& x = a[i].flow;
        const FlowResult& y = b[i].flow;
        if (x.scalar_cycles != y.scalar_cycles ||
            x.simd_cycles != y.simd_cycles ||
            x.group_count != y.group_count ||
            x.target_fp != y.target_fp ||
            x.analytic_noise_db != y.analytic_noise_db) {
            return false;
        }
        for (const NodeRef node : x.spec.nodes()) {
            if (!(x.spec.format(node) == y.spec.format(node))) return false;
        }
    }
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    print_header("Cross-ISA target sweep — registry x SIMD widths",
                 "TargetRegistry infrastructure (no paper figure)");

    BenchArgSpec spec;
    spec.smoke = true;
    spec.target_files = true;
    spec.kernel_files = true;
    const BenchOptions args = parse_bench_args(argc, argv, spec);
    const int parallel_threads = args.threads;
    const bool smoke = args.smoke;
    const std::vector<std::string>& target_files = args.target_files;

    // The ISA axis: two paper VLIWs, the three shipped presets, and any
    // description files from the command line (registered so they resolve
    // like every other target).
    std::vector<std::string> isas{"XENTIUM", "ST240", "NEON128", "SSE128",
                                  "DSP64"};
    const auto same_target = [](const std::string& a, const std::string& b) {
        return a.size() == b.size() &&
               std::equal(a.begin(), a.end(), b.begin(),
                          [](unsigned char x, unsigned char y) {
                              return std::toupper(x) == std::toupper(y);
                          });
    };
    for (const std::string& path : target_files) {
        const TargetModel model = load_target_description(path);
        TargetRegistry::instance().add(model);
        std::printf("loaded `%s` from %s (%d-bit SIMD)\n", model.name.c_str(),
                    path.c_str(), model.simd_width_bits);
        // Dedupe like the registry resolves: case-insensitively (a file
        // that redefines a built-in replaces it, it must not double the
        // axis).
        const bool listed =
            std::any_of(isas.begin(), isas.end(),
                        [&](const std::string& isa) {
                            return same_target(isa, model.name);
                        });
        if (!listed) isas.push_back(model.name);
    }

    std::vector<std::string> kernels =
        smoke ? std::vector<std::string>{"FIR"}
              : std::vector<std::string>{"FIR", "DOT"};
    // File-based kernels join the axis exactly like --target-file models
    // join the ISA axis (and like corpus directories, sorted by filename).
    for (const std::string& path : args.kernel_files) {
        kernels.push_back(frontend::register_kernel_file(path));
        std::printf("loaded kernel `%s` from %s\n", kernels.back().c_str(),
                    path.c_str());
    }
    for (const std::string& dir : args.corpus_dirs) {
        for (std::string& name : frontend::load_kernel_corpus(dir)) {
            std::printf("loaded kernel `%s` from corpus %s\n", name.c_str(),
                        dir.c_str());
            kernels.push_back(std::move(name));
        }
    }
    const std::vector<double> constraints =
        smoke ? std::vector<double>{-30.0} : accuracy_grid(-20.0, -60.0, 10.0);
    const std::vector<int> width_menu{0, 32, 64, 128};

    // Derive each ISA's width variants: width 0 is the model as shipped;
    // a positive width must be reachable from the ISA's element set and
    // different from its native datapath (that variant would only rename
    // the shipped model). Log what the menu drops so the table's coverage
    // is explicit.
    std::vector<SweepPoint> points;
    for (const std::string& isa : isas) {
        const TargetModel base = targets::by_name(isa);
        std::vector<int> widths;
        for (const int w : width_menu) {
            if (w == base.simd_width_bits) continue;
            if (!base.can_derive_simd_width(w)) {
                std::printf("  (skipping %s @ %d bits: no element width "
                            "fits)\n",
                            isa.c_str(), w);
                continue;
            }
            widths.push_back(w);
        }
        const std::vector<SweepPoint> slice =
            SweepDriver::grid(kernels, {isa}, widths, {"WLO-SLP"},
                              constraints);
        points.insert(points.end(), slice.begin(), slice.end());
    }
    std::printf("\ngrid: %zu points (%zu kernels x %zu ISAs x widths x %zu "
                "constraints)\n\n",
                points.size(), kernels.size(), isas.size(),
                constraints.size());

    SweepOptions serial_options;
    serial_options.threads = 1;
    SweepDriver serial(serial_options);
    const std::vector<SweepResult> serial_results = serial.run(points);

    SweepOptions parallel_options;
    parallel_options.threads = parallel_threads;
    SweepDriver parallel(parallel_options);
    const std::vector<SweepResult> parallel_results = parallel.run(points);

    // One row per target variant at the strictest constraint: how the
    // equation-1 trade-off moves with the datapath width.
    const double strictest =
        *std::min_element(constraints.begin(), constraints.end());
    std::printf("%-16s %6s %10s %12s %12s %8s %8s\n", "target", "simd",
                "A(dB)", "scalar-cyc", "simd-cyc", "speedup", "groups");
    for (const SweepResult& r : parallel_results) {
        if (r.point.kernel != kernels.front()) continue;
        if (r.flow.accuracy_db != strictest) continue;
        const TargetModel& model = *r.point.target_model;
        std::printf("%-16s %6d %10.0f %12lld %12lld %8.2f %8d\n",
                    model.name.c_str(), model.simd_width_bits,
                    r.flow.accuracy_db, r.flow.scalar_cycles,
                    r.flow.simd_cycles,
                    speedup(r.flow.scalar_cycles, r.flow.simd_cycles),
                    r.flow.group_count);
    }

    const SweepCacheStats stats = parallel.cache_stats();
    std::printf("\neval cache: %zu entries, %zu hits / %zu misses\n",
                stats.eval_entries, stats.eval_hits, stats.eval_misses);
    const bool ok = identical(serial_results, parallel_results);
    std::printf("results identical (1 vs %d threads): %s\n", parallel_threads,
                ok ? "yes" : "NO");

    // Pair-seeding cliff guard: a swept model with no 2-lane
    // configuration used to degrade to scalar code silently. Run seeding
    // + virtual-width fusion fixed that; fail loudly if such a model
    // (whose smallest configuration the 4-lane-unrolled kernels can
    // actually fill) ever stops forming groups again.
    std::map<std::string, int> cliff_widest;
    for (const SweepResult& r : parallel_results) {
        const TargetModel& model = r.point.target_model.has_value()
                                       ? *r.point.target_model
                                       : targets::by_name(r.point.target);
        // Cliff shape only: SIMD present (min 1 means none), no 2-lane
        // configuration, and a smallest configuration the 4-lane-unrolled
        // kernels can fill.
        const int min_k = model.min_group_size();
        if (min_k <= 2 || min_k > 4) continue;
        int& widest = cliff_widest[model.name];
        for (const BlockGroups& bg : r.flow.groups) {
            for (const SimdGroup& g : bg.groups) {
                widest = std::max(widest, g.width());
            }
        }
    }
    bool cliff_ok = true;
    for (const auto& [name, widest] : cliff_widest) {
        if (widest < 4) {
            cliff_ok = false;
            std::printf("CLIFF REGRESSION: %s has no 2-lane configuration "
                        "and formed no >= 4-lane group at any point\n",
                        name.c_str());
        }
    }
    if (!cliff_widest.empty() && cliff_ok) {
        std::printf("cliff targets seeded >= 4-lane groups:");
        for (const auto& [name, widest] : cliff_widest) {
            std::printf(" %s(%d)", name.c_str(), widest);
        }
        std::printf("\n");
    }

    maybe_emit_json(args, parallel_results, &stats);
    return ok && cliff_ok ? 0 : 1;
}
