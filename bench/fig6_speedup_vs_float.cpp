// Figure 6: speedup of WLO-SLP over the original single-precision
// floating-point version, on XENTIUM (soft-float emulation) and ST240
// (hardware FP), for FIR / IIR / CONV across accuracy constraints.
// The grid extends to -70 dB (beyond the paper's Fig. 6 -45 dB) because the
// analytical noise floors of this implementation sit lower than the
// paper's, shifting the speedup decay toward stricter constraints
// (EXPERIMENTS.md discusses the offset).
//
// Paper shapes: an order-of-magnitude speedup band on XENTIUM (15-45x in
// the paper; soft-float emulation dominates) versus a modest >1x on ST240
// (hardware FP; the gain comes from SIMD alone).
#include "bench_util.hpp"
#include "target/target_model.hpp"

using namespace slpwlo;
using namespace slpwlo::bench;

int main() {
    print_header("Fig. 6 — WLO-SLP speedup over floating point",
                 "DATE'17 Figure 6");

    double xentium_min = 1e9, xentium_max = 0.0;
    double st240_min = 1e9, st240_max = 0.0;

    for (const TargetModel& target : {targets::xentium(), targets::st240()}) {
        std::printf("\n-- %s (float: %s) --\n", target.name.c_str(),
                    target.fp.hardware ? "hardware" : "soft-float");
        std::printf("%8s", "A(dB)");
        for (const std::string& k : kernels::benchmark_kernel_names()) {
            std::printf(" %9s", k.c_str());
        }
        std::printf("\n");
        for (const double a : constraint_grid(-5.0, -70.0)) {
            std::printf("%8.0f", a);
            for (const std::string& kernel_name :
                 kernels::benchmark_kernel_names()) {
                const KernelContext& ctx = context_for(kernel_name);
                const long long fc = float_cycles(ctx, target);
                FlowOptions options;
                options.accuracy_db = a;
                const FlowResult slp = run_wlo_slp_flow(ctx, target, options);
                const double s = speedup(fc, slp.simd_cycles);
                std::printf(" %9.2f", s);
                if (target.fp.hardware) {
                    st240_min = std::min(st240_min, s);
                    st240_max = std::max(st240_max, s);
                } else {
                    xentium_min = std::min(xentium_min, s);
                    xentium_max = std::max(xentium_max, s);
                }
            }
            std::printf("\n");
        }
    }

    std::printf("\n=== Fig. 6 summary ===\n");
    std::printf("XENTIUM speedup band: %.1fx .. %.1fx (paper: 15x .. 45x)\n",
                xentium_min, xentium_max);
    std::printf("ST240   speedup band: %.2fx .. %.2fx (paper: ~0.9x .. 1.4x)\n",
                st240_min, st240_max);
    return 0;
}
