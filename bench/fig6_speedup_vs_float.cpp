// Figure 6: speedup of WLO-SLP over the original single-precision
// floating-point version, on XENTIUM (soft-float emulation) and ST240
// (hardware FP), for FIR / IIR / CONV across accuracy constraints.
// The grid extends to -70 dB (beyond the paper's Fig. 6 -45 dB) because the
// analytical noise floors of this implementation sit lower than the
// paper's, shifting the speedup decay toward stricter constraints
// (EXPERIMENTS.md discusses the offset).
//
// Paper shapes: an order-of-magnitude speedup band on XENTIUM (15-45x in
// the paper; soft-float emulation dominates) versus a modest >1x on ST240
// (hardware FP; the gain comes from SIMD alone).
#include <algorithm>

#include "bench_util.hpp"
#include "target/target_model.hpp"

using namespace slpwlo;
using namespace slpwlo::bench;

int main(int argc, char** argv) {
    print_header("Fig. 6 — WLO-SLP speedup over floating point",
                 "DATE'17 Figure 6");

    const std::vector<TargetModel> figure_targets{targets::xentium(),
                                                  targets::st240()};

    // Float references: one point per (kernel, target); the constraint is
    // irrelevant to the float lowering.
    std::vector<SweepPoint> float_points;
    for (const TargetModel& target : figure_targets) {
        for (const std::string& k : kernels::paper_kernel_names()) {
            float_points.push_back({k, target.name, "Float", 0.0, {}, {}});
        }
    }
    const std::vector<SweepResult> float_results = driver().run(float_points);

    // The WLO-SLP grid, target-major in print order.
    std::vector<SweepPoint> points;
    for (const TargetModel& target : figure_targets) {
        for (const double a : constraint_grid(-5.0, -70.0)) {
            for (const std::string& k : kernels::paper_kernel_names()) {
                points.push_back({k, target.name, "WLO-SLP", a, {}, {}});
            }
        }
    }
    const std::vector<SweepResult> results = driver().run(points);

    double xentium_min = 1e9, xentium_max = 0.0;
    double st240_min = 1e9, st240_max = 0.0;

    size_t i = 0;
    size_t float_index = 0;
    for (const TargetModel& target : figure_targets) {
        std::printf("\n-- %s (float: %s) --\n", target.name.c_str(),
                    target.fp.hardware ? "hardware" : "soft-float");
        std::printf("%8s", "A(dB)");
        for (const std::string& k : kernels::paper_kernel_names()) {
            std::printf(" %9s", k.c_str());
        }
        std::printf("\n");
        const size_t float_base = float_index;
        float_index += kernels::paper_kernel_names().size();
        for (const double a : constraint_grid(-5.0, -70.0)) {
            std::printf("%8.0f", a);
            for (size_t k = 0; k < kernels::paper_kernel_names().size(); ++k) {
                const long long fc =
                    float_results[float_base + k].flow.simd_cycles;
                const FlowResult& slp = results[i++].flow;
                const double s = speedup(fc, slp.simd_cycles);
                std::printf(" %9.2f", s);
                if (target.fp.hardware) {
                    st240_min = std::min(st240_min, s);
                    st240_max = std::max(st240_max, s);
                } else {
                    xentium_min = std::min(xentium_min, s);
                    xentium_max = std::max(xentium_max, s);
                }
            }
            std::printf("\n");
        }
    }

    std::printf("\n=== Fig. 6 summary ===\n");
    std::printf("XENTIUM speedup band: %.1fx .. %.1fx (paper: 15x .. 45x)\n",
                xentium_min, xentium_max);
    std::printf("ST240   speedup band: %.2fx .. %.2fx (paper: ~0.9x .. 1.4x)\n",
                st240_min, st240_max);
    // Emit the float references too: the speedups are only reproducible
    // from the JSON with both sides present.
    std::vector<SweepResult> all = float_results;
    all.insert(all.end(), results.begin(), results.end());
    maybe_emit_json(argc, argv, all);
    return 0;
}
