// Ablation A3: the group-selection benefit heuristic.
//
//  * ReuseOverCost — the paper's (Liu'12) ratio of enabled superword reuse
//    to packing/unpacking cost;
//  * SavingsOnly   — reuse-blind: instruction savings minus overhead ops;
//  * no profitability floor (min_benefit = 0) — reproduces the paper's
//    deliberately filter-free CONV configuration (Section V.D), where a
//    selected solution may degrade performance.
#include "bench_util.hpp"
#include "target/target_model.hpp"

using namespace slpwlo;
using namespace slpwlo::bench;

int main() {
    print_header("Ablation A3 — benefit heuristic variants",
                 "DATE'17 Section V.D / Liu'12 heuristic");

    std::printf("%-6s %-9s %8s %12s %12s %12s\n", "kernel", "target", "A(dB)",
                "reuse/cost", "savings", "no-floor");
    for (const std::string& kernel_name : kernels::benchmark_kernel_names()) {
        const KernelContext& ctx = context_for(kernel_name);
        for (const TargetModel& target :
             {targets::xentium(), targets::vex1()}) {
            for (const double a : {-15.0, -45.0}) {
                FlowOptions base;
                base.accuracy_db = a;

                FlowOptions savings = base;
                savings.wlo_slp.slp.benefit_mode = BenefitMode::SavingsOnly;

                FlowOptions no_floor = base;
                no_floor.wlo_slp.slp.min_benefit = 0.0;

                const long long c0 =
                    run_wlo_slp_flow(ctx, target, base).simd_cycles;
                const long long c1 =
                    run_wlo_slp_flow(ctx, target, savings).simd_cycles;
                const long long c2 =
                    run_wlo_slp_flow(ctx, target, no_floor).simd_cycles;
                std::printf("%-6s %-9s %8.0f %12lld %12lld %12lld\n",
                            kernel_name.c_str(), target.name.c_str(), a, c0,
                            c1, c2);
            }
        }
    }
    std::printf("\n=== A3 summary ===\n");
    std::printf("reuse/cost is the default; no-floor shows the paper's "
                "filter-free behaviour (occasionally slower solutions, as "
                "in their CONV-on-XENTIUM observation)\n");
    return 0;
}
