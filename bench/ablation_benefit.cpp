// Ablation A3: the group-selection benefit heuristic.
//
//  * ReuseOverCost — the paper's (Liu'12) ratio of enabled superword reuse
//    to packing/unpacking cost;
//  * SavingsOnly   — reuse-blind: instruction savings minus overhead ops;
//  * no profitability floor (min_benefit = 0) — reproduces the paper's
//    deliberately filter-free CONV configuration (Section V.D), where a
//    selected solution may degrade performance.
#include "bench_util.hpp"
#include "target/target_model.hpp"

using namespace slpwlo;
using namespace slpwlo::bench;

int main(int argc, char** argv) {
    print_header("Ablation A3 — benefit heuristic variants",
                 "DATE'17 Section V.D / Liu'12 heuristic");

    FlowOptions savings_options;
    savings_options.wlo_slp.slp.benefit_mode = BenefitMode::SavingsOnly;
    FlowOptions no_floor_options;
    no_floor_options.wlo_slp.slp.min_benefit = 0.0;

    const std::vector<TargetModel> ablation_targets{targets::xentium(),
                                                    targets::vex1()};
    std::vector<SweepPoint> points;
    for (const std::string& kernel_name : kernels::paper_kernel_names()) {
        for (const TargetModel& target : ablation_targets) {
            for (const double a : {-15.0, -45.0}) {
                points.push_back({kernel_name, target.name, "WLO-SLP", a, {}, {}});
                points.push_back(
                    {kernel_name, target.name, "WLO-SLP", a, savings_options, {}});
                points.push_back(
                    {kernel_name, target.name, "WLO-SLP", a, no_floor_options, {}});
            }
        }
    }
    const std::vector<SweepResult> results = driver().run(points);

    std::printf("%-6s %-9s %8s %12s %12s %12s\n", "kernel", "target", "A(dB)",
                "reuse/cost", "savings", "no-floor");
    size_t i = 0;
    for (const std::string& kernel_name : kernels::paper_kernel_names()) {
        for (const TargetModel& target : ablation_targets) {
            for (const double a : {-15.0, -45.0}) {
                const long long c0 = results[i++].flow.simd_cycles;
                const long long c1 = results[i++].flow.simd_cycles;
                const long long c2 = results[i++].flow.simd_cycles;
                std::printf("%-6s %-9s %8.0f %12lld %12lld %12lld\n",
                            kernel_name.c_str(), target.name.c_str(), a, c0,
                            c1, c2);
            }
        }
    }
    std::printf("\n=== A3 summary ===\n");
    std::printf("reuse/cost is the default; no-floor shows the paper's "
                "filter-free behaviour (occasionally slower solutions, as "
                "in their CONV-on-XENTIUM observation)\n");
    maybe_emit_json(argc, argv, results);
    return 0;
}
