// Micro-benchmarks (google-benchmark) of the optimization algorithms
// themselves: EVALACC throughput, candidate extraction, conflict detection,
// the full joint WLO, the Tabu baseline, and the VLIW timing model. These
// quantify why the analytical evaluator matters: the joint optimization
// issues tens of thousands of EVALACC calls per kernel.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "target/target_model.hpp"

using namespace slpwlo;
using namespace slpwlo::bench;

namespace {

void BM_EvalAcc(benchmark::State& state) {
    const KernelContext& ctx = context_for("FIR");
    ctx.ensure_evaluator();  // pay the lazy gain calibration outside the loop
    FixedPointSpec spec = ctx.initial_spec();
    for (const NodeRef node : spec.nodes()) spec.set_wl(node, 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ctx.evaluator().noise_power(spec));
    }
}
BENCHMARK(BM_EvalAcc);

void BM_CandidateExtraction(benchmark::State& state) {
    const KernelContext& ctx = context_for("CONV");
    const TargetModel target = targets::vex4();
    const BlockId hot = blocks_by_priority(ctx.kernel()).front();
    for (auto _ : state) {
        PackedView view(ctx.kernel(), hot);
        benchmark::DoNotOptimize(extract_candidates(view, target));
    }
}
BENCHMARK(BM_CandidateExtraction);

void BM_ConflictDetection(benchmark::State& state) {
    const KernelContext& ctx = context_for("CONV");
    const TargetModel target = targets::vex4();
    const BlockId hot = blocks_by_priority(ctx.kernel()).front();
    PackedView view(ctx.kernel(), hot);
    const auto candidates = extract_candidates(view, target);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            detect_structural_conflicts(view, candidates));
    }
}
BENCHMARK(BM_ConflictDetection);

void BM_JointWloSlp(benchmark::State& state) {
    const KernelContext& ctx = context_for("FIR");
    const TargetModel target = targets::xentium();
    for (auto _ : state) {
        FlowOptions options;
        options.accuracy_db = -35.0;
        benchmark::DoNotOptimize(run_wlo_slp_flow(ctx, target, options));
    }
}
BENCHMARK(BM_JointWloSlp);

void BM_TabuWlo(benchmark::State& state) {
    const KernelContext& ctx = context_for("FIR");
    const TargetModel target = targets::xentium();
    for (auto _ : state) {
        FixedPointSpec spec = ctx.initial_spec();
        benchmark::DoNotOptimize(
            run_tabu_wlo(spec, ctx.evaluator(), target, -35.0));
    }
}
BENCHMARK(BM_TabuWlo);

void BM_LowerAndSchedule(benchmark::State& state) {
    const KernelContext& ctx = context_for("IIR");
    const TargetModel target = targets::st240();
    FlowOptions options;
    options.accuracy_db = -35.0;
    const FlowResult result = run_wlo_slp_flow(ctx, target, options);
    for (auto _ : state) {
        const MachineKernel machine =
            lower_kernel(ctx.kernel(), &result.spec, &result.groups, target,
                         LowerMode::FixedSimd);
        benchmark::DoNotOptimize(estimate_cycles(machine, target));
    }
}
BENCHMARK(BM_LowerAndSchedule);

void BM_GainCalibration(benchmark::State& state) {
    // The one-off per-kernel cost the analytical evaluator amortizes.
    auto bench = kernels::make_benchmark_kernel("CONV");
    for (auto _ : state) {
        benchmark::DoNotOptimize(analyze_gains(bench.kernel));
    }
}
BENCHMARK(BM_GainCalibration);

}  // namespace

BENCHMARK_MAIN();
