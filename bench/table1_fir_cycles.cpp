// Table I: cycle counts of the SIMD versions for FIR on XENTIUM, ST240 and
// VEX-4 across accuracy constraints {-5,-15,-25,-35,-45,-55,-65} dB.
//
// Paper shape: WLO-SLP's cycle count increases monotonically as the
// constraint tightens (accuracy is traded for performance in an orderly
// way), while WLO-First's "varies randomly".
#include "bench_util.hpp"
#include "target/target_model.hpp"

using namespace slpwlo;
using namespace slpwlo::bench;

int main() {
    print_header("Table I — FIR SIMD cycle counts", "DATE'17 Table I");

    const std::vector<double> constraints{-5, -15, -25, -35, -45, -55, -65};
    const KernelContext& ctx = context_for("FIR");

    std::printf("%-8s %-10s", "Target", "Flow");
    for (const double a : constraints) std::printf(" %9.0f", a);
    std::printf("\n");

    bool monotone = true;
    for (const TargetModel& target :
         {targets::xentium(), targets::st240(), targets::vex4()}) {
        std::vector<long long> first_cycles, slp_cycles;
        for (const double a : constraints) {
            FlowOptions options;
            options.accuracy_db = a;
            first_cycles.push_back(
                run_wlo_first_flow(ctx, target, options).simd_cycles);
            slp_cycles.push_back(
                run_wlo_slp_flow(ctx, target, options).simd_cycles);
        }
        std::printf("%-8s %-10s", target.name.c_str(), "WLO-First");
        for (const long long c : first_cycles) std::printf(" %9lld", c);
        std::printf("\n%-8s %-10s", "", "WLO-SLP");
        for (const long long c : slp_cycles) std::printf(" %9lld", c);
        std::printf("\n");
        for (size_t i = 1; i < slp_cycles.size(); ++i) {
            // The paper's own Table I dips slightly (645128 -> 626696 on
            // VEX-4); require monotone up to a 12% tolerance.
            if (static_cast<double>(slp_cycles[i]) <
                0.88 * static_cast<double>(slp_cycles[i - 1])) {
                monotone = false;
            }
        }
    }

    std::printf("\n=== Table I summary ===\n");
    std::printf("WLO-SLP cycles monotone non-decreasing (12%% tolerance) with stricter A: %s "
                "(paper: yes)\n",
                monotone ? "yes" : "NO");
    std::printf("note: absolute counts are from the repository's VLIW timing "
                "model, not the vendor simulators (see DESIGN.md)\n");
    return 0;
}
