// Table I: cycle counts of the SIMD versions for FIR on XENTIUM, ST240 and
// VEX-4 across accuracy constraints {-5,-15,-25,-35,-45,-55,-65} dB.
//
// Paper shape: WLO-SLP's cycle count increases monotonically as the
// constraint tightens (accuracy is traded for performance in an orderly
// way), while WLO-First's "varies randomly".
#include "bench_util.hpp"
#include "target/target_model.hpp"

using namespace slpwlo;
using namespace slpwlo::bench;

int main(int argc, char** argv) {
    print_header("Table I — FIR SIMD cycle counts", "DATE'17 Table I");

    const std::vector<double> constraints{-5, -15, -25, -35, -45, -55, -65};
    const std::vector<TargetModel> table_targets{
        targets::xentium(), targets::st240(), targets::vex4()};

    std::vector<SweepPoint> points;
    for (const TargetModel& target : table_targets) {
        for (const double a : constraints) {
            points.push_back({"FIR", target.name, "WLO-First", a, {}, {}});
            points.push_back({"FIR", target.name, "WLO-SLP", a, {}, {}});
        }
    }
    const std::vector<SweepResult> results = driver().run(points);

    std::printf("%-8s %-10s", "Target", "Flow");
    for (const double a : constraints) std::printf(" %9.0f", a);
    std::printf("\n");

    bool monotone = true;
    size_t i = 0;
    for (const TargetModel& target : table_targets) {
        std::vector<long long> first_cycles, slp_cycles;
        for (size_t c = 0; c < constraints.size(); ++c) {
            first_cycles.push_back(results[i++].flow.simd_cycles);
            slp_cycles.push_back(results[i++].flow.simd_cycles);
        }
        std::printf("%-8s %-10s", target.name.c_str(), "WLO-First");
        for (const long long c : first_cycles) std::printf(" %9lld", c);
        std::printf("\n%-8s %-10s", "", "WLO-SLP");
        for (const long long c : slp_cycles) std::printf(" %9lld", c);
        std::printf("\n");
        for (size_t j = 1; j < slp_cycles.size(); ++j) {
            // The paper's own Table I dips slightly (645128 -> 626696 on
            // VEX-4); require monotone up to a 12% tolerance.
            if (static_cast<double>(slp_cycles[j]) <
                0.88 * static_cast<double>(slp_cycles[j - 1])) {
                monotone = false;
            }
        }
    }

    std::printf("\n=== Table I summary ===\n");
    std::printf("WLO-SLP cycles monotone non-decreasing (12%% tolerance) with stricter A: %s "
                "(paper: yes)\n",
                monotone ? "yes" : "NO");
    std::printf("note: absolute counts are from the repository's VLIW timing "
                "model, not the vendor simulators (see DESIGN.md)\n");
    maybe_emit_json(argc, argv, results);
    return 0;
}
