// slpwlo_cc — the command-line compiler driver: the whole source-to-source
// flow of the paper's Fig. 3 in one command.
//
//   slpwlo_cc <kernel.k> [--target NAME] [--accuracy DB] [--baseline]
//             [--emit fixed|simd|ir|report] [--no-scaling-optim]
//
//   $ ./slpwlo_cc my_filter.k --target XENTIUM --accuracy -35 --emit simd
//
// Reads a kernel in the DSL (see examples/dsl_frontend.cpp for the
// grammar), runs the joint WLO+SLP optimization (or the WLO-First
// baseline with --baseline), and prints the requested artifact.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "slpwlo.hpp"
#include "support/diagnostics.hpp"

using namespace slpwlo;

namespace {

void usage() {
    std::fprintf(stderr,
                 "usage: slpwlo_cc <kernel.k> [--target NAME] "
                 "[--accuracy DB]\n"
                 "                 [--baseline] [--emit fixed|simd|ir|report]"
                 " [--no-scaling-optim]\n"
                 "targets: XENTIUM ST240 VEX-1 VEX-4 GENERIC32\n");
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string path;
    std::string target_name = "XENTIUM";
    std::string emit = "report";
    double accuracy_db = -35.0;
    bool baseline = false;
    bool scaling_optim = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--target") {
            target_name = value();
        } else if (arg == "--accuracy") {
            accuracy_db = std::stod(value());
        } else if (arg == "--emit") {
            emit = value();
        } else if (arg == "--baseline") {
            baseline = true;
        } else if (arg == "--no-scaling-optim") {
            scaling_optim = false;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        } else {
            path = arg;
        }
    }

    try {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
            return 1;
        }
        std::stringstream source;
        source << in.rdbuf();

        const Kernel kernel = compile_kernel_source(source.str());
        const TargetModel target = targets::by_name(target_name);
        KernelContext context(kernel);

        FlowOptions options;
        options.accuracy_db = accuracy_db;
        options.wlo_slp.scaling_optim = scaling_optim;
        const FlowResult result =
            baseline ? run_wlo_first_flow(context, target, options)
                     : run_wlo_slp_flow(context, target, options);

        if (emit == "fixed") {
            std::printf("%s", emit_fixed_c(context.kernel(),
                                           result.spec).code.c_str());
        } else if (emit == "simd") {
            std::printf("%s", simd_target_mapping_comment(target).c_str());
            std::printf("%s", emit_simd_c(context.kernel(), result.spec,
                                          result.groups).code.c_str());
        } else if (emit == "ir") {
            std::printf("%s", print_kernel(context.kernel()).c_str());
        } else if (emit == "report") {
            std::printf("%s\n", summarize(result).c_str());
            std::printf("speedup over its scalar fixed-point version: "
                        "%.2fx\n",
                        speedup(result.scalar_cycles, result.simd_cycles));
            std::printf("word-length histogram:\n%s",
                        wl_histogram(result.spec).c_str());
            std::printf("groups:\n");
            for (const BlockGroups& bg : result.groups) {
                for (const SimdGroup& g : bg.groups) {
                    std::printf("  block %d: %d-wide %s group\n",
                                bg.block.index(), g.width(),
                                to_string(context.kernel()
                                              .op(g.lanes.front())
                                              .kind)
                                    .c_str());
                }
            }
        } else {
            usage();
            return 2;
        }
    } catch (const Error& e) {
        std::fprintf(stderr, "slpwlo_cc: %s\n", e.what());
        return 1;
    }
    return 0;
}
