// The textual frontend: compile a kernel written in the DSL (the
// annotated-floating-point-C role of the paper's source-to-source flow),
// run the joint optimization, and print the optimized fixed-point C.
//
//   $ ./dsl_frontend            (built-in 8-tap highpass example)
#include <cstdio>

#include "slpwlo.hpp"

using namespace slpwlo;

static const char* kSource = R"(
# 8-tap highpass-ish FIR, tap loop unrolled by 4 to expose SLP
kernel hp8 {
  input  x[135] range(-1.0, 1.0);
  param  c[8] = { -0.02, -0.08, 0.24, 0.52, 0.52, 0.24, -0.08, -0.02 };
  output y[128];
  var acc;
  loop n = 0..128 {
    acc = 0.0;
    loop k = 0..8 unroll 4 {
      acc = acc + c[k] * x[n + 7 - k];
    }
    y[n] = acc;
  }
}
)";

int main() {
    // Parse + lower + unroll + verify.
    const Kernel kernel = compile_kernel_source(kSource);
    std::printf("compiled kernel IR:\n%s\n", print_kernel(kernel).c_str());

    KernelContext context(kernel);
    const TargetModel target = targets::vex4();
    FlowOptions options;
    options.accuracy_db = -30.0;
    const FlowResult r = run_wlo_slp_flow(context, target, options);
    std::printf("%s\n\n", summarize(r).c_str());

    std::printf("optimized fixed-point C:\n%s",
                emit_fixed_c(context.kernel(), r.spec).code.c_str());
    return 0;
}
