// The textual frontend: compile a kernel written in the DSL (the
// annotated-floating-point-C role of the paper's source-to-source flow),
// run the joint optimization, and print the optimized fixed-point C.
//
//   $ ./dsl_frontend            (built-in 8-tap highpass example)
//   $ ./dsl_frontend FILE.slp   (any kernel file, e.g. kernels/fir8.slp)
#include <cstdio>

#include "slpwlo.hpp"

using namespace slpwlo;

static const char* kSource = R"(
# 8-tap highpass-ish FIR, tap loop unrolled by 4 to expose SLP
kernel hp8 {
  input  x[135] range(-1.0, 1.0);
  param  c[8] = { -0.02, -0.08, 0.24, 0.52, 0.52, 0.24, -0.08, -0.02 };
  output y[128];
  var acc;
  loop n = 0..128 {
    acc = 0.0;
    loop k = 0..8 unroll 4 {
      acc = acc + c[k] * x[n + 7 - k];
    }
    y[n] = acc;
  }
}
)";

int main(int argc, char** argv) {
    // A `.slp` path on the command line goes through the same ingestion
    // the sweep tools use (load_kernel_file: parse + lower + unroll +
    // verify, with the `range` annotation mapped onto RangeOptions and
    // `path:line:col:` diagnostics); no argument compiles the embedded
    // example.
    kernels::BenchmarkKernel bench =
        argc > 1 ? frontend::load_kernel_file(argv[1])
                 : frontend::compile_benchmark_source(kSource, "<built-in>");
    std::printf("compiled kernel IR:\n%s\n",
                print_kernel(bench.kernel).c_str());

    KernelContext context(std::move(bench.kernel), bench.range_options);
    const TargetModel target = targets::vex4();
    FlowOptions options;
    options.accuracy_db = -30.0;
    const FlowResult r = run_wlo_slp_flow(context, target, options);
    std::printf("%s\n\n", summarize(r).c_str());

    std::printf("optimized fixed-point C:\n%s",
                emit_fixed_c(context.kernel(), r.spec).code.c_str());
    return 0;
}
