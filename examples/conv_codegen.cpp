// Code generation: run the joint flow on the 3x3 convolution and emit the
// three artifacts of the paper's backend — the fixed-point C, the SIMD C
// over the abstract macro API, and the portable emulation header — plus
// the intrinsic mapping notes for a target port.
//
//   $ ./conv_codegen > conv_generated.txt
#include <cstdio>

#include "slpwlo.hpp"

using namespace slpwlo;

int main() {
    auto bench = kernels::make_benchmark_kernel("CONV");
    KernelContext context(std::move(bench.kernel), bench.range_options);
    const TargetModel target = targets::xentium();

    FlowOptions options;
    options.accuracy_db = -40.0;
    const FlowResult r = run_wlo_slp_flow(context, target, options);

    std::printf("/* %s */\n\n", summarize(r).c_str());

    std::printf("/* ============ fixed-point C (scalar) ============ */\n");
    const FixedCResult fixed = emit_fixed_c(context.kernel(), r.spec);
    std::printf("%s\n", fixed.code.c_str());

    std::printf("/* ============ SIMD C (macro API) ============ */\n");
    std::printf("%s", simd_target_mapping_comment(target).c_str());
    const FixedCResult simd =
        emit_simd_c(context.kernel(), r.spec, r.groups);
    std::printf("%s\n", simd.code.c_str());

    std::printf("/* ============ slpwlo_simd_emu.h ============ */\n");
    std::printf("%s", simd_emulation_header().c_str());
    return 0;
}
