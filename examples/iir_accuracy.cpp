// Accuracy validation on the recursive kernel: compare the analytical
// noise estimate (what the optimizer steers by) with bit-accurate
// fixed-point simulation (what the generated code actually does), across
// the constraint sweep. Recursive kernels are the hard case: interval
// range analysis diverges (the flow falls back to simulated ranges) and
// quantization noise recirculates through the feedback taps.
#include <cstdio>

#include "accuracy/sim_evaluator.hpp"
#include "slpwlo.hpp"

using namespace slpwlo;

int main() {
    auto bench = kernels::make_benchmark_kernel("IIR");
    KernelContext context(std::move(bench.kernel), bench.range_options);
    const TargetModel target = targets::st240();

    std::printf("IIR-10 on %s — analytic vs measured noise of the joint "
                "solution\n\n",
                target.name.c_str());
    std::printf("range analysis method: %s (interval iteration diverges on "
                "feedback)\n\n",
                context.ranges().method_used == RangeMethod::Simulation
                    ? "simulation"
                    : "interval");

    const SimulationEvaluator sim(context.kernel(), /*runs=*/2);
    std::printf("%8s %14s %14s %12s %8s\n", "A(dB)", "analytic(dB)",
                "measured(dB)", "simd-cyc", "groups");
    for (double a = -10.0; a >= -60.0; a -= 10.0) {
        FlowOptions options;
        options.accuracy_db = a;
        const FlowResult r = run_wlo_slp_flow(context, target, options);
        const double measured = sim.noise_power_db(r.spec);
        std::printf("%8.0f %14.1f %14.1f %12lld %8d%s\n", a,
                    r.analytic_noise_db, measured, r.simd_cycles,
                    r.group_count,
                    measured <= a + 3.0 ? "" : "   <-- model optimistic");
    }
    std::printf(
        "\nthe analytic estimate satisfies the constraint by construction;\n"
        "the measured value tracks it within the linear noise model's\n"
        "margin (it drifts under very coarse quantization, where truncation\n"
        "errors correlate with the signal — a known limitation shared with\n"
        "the paper's analytical evaluator).\n");
    return 0;
}
