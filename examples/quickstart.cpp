// Quickstart: run the paper's joint WLO + SLP flow on the 64-tap FIR for
// the XENTIUM DSP and compare it with the decoupled WLO-First baseline.
//
//   $ ./quickstart [accuracy_db]     (default -35 dB)
#include <cstdio>
#include <cstdlib>

#include "slpwlo.hpp"

using namespace slpwlo;

int main(int argc, char** argv) {
    const double accuracy_db = argc > 1 ? std::atof(argv[1]) : -35.0;

    // 1. The workload: the paper's 64-tap FIR (inner loop unrolled by 4).
    auto bench = kernels::make_benchmark_kernel("FIR");
    // 2. Per-kernel preparation: dynamic-range analysis, IWL determination
    //    and noise-gain calibration (shared across targets/constraints).
    KernelContext context(std::move(bench.kernel), bench.range_options);

    const TargetModel target = targets::xentium();
    FlowOptions options;
    options.accuracy_db = accuracy_db;

    // 3. The paper's flow (Fig. 3) vs the decoupled baseline (Fig. 5).
    const FlowResult joint = run_wlo_slp_flow(context, target, options);
    const FlowResult decoupled = run_wlo_first_flow(context, target, options);
    const long long fc = float_cycles(context, target);

    std::printf("accuracy constraint : %.1f dB (max output noise power)\n",
                accuracy_db);
    std::printf("target              : %s (%d-issue VLIW, %d-bit SIMD)\n\n",
                target.name.c_str(), target.issue_width,
                target.simd_width_bits);
    std::printf("%s\n%s\n\n", summarize(joint).c_str(),
                summarize(decoupled).c_str());

    std::printf("speedup over the scalar fixed-point baseline:\n");
    std::printf("  WLO-SLP   : %.2fx  (%d SIMD groups)\n",
                speedup(decoupled.scalar_cycles, joint.simd_cycles),
                joint.group_count);
    std::printf("  WLO-First : %.2fx  (%d SIMD groups)\n",
                speedup(decoupled.scalar_cycles, decoupled.simd_cycles),
                decoupled.group_count);
    std::printf("speedup over single-precision float (soft-float): %.1fx\n\n",
                speedup(fc, joint.simd_cycles));

    std::printf("word-length histogram of the joint solution:\n%s",
                wl_histogram(joint.spec).c_str());
    return 0;
}
