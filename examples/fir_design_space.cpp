// Design-space exploration: sweep the accuracy constraint on one kernel
// and watch the performance/accuracy trade-off the paper exploits —
// looser constraints buy narrower word lengths, wider SIMD groups and
// faster code.
//
// The sweep runs through the SweepDriver: all points share one prepared
// KernelContext, execute on the thread pool, and come back in grid order.
//
//   $ ./fir_design_space [target]     (default VEX-4)
#include <cstdio>

#include "flow/sweep.hpp"
#include "slpwlo.hpp"

using namespace slpwlo;

int main(int argc, char** argv) {
    const TargetModel target =
        targets::by_name(argc > 1 ? argv[1] : "VEX-4");

    SweepDriver driver;
    const std::vector<SweepPoint> points = SweepDriver::grid(
        {"FIR"}, {target.name}, {"WLO-SLP"}, accuracy_grid(-5.0, -70.0, 5.0));
    const std::vector<SweepResult> results = driver.run(points);

    std::printf("FIR-64 on %s — accuracy/performance trade-off\n\n",
                target.name.c_str());
    std::printf("%8s %10s %10s %8s %12s %14s\n", "A(dB)", "simd-cyc",
                "scalar-cyc", "groups", "noise(dB)", "widest group");
    for (const SweepResult& result : results) {
        const FlowResult& r = result.flow;
        int widest = 0;
        for (const BlockGroups& bg : r.groups) {
            for (const SimdGroup& g : bg.groups) {
                widest = std::max(widest, g.width());
            }
        }
        std::printf("%8.0f %10lld %10lld %8d %12.1f %14d\n",
                    result.point.accuracy_db, r.simd_cycles, r.scalar_cycles,
                    r.group_count, r.analytic_noise_db, widest);
    }
    std::printf(
        "\nreading guide: the noise column hugs the constraint while slack\n"
        "exists; the cycle column grows monotonically as the constraint\n"
        "tightens (the paper's Table I behaviour); group width drops from\n"
        "%d-wide to pairs to nothing as word lengths are forced up.\n",
        target.max_group_size());

    // How much does the greedy heuristic leave on the table? Re-run one
    // point with the --optimizer axis flipped: the same grid point now
    // resolves to the exact branch-and-bound flow (SLP-Optimal), which
    // starts from the greedy incumbent and can only improve on it.
    SweepOptions exact_options;
    exact_options.flow_options.solver.optimizer = Optimizer::Optimal;
    SweepDriver exact(exact_options);
    const std::vector<SweepResult> gap = exact.run(SweepDriver::grid(
        {"FIR"}, {target.name}, {"WLO-SLP"}, {-30.0}));
    const SolverStats& stats = gap.front().flow.solver_stats;
    std::printf(
        "\nheuristic-vs-optimal gap at -30 dB (%s, %lld B&B nodes):\n"
        "  greedy pack benefit %.1f, exact %.1f — gap %.1f%s\n",
        gap.front().flow.flow_name.c_str(), stats.nodes,
        stats.heuristic_objective, stats.best_objective, stats.gap,
        stats.proven_optimal
            ? " (proven optimal: the heuristic left nothing behind)"
            : " (budget-limited incumbent)");

    std::printf(
        "\nscaling up: the same sweep runs as a farm. Start a daemon\n"
        "(slpwlo-shard daemon --listen 7477), submit the grid\n"
        "(slpwlo-shard plan --shards 1 ... ; slpwlo-shard submit\n"
        "--connect :7477 --manifest grid.0.manifest), then point any\n"
        "number of machines at it (slpwlo-shard work --connect\n"
        "host:7477). Rows stream into the daemon's merger as workers\n"
        "finish, `status --connect` is live JSON, and `merge --connect\n"
        "--job 0` returns this report byte-identical — even if a worker\n"
        "is SIGKILLed mid-chunk (its heartbeat lapses and the chunk is\n"
        "re-issued). After editing the grid, submit --splice-from with\n"
        "the previous rows re-runs only the changed points.\n");
    return 0;
}
