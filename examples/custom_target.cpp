// Defining your own processor model: a hypothetical 2-issue DSP with a
// 64-bit SIMD datapath (4x16 / 8x8) and a serial shifter, to show how the
// joint optimization adapts to the target description — wider groups
// become profitable, and expensive shifting makes the scaling
// optimization matter more.
#include <cstdio>

#include "slpwlo.hpp"

using namespace slpwlo;

int main() {
    TargetModel dsp;
    dsp.name = "MYDSP64";
    dsp.issue_width = 2;
    dsp.alu_slots = 2;
    dsp.mul_slots = 1;
    dsp.mem_slots = 1;
    dsp.alu_latency = 1;
    dsp.mul_latency = 2;
    dsp.mem_latency = 2;
    dsp.barrel_shifter = false;  // serial shifter: n-bit shift ~ n cycles
    dsp.native_wl = 32;
    dsp.scalar_wls = {32, 16, 8};
    dsp.simd_width_bits = 64;        // twice the paper's targets
    dsp.simd_element_wls = {32, 16, 8};  // 2x32, 4x16, 8x8
    dsp.pack2_ops = 1;
    dsp.extract_ops = 1;
    dsp.fp.hardware = false;
    dsp.loop_overhead_cycles = 2;
    dsp.validate();

    std::printf("custom target: %s, %d-bit SIMD, group sizes up to %d\n\n",
                dsp.name.c_str(), dsp.simd_width_bits, dsp.max_group_size());

    auto bench = kernels::make_benchmark_kernel("FIR");
    KernelContext context(std::move(bench.kernel), bench.range_options);

    std::printf("%8s %12s %12s %8s %8s\n", "A(dB)", "simd-cyc", "scalar-cyc",
                "groups", "widest");
    for (const double a : {-10.0, -30.0, -50.0}) {
        FlowOptions options;
        options.accuracy_db = a;
        const FlowResult r = run_wlo_slp_flow(context, dsp, options);
        int widest = 0;
        for (const BlockGroups& bg : r.groups) {
            for (const SimdGroup& g : bg.groups) {
                widest = std::max(widest, g.width());
            }
        }
        std::printf("%8.0f %12lld %12lld %8d %8d\n", a, r.simd_cycles,
                    r.scalar_cycles, r.group_count, widest);
    }
    std::printf("\non a 64-bit datapath the FIR taps group 4-wide at 16 bits\n"
                "without giving up any accuracy relative to the paper's\n"
                "32-bit targets — equation (1) with a bigger budget.\n");
    return 0;
}
