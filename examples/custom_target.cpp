// Defining your own processor model as *data*: a hypothetical 2-issue DSP
// described in the textual target-description format, parsed, registered
// in the TargetRegistry next to the built-in ISAs, and swept across SIMD
// datapath widths with TargetModel::with_simd_width — equation (1) with a
// bigger budget: on a 64-bit datapath the FIR taps group 4-wide at 16
// bits without giving up any accuracy relative to the paper's 32-bit
// targets. At 128 bits this DSP's element set has no 2-lane
// configuration (k=2 would need 64-bit lane containers, which MYDSP64
// does not implement — compare the NEON128 preset, which does). The
// paper's pairwise extraction alone could not seed any group there; the
// extractor now seeds k-lane groups straight from adjacent-memory runs
// and fuses pairs through virtual intermediate widths, so the 128-bit
// variant still groups 4-wide (see DESIGN.md "Seeding beyond pairs").
#include <cstdio>

#include "slpwlo.hpp"

using namespace slpwlo;

namespace {

// The same fields examples used to fill in by hand, now a description a
// deployment can ship as a file (see targets/*.target for the shipped
// presets) or serialize back out with target_description().
const char* const kMyDsp = R"(
# hypothetical 2-issue DSP with a 64-bit SIMD datapath and serial shifter
name = MYDSP64
issue_width = 2
alu_slots = 2
mul_slots = 1
mem_slots = 1
alu_latency = 1
mul_latency = 2
mem_latency = 2
barrel_shifter = false        # serial shifter: n-bit shift ~ n cycles
loop_overhead_cycles = 2
native_wl = 32
scalar_wls = 32, 16, 8
simd_width_bits = 64          # twice the paper's targets
simd_element_wls = 32, 16, 8  # 2x32, 4x16, 8x8
op_cost.mul = 1.5             # multiplies priced above ALU ops in WLO
fp.hardware = false
)";

}  // namespace

int main() {
    const TargetModel dsp = parse_target_description(kMyDsp, "mydsp64");
    TargetRegistry::instance().add(dsp);

    std::printf("custom target: %s, %d-bit SIMD, group sizes up to %d\n",
                dsp.name.c_str(), dsp.simd_width_bits, dsp.max_group_size());
    std::printf("registered targets:");
    for (const std::string& name : TargetRegistry::instance().names()) {
        std::printf(" %s", name.c_str());
    }
    std::printf("\n\n");

    // Sweep the registered model across SIMD datapath widths (0 keeps the
    // 64-bit original) — one grid, per-point TargetModel overrides.
    SweepOptions options;
    options.threads = 2;
    SweepDriver driver(options);
    const std::vector<SweepResult> results = driver.run(SweepDriver::grid(
        {"FIR"}, {"MYDSP64"}, {32, 0, 128}, {"WLO-SLP"},
        {-10.0, -30.0, -50.0}));

    std::printf("%-16s %6s %8s %12s %12s %8s %8s\n", "target", "simd",
                "A(dB)", "simd-cyc", "scalar-cyc", "groups", "widest");
    for (const SweepResult& r : results) {
        int widest = 0;
        for (const BlockGroups& bg : r.flow.groups) {
            for (const SimdGroup& g : bg.groups) {
                widest = std::max(widest, g.width());
            }
        }
        std::printf("%-16s %6d %8.0f %12lld %12lld %8d %8d\n",
                    r.flow.target_name.c_str(),
                    r.point.target_model->simd_width_bits,
                    r.flow.accuracy_db, r.flow.simd_cycles,
                    r.flow.scalar_cycles, r.flow.group_count, widest);
    }
    std::printf("\nequation (1): k lanes of m bits need k*m = datapath "
                "width. The 64-bit\ndatapath groups the FIR taps 4-wide at "
                "16 bits. At 128 bits MYDSP64 has\nno 64-bit lane "
                "containers, so no k=2 configuration exists and pairwise\n"
                "fusion alone could never seed a group; k-lane run seeding "
                "plus\nvirtual-width fusion still form 4-wide groups there "
                "(smallest\nconfiguration: 4x32), so the wider datapath "
                "keeps paying off instead\nof silently degrading to scalar "
                "code.\n");
    return 0;
}
