// slpwlo-shard — distributed design-space sweeps from the command line.
//
// Turns any SweepDriver grid into N self-contained shard manifests, runs
// a manifest as an independent worker process, and folds per-shard result
// files back into the exact JSON the single-process sweep would have
// produced (byte-identical; the merge refuses grids that do not match).
// Beside the static plan/run/merge pipeline, serve/work run the same
// grid *elastically*: a coordinator chops a whole-grid manifest into
// cost-balanced chunks in a lease directory, and any number of workers
// acquire, run and publish chunks on demand — with lease expiry and
// re-issue, so a straggling or killed worker's slots are re-acquired
// (dist/lease_coordinator.hpp).
//
//   slpwlo-shard plan  --shards N --out-prefix P --kernels A,B
//                      --targets X,Y [--widths 0,64] [--flows F,G]
//                      [--constraints -20,-30] [--strategy round-robin|
//                      cost-balanced] [--measured-from RESULTS]...
//                      [--target-file FILE]...
//   slpwlo-shard run   --manifest FILE --out FILE [--threads N]
//                      [--snapshot-in FILE] [--snapshot-out FILE]
//                      [--cache-capacity N] [--json[=FILE]]
//                      [--evaluator tape|walker|compiled] [--measure]
//   slpwlo-shard serve --manifest FILE --dir DIR [--chunk-cost C]
//                      [--chunk-slots N] [--ttl-ms T]
//                      [--measured-from RESULTS]...
//   slpwlo-shard work  --dir DIR [--worker ID] [--threads N]
//                      [--snapshot-in FILE] [--snapshot-out FILE]
//                      [--cache-capacity N] [--straggle-ms T]
//                      [--evaluator tape|walker|compiled] [--measure]
//   slpwlo-shard merge --out FILE (RESULTS... | --lease-dir DIR)
//                      [--cache FILE]... [--cache-out FILE]
//
// The measured-cost loop: a first sweep's result files carry per-slot
// wall-clock micros; `plan --measured-from` / `serve --measured-from`
// re-balance the *same grid* from those measurements instead of the
// estimate_point_cost heuristic. `--evaluator compiled` swaps the
// noise-evaluation backend for the jit-compiled one (bit-identical
// results, orders-of-magnitude faster on large stimulus sets) and
// `--measure` adds a measured_ns column to the rows — neither changes a
// single result byte, so mixed-backend farms still merge cleanly.
//
// A typical static 4-machine sweep (one command per line; see DESIGN.md
// §7 for the shell version with line continuations):
//
//   $ slpwlo-shard plan --shards 4 --strategy cost-balanced
//       --kernels FIR,IIR,CONV --targets XENTIUM --flows WLO-SLP,WLO-First
//       --constraints -30,-40,-50 --out-prefix sweep
//   ... ship sweep.<i>.manifest to worker i ...
//   $ slpwlo-shard run --manifest sweep.2.manifest --out sweep.2.results
//       --snapshot-in warm.snap --snapshot-out sweep.2.snap
//   ... ship the results and snapshots home ...
//   $ slpwlo-shard merge --out sweep.json sweep.*.results
//       --cache sweep.0.snap --cache sweep.1.snap --cache sweep.2.snap
//       --cache sweep.3.snap --cache-out warm.snap
//
// The same grid elastically, over any shared directory (DESIGN.md §9):
//
//   $ slpwlo-shard plan --shards 1 --kernels ... --out-prefix grid
//   $ slpwlo-shard serve --manifest grid.0.manifest --dir farm
//   ... on each worker machine, as many times as you like ...
//   $ slpwlo-shard work --dir farm
//   $ slpwlo-shard merge --out sweep.json --lease-dir farm
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "accuracy/sim_backend.hpp"
#include "dist/cache_snapshot.hpp"
#include "dist/lease_coordinator.hpp"
#include "dist/shard_manifest.hpp"
#include "dist/shard_merger.hpp"
#include "dist/shard_plan.hpp"
#include "dist/shard_runner.hpp"
#include "frontend/kernel_file.hpp"
#include "support/diagnostics.hpp"
#include "target/target_desc.hpp"
#include "target/target_registry.hpp"

using namespace slpwlo;
using namespace slpwlo::dist;

namespace {

void usage(FILE* out) {
    std::fprintf(
        out,
        "usage:\n"
        "  slpwlo-shard plan  --shards N --out-prefix P --kernels A,B\n"
        "                     --targets X,Y [--widths 0,64] [--flows F,G]\n"
        "                     [--constraints -20,-30]\n"
        "                     [--strategy round-robin|cost-balanced]\n"
        "                     [--optimizer heuristic|optimal]\n"
        "                     [--measured-from RESULTS]...\n"
        "                     [--target-file FILE]...\n"
        "                     [--kernel-file FILE]... [--corpus DIR]...\n"
        "                     --measured-from re-balances the same grid\n"
        "                     from a previous run's per-slot wall-clocks;\n"
        "                     --kernel-file / --corpus register .slp DSL\n"
        "                     kernels (corpus names join the kernel axis;\n"
        "                     manifests embed their source)\n"
        "  slpwlo-shard run   --manifest FILE --out FILE [--threads N]\n"
        "                     [--snapshot-in FILE] [--snapshot-out FILE]\n"
        "                     [--cache-capacity N] [--json[=FILE]]\n"
        "                     [--evaluator tape|walker|compiled]\n"
        "                     [--optimizer heuristic|optimal] [--measure]\n"
        "  slpwlo-shard serve --manifest FILE --dir DIR [--chunk-cost C]\n"
        "                     [--chunk-slots N] [--ttl-ms T]\n"
        "                     [--measured-from RESULTS]...\n"
        "                     initialize an elastic lease directory from a\n"
        "                     whole-grid manifest (plan --shards 1)\n"
        "  slpwlo-shard work  --dir DIR [--worker ID] [--threads N]\n"
        "                     [--snapshot-in FILE] [--snapshot-out FILE]\n"
        "                     [--cache-capacity N] [--straggle-ms T]\n"
        "                     [--evaluator tape|walker|compiled]\n"
        "                     [--optimizer heuristic|optimal] [--measure]\n"
        "                     [--max-slots N]\n"
        "                     acquire, run and publish lease chunks until\n"
        "                     the directory drains (expired leases are\n"
        "                     stolen and re-issued); --max-slots caps one\n"
        "                     acquisition, splitting bigger chunks\n"
        "  slpwlo-shard merge --out FILE (RESULTS... | --lease-dir DIR)\n"
        "                     [--cache FILE]... [--cache-out FILE]\n");
}

[[noreturn]] void bad_usage(const std::string& message) {
    std::fprintf(stderr, "slpwlo-shard: %s\n", message.c_str());
    usage(stderr);
    std::exit(2);
}

/// Strict numeric flag parsing: a typo must abort with a usage message,
/// never plan the wrong grid (atoi's silent 0) or std::terminate.
int int_flag(const std::string& flag, const std::string& value) {
    try {
        size_t pos = 0;
        const int parsed = std::stoi(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        bad_usage(flag + ": not an integer: `" + value + "`");
    }
}

double double_flag(const std::string& flag, const std::string& value) {
    try {
        size_t pos = 0;
        const double parsed = std::stod(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        bad_usage(flag + ": not a number: `" + value + "`");
    }
}

SimBackend backend_flag(const std::string& flag, const std::string& value) {
    try {
        return parse_sim_backend(value);
    } catch (const Error& e) {
        bad_usage(flag + ": " + e.what());
    }
}

Optimizer optimizer_flag(const std::string& flag, const std::string& value) {
    try {
        return optimizer_from_string(value);
    } catch (const Error& e) {
        bad_usage(flag + ": " + e.what());
    }
}

/// Load the rows files behind --measured-from into per-slot costs,
/// checked against the grid being planned.
std::vector<double> load_measured_costs(const std::vector<std::string>& paths,
                                        size_t total_slots, uint64_t grid_fp) {
    std::vector<ShardResultsFile> files;
    files.reserve(paths.size());
    for (const std::string& path : paths) {
        files.push_back(load_shard_results(path));
    }
    return measured_slot_costs(files, total_slots, grid_fp);
}

std::vector<std::string> split_list(const std::string& text) {
    std::vector<std::string> out;
    std::string item;
    for (const char c : text) {
        if (c == ',') {
            if (!item.empty()) out.push_back(item);
            item.clear();
        } else {
            item += c;
        }
    }
    if (!item.empty()) out.push_back(item);
    return out;
}

void write_file(const std::string& path, const std::string& text) {
    if (path == "-") {
        std::fputs(text.c_str(), stdout);
        return;
    }
    std::ofstream out(path);
    out << text;
    out.flush();
    if (!out.good()) throw Error("cannot write `" + path + "`");
}

/// A tiny argv cursor shared by the subcommands.
class Args {
public:
    Args(int argc, char** argv, int from) : argc_(argc), argv_(argv), i_(from) {}
    bool next(std::string& arg) {
        if (i_ >= argc_) return false;
        arg = argv_[i_++];
        return true;
    }
    std::string value(const std::string& flag) {
        if (i_ >= argc_) bad_usage(flag + " needs a value");
        return argv_[i_++];
    }

private:
    int argc_;
    char** argv_;
    int i_;
};

int cmd_plan(Args args) {
    int shards = 0;
    ShardStrategy strategy = ShardStrategy::RoundRobin;
    bool has_strategy = false;
    std::string out_prefix;
    std::vector<std::string> kernels, target_names, flows{"WLO-SLP"};
    std::vector<std::string> measured_from;
    std::vector<int> widths;
    bool has_widths = false;
    std::vector<double> constraints{-40.0};
    bool has_constraints = false;
    FlowOptions defaults;

    std::string arg;
    while (args.next(arg)) {
        if (arg == "--shards") {
            shards = int_flag(arg, args.value(arg));
        } else if (arg == "--strategy") {
            strategy = shard_strategy_from_string(args.value(arg));
            has_strategy = true;
        } else if (arg == "--measured-from") {
            measured_from.push_back(args.value(arg));
        } else if (arg == "--out-prefix") {
            out_prefix = args.value(arg);
        } else if (arg == "--kernels") {
            kernels = split_list(args.value(arg));
        } else if (arg == "--targets") {
            target_names = split_list(args.value(arg));
        } else if (arg == "--flows") {
            flows = split_list(args.value(arg));
        } else if (arg == "--widths") {
            has_widths = true;
            for (const std::string& w : split_list(args.value(arg))) {
                widths.push_back(int_flag(arg, w));
            }
        } else if (arg == "--constraints") {
            has_constraints = true;
            constraints.clear();
            for (const std::string& c : split_list(args.value(arg))) {
                constraints.push_back(double_flag(arg, c));
            }
        } else if (arg == "--optimizer") {
            defaults.solver.optimizer = optimizer_flag(arg, args.value(arg));
        } else if (arg == "--target-file") {
            TargetRegistry::instance().add(
                load_target_description(args.value(arg)));
        } else if (arg == "--kernel-file") {
            // Register the file's kernel so --kernels can name it; unlike
            // --corpus it does not join the axis by itself.
            frontend::register_kernel_file(args.value(arg));
        } else if (arg == "--corpus") {
            // Every kernel in the directory joins the kernel axis (sorted
            // by filename, so grids are deterministic).
            for (std::string& name :
                 frontend::load_kernel_corpus(args.value(arg))) {
                kernels.push_back(std::move(name));
            }
        } else {
            bad_usage("unknown plan flag `" + arg + "`");
        }
    }
    if (shards < 1) bad_usage("plan needs --shards N (>= 1)");
    if (out_prefix.empty()) bad_usage("plan needs --out-prefix");
    if (kernels.empty()) bad_usage("plan needs --kernels or --corpus");
    if (target_names.empty()) bad_usage("plan needs --targets");
    if (!measured_from.empty() && has_strategy &&
        strategy == ShardStrategy::RoundRobin) {
        bad_usage("--measured-from balances by cost; it cannot combine "
                  "with --strategy round-robin");
    }
    if (!has_constraints) {
        std::printf("using default constraint grid: -40 dB\n");
    }

    std::vector<SweepPoint> grid =
        has_widths ? SweepDriver::grid(kernels, target_names, widths, flows,
                                       constraints)
                   : SweepDriver::grid(kernels, target_names, flows,
                                       constraints);

    std::vector<ShardPlan> plans;
    std::vector<double> measured;
    if (!measured_from.empty()) {
        // The measurements must come from a run of this exact grid —
        // measured_slot_costs checks the fingerprint, so we need the
        // models (and any file-kernel sources, which fingerprints mix)
        // embedded before the files are loaded.
        embed_target_models(grid);
        embed_kernel_sources(grid);
        measured = load_measured_costs(measured_from, grid.size(),
                                       grid_fingerprint(grid));
        plans = make_shard_plans(grid, shards, measured);
    } else {
        plans = make_shard_plans(grid, shards, strategy);
    }

    std::printf("grid: %zu points -> %d shards (%s)\n", grid.size(), shards,
                measured.empty() ? to_string(strategy).c_str()
                                 : "cost-balanced, measured");
    for (const ShardPlan& plan : plans) {
        double cost = 0.0;
        for (size_t i = 0; i < plan.points.size(); ++i) {
            cost += measured.empty() ? estimate_point_cost(plan.points[i])
                                     : measured[plan.slots[i]];
        }
        const std::string path = out_prefix + "." +
                                 std::to_string(plan.shard_index) +
                                 ".manifest";
        write_file(path, shard_manifest_text(plan, defaults));
        std::printf("  %s: %zu points, %s cost %.1f\n", path.c_str(),
                    plan.points.size(), measured.empty() ? "est." : "meas.",
                    cost);
    }
    return 0;
}

int cmd_run(Args args) {
    std::string manifest_path, out_path, snapshot_in, snapshot_out, json_path;
    ShardRunOptions options;
    options.threads = 0;
    bool has_evaluator = false;
    SimBackend evaluator = SimBackend::Tape;
    bool measure = false;
    bool has_optimizer = false;
    Optimizer optimizer = Optimizer::Heuristic;

    std::string arg;
    while (args.next(arg)) {
        if (arg == "--manifest") {
            manifest_path = args.value(arg);
        } else if (arg == "--out") {
            out_path = args.value(arg);
        } else if (arg == "--threads") {
            options.threads = int_flag(arg, args.value(arg));
        } else if (arg == "--snapshot-in") {
            snapshot_in = args.value(arg);
        } else if (arg == "--snapshot-out") {
            snapshot_out = args.value(arg);
        } else if (arg == "--cache-capacity") {
            options.cache_capacity =
                static_cast<size_t>(int_flag(arg, args.value(arg)));
        } else if (arg == "--evaluator") {
            evaluator = backend_flag(arg, args.value(arg));
            has_evaluator = true;
        } else if (arg == "--measure") {
            measure = true;
        } else if (arg == "--optimizer") {
            optimizer = optimizer_flag(arg, args.value(arg));
            has_optimizer = true;
        } else if (arg == "--json") {
            json_path = "-";
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else {
            bad_usage("unknown run flag `" + arg + "`");
        }
    }
    if (manifest_path.empty()) bad_usage("run needs --manifest");
    if (out_path.empty()) bad_usage("run needs --out");

    ShardManifest manifest = load_shard_manifest(manifest_path);
    // Worker-local execution knobs: the evaluator backend and cycle
    // measurement change how this process runs the manifest, never what
    // the rows say — mixed-backend shards still merge byte-identically.
    if (has_evaluator) manifest.defaults.evaluator = evaluator;
    if (measure) manifest.defaults.measure = true;
    // Unlike the knobs above, the optimizer axis *does* change row bytes
    // (heuristic flows resolve to their exact counterparts) — every shard
    // of one sweep must run with the same setting or the merge will
    // refuse the mismatched rows.
    if (has_optimizer) manifest.defaults.solver.optimizer = optimizer;
    CacheSnapshot warm;
    if (!snapshot_in.empty()) {
        warm = load_cache_snapshot(snapshot_in);
        options.warm = &warm;
    }

    const ShardRunOutput out = run_shard(manifest, options);
    write_file(out_path, shard_results_text(out.results));

    std::printf("shard %d/%d: %zu points -> %s (eval cache: %zu hits / %zu "
                "misses, %zu entries)\n",
                manifest.shard_index, manifest.shard_count,
                manifest.points.size(), out_path.c_str(),
                out.stats.eval_hits, out.stats.eval_misses,
                out.stats.eval_entries);
    if (!snapshot_out.empty()) {
        write_file(snapshot_out, cache_snapshot_text(out.snapshot));
        std::printf("snapshot: %zu entries -> %s\n",
                    out.snapshot.entries.size(), snapshot_out.c_str());
    }
    if (!json_path.empty()) {
        write_file(json_path, sweep_to_json(out.sweep, out.stats));
    }
    return 0;
}

int cmd_serve(Args args) {
    std::string manifest_path, dir;
    std::vector<std::string> measured_from;
    LeaseOptions options;

    std::string arg;
    while (args.next(arg)) {
        if (arg == "--manifest") {
            manifest_path = args.value(arg);
        } else if (arg == "--dir") {
            dir = args.value(arg);
        } else if (arg == "--chunk-cost") {
            options.chunk_cost = double_flag(arg, args.value(arg));
        } else if (arg == "--chunk-slots") {
            options.max_chunk_slots =
                static_cast<size_t>(int_flag(arg, args.value(arg)));
        } else if (arg == "--ttl-ms") {
            options.ttl_ms = int_flag(arg, args.value(arg));
        } else if (arg == "--measured-from") {
            measured_from.push_back(args.value(arg));
        } else {
            bad_usage("unknown serve flag `" + arg + "`");
        }
    }
    if (manifest_path.empty()) bad_usage("serve needs --manifest");
    if (dir.empty()) bad_usage("serve needs --dir");

    const ShardManifest manifest = load_shard_manifest(manifest_path);
    if (!measured_from.empty()) {
        options.measured_costs = load_measured_costs(
            measured_from, manifest.total_slots, manifest.grid_fp);
    }
    const size_t chunks = init_lease_dir(dir, manifest, options);
    std::printf("lease directory %s: %zu slots in %zu chunks%s, ttl %lld ms\n",
                dir.c_str(), manifest.total_slots, chunks,
                measured_from.empty() ? "" : " (measured costs)",
                options.ttl_ms);
    return 0;
}

int cmd_work(Args args) {
    std::string dir, snapshot_in, snapshot_out;
    LeaseWorkerOptions worker;
    ExecOptions exec;
    bool has_evaluator = false;
    SimBackend evaluator = SimBackend::Tape;
    bool measure = false;
    bool has_optimizer = false;
    Optimizer optimizer = Optimizer::Heuristic;
    size_t max_slots = 0;

    std::string arg;
    while (args.next(arg)) {
        if (arg == "--dir") {
            dir = args.value(arg);
        } else if (arg == "--worker") {
            worker.worker_id = args.value(arg);
        } else if (arg == "--threads") {
            exec.threads = int_flag(arg, args.value(arg));
        } else if (arg == "--snapshot-in") {
            snapshot_in = args.value(arg);
        } else if (arg == "--snapshot-out") {
            snapshot_out = args.value(arg);
        } else if (arg == "--cache-capacity") {
            exec.cache_capacity =
                static_cast<size_t>(int_flag(arg, args.value(arg)));
        } else if (arg == "--straggle-ms") {
            // Test hook: hold every lease this long before publishing, to
            // exercise expiry, steal and duplicate resolution end to end.
            worker.straggle_ms = int_flag(arg, args.value(arg));
        } else if (arg == "--evaluator") {
            evaluator = backend_flag(arg, args.value(arg));
            has_evaluator = true;
        } else if (arg == "--measure") {
            measure = true;
        } else if (arg == "--optimizer") {
            optimizer = optimizer_flag(arg, args.value(arg));
            has_optimizer = true;
        } else if (arg == "--max-slots") {
            // Cap one acquisition: chunks bigger than this are split in
            // the lease directory, the remainder published for any worker.
            max_slots = static_cast<size_t>(int_flag(arg, args.value(arg)));
        } else {
            bad_usage("unknown work flag `" + arg + "`");
        }
    }
    if (dir.empty()) bad_usage("work needs --dir");

    LeaseWorkSource source(dir, worker);
    exec.flow_options = source.manifest().defaults;
    // Per-worker execution knobs: results stay byte-identical across
    // backends, so workers on one farm may mix evaluators freely.
    if (has_evaluator) exec.flow_options.evaluator = evaluator;
    if (measure) exec.flow_options.measure = true;
    // The optimizer axis changes row bytes; a farm must agree on it (the
    // merge refuses mismatched rows).
    if (has_optimizer) exec.flow_options.solver.optimizer = optimizer;
    SweepService service(exec);
    if (!snapshot_in.empty()) {
        const CacheSnapshot warm = load_cache_snapshot(snapshot_in);
        preload_cache(service.driver().eval_cache(), warm);
    }

    const size_t executed = service.drain(source, max_slots);
    const SweepCacheStats stats = service.driver().cache_stats();
    std::printf("worker drained %s: %zu of %zu slots run here, %zu leases "
                "stolen from stragglers (eval cache: %zu hits / %zu misses, "
                "%zu entries)\n",
                dir.c_str(), executed, source.total_slots(), source.steals(),
                stats.eval_hits, stats.eval_misses, stats.eval_entries);
    if (!snapshot_out.empty()) {
        const CacheSnapshot snapshot =
            snapshot_cache(service.driver().eval_cache());
        write_file(snapshot_out, cache_snapshot_text(snapshot));
        std::printf("snapshot: %zu entries -> %s\n", snapshot.entries.size(),
                    snapshot_out.c_str());
    }
    return 0;
}

int cmd_merge(Args args) {
    std::string out_path, cache_out, lease_dir;
    std::vector<std::string> results_paths, cache_paths;

    std::string arg;
    while (args.next(arg)) {
        if (arg == "--out") {
            out_path = args.value(arg);
        } else if (arg == "--cache") {
            cache_paths.push_back(args.value(arg));
        } else if (arg == "--cache-out") {
            cache_out = args.value(arg);
        } else if (arg == "--lease-dir") {
            lease_dir = args.value(arg);
        } else if (!arg.empty() && arg[0] == '-') {
            bad_usage("unknown merge flag `" + arg + "`");
        } else {
            results_paths.push_back(arg);
        }
    }
    if (out_path.empty()) bad_usage("merge needs --out");
    if (lease_dir.empty() && results_paths.empty()) {
        bad_usage("merge needs result files or --lease-dir");
    }
    if (!lease_dir.empty() && !results_paths.empty()) {
        bad_usage("merge takes result files or --lease-dir, not both");
    }
    // Validate the cache pairing before any output is written: a usage
    // error after side effects would leave a half-done merge behind, and
    // --cache-out with no inputs would overwrite a warm snapshot with an
    // empty one.
    if (!cache_paths.empty() && cache_out.empty()) {
        bad_usage("--cache given without --cache-out");
    }
    if (!cache_out.empty() && cache_paths.empty()) {
        bad_usage("--cache-out needs at least one --cache file");
    }

    if (!lease_dir.empty()) {
        // Elastic path: every published chunk rows file, with re-issued
        // duplicates resolved (byte-identical rows deduplicate, anything
        // else is still a conflict).
        const std::string merged = collect_lease_results(lease_dir);
        write_file(out_path, merged);
        const LeaseDirStatus status = lease_dir_status(lease_dir);
        std::printf("merged lease directory %s (%zu chunks, %zu re-issued) "
                    "-> %s\n",
                    lease_dir.c_str(), status.chunks, status.reissued,
                    out_path.c_str());
    } else {
        std::vector<ShardResultsFile> shards;
        shards.reserve(results_paths.size());
        size_t hits = 0, misses = 0;
        for (const std::string& path : results_paths) {
            shards.push_back(load_shard_results(path));
            hits += shards.back().eval_hits;
            misses += shards.back().eval_misses;
        }
        const std::string merged = merge_shard_results(shards);
        write_file(out_path, merged);
        std::printf("merged %zu shards (%zu slots) -> %s (eval cache across "
                    "shards: %zu hits / %zu misses)\n",
                    shards.size(), shards.front().total_slots,
                    out_path.c_str(), hits, misses);
    }

    if (!cache_out.empty()) {
        std::vector<CacheSnapshot> snapshots;
        snapshots.reserve(cache_paths.size());
        for (const std::string& path : cache_paths) {
            snapshots.push_back(load_cache_snapshot(path));
        }
        const CacheSnapshot merged_cache = merge_cache_snapshots(snapshots);
        write_file(cache_out, cache_snapshot_text(merged_cache));
        std::printf("merged cache: %zu entries -> %s\n",
                    merged_cache.entries.size(), cache_out.c_str());
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage(stderr);
        return 2;
    }
    const std::string command = argv[1];
    try {
        if (command == "plan") return cmd_plan(Args(argc, argv, 2));
        if (command == "run") return cmd_run(Args(argc, argv, 2));
        if (command == "serve") return cmd_serve(Args(argc, argv, 2));
        if (command == "work") return cmd_work(Args(argc, argv, 2));
        if (command == "merge") return cmd_merge(Args(argc, argv, 2));
        if (command == "--help" || command == "-h") {
            usage(stdout);
            return 0;
        }
        // Same convention as targets::by_name: an unknown name lists
        // every valid spelling (sorted).
        bad_usage("unknown command `" + command +
                  "`; known: merge, plan, run, serve, work");
    } catch (const Error& e) {
        std::fprintf(stderr, "slpwlo-shard: %s\n", e.what());
        return 1;
    }
}
