// slpwlo-shard — distributed design-space sweeps from the command line.
//
// Turns any SweepDriver grid into N self-contained shard manifests, runs
// a manifest as an independent worker process, and folds per-shard result
// files back into the exact JSON the single-process sweep would have
// produced (byte-identical; the merge refuses grids that do not match).
// Beside the static plan/run/merge pipeline, serve/work run the same
// grid *elastically*: a coordinator chops a whole-grid manifest into
// cost-balanced chunks in a lease directory, and any number of workers
// acquire, run and publish chunks on demand — with lease expiry and
// re-issue, so a straggling or killed worker's slots are re-acquired
// (dist/lease_coordinator.hpp).
//
//   slpwlo-shard plan  --shards N --out-prefix P --kernels A,B
//                      --targets X,Y [--widths 0,64] [--flows F,G]
//                      [--constraints -20,-30] [--strategy round-robin|
//                      cost-balanced] [--measured-from RESULTS]...
//                      [--target-file FILE]...
//   slpwlo-shard run   --manifest FILE --out FILE [--threads N]
//                      [--snapshot-in FILE] [--snapshot-out FILE]
//                      [--cache-capacity N] [--json[=FILE]]
//                      [--evaluator tape|walker|compiled] [--measure]
//   slpwlo-shard serve --manifest FILE --dir DIR [--chunk-cost C]
//                      [--chunk-slots N] [--ttl-ms T]
//                      [--measured-from RESULTS]...
//   slpwlo-shard work  --dir DIR [--worker ID] [--threads N]
//                      [--snapshot-in FILE] [--snapshot-out FILE]
//                      [--cache-capacity N] [--straggle-ms T]
//                      [--evaluator tape|walker|compiled] [--measure]
//   slpwlo-shard merge --out FILE (RESULTS... | --lease-dir DIR)
//                      [--cache FILE]... [--cache-out FILE]
//
// The measured-cost loop: a first sweep's result files carry per-slot
// wall-clock micros; `plan --measured-from` / `serve --measured-from`
// re-balance the *same grid* from those measurements instead of the
// estimate_point_cost heuristic. `--evaluator compiled` swaps the
// noise-evaluation backend for the jit-compiled one (bit-identical
// results, orders-of-magnitude faster on large stimulus sets) and
// `--measure` adds a measured_ns column to the rows — neither changes a
// single result byte, so mixed-backend farms still merge cleanly.
//
// A typical static 4-machine sweep (one command per line; see DESIGN.md
// §7 for the shell version with line continuations):
//
//   $ slpwlo-shard plan --shards 4 --strategy cost-balanced
//       --kernels FIR,IIR,CONV --targets XENTIUM --flows WLO-SLP,WLO-First
//       --constraints -30,-40,-50 --out-prefix sweep
//   ... ship sweep.<i>.manifest to worker i ...
//   $ slpwlo-shard run --manifest sweep.2.manifest --out sweep.2.results
//       --snapshot-in warm.snap --snapshot-out sweep.2.snap
//   ... ship the results and snapshots home ...
//   $ slpwlo-shard merge --out sweep.json sweep.*.results
//       --cache sweep.0.snap --cache sweep.1.snap --cache sweep.2.snap
//       --cache sweep.3.snap --cache-out warm.snap
//
// The same grid elastically, over any shared directory (DESIGN.md §9):
//
//   $ slpwlo-shard plan --shards 1 --kernels ... --out-prefix grid
//   $ slpwlo-shard serve --manifest grid.0.manifest --dir farm
//   ... on each worker machine, as many times as you like ...
//   $ slpwlo-shard work --dir farm
//   $ slpwlo-shard merge --out sweep.json --lease-dir farm
//
// Or as a long-lived socket daemon — no shared filesystem, workers
// connect over TCP, completed rows stream into an online merge and the
// report is ready the instant the last slot lands (DESIGN.md §15):
//
//   $ slpwlo-shard daemon --listen 7477 &
//   $ slpwlo-shard submit --connect :7477 --manifest grid.0.manifest
//   ... on each worker machine ...
//   $ slpwlo-shard work --connect coordinator:7477
//   $ slpwlo-shard status --connect :7477          # live JSON
//   $ slpwlo-shard merge --connect :7477 --job 0 --out sweep.json
//
// Incremental re-sweeps: `merge ... --rows-out sweep.rows` keeps the
// per-slot rows; after the grid changes, `submit --splice-from sweep.rows`
// (or offline: `merge --manifest new.manifest --splice-from sweep.rows`)
// re-uses every slot whose point fingerprint is unchanged, so only the
// changed slots are re-run.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "accuracy/sim_backend.hpp"
#include "dist/cache_snapshot.hpp"
#include "farm/farm_client.hpp"
#include "farm/farm_server.hpp"
#include "dist/lease_coordinator.hpp"
#include "dist/shard_manifest.hpp"
#include "dist/shard_merger.hpp"
#include "dist/shard_plan.hpp"
#include "dist/shard_runner.hpp"
#include "frontend/kernel_file.hpp"
#include "support/diagnostics.hpp"
#include "target/target_desc.hpp"
#include "target/target_registry.hpp"

using namespace slpwlo;
using namespace slpwlo::dist;

namespace {

void usage(FILE* out) {
    std::fprintf(
        out,
        "usage:\n"
        "  slpwlo-shard plan  --shards N --out-prefix P --kernels A,B\n"
        "                     --targets X,Y [--widths 0,64] [--flows F,G]\n"
        "                     [--constraints -20,-30]\n"
        "                     [--strategy round-robin|cost-balanced]\n"
        "                     [--optimizer heuristic|optimal]\n"
        "                     [--measured-from RESULTS]...\n"
        "                     [--target-file FILE]...\n"
        "                     [--kernel-file FILE]... [--corpus DIR]...\n"
        "                     --measured-from re-balances the same grid\n"
        "                     from a previous run's per-slot wall-clocks;\n"
        "                     --kernel-file / --corpus register .slp DSL\n"
        "                     kernels (corpus names join the kernel axis;\n"
        "                     manifests embed their source)\n"
        "  slpwlo-shard run   --manifest FILE --out FILE [--threads N]\n"
        "                     [--snapshot-in FILE] [--snapshot-out FILE]\n"
        "                     [--cache-capacity N] [--json[=FILE]]\n"
        "                     [--evaluator tape|walker|compiled]\n"
        "                     [--optimizer heuristic|optimal] [--measure]\n"
        "  slpwlo-shard serve --manifest FILE --dir DIR [--chunk-cost C]\n"
        "                     [--chunk-slots N] [--ttl-ms T]\n"
        "                     [--measured-from RESULTS]...\n"
        "                     initialize an elastic lease directory from a\n"
        "                     whole-grid manifest (plan --shards 1)\n"
        "  slpwlo-shard work  --dir DIR [--worker ID] [--threads N]\n"
        "                     [--snapshot-in FILE] [--snapshot-out FILE]\n"
        "                     [--cache-capacity N] [--straggle-ms T]\n"
        "                     [--evaluator tape|walker|compiled]\n"
        "                     [--optimizer heuristic|optimal] [--measure]\n"
        "                     [--max-slots N]\n"
        "                     acquire, run and publish lease chunks until\n"
        "                     the directory drains (expired leases are\n"
        "                     stolen and re-issued); --max-slots caps one\n"
        "                     acquisition, splitting bigger chunks\n"
        "  slpwlo-shard work  --connect HOST:PORT [--worker ID]\n"
        "                     [--heartbeat-ms T] [--poll-ms T] [--threads N]\n"
        "                     [--cache-capacity N] [--straggle-ms T]\n"
        "                     [--evaluator tape|walker|compiled]\n"
        "                     [--optimizer heuristic|optimal] [--measure]\n"
        "                     drain a farm daemon's jobs over TCP; missed\n"
        "                     heartbeats expire this worker's chunks for\n"
        "                     re-issue\n"
        "  slpwlo-shard merge --out FILE (RESULTS... | --lease-dir DIR)\n"
        "                     [--cache FILE]... [--cache-out FILE]\n"
        "  slpwlo-shard merge --connect HOST:PORT --job N --out FILE\n"
        "                     [--rows-out FILE]\n"
        "                     fetch a finalized farm job's streamed report\n"
        "                     (byte-identical to the 1-process sweep);\n"
        "                     --rows-out keeps per-slot rows for later\n"
        "                     --splice-from re-sweeps\n"
        "  slpwlo-shard merge --manifest FILE --splice-from ROWS...\n"
        "                     --rows-out FILE [--out FILE]\n"
        "                     offline incremental re-sweep: re-slot rows\n"
        "                     whose point fingerprints still appear in the\n"
        "                     new manifest; --out additionally writes the\n"
        "                     report when nothing changed\n"
        "  slpwlo-shard daemon --listen PORT [--ttl-ms T] [--tick-ms T]\n"
        "                     [--all-interfaces]\n"
        "                     serve the farm protocol until shutdown: jobs\n"
        "                     are submitted over the socket, rows stream\n"
        "                     into per-job merges, heartbeat expiry\n"
        "                     re-issues chunks (port 0 = ephemeral)\n"
        "  slpwlo-shard submit --connect HOST:PORT --manifest FILE\n"
        "                     [--chunk-cost C] [--chunk-slots N]\n"
        "                     [--splice-from ROWS]\n"
        "                     enqueue a whole-grid manifest as a farm job;\n"
        "                     --splice-from pre-fills unchanged slots from\n"
        "                     a previous run's rows file\n"
        "  slpwlo-shard status --connect HOST:PORT\n"
        "                     print the daemon's live status JSON\n"
        "  slpwlo-shard shutdown --connect HOST:PORT\n"
        "                     stop the daemon\n");
}

[[noreturn]] void bad_usage(const std::string& message) {
    std::fprintf(stderr, "slpwlo-shard: %s\n", message.c_str());
    usage(stderr);
    std::exit(2);
}

/// Strict numeric flag parsing: a typo must abort with a usage message,
/// never plan the wrong grid (atoi's silent 0) or std::terminate.
int int_flag(const std::string& flag, const std::string& value) {
    try {
        size_t pos = 0;
        const int parsed = std::stoi(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        bad_usage(flag + ": not an integer: `" + value + "`");
    }
}

double double_flag(const std::string& flag, const std::string& value) {
    try {
        size_t pos = 0;
        const double parsed = std::stod(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        bad_usage(flag + ": not a number: `" + value + "`");
    }
}

SimBackend backend_flag(const std::string& flag, const std::string& value) {
    try {
        return parse_sim_backend(value);
    } catch (const Error& e) {
        bad_usage(flag + ": " + e.what());
    }
}

Optimizer optimizer_flag(const std::string& flag, const std::string& value) {
    try {
        return optimizer_from_string(value);
    } catch (const Error& e) {
        bad_usage(flag + ": " + e.what());
    }
}

/// Load the rows files behind --measured-from into per-slot costs,
/// checked against the grid being planned.
std::vector<double> load_measured_costs(const std::vector<std::string>& paths,
                                        size_t total_slots, uint64_t grid_fp) {
    std::vector<ShardResultsFile> files;
    files.reserve(paths.size());
    for (const std::string& path : paths) {
        files.push_back(load_shard_results(path));
    }
    return measured_slot_costs(files, total_slots, grid_fp);
}

std::vector<std::string> split_list(const std::string& text) {
    std::vector<std::string> out;
    std::string item;
    for (const char c : text) {
        if (c == ',') {
            if (!item.empty()) out.push_back(item);
            item.clear();
        } else {
            item += c;
        }
    }
    if (!item.empty()) out.push_back(item);
    return out;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw Error("cannot read `" + path + "`");
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) throw Error("cannot read `" + path + "`");
    return text;
}

void write_file(const std::string& path, const std::string& text) {
    if (path == "-") {
        std::fputs(text.c_str(), stdout);
        return;
    }
    std::ofstream out(path);
    out << text;
    out.flush();
    if (!out.good()) throw Error("cannot write `" + path + "`");
}

/// A tiny argv cursor shared by the subcommands.
class Args {
public:
    Args(int argc, char** argv, int from) : argc_(argc), argv_(argv), i_(from) {}
    bool next(std::string& arg) {
        if (i_ >= argc_) return false;
        arg = argv_[i_++];
        return true;
    }
    std::string value(const std::string& flag) {
        if (i_ >= argc_) bad_usage(flag + " needs a value");
        return argv_[i_++];
    }

private:
    int argc_;
    char** argv_;
    int i_;
};

int cmd_plan(Args args) {
    int shards = 0;
    ShardStrategy strategy = ShardStrategy::RoundRobin;
    bool has_strategy = false;
    std::string out_prefix;
    std::vector<std::string> kernels, target_names, flows{"WLO-SLP"};
    std::vector<std::string> measured_from;
    std::vector<int> widths;
    bool has_widths = false;
    std::vector<double> constraints{-40.0};
    bool has_constraints = false;
    FlowOptions defaults;

    std::string arg;
    while (args.next(arg)) {
        if (arg == "--shards") {
            shards = int_flag(arg, args.value(arg));
        } else if (arg == "--strategy") {
            strategy = shard_strategy_from_string(args.value(arg));
            has_strategy = true;
        } else if (arg == "--measured-from") {
            measured_from.push_back(args.value(arg));
        } else if (arg == "--out-prefix") {
            out_prefix = args.value(arg);
        } else if (arg == "--kernels") {
            kernels = split_list(args.value(arg));
        } else if (arg == "--targets") {
            target_names = split_list(args.value(arg));
        } else if (arg == "--flows") {
            flows = split_list(args.value(arg));
        } else if (arg == "--widths") {
            has_widths = true;
            for (const std::string& w : split_list(args.value(arg))) {
                widths.push_back(int_flag(arg, w));
            }
        } else if (arg == "--constraints") {
            has_constraints = true;
            constraints.clear();
            for (const std::string& c : split_list(args.value(arg))) {
                constraints.push_back(double_flag(arg, c));
            }
        } else if (arg == "--optimizer") {
            defaults.solver.optimizer = optimizer_flag(arg, args.value(arg));
        } else if (arg == "--target-file") {
            TargetRegistry::instance().add(
                load_target_description(args.value(arg)));
        } else if (arg == "--kernel-file") {
            // Register the file's kernel so --kernels can name it; unlike
            // --corpus it does not join the axis by itself.
            frontend::register_kernel_file(args.value(arg));
        } else if (arg == "--corpus") {
            // Every kernel in the directory joins the kernel axis (sorted
            // by filename, so grids are deterministic).
            for (std::string& name :
                 frontend::load_kernel_corpus(args.value(arg))) {
                kernels.push_back(std::move(name));
            }
        } else {
            bad_usage("unknown plan flag `" + arg + "`");
        }
    }
    if (shards < 1) bad_usage("plan needs --shards N (>= 1)");
    if (out_prefix.empty()) bad_usage("plan needs --out-prefix");
    if (kernels.empty()) bad_usage("plan needs --kernels or --corpus");
    if (target_names.empty()) bad_usage("plan needs --targets");
    if (!measured_from.empty() && has_strategy &&
        strategy == ShardStrategy::RoundRobin) {
        bad_usage("--measured-from balances by cost; it cannot combine "
                  "with --strategy round-robin");
    }
    if (!has_constraints) {
        std::printf("using default constraint grid: -40 dB\n");
    }

    std::vector<SweepPoint> grid =
        has_widths ? SweepDriver::grid(kernels, target_names, widths, flows,
                                       constraints)
                   : SweepDriver::grid(kernels, target_names, flows,
                                       constraints);

    std::vector<ShardPlan> plans;
    std::vector<double> measured;
    if (!measured_from.empty()) {
        // The measurements must come from a run of this exact grid —
        // measured_slot_costs checks the fingerprint, so we need the
        // models (and any file-kernel sources, which fingerprints mix)
        // embedded before the files are loaded.
        embed_target_models(grid);
        embed_kernel_sources(grid);
        measured = load_measured_costs(measured_from, grid.size(),
                                       grid_fingerprint(grid));
        plans = make_shard_plans(grid, shards, measured);
    } else {
        plans = make_shard_plans(grid, shards, strategy);
    }

    std::printf("grid: %zu points -> %d shards (%s)\n", grid.size(), shards,
                measured.empty() ? to_string(strategy).c_str()
                                 : "cost-balanced, measured");
    for (const ShardPlan& plan : plans) {
        double cost = 0.0;
        for (size_t i = 0; i < plan.points.size(); ++i) {
            cost += measured.empty() ? estimate_point_cost(plan.points[i])
                                     : measured[plan.slots[i]];
        }
        const std::string path = out_prefix + "." +
                                 std::to_string(plan.shard_index) +
                                 ".manifest";
        write_file(path, shard_manifest_text(plan, defaults));
        std::printf("  %s: %zu points, %s cost %.1f\n", path.c_str(),
                    plan.points.size(), measured.empty() ? "est." : "meas.",
                    cost);
    }
    return 0;
}

int cmd_run(Args args) {
    std::string manifest_path, out_path, snapshot_in, snapshot_out, json_path;
    ShardRunOptions options;
    options.threads = 0;
    bool has_evaluator = false;
    SimBackend evaluator = SimBackend::Tape;
    bool measure = false;
    bool has_optimizer = false;
    Optimizer optimizer = Optimizer::Heuristic;

    std::string arg;
    while (args.next(arg)) {
        if (arg == "--manifest") {
            manifest_path = args.value(arg);
        } else if (arg == "--out") {
            out_path = args.value(arg);
        } else if (arg == "--threads") {
            options.threads = int_flag(arg, args.value(arg));
        } else if (arg == "--snapshot-in") {
            snapshot_in = args.value(arg);
        } else if (arg == "--snapshot-out") {
            snapshot_out = args.value(arg);
        } else if (arg == "--cache-capacity") {
            options.cache_capacity =
                static_cast<size_t>(int_flag(arg, args.value(arg)));
        } else if (arg == "--evaluator") {
            evaluator = backend_flag(arg, args.value(arg));
            has_evaluator = true;
        } else if (arg == "--measure") {
            measure = true;
        } else if (arg == "--optimizer") {
            optimizer = optimizer_flag(arg, args.value(arg));
            has_optimizer = true;
        } else if (arg == "--json") {
            json_path = "-";
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else {
            bad_usage("unknown run flag `" + arg + "`");
        }
    }
    if (manifest_path.empty()) bad_usage("run needs --manifest");
    if (out_path.empty()) bad_usage("run needs --out");

    ShardManifest manifest = load_shard_manifest(manifest_path);
    // Worker-local execution knobs: the evaluator backend and cycle
    // measurement change how this process runs the manifest, never what
    // the rows say — mixed-backend shards still merge byte-identically.
    if (has_evaluator) manifest.defaults.evaluator = evaluator;
    if (measure) manifest.defaults.measure = true;
    // Unlike the knobs above, the optimizer axis *does* change row bytes
    // (heuristic flows resolve to their exact counterparts) — every shard
    // of one sweep must run with the same setting or the merge will
    // refuse the mismatched rows.
    if (has_optimizer) manifest.defaults.solver.optimizer = optimizer;
    CacheSnapshot warm;
    if (!snapshot_in.empty()) {
        warm = load_cache_snapshot(snapshot_in);
        options.warm = &warm;
    }

    const ShardRunOutput out = run_shard(manifest, options);
    write_file(out_path, shard_results_text(out.results));

    std::printf("shard %d/%d: %zu points -> %s (eval cache: %zu hits / %zu "
                "misses, %zu entries)\n",
                manifest.shard_index, manifest.shard_count,
                manifest.points.size(), out_path.c_str(),
                out.stats.eval_hits, out.stats.eval_misses,
                out.stats.eval_entries);
    if (!snapshot_out.empty()) {
        write_file(snapshot_out, cache_snapshot_text(out.snapshot));
        std::printf("snapshot: %zu entries -> %s\n",
                    out.snapshot.entries.size(), snapshot_out.c_str());
    }
    if (!json_path.empty()) {
        write_file(json_path, sweep_to_json(out.sweep, out.stats));
    }
    return 0;
}

int cmd_serve(Args args) {
    std::string manifest_path, dir;
    std::vector<std::string> measured_from;
    LeaseOptions options;

    std::string arg;
    while (args.next(arg)) {
        if (arg == "--manifest") {
            manifest_path = args.value(arg);
        } else if (arg == "--dir") {
            dir = args.value(arg);
        } else if (arg == "--chunk-cost") {
            options.chunk_cost = double_flag(arg, args.value(arg));
        } else if (arg == "--chunk-slots") {
            options.max_chunk_slots =
                static_cast<size_t>(int_flag(arg, args.value(arg)));
        } else if (arg == "--ttl-ms") {
            options.ttl_ms = int_flag(arg, args.value(arg));
        } else if (arg == "--measured-from") {
            measured_from.push_back(args.value(arg));
        } else {
            bad_usage("unknown serve flag `" + arg + "`");
        }
    }
    if (manifest_path.empty()) bad_usage("serve needs --manifest");
    if (dir.empty()) bad_usage("serve needs --dir");

    const ShardManifest manifest = load_shard_manifest(manifest_path);
    if (!measured_from.empty()) {
        options.measured_costs = load_measured_costs(
            measured_from, manifest.total_slots, manifest.grid_fp);
    }
    const size_t chunks = init_lease_dir(dir, manifest, options);
    std::printf("lease directory %s: %zu slots in %zu chunks%s, ttl %lld ms\n",
                dir.c_str(), manifest.total_slots, chunks,
                measured_from.empty() ? "" : " (measured costs)",
                options.ttl_ms);
    return 0;
}

int cmd_work(Args args) {
    std::string dir, connect, snapshot_in, snapshot_out;
    LeaseWorkerOptions worker;
    ExecOptions exec;
    bool has_evaluator = false;
    SimBackend evaluator = SimBackend::Tape;
    bool measure = false;
    bool has_optimizer = false;
    Optimizer optimizer = Optimizer::Heuristic;
    size_t max_slots = 0;
    long long heartbeat_ms = 1000;
    long long poll_ms = 200;

    std::string arg;
    while (args.next(arg)) {
        if (arg == "--dir") {
            dir = args.value(arg);
        } else if (arg == "--connect") {
            connect = args.value(arg);
        } else if (arg == "--worker") {
            worker.worker_id = args.value(arg);
        } else if (arg == "--heartbeat-ms") {
            heartbeat_ms = int_flag(arg, args.value(arg));
        } else if (arg == "--poll-ms") {
            poll_ms = int_flag(arg, args.value(arg));
        } else if (arg == "--threads") {
            exec.threads = int_flag(arg, args.value(arg));
        } else if (arg == "--snapshot-in") {
            snapshot_in = args.value(arg);
        } else if (arg == "--snapshot-out") {
            snapshot_out = args.value(arg);
        } else if (arg == "--cache-capacity") {
            exec.cache_capacity =
                static_cast<size_t>(int_flag(arg, args.value(arg)));
        } else if (arg == "--straggle-ms") {
            // Test hook: hold every lease this long before publishing, to
            // exercise expiry, steal and duplicate resolution end to end.
            worker.straggle_ms = int_flag(arg, args.value(arg));
        } else if (arg == "--evaluator") {
            evaluator = backend_flag(arg, args.value(arg));
            has_evaluator = true;
        } else if (arg == "--measure") {
            measure = true;
        } else if (arg == "--optimizer") {
            optimizer = optimizer_flag(arg, args.value(arg));
            has_optimizer = true;
        } else if (arg == "--max-slots") {
            // Cap one acquisition: chunks bigger than this are split in
            // the lease directory, the remainder published for any worker.
            max_slots = static_cast<size_t>(int_flag(arg, args.value(arg)));
        } else {
            bad_usage("unknown work flag `" + arg + "`");
        }
    }
    if (dir.empty() == connect.empty()) {
        bad_usage("work needs --dir or --connect (not both)");
    }

    if (!connect.empty()) {
        // Farm mode: the daemon owns chunking, merge and snapshots; the
        // worker is just the drain loop over a socket.
        if (!snapshot_in.empty() || !snapshot_out.empty()) {
            bad_usage("--snapshot-in/--snapshot-out apply to --dir workers "
                      "only");
        }
        std::string host;
        int port = 0;
        farm::parse_endpoint(connect, host, port);
        farm::FarmWorkerOptions options;
        options.worker = worker.worker_id.empty()
                             ? "w" + std::to_string(::getpid())
                             : worker.worker_id;
        options.heartbeat_ms = heartbeat_ms;
        options.poll_ms = poll_ms;
        options.max_slots = max_slots;
        options.exec = exec;
        options.straggle_ms = worker.straggle_ms;
        if (has_evaluator) options.evaluator = evaluator;
        options.measure = measure;
        if (has_optimizer) options.optimizer = optimizer;
        const size_t executed = farm::run_farm_worker(host, port, options);
        std::printf("worker %s drained farm %s: %zu slots run here\n",
                    options.worker.c_str(), connect.c_str(), executed);
        return 0;
    }

    LeaseWorkSource source(dir, worker);
    exec.flow_options = source.manifest().defaults;
    // Per-worker execution knobs: results stay byte-identical across
    // backends, so workers on one farm may mix evaluators freely.
    if (has_evaluator) exec.flow_options.evaluator = evaluator;
    if (measure) exec.flow_options.measure = true;
    // The optimizer axis changes row bytes; a farm must agree on it (the
    // merge refuses mismatched rows).
    if (has_optimizer) exec.flow_options.solver.optimizer = optimizer;
    SweepService service(exec);
    if (!snapshot_in.empty()) {
        const CacheSnapshot warm = load_cache_snapshot(snapshot_in);
        preload_cache(service.driver().eval_cache(), warm);
    }

    const size_t executed = service.drain(source, max_slots);
    const SweepCacheStats stats = service.driver().cache_stats();
    std::printf("worker drained %s: %zu of %zu slots run here, %zu leases "
                "stolen from stragglers (eval cache: %zu hits / %zu misses, "
                "%zu entries)\n",
                dir.c_str(), executed, source.total_slots(), source.steals(),
                stats.eval_hits, stats.eval_misses, stats.eval_entries);
    if (!snapshot_out.empty()) {
        const CacheSnapshot snapshot =
            snapshot_cache(service.driver().eval_cache());
        write_file(snapshot_out, cache_snapshot_text(snapshot));
        std::printf("snapshot: %zu entries -> %s\n", snapshot.entries.size(),
                    snapshot_out.c_str());
    }
    return 0;
}

int cmd_merge(Args args) {
    std::string out_path, cache_out, lease_dir, connect, manifest_path;
    std::string rows_out;
    long long job = -1;
    std::vector<std::string> results_paths, cache_paths, splice_from;

    std::string arg;
    while (args.next(arg)) {
        if (arg == "--out") {
            out_path = args.value(arg);
        } else if (arg == "--cache") {
            cache_paths.push_back(args.value(arg));
        } else if (arg == "--cache-out") {
            cache_out = args.value(arg);
        } else if (arg == "--lease-dir") {
            lease_dir = args.value(arg);
        } else if (arg == "--connect") {
            connect = args.value(arg);
        } else if (arg == "--job") {
            job = int_flag(arg, args.value(arg));
        } else if (arg == "--manifest") {
            manifest_path = args.value(arg);
        } else if (arg == "--splice-from") {
            splice_from.push_back(args.value(arg));
        } else if (arg == "--rows-out") {
            rows_out = args.value(arg);
        } else if (!arg.empty() && arg[0] == '-') {
            bad_usage("unknown merge flag `" + arg + "`");
        } else {
            results_paths.push_back(arg);
        }
    }

    if (!connect.empty()) {
        // Farm mode: fetch the daemon's streamed merge of one job.
        if (job < 0) bad_usage("merge --connect needs --job N");
        if (out_path.empty()) bad_usage("merge needs --out");
        std::string host;
        int port = 0;
        farm::parse_endpoint(connect, host, port);
        farm::FarmClient client(host, port);
        farm::Message request;
        request.verb = "report";
        request.fields["job"] = std::to_string(job);
        write_file(out_path, client.call(request).body);
        std::printf("farm %s job %lld report -> %s\n", connect.c_str(), job,
                    out_path.c_str());
        if (!rows_out.empty()) {
            request.verb = "rows";
            write_file(rows_out, client.call(request).body);
            std::printf("farm %s job %lld rows -> %s\n", connect.c_str(),
                        job, rows_out.c_str());
        }
        return 0;
    }

    if (!manifest_path.empty() || !splice_from.empty()) {
        // Offline incremental re-sweep: re-slot a previous run's rows
        // onto the new grid by point fingerprint. Unchanged slots come
        // back verbatim; the rows file of what's left seeds the next run
        // (or the farm submit's --splice-from).
        if (manifest_path.empty() || splice_from.empty()) {
            bad_usage("splice needs both --manifest and --splice-from");
        }
        if (rows_out.empty()) bad_usage("splice needs --rows-out");
        const ShardManifest manifest = load_shard_manifest(manifest_path);
        if (manifest.slots.size() != manifest.total_slots) {
            bad_usage("--manifest must be a whole grid (plan --shards 1)");
        }
        std::vector<uint64_t> slot_fps;
        slot_fps.reserve(manifest.points.size());
        for (const SweepPoint& point : manifest.points) {
            slot_fps.push_back(point_fingerprint(point));
        }
        std::vector<ShardResultsFile> old_files;
        old_files.reserve(splice_from.size());
        for (const std::string& path : splice_from) {
            old_files.push_back(load_shard_results(path));
        }
        const ShardResultsFile spliced =
            splice_rows(old_files, slot_fps, manifest.grid_fp);
        write_file(rows_out, shard_results_text(spliced));
        std::printf("spliced %zu of %zu slots (%zu changed) -> %s\n",
                    spliced.rows.size(), manifest.total_slots,
                    manifest.total_slots - spliced.rows.size(),
                    rows_out.c_str());
        if (!out_path.empty()) {
            // A report needs every slot; merge_shard_results lists the
            // holes when slots still must be re-run.
            write_file(out_path, merge_shard_results({spliced}));
            std::printf("nothing changed: full report -> %s\n",
                        out_path.c_str());
        }
        return 0;
    }

    if (out_path.empty()) bad_usage("merge needs --out");
    if (lease_dir.empty() && results_paths.empty()) {
        bad_usage("merge needs result files or --lease-dir");
    }
    if (!lease_dir.empty() && !results_paths.empty()) {
        bad_usage("merge takes result files or --lease-dir, not both");
    }
    // Validate the cache pairing before any output is written: a usage
    // error after side effects would leave a half-done merge behind, and
    // --cache-out with no inputs would overwrite a warm snapshot with an
    // empty one.
    if (!cache_paths.empty() && cache_out.empty()) {
        bad_usage("--cache given without --cache-out");
    }
    if (!cache_out.empty() && cache_paths.empty()) {
        bad_usage("--cache-out needs at least one --cache file");
    }

    if (!lease_dir.empty()) {
        // Elastic path: every published chunk rows file, with re-issued
        // duplicates resolved (byte-identical rows deduplicate, anything
        // else is still a conflict).
        const std::string merged = collect_lease_results(lease_dir);
        write_file(out_path, merged);
        const LeaseDirStatus status = lease_dir_status(lease_dir);
        std::printf("merged lease directory %s (%zu chunks, %zu re-issued) "
                    "-> %s\n",
                    lease_dir.c_str(), status.chunks, status.reissued,
                    out_path.c_str());
    } else {
        std::vector<ShardResultsFile> shards;
        shards.reserve(results_paths.size());
        size_t hits = 0, misses = 0;
        for (const std::string& path : results_paths) {
            shards.push_back(load_shard_results(path));
            hits += shards.back().eval_hits;
            misses += shards.back().eval_misses;
        }
        const std::string merged = merge_shard_results(shards);
        write_file(out_path, merged);
        std::printf("merged %zu shards (%zu slots) -> %s (eval cache across "
                    "shards: %zu hits / %zu misses)\n",
                    shards.size(), shards.front().total_slots,
                    out_path.c_str(), hits, misses);
    }

    if (!cache_out.empty()) {
        std::vector<CacheSnapshot> snapshots;
        snapshots.reserve(cache_paths.size());
        for (const std::string& path : cache_paths) {
            snapshots.push_back(load_cache_snapshot(path));
        }
        const CacheSnapshot merged_cache = merge_cache_snapshots(snapshots);
        write_file(cache_out, cache_snapshot_text(merged_cache));
        std::printf("merged cache: %zu entries -> %s\n",
                    merged_cache.entries.size(), cache_out.c_str());
    }
    return 0;
}

int cmd_daemon(Args args) {
    farm::ServerOptions options;
    bool has_listen = false;

    std::string arg;
    while (args.next(arg)) {
        if (arg == "--listen") {
            options.port = int_flag(arg, args.value(arg));
            has_listen = true;
        } else if (arg == "--ttl-ms") {
            options.ttl_ms = int_flag(arg, args.value(arg));
        } else if (arg == "--tick-ms") {
            options.tick_ms = int_flag(arg, args.value(arg));
        } else if (arg == "--all-interfaces") {
            options.all_interfaces = true;
        } else {
            bad_usage("unknown daemon flag `" + arg + "`");
        }
    }
    if (!has_listen) bad_usage("daemon needs --listen PORT (0 = ephemeral)");

    farm::FarmServer server(options);
    // The port line goes out before serving (and unbuffered) so scripts
    // launching `daemon --listen 0 &` can scrape the ephemeral port.
    std::printf("farm daemon listening on %s:%d (ttl %lld ms, tick %lld ms)\n",
                options.all_interfaces ? "0.0.0.0" : "127.0.0.1",
                server.port(), options.ttl_ms, options.tick_ms);
    std::fflush(stdout);
    server.run();
    std::printf("farm daemon on port %d shut down\n", server.port());
    return 0;
}

int cmd_submit(Args args) {
    std::string connect, manifest_path, splice_path;
    double chunk_cost = 0.0;
    long long chunk_slots = 0;

    std::string arg;
    while (args.next(arg)) {
        if (arg == "--connect") {
            connect = args.value(arg);
        } else if (arg == "--manifest") {
            manifest_path = args.value(arg);
        } else if (arg == "--chunk-cost") {
            chunk_cost = double_flag(arg, args.value(arg));
        } else if (arg == "--chunk-slots") {
            chunk_slots = int_flag(arg, args.value(arg));
        } else if (arg == "--splice-from") {
            splice_path = args.value(arg);
        } else {
            bad_usage("unknown submit flag `" + arg + "`");
        }
    }
    if (connect.empty()) bad_usage("submit needs --connect HOST:PORT");
    if (manifest_path.empty()) bad_usage("submit needs --manifest");

    std::string host;
    int port = 0;
    farm::parse_endpoint(connect, host, port);
    farm::FarmClient client(host, port);

    farm::Message request;
    request.verb = "submit";
    if (chunk_cost > 0.0) {
        request.fields["chunk_cost"] = std::to_string(chunk_cost);
    }
    if (chunk_slots > 0) {
        request.fields["chunk_slots"] = std::to_string(chunk_slots);
    }
    request.body = read_file(manifest_path);
    if (!splice_path.empty()) {
        const std::string splice_text = read_file(splice_path);
        request.fields["splice_bytes"] = std::to_string(splice_text.size());
        request.body += splice_text;
    }
    const farm::Message response = client.call(request);
    std::printf("farm %s: job %s submitted (%s slots spliced from previous "
                "run)\n",
                connect.c_str(), response.require_field("job").c_str(),
                response.require_field("spliced").c_str());
    return 0;
}

int cmd_status(Args args) {
    std::string connect;
    std::string arg;
    while (args.next(arg)) {
        if (arg == "--connect") {
            connect = args.value(arg);
        } else {
            bad_usage("unknown status flag `" + arg + "`");
        }
    }
    if (connect.empty()) bad_usage("status needs --connect HOST:PORT");

    std::string host;
    int port = 0;
    farm::parse_endpoint(connect, host, port);
    farm::FarmClient client(host, port);
    farm::Message request;
    request.verb = "status";
    std::fputs(client.call(request).body.c_str(), stdout);
    return 0;
}

int cmd_shutdown(Args args) {
    std::string connect;
    std::string arg;
    while (args.next(arg)) {
        if (arg == "--connect") {
            connect = args.value(arg);
        } else {
            bad_usage("unknown shutdown flag `" + arg + "`");
        }
    }
    if (connect.empty()) bad_usage("shutdown needs --connect HOST:PORT");

    std::string host;
    int port = 0;
    farm::parse_endpoint(connect, host, port);
    farm::FarmClient client(host, port);
    farm::Message request;
    request.verb = "shutdown";
    client.call(request);
    std::printf("farm %s shutting down\n", connect.c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage(stderr);
        return 2;
    }
    const std::string command = argv[1];
    try {
        if (command == "plan") return cmd_plan(Args(argc, argv, 2));
        if (command == "run") return cmd_run(Args(argc, argv, 2));
        if (command == "serve") return cmd_serve(Args(argc, argv, 2));
        if (command == "work") return cmd_work(Args(argc, argv, 2));
        if (command == "merge") return cmd_merge(Args(argc, argv, 2));
        if (command == "daemon") return cmd_daemon(Args(argc, argv, 2));
        if (command == "submit") return cmd_submit(Args(argc, argv, 2));
        if (command == "status") return cmd_status(Args(argc, argv, 2));
        if (command == "shutdown") return cmd_shutdown(Args(argc, argv, 2));
        if (command == "--help" || command == "-h") {
            usage(stdout);
            return 0;
        }
        // Same convention as targets::by_name: an unknown name lists
        // every valid spelling (sorted).
        bad_usage("unknown command `" + command +
                  "`; known: daemon, merge, plan, run, serve, shutdown, "
                  "status, submit, work");
    } catch (const Error& e) {
        std::fprintf(stderr, "slpwlo-shard: %s\n", e.what());
        return 1;
    }
}
