// Cycle accounting: machine kernel -> total execution cycles.
//
// Per block: II * frequency in steady state plus the pipeline-fill
// difference (length - II) paid once per loop entry. Loop-control overhead
// is charged per executed loop iteration. This replaces the paper's vendor
// cycle-accurate simulators (DESIGN.md, "Substitutions"); absolute numbers
// are indicative, ratios are the reproduction target.
#pragma once

#include "schedule/list_scheduler.hpp"

namespace slpwlo {

struct BlockCycleReport {
    BlockSchedule schedule;
    long long total = 0;
};

struct CycleReport {
    std::vector<BlockCycleReport> blocks;
    long long loop_overhead = 0;
    long long total_cycles = 0;
};

CycleReport estimate_cycles(const MachineKernel& machine,
                            const TargetModel& target);

}  // namespace slpwlo
