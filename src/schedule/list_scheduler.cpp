#include "schedule/list_scheduler.hpp"

#include <algorithm>
#include <map>

#include "support/diagnostics.hpp"

namespace slpwlo {
namespace {

/// Per-cycle slot usage.
struct CycleResources {
    int total = 0;
    std::map<OpClass, int> per_class;
};

bool fits(const CycleResources& used, OpClass cls, const TargetModel& target) {
    if (used.total >= target.issue_width) return false;
    const auto it = used.per_class.find(cls);
    const int in_use = it == used.per_class.end() ? 0 : it->second;
    switch (cls) {
        case OpClass::Alu: return in_use < target.alu_slots;
        case OpClass::MulUnit: return in_use < target.mul_slots;
        case OpClass::Mem: return in_use < target.mem_slots;
        case OpClass::Shift:
            return in_use < (target.shift_slots > 0 ? target.shift_slots
                                                    : target.alu_slots);
        case OpClass::Float: return in_use < target.float_slots;
        case OpClass::Branch: return true;
    }
    return false;
}

}  // namespace

BlockSchedule schedule_block(const MachineBlock& block,
                             const TargetModel& target) {
    const int n = static_cast<int>(block.ops.size());
    BlockSchedule sched;
    sched.cycle_of.assign(static_cast<size_t>(n), -1);
    sched.res_mii = resource_mii(block, target);
    sched.rec_mii = recurrence_mii(block, target);

    const std::vector<int> height = critical_path_heights(block, target);

    // Ready list ordered by (height desc, index asc) for determinism.
    std::vector<int> order(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return height[static_cast<size_t>(a)] > height[static_cast<size_t>(b)];
    });

    std::map<int, CycleResources> usage;
    std::vector<bool> scheduled(static_cast<size_t>(n), false);
    int scheduled_count = 0;
    // Cycle before which nothing may issue (soft-float serialization).
    int machine_free_at = 0;
    int makespan = 0;

    while (scheduled_count < n) {
        bool progress = false;
        for (const int i : order) {
            if (scheduled[static_cast<size_t>(i)]) continue;
            const MachOp& op = block.ops[static_cast<size_t>(i)];
            // Earliest dependence-legal cycle.
            int earliest = machine_free_at;
            bool deps_ready = true;
            for (const int p : op.preds) {
                if (!scheduled[static_cast<size_t>(p)]) {
                    deps_ready = false;
                    break;
                }
                earliest = std::max(
                    earliest,
                    sched.cycle_of[static_cast<size_t>(p)] +
                        op_latency(block.ops[static_cast<size_t>(p)], target));
            }
            if (!deps_ready) continue;

            if (op.kind == MachKind::SoftFloat) {
                // A call: takes over the whole machine for its duration.
                const int start = std::max(earliest, machine_free_at);
                sched.cycle_of[static_cast<size_t>(i)] = start;
                machine_free_at = start + std::max(1, op.soft_cycles);
                makespan = std::max(makespan, machine_free_at);
                sched.serial_cycles += std::max(1, op.soft_cycles);
            } else {
                const OpClass cls = op_class(op, target);
                int cycle = earliest;
                while (!fits(usage[cycle], cls, target)) ++cycle;
                usage[cycle].total++;
                usage[cycle].per_class[cls]++;
                sched.cycle_of[static_cast<size_t>(i)] = cycle;
                makespan = std::max(makespan, cycle + op_latency(op, target));
            }
            scheduled[static_cast<size_t>(i)] = true;
            scheduled_count++;
            progress = true;
        }
        SLPWLO_ASSERT(progress, "scheduler deadlock: cyclic dependences");
    }

    sched.length = makespan;
    sched.ii = std::max(sched.res_mii, sched.rec_mii) + sched.serial_cycles;
    // One execution can never beat its own schedule... but II is a
    // steady-state rate and may legitimately exceed the single-shot length
    // (e.g. long recurrences); clamp only the degenerate empty case.
    if (n == 0) {
        sched.length = 0;
        sched.ii = 0;
        sched.res_mii = 0;
        sched.rec_mii = 0;
    }
    return sched;
}

}  // namespace slpwlo
