// Dependence-graph utilities over machine blocks: topological properties,
// critical-path heights, and longest-path latencies for recurrence-II
// computation. Machine-block dependences always point backwards (preds have
// smaller indices), so index order is a topological order.
#pragma once

#include <vector>

#include "lower/machine_ir.hpp"

namespace slpwlo {

/// Per-op critical-path height: latency of the op plus the longest latency
/// chain through its successors (used as list-scheduling priority).
std::vector<int> critical_path_heights(const MachineBlock& block,
                                       const TargetModel& target);

/// Longest latency path from op `from` to op `to` (inclusive of both ops'
/// latencies), or -1 if `to` does not depend on `from`.
int longest_path_latency(const MachineBlock& block, const TargetModel& target,
                         int from, int to);

/// Recurrence-constrained minimum II: max over loop-carried recurrences of
/// ceil(path_latency / distance). 1 when there are no recurrences.
int recurrence_mii(const MachineBlock& block, const TargetModel& target);

/// Resource-constrained minimum II: per-FU-class and total-issue pressure.
/// Soft-float serialization is accounted separately by the scheduler.
int resource_mii(const MachineBlock& block, const TargetModel& target);

}  // namespace slpwlo
