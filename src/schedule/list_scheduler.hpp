// VLIW list scheduler.
//
// Produces a resource- and dependence-legal cycle assignment for one
// machine block (the single-execution schedule length) plus the
// steady-state initiation interval II = max(resMII, recMII) with soft-float
// serialization added on top. This pair is what the cycle model needs: a
// loop executes len + II * (trip - 1) cycles per entry, the standard
// modulo-scheduling approximation of what an optimizing VLIW compiler
// (-O3, as in the paper's setup) achieves.
#pragma once

#include "schedule/dependence_graph.hpp"

namespace slpwlo {

struct BlockSchedule {
    /// Issue cycle per op (single execution).
    std::vector<int> cycle_of;
    /// Cycles for one execution of the block.
    int length = 0;
    /// Steady-state initiation interval.
    int ii = 0;
    int res_mii = 0;
    int rec_mii = 0;
    /// Serialized soft-float cycles per execution.
    int serial_cycles = 0;
};

BlockSchedule schedule_block(const MachineBlock& block,
                             const TargetModel& target);

}  // namespace slpwlo
