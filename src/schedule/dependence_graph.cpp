#include "schedule/dependence_graph.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace slpwlo {

std::vector<int> critical_path_heights(const MachineBlock& block,
                                       const TargetModel& target) {
    const int n = static_cast<int>(block.ops.size());
    std::vector<int> height(static_cast<size_t>(n), 0);
    for (int i = n - 1; i >= 0; --i) {
        height[static_cast<size_t>(i)] =
            std::max(height[static_cast<size_t>(i)],
                     op_latency(block.ops[static_cast<size_t>(i)], target));
    }
    // Successor pass: propagate heights to predecessors.
    for (int i = n - 1; i >= 0; --i) {
        const MachOp& op = block.ops[static_cast<size_t>(i)];
        for (const int p : op.preds) {
            height[static_cast<size_t>(p)] = std::max(
                height[static_cast<size_t>(p)],
                op_latency(block.ops[static_cast<size_t>(p)], target) +
                    height[static_cast<size_t>(i)]);
        }
    }
    return height;
}

int longest_path_latency(const MachineBlock& block, const TargetModel& target,
                         int from, int to) {
    const int n = static_cast<int>(block.ops.size());
    SLPWLO_ASSERT(from >= 0 && from < n && to >= 0 && to < n,
                  "path endpoints out of range");
    if (from > to) return -1;
    // dist[i]: longest latency of a chain from `from` to i, inclusive.
    std::vector<int> dist(static_cast<size_t>(n), -1);
    dist[static_cast<size_t>(from)] =
        op_latency(block.ops[static_cast<size_t>(from)], target);
    for (int i = from + 1; i <= to; ++i) {
        const MachOp& op = block.ops[static_cast<size_t>(i)];
        int best = -1;
        for (const int p : op.preds) {
            if (p >= from && dist[static_cast<size_t>(p)] >= 0) {
                best = std::max(best, dist[static_cast<size_t>(p)]);
            }
        }
        if (best >= 0) {
            dist[static_cast<size_t>(i)] = best + op_latency(op, target);
        }
    }
    return dist[static_cast<size_t>(to)];
}

int recurrence_mii(const MachineBlock& block, const TargetModel& target) {
    int mii = 1;
    for (const Recurrence& rec : block.recurrences) {
        const int latency =
            rec.from == rec.to
                ? op_latency(block.ops[static_cast<size_t>(rec.from)], target)
                : longest_path_latency(block, target, rec.from, rec.to);
        if (latency < 0) continue;  // producer does not depend on consumer
        const int distance = std::max(1, rec.distance);
        mii = std::max(mii, (latency + distance - 1) / distance);
    }
    return mii;
}

int resource_mii(const MachineBlock& block, const TargetModel& target) {
    int alu = 0, mul = 0, mem = 0, shift = 0, flt = 0, total = 0;
    for (const MachOp& op : block.ops) {
        if (op.kind == MachKind::SoftFloat) continue;  // serialized separately
        switch (op_class(op, target)) {
            case OpClass::Alu: alu++; break;
            case OpClass::MulUnit: mul++; break;
            case OpClass::Mem: mem++; break;
            case OpClass::Shift: shift++; break;
            case OpClass::Float: flt++; break;
            case OpClass::Branch: break;
        }
        total++;
    }
    auto pressure = [](int count, int slots) {
        return slots > 0 ? (count + slots - 1) / slots : count;
    };
    int mii = 1;
    mii = std::max(mii, pressure(alu, target.alu_slots));
    mii = std::max(mii, pressure(mul, target.mul_slots));
    mii = std::max(mii, pressure(mem, target.mem_slots));
    if (target.shift_slots > 0) {
        mii = std::max(mii, pressure(shift, target.shift_slots));
    }
    mii = std::max(mii, pressure(flt, target.float_slots));
    mii = std::max(mii, pressure(total, target.issue_width));
    return mii;
}

}  // namespace slpwlo
