#include "schedule/cycle_model.hpp"

#include <algorithm>

namespace slpwlo {

CycleReport estimate_cycles(const MachineKernel& machine,
                            const TargetModel& target) {
    CycleReport report;
    for (const MachineBlock& block : machine.blocks) {
        BlockCycleReport entry;
        entry.schedule = schedule_block(block, target);
        const long long ii = entry.schedule.ii;
        const long long fill =
            std::max(0, entry.schedule.length - entry.schedule.ii);
        entry.total = ii * block.frequency + fill * block.entries;
        report.total_cycles += entry.total;
        report.blocks.push_back(std::move(entry));
    }
    report.loop_overhead =
        machine.total_loop_iterations * target.loop_overhead_cycles;
    report.total_cycles += report.loop_overhead;
    return report;
}

}  // namespace slpwlo
