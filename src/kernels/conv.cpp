#include "ir/builder.hpp"
#include "ir/unroll.hpp"
#include "kernels/kernels.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo::kernels {

std::vector<double> design_conv3x3() {
    // Gaussian blur, exactly representable magnitudes spanning a factor 4.
    return {1.0 / 16, 2.0 / 16, 1.0 / 16,  //
            2.0 / 16, 4.0 / 16, 2.0 / 16,  //
            1.0 / 16, 2.0 / 16, 1.0 / 16};
}

Kernel make_conv3x3(const ConvConfig& config) {
    SLPWLO_CHECK(config.height >= 1 && config.width >= 1,
                 "CONV output must be non-empty");
    const int kh = 3;
    const int kw = 3;
    const int in_w = config.width + kw - 1;
    const int in_h = config.height + kh - 1;

    KernelBuilder b("conv3x3");
    const ArrayId img = b.input("img", in_h * in_w, Interval(-1.0, 1.0));
    const ArrayId coef = b.param("k", design_conv3x3());
    const ArrayId out = b.output("out", config.height * config.width);
    const VarId acc = b.user_var("acc");

    const LoopId i = b.begin_loop("i", 0, config.height);
    const LoopId j = b.begin_loop("j", 0, config.width);
    b.set_const(acc, 0.0);
    // Stencil loops, fully unrolled by the unroll pass (the paper: "the
    // convolution kernel (3x3) is fully unrolled").
    const LoopId u = b.begin_loop("u", 0, kh, /*unroll=*/0);
    const LoopId v = b.begin_loop("v", 0, kw, /*unroll=*/0);
    const Affine pixel =
        (Affine::var(i) + Affine::var(u)) * in_w + Affine::var(j) +
        Affine::var(v);
    const Affine tap = Affine::var(u) * kw + Affine::var(v);
    const VarId prod = b.mul(b.load(img, pixel), b.load(coef, tap));
    b.add(acc, prod, acc);
    b.end_loop();
    b.end_loop();
    b.store(out, Affine::var(i) * config.width + Affine::var(j), acc);
    b.end_loop();
    b.end_loop();

    return unroll_kernel(b.take());
}

}  // namespace slpwlo::kernels
