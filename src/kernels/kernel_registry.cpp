#include "kernels/kernel_registry.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "ir/printer.hpp"
#include "support/diagnostics.hpp"
#include "support/text.hpp"

namespace slpwlo::kernels {

namespace {

std::string canonical(const std::string& name) {
    std::string upper = name;
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return upper;
}

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

void mix(uint64_t& h, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
}

void mix_string(uint64_t& h, const std::string& s) {
    mix(h, s.size());
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
}

}  // namespace

uint64_t benchmark_kernel_fingerprint(const BenchmarkKernel& bench) {
    // The printed structure covers declarations (including param values
    // and input ranges), the loop nest and every op — the same content
    // notion KernelContext::fingerprint uses for memo keys. The name is
    // part of the print header, but two kernels whose bodies match while
    // only the name differs should fingerprint the same (a renamed copy
    // is the same kernel), so hash the print of an anonymized view.
    uint64_t h = kFnvOffset;
    std::string printed = print_kernel(bench.kernel);
    const std::string header = "kernel " + bench.kernel.name();
    if (printed.rfind(header, 0) == 0) {
        printed.erase(0, header.size());
    }
    mix_string(h, printed);
    mix(h, static_cast<uint64_t>(bench.range_options.method));
    mix(h, static_cast<uint64_t>(bench.range_options.max_interval_passes));
    mix(h, static_cast<uint64_t>(bench.range_options.simulation_runs));
    mix(h, bench.range_options.seed);
    uint64_t margin_bits;
    static_assert(sizeof(margin_bits) ==
                  sizeof(bench.range_options.simulation_margin));
    std::memcpy(&margin_bits, &bench.range_options.simulation_margin,
                sizeof(margin_bits));
    mix(h, margin_bits);
    return h;
}

KernelRegistry::KernelRegistry() {
    // The paper's three workloads plus the DOT scenario register
    // themselves exactly as the historical if-chain built them, so
    // resolving a built-in through the registry is bit-identical to the
    // pre-registry make_benchmark_kernel.
    const auto builtin = [&](const std::string& name, Kernel kernel,
                             RangeMethod method) {
        RangeOptions range_options;
        range_options.method = method;
        KernelEntry entry(BenchmarkKernel{name, std::move(kernel),
                                          range_options});
        entry.fingerprint = benchmark_kernel_fingerprint(entry.bench);
        entries_.emplace(canonical(name), std::move(entry));
    };
    builtin("FIR", make_fir64(), RangeMethod::Interval);
    // Interval iteration diverges through the IIR feedback taps; use
    // simulated ranges with a safety margin (DESIGN.md section 4).
    builtin("IIR", make_iir10(), RangeMethod::Simulation);
    builtin("CONV", make_conv3x3(), RangeMethod::Interval);
    // Feed-forward reduction: interval propagation converges exactly.
    builtin("DOT", make_dot(), RangeMethod::Interval);
}

KernelRegistry& KernelRegistry::instance() {
    static KernelRegistry registry;
    return registry;
}

void KernelRegistry::add(BenchmarkKernel bench, std::string dsl_source) {
    SLPWLO_CHECK(!bench.name.empty(), "kernel name cannot be empty");
    KernelEntry entry(std::move(bench));
    entry.fingerprint = benchmark_kernel_fingerprint(entry.bench);
    entry.dsl_source = std::move(dsl_source);

    std::lock_guard<std::mutex> lock(mutex_);
    const std::string key = canonical(entry.bench.name);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
        // Same content under the same name is an idempotent re-register
        // (every worker of a farm registers the manifest's kernels);
        // different content would make the name ambiguous for the rest
        // of the process — refuse instead of silently replacing.
        if (it->second.fingerprint == entry.fingerprint) return;
        throw Error("kernel `" + entry.bench.name +
                    "` is already registered with different content; "
                    "rename the kernel (names identify kernels in sweep "
                    "grids and reports)");
    }
    entries_.emplace(key, std::move(entry));
}

bool KernelRegistry::contains(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(canonical(name)) != 0;
}

KernelEntry KernelRegistry::entry(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(canonical(name));
    if (it == entries_.end()) {
        std::vector<std::string> known;
        known.reserve(entries_.size());
        for (const auto& [key, e] : entries_) {
            (void)key;
            known.push_back(e.bench.name);
        }
        std::sort(known.begin(), known.end());
        throw Error("unknown benchmark kernel `" + name +
                    "`; registered: " + join(known, ", "));
    }
    return it->second;
}

BenchmarkKernel KernelRegistry::get(const std::string& name) const {
    return entry(name).bench;
}

std::vector<std::string> KernelRegistry::names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [key, e] : entries_) {
        (void)key;
        out.push_back(e.bench.name);
    }
    // The map iterates in canonical (upper-cased) key order, which is not
    // byte order for the registered casings — sort what we return.
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace slpwlo::kernels
