#include <cmath>

#include "ir/builder.hpp"
#include "kernels/kernels.hpp"
#include "support/diagnostics.hpp"
#include "support/polynomial.hpp"

namespace slpwlo::kernels {

IirDesign design_iir(int order) {
    SLPWLO_CHECK(order >= 2 && order % 2 == 0,
                 "IIR design requires an even order >= 2");
    // Conjugate pole pairs at radius r and spread angles:
    //   (1 - 2 r cos(theta) z^-1 + r^2 z^-2) per section.
    const double r = 0.82;
    std::vector<std::pair<double, double>> pole_sections;
    const int sections = order / 2;
    for (int s = 0; s < sections; ++s) {
        const double theta = M_PI * (0.15 + 0.12 * s);
        pole_sections.emplace_back(-2.0 * r * std::cos(theta), r * r);
    }
    const Polynomial a_full = expand_biquad_sections(pole_sections);

    // Zeros at z = -1 (low-pass) for every section.
    std::vector<std::pair<double, double>> zero_sections(
        static_cast<size_t>(sections), {2.0, 1.0});
    Polynomial b_full = expand_biquad_sections(zero_sections);

    // Scale to DC gain 0.25 to keep outputs within [-1, 1].
    const double dc = poly_eval(b_full, 1.0) / poly_eval(a_full, 1.0);
    for (double& v : b_full) v *= 0.25 / dc;

    IirDesign design;
    design.b = b_full;  // b[0..order]
    design.a.assign(a_full.begin() + 1, a_full.end());  // a[1..order]
    return design;
}

Kernel make_iir10(const IirConfig& config) {
    SLPWLO_CHECK(config.lanes >= 1, "IIR lane count must be >= 1");
    const int order = config.order;
    const IirDesign design = design_iir(order);

    // Pad both tap sets to a multiple of the lane count (zero coefficients),
    // the standard embedded-DSP trick for clean unrolling.
    const int lanes = config.lanes;
    const int ff_taps = ((order + 1 + lanes - 1) / lanes) * lanes;  // b[0..order]
    const int fb_taps = ((order + lanes - 1) / lanes) * lanes;      // a[1..order]

    std::vector<double> b_pad(static_cast<size_t>(ff_taps), 0.0);
    for (int t = 0; t <= order; ++t) b_pad[t] = design.b[t];
    std::vector<double> a_pad(static_cast<size_t>(fb_taps), 0.0);
    for (int t = 1; t <= order; ++t) a_pad[t - 1] = design.a[t - 1];

    // Output is written shifted by `fb_taps` so feedback reads stay in
    // bounds; the first fb_taps elements are the zero initial state.
    const int y_shift = fb_taps;
    const int x_shift = ff_taps - 1;

    KernelBuilder b("iir" + std::to_string(order));
    const ArrayId x =
        b.input("x", config.samples + x_shift, Interval(-1.0, 1.0));
    const ArrayId bc = b.param("b", b_pad);
    const ArrayId ac = b.param("a", a_pad);
    const ArrayId y = b.output("y", config.samples + y_shift);

    std::vector<VarId> facc(static_cast<size_t>(lanes));
    std::vector<VarId> racc(static_cast<size_t>(lanes));
    for (int j = 0; j < lanes; ++j) {
        facc[static_cast<size_t>(j)] = b.user_var("ff" + std::to_string(j));
        racc[static_cast<size_t>(j)] = b.user_var("fb" + std::to_string(j));
    }

    const LoopId n = b.begin_loop("n", 0, config.samples);
    for (int j = 0; j < lanes; ++j) {
        b.set_const(facc[static_cast<size_t>(j)], 0.0);
        b.set_const(racc[static_cast<size_t>(j)], 0.0);
    }

    // Feed-forward taps: sum_t b[t] * x[n - t], t in [0, ff_taps).
    const LoopId k = b.begin_loop("k", 0, ff_taps / lanes);
    for (int j = 0; j < lanes; ++j) {
        const Affine tap = Affine::var(k) * lanes + j;
        const Affine sample = Affine::var(n) - tap + x_shift;
        const VarId prod = b.mul(b.load(x, sample), b.load(bc, tap));
        b.add(facc[static_cast<size_t>(j)], prod,
              facc[static_cast<size_t>(j)]);
    }
    b.end_loop();

    // Feedback taps: sum_t a[t] * y[n - t], t in [1, fb_taps].
    const LoopId m = b.begin_loop("m", 0, fb_taps / lanes);
    for (int j = 0; j < lanes; ++j) {
        const Affine tap = Affine::var(m) * lanes + j;  // tap index t-1
        const Affine sample = Affine::var(n) - tap + (y_shift - 1);
        const VarId prod = b.mul(b.load(y, sample), b.load(ac, tap));
        b.add(racc[static_cast<size_t>(j)], prod,
              racc[static_cast<size_t>(j)]);
    }
    b.end_loop();

    // y[n] = ff - fb, with pairwise lane reduction.
    auto reduce = [&](std::vector<VarId> level) {
        while (level.size() > 1) {
            std::vector<VarId> next;
            for (size_t i = 0; i + 1 < level.size(); i += 2) {
                next.push_back(b.add(level[i], level[i + 1]));
            }
            if (level.size() % 2 == 1) next.push_back(level.back());
            level = std::move(next);
        }
        return level[0];
    };
    const VarId ff_sum = reduce(facc);
    const VarId fb_sum = reduce(racc);
    const VarId out = b.sub(ff_sum, fb_sum);
    b.store(y, Affine::var(n) + y_shift, out);
    b.end_loop();

    return b.take();
}

}  // namespace slpwlo::kernels
