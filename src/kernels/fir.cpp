#include <cmath>

#include "ir/builder.hpp"
#include "kernels/kernels.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo::kernels {

std::vector<double> design_fir_lowpass(int taps) {
    SLPWLO_CHECK(taps >= 2, "FIR needs at least two taps");
    std::vector<double> c(static_cast<size_t>(taps));
    const double fc = 0.2;  // normalized cutoff
    const double mid = (taps - 1) / 2.0;
    for (int k = 0; k < taps; ++k) {
        const double t = k - mid;
        const double sinc =
            t == 0.0 ? 2.0 * fc : std::sin(2.0 * M_PI * fc * t) / (M_PI * t);
        const double hamming =
            0.54 - 0.46 * std::cos(2.0 * M_PI * k / (taps - 1));
        c[static_cast<size_t>(k)] = sinc * hamming;
    }
    // Unit DC gain.
    double sum = 0.0;
    for (const double v : c) sum += v;
    for (double& v : c) v /= sum;
    return c;
}

Kernel make_fir64(const FirConfig& config) {
    SLPWLO_CHECK(config.lanes >= 1 && config.taps % config.lanes == 0,
                 "FIR taps must be a multiple of the lane count");
    const int taps = config.taps;
    const int lanes = config.lanes;
    const int n_in = config.samples + taps - 1;

    KernelBuilder b("fir" + std::to_string(taps));
    const ArrayId x = b.input("x", n_in, Interval(-1.0, 1.0));
    const ArrayId c = b.param("c", design_fir_lowpass(taps));
    const ArrayId y = b.output("y", config.samples);

    std::vector<VarId> acc(static_cast<size_t>(lanes));
    for (int j = 0; j < lanes; ++j) {
        acc[static_cast<size_t>(j)] = b.user_var("acc" + std::to_string(j));
    }

    const LoopId n = b.begin_loop("n", 0, config.samples);
    for (int j = 0; j < lanes; ++j) {
        b.set_const(acc[static_cast<size_t>(j)], 0.0);
    }
    // Tap loop, manually unrolled by `lanes` with one partial accumulator
    // per lane — the "partially unrolled by 4 to expose SLP" shape.
    const LoopId k = b.begin_loop("k", 0, taps / lanes);
    for (int j = 0; j < lanes; ++j) {
        // tap index t = lanes*k + j
        const Affine tap = Affine::var(k) * lanes + j;
        // y[n] = sum_t c[t] * x[n + taps-1 - t]
        const Affine sample = Affine::var(n) - tap + (taps - 1);
        const VarId prod = b.mul(b.load(x, sample), b.load(c, tap));
        b.add(acc[static_cast<size_t>(j)], prod, acc[static_cast<size_t>(j)]);
    }
    b.end_loop();
    // Pairwise reduction of the partial accumulators.
    VarId sum = acc[0];
    if (lanes >= 2) {
        std::vector<VarId> level = acc;
        while (level.size() > 1) {
            std::vector<VarId> next;
            for (size_t i = 0; i + 1 < level.size(); i += 2) {
                next.push_back(b.add(level[i], level[i + 1]));
            }
            if (level.size() % 2 == 1) next.push_back(level.back());
            level = std::move(next);
        }
        sum = level[0];
    }
    b.store(y, Affine::var(n), sum);
    b.end_loop();

    return b.take();
}

}  // namespace slpwlo::kernels
