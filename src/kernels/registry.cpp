#include "kernels/kernels.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo::kernels {

const std::vector<std::string>& benchmark_kernel_names() {
    static const std::vector<std::string> names{"FIR", "IIR", "CONV", "DOT"};
    return names;
}

const std::vector<std::string>& paper_kernel_names() {
    static const std::vector<std::string> names{"FIR", "IIR", "CONV"};
    return names;
}

BenchmarkKernel make_benchmark_kernel(const std::string& name) {
    RangeOptions range_options;
    if (name == "FIR") {
        range_options.method = RangeMethod::Interval;
        return BenchmarkKernel{name, make_fir64(), range_options};
    }
    if (name == "IIR") {
        // Interval iteration diverges through the feedback taps; use
        // simulated ranges with a safety margin (DESIGN.md section 4).
        range_options.method = RangeMethod::Simulation;
        return BenchmarkKernel{name, make_iir10(), range_options};
    }
    if (name == "CONV") {
        range_options.method = RangeMethod::Interval;
        return BenchmarkKernel{name, make_conv3x3(), range_options};
    }
    if (name == "DOT") {
        // Feed-forward reduction: interval propagation converges exactly.
        range_options.method = RangeMethod::Interval;
        return BenchmarkKernel{name, make_dot(), range_options};
    }
    throw Error("unknown benchmark kernel `" + name +
                "`; known: FIR, IIR, CONV, DOT");
}

}  // namespace slpwlo::kernels
