#include "kernels/kernel_registry.hpp"
#include "kernels/kernels.hpp"

namespace slpwlo::kernels {

const std::vector<std::string>& benchmark_kernel_names() {
    static const std::vector<std::string> names{"FIR", "IIR", "CONV", "DOT"};
    return names;
}

const std::vector<std::string>& paper_kernel_names() {
    static const std::vector<std::string> names{"FIR", "IIR", "CONV"};
    return names;
}

BenchmarkKernel make_benchmark_kernel(const std::string& name) {
    // Thin wrapper over the registry: the built-ins register themselves on
    // first access, and an unknown name lists every registered kernel
    // (sorted) — including any `.slp` kernels loaded at run time.
    return KernelRegistry::instance().get(name);
}

}  // namespace slpwlo::kernels
