#include "ir/builder.hpp"
#include "kernels/kernels.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo::kernels {

Kernel make_dot(const DotConfig& config) {
    SLPWLO_CHECK(config.lanes >= 1 && config.length % config.lanes == 0,
                 "DOT length must be a multiple of the lane count");
    const int length = config.length;
    const int lanes = config.lanes;

    KernelBuilder b("dot" + std::to_string(length));
    const ArrayId x = b.input("x", length, Interval(-1.0, 1.0));
    const ArrayId w = b.input("w", length, Interval(-1.0, 1.0));
    const ArrayId y = b.output("y", 1);

    // One partial accumulator per lane, exactly the FIR unrolling shape:
    // the inner loop body carries `lanes` isomorphic mul/accumulate chains
    // for the extractor to group.
    std::vector<VarId> acc(static_cast<size_t>(lanes));
    for (int j = 0; j < lanes; ++j) {
        acc[static_cast<size_t>(j)] = b.user_var("acc" + std::to_string(j));
        b.set_const(acc[static_cast<size_t>(j)], 0.0);
    }

    const LoopId k = b.begin_loop("k", 0, length / lanes);
    for (int j = 0; j < lanes; ++j) {
        const Affine element = Affine::var(k) * lanes + j;
        const VarId prod = b.mul(b.load(x, element), b.load(w, element));
        b.add(acc[static_cast<size_t>(j)], prod, acc[static_cast<size_t>(j)]);
    }
    b.end_loop();

    // Pairwise reduction of the partial accumulators.
    std::vector<VarId> level = acc;
    while (level.size() > 1) {
        std::vector<VarId> next;
        for (size_t i = 0; i + 1 < level.size(); i += 2) {
            next.push_back(b.add(level[i], level[i + 1]));
        }
        if (level.size() % 2 == 1) next.push_back(level.back());
        level = std::move(next);
    }
    b.store(y, Affine(0), level.front());

    return b.take();
}

}  // namespace slpwlo::kernels
