// KernelRegistry: the process-wide map from names to benchmark kernels,
// mirroring TargetRegistry (target/target_registry.hpp). Kernels are
// first-class data rather than a hard-coded if-chain: the built-in
// FIR/IIR/CONV/DOT builders, `.slp` kernel files loaded at run time
// (frontend/kernel_file.hpp) and anything user code add()s all resolve
// through the same case-insensitive lookup.
//
// Each entry carries the kernel, the range-analysis options the flows
// must use for it (the recursive IIR needs simulated ranges), a content
// fingerprint of the kernel's printed structure, and — for file-based
// kernels — the DSL source it was compiled from. The source is what the
// distributed layer embeds into shard manifests (dist/shard_manifest.hpp)
// so worker processes can re-register the kernel by content instead of
// resolving a name they may not know.
//
// Lookup returns a copy: a registered kernel is immutable-by-value, so a
// caller that mutates its copy never affects other lookups.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "kernels/kernels.hpp"

namespace slpwlo::kernels {

/// One registered kernel: the BenchmarkKernel triple plus the registry's
/// identity metadata.
struct KernelEntry {
    explicit KernelEntry(BenchmarkKernel b) : bench(std::move(b)) {}

    BenchmarkKernel bench;
    /// DSL source the kernel was compiled from; empty for built-ins and
    /// builder-constructed kernels. Non-empty entries are "file-based":
    /// shard manifests embed this text so workers can reconstruct the
    /// kernel without a registry (dist/embed_kernel_sources).
    std::string dsl_source;
    /// Content hash of the kernel's printed structure and the range
    /// options — never the name, so a renamed copy fingerprints the same
    /// and same-name kernels with different bodies cannot alias.
    uint64_t fingerprint = 0;
};

/// Content hash of a BenchmarkKernel (printed kernel structure + range
/// options; name-free). The fingerprint stored in KernelEntry.
uint64_t benchmark_kernel_fingerprint(const BenchmarkKernel& bench);

/// Process-wide registry of benchmark kernels. The built-ins register
/// themselves on first access; user code and the `.slp` ingestion path
/// may add more. Lookup is thread-safe; add() must not race with a
/// running sweep that resolves names.
class KernelRegistry {
public:
    static KernelRegistry& instance();

    /// Register `bench` under its name (case-insensitive match, the
    /// registered casing is kept). Re-registering a name is a no-op when
    /// the content fingerprint is identical and an Error otherwise — two
    /// kernels with the same name but different bodies in one process
    /// would make sweep labels ambiguous. `dsl_source` is the DSL text
    /// the kernel was compiled from ("" for builder-made kernels).
    void add(BenchmarkKernel bench, std::string dsl_source = "");

    bool contains(const std::string& name) const;

    /// Copy of the entry registered under `name` (case-insensitive);
    /// throws Error for unknown names, listing every registered kernel.
    KernelEntry entry(const std::string& name) const;

    /// entry(name).bench — the make_benchmark_kernel shape.
    BenchmarkKernel get(const std::string& name) const;

    /// Registered kernel names, sorted.
    std::vector<std::string> names() const;

private:
    KernelRegistry();

    mutable std::mutex mutex_;
    /// Keyed by the upper-cased name; values keep the registered casing.
    std::map<std::string, KernelEntry> entries_;
};

}  // namespace slpwlo::kernels
