// Built-in benchmark kernels — the four workloads every flow and bench can
// resolve by name — plus their filter designers:
//
//  * FIR-64: 64-tap low-pass FIR, inner tap loop unrolled by 4 with four
//    partial accumulators (the unrolling the paper applies "to expose SLP");
//  * IIR-10: 10th-order direct-form-I IIR (stable pole-placed design), both
//    tap loops zero-padded to 12 and unrolled by 4;
//  * CONV-3x3: 2-D 3x3 image convolution, fully unrolled stencil;
//  * DOT-256: dot product of two vectors, unrolled by 4 with one partial
//    accumulator per lane (the goSLP-style scenario; not in the paper's
//    evaluation — see paper_kernel_names for the original three).
//
// All four register themselves in the KernelRegistry
// (kernels/kernel_registry.hpp), the process-wide name -> kernel map that
// also serves `.slp` kernel files loaded at run time
// (frontend/kernel_file.hpp); make_benchmark_kernel below is a thin
// lookup wrapper over it.
//
// Inputs are declared in [-1, 1] as in the paper ("the input samples are
// pre-normalized to [-1,1]").
#pragma once

#include <vector>

#include "fixpoint/range_analysis.hpp"
#include "ir/kernel.hpp"

namespace slpwlo::kernels {

struct FirConfig {
    int taps = 64;
    int samples = 512;
    int lanes = 4;  ///< unroll factor / number of partial accumulators
};

struct IirConfig {
    int order = 10;   ///< filter order (padded to a multiple of `lanes`)
    int samples = 512;
    int lanes = 4;
};

struct ConvConfig {
    int height = 16;  ///< output height
    int width = 16;   ///< output width
};

struct DotConfig {
    int length = 256;  ///< vector length; must be a multiple of `lanes`
    int lanes = 4;     ///< unroll factor / number of partial accumulators
};

/// Windowed-sinc low-pass FIR coefficients (Hamming window, fc = 0.2).
/// Magnitudes vary by orders of magnitude across taps, which is what makes
/// per-node IWLs heterogeneous.
std::vector<double> design_fir_lowpass(int taps);

/// Stable 10th-order IIR: cascade of `order/2` conjugate pole pairs at
/// radius 0.82 expanded to direct-form denominator `a` (a[0] = 1 implicit,
/// returns a[1..order]) and numerator `b` (returns b[0..order]), scaled to
/// unit DC gain times 0.25 to keep the output within [-1, 1].
struct IirDesign {
    std::vector<double> b;  ///< feed-forward taps b[0..order]
    std::vector<double> a;  ///< feedback taps a[1..order]
};
IirDesign design_iir(int order);

/// 3x3 Gaussian blur kernel {1,2,1;2,4,2;1,2,1}/16, row-major.
std::vector<double> design_conv3x3();

Kernel make_fir64(const FirConfig& config = {});
Kernel make_iir10(const IirConfig& config = {});
Kernel make_conv3x3(const ConvConfig& config = {});
/// Dot product of two [-1,1) input vectors, unrolled by `lanes` with one
/// partial accumulator per lane (the goSLP-style dotprod scenario).
Kernel make_dot(const DotConfig& config = {});

/// A benchmark entry: the kernel plus the range-analysis options the flow
/// should use for it (the recursive IIR needs simulation-based ranges).
struct BenchmarkKernel {
    std::string name;
    Kernel kernel;
    RangeOptions range_options;
};

/// Names of the registered benchmarks: the paper's "FIR", "IIR", "CONV"
/// plus the "DOT" scenario.
const std::vector<std::string>& benchmark_kernel_names();

/// The paper's original three benchmarks only (Figures 4/6, Table I).
const std::vector<std::string>& paper_kernel_names();

/// Construct a benchmark by name (throws Error for unknown names).
BenchmarkKernel make_benchmark_kernel(const std::string& name);

}  // namespace slpwlo::kernels
