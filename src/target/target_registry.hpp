// TargetRegistry: the process-wide map from names to TargetModels,
// mirroring FlowRegistry (flow/pass.hpp). Targets are first-class data
// rather than a hard-coded switch: the paper's hand-coded models, the
// shipped ISA description presets (NEON128, SSE128, DSP64 — see
// target_desc.hpp) and anything user code add()s all resolve through the
// same case-insensitive lookup, and sweeps can spawn derived width
// variants of any registered base ISA (TargetModel::with_simd_width).
//
// Lookup returns a copy: a registered model is immutable-by-value, so a
// sweep point that mutates its target (a width override, a doctored cost
// table) never affects other points or later lookups.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "target/target_model.hpp"

namespace slpwlo {

/// Process-wide registry of target models. The built-in models and the
/// shipped ISA presets are registered on first access; user code may add
/// its own. Lookup is thread-safe; add() must not race with a running
/// sweep that resolves names.
class TargetRegistry {
public:
    static TargetRegistry& instance();

    /// Validate and register (or replace) a model under its name.
    /// Names are matched case-insensitively.
    void add(TargetModel model);

    bool contains(const std::string& name) const;

    /// Copy of the model registered under `name` (case-insensitive);
    /// throws Error for unknown names, listing every registered target.
    TargetModel get(const std::string& name) const;

    /// Registered target names, sorted.
    std::vector<std::string> names() const;

private:
    TargetRegistry();

    mutable std::mutex mutex_;
    /// Keyed by the upper-cased name; values keep the registered casing.
    std::map<std::string, TargetModel> models_;
};

}  // namespace slpwlo
