#include "target/target_registry.hpp"

#include <algorithm>
#include <cctype>

#include "support/diagnostics.hpp"
#include "support/text.hpp"
#include "target/target_desc.hpp"

namespace slpwlo {

namespace {

std::string canonical(const std::string& name) {
    std::string upper = name;
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return upper;
}

}  // namespace

TargetRegistry::TargetRegistry() {
    // The paper's hand-coded models plus the scalar baseline...
    for (const TargetModel& t : targets::paper_targets()) {
        models_.emplace(canonical(t.name), t);
    }
    const TargetModel generic = targets::generic32();
    models_.emplace(canonical(generic.name), generic);
    // ...and the shipped ISA presets, parsed from their description
    // files (embedded at build time), so the registry and the parser can
    // never drift apart.
    for (const TargetModel& t : targets::preset_targets()) {
        models_.emplace(canonical(t.name), t);
    }
}

TargetRegistry& TargetRegistry::instance() {
    static TargetRegistry registry;
    return registry;
}

void TargetRegistry::add(TargetModel model) {
    model.validate();
    std::lock_guard<std::mutex> lock(mutex_);
    models_[canonical(model.name)] = std::move(model);
}

bool TargetRegistry::contains(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return models_.count(canonical(name)) != 0;
}

TargetModel TargetRegistry::get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = models_.find(canonical(name));
    if (it == models_.end()) {
        std::vector<std::string> known;
        known.reserve(models_.size());
        for (const auto& [key, model] : models_) {
            (void)key;
            known.push_back(model.name);
        }
        std::sort(known.begin(), known.end());
        throw Error("unknown target `" + name +
                    "`; registered: " + join(known, ", "));
    }
    return it->second;
}

std::vector<std::string> TargetRegistry::names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(models_.size());
    for (const auto& [key, model] : models_) {
        (void)key;
        out.push_back(model.name);
    }
    // The map iterates in canonical (upper-cased) key order, which is not
    // byte order for the registered casings — sort what we return.
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace slpwlo
