// Textual target descriptions: a line-oriented `key = value` format that
// covers every TargetModel field, so processor models are data — shipped
// as preset files (targets/*.target), loaded by user tooling, or
// serialized to ship across processes (a sweep shard can receive the
// exact model it must evaluate instead of a name it may not know).
//
// Format, by example:
//
//   # comment (blank lines ignored)
//   name = DSP64
//   issue_width = 2
//   alu_slots = 2
//   barrel_shifter = false        # booleans: true/false/1/0
//   scalar_wls = 32, 16, 8        # int lists: comma- or space-separated
//   simd_width_bits = 64
//   simd_element_wls = 32, 16, 8
//   fp.hardware = false           # FloatSupport fields
//   fp.add_cycles = 38
//   op_cost.mul = 1.5             # per-OpClass relative_op_cost weights
//                                 # (alu/mul/mem steer the WLO cost model
//                                 # today; shift/float/branch are parsed
//                                 # and fingerprinted but reserved)
//
// `name` is mandatory; every other key defaults to the TargetModel
// aggregate default. Unknown keys, malformed values and duplicate keys
// are errors (with file:line positions), and the parsed model is
// validate()d before it is returned.
#pragma once

#include <string>
#include <vector>

#include "target/target_model.hpp"

namespace slpwlo {

/// Parse a textual target description. `source` names the text in error
/// messages (a file path, "<string>", ...). Throws Error on malformed
/// input or an inconsistent model.
TargetModel parse_target_description(const std::string& text,
                                     const std::string& source = "<string>");

/// Read `path` and parse it; throws Error when the file cannot be read.
TargetModel load_target_description(const std::string& path);

/// Serialize a model as description text. Round-trips: parsing the output
/// yields a model with an identical content fingerprint.
std::string target_description(const TargetModel& model);

namespace targets {

/// The shipped ISA preset descriptions (embedded from targets/*.target at
/// build time).
const std::string& neon128_description();  ///< NEON-class 128-bit SIMD
const std::string& sse128_description();   ///< SSE-class 128-bit SIMD
const std::string& dsp64_description();    ///< 64-bit DSP, soft float

/// The three shipped presets, parsed and validated (stable order:
/// NEON128, SSE128, DSP64).
std::vector<TargetModel> preset_targets();

}  // namespace targets

}  // namespace slpwlo
