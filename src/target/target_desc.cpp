#include "target/target_desc.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "support/diagnostics.hpp"
#include "support/kv_format.hpp"

namespace slpwlo {

using kv::fail;
using kv::to_bool;
using kv::to_double;
using kv::to_int;
using kv::to_int_list;
using kv::to_ll;
using kv::trim;

namespace {

const char* const kOpClassKeys[kNumOpClasses] = {"alu",   "mul",   "mem",
                                                 "shift", "float", "branch"};

}  // namespace

TargetModel parse_target_description(const std::string& text,
                                     const std::string& source) {
    TargetModel model;
    bool has_name = false;
    std::set<std::string> seen;

    std::istringstream lines(text);
    std::string raw;
    int line = 0;
    while (std::getline(lines, raw)) {
        line++;
        const size_t comment = raw.find('#');
        if (comment != std::string::npos) raw.resize(comment);
        const std::string content = trim(raw);
        if (content.empty()) continue;

        const size_t eq = content.find('=');
        if (eq == std::string::npos) {
            fail(source, line, "expected `key = value`, got `" + content + "`");
        }
        const std::string key = trim(content.substr(0, eq));
        const std::string value = trim(content.substr(eq + 1));
        if (key.empty()) fail(source, line, "empty key");
        if (!seen.insert(key).second) {
            fail(source, line, "duplicate key `" + key + "`");
        }

        if (key == "name") {
            if (value.empty()) fail(source, line, "empty target name");
            model.name = value;
            has_name = true;
        } else if (key == "issue_width") {
            model.issue_width = to_int(source, line, key, value);
        } else if (key == "alu_slots") {
            model.alu_slots = to_int(source, line, key, value);
        } else if (key == "mul_slots") {
            model.mul_slots = to_int(source, line, key, value);
        } else if (key == "mem_slots") {
            model.mem_slots = to_int(source, line, key, value);
        } else if (key == "shift_slots") {
            model.shift_slots = to_int(source, line, key, value);
        } else if (key == "float_slots") {
            model.float_slots = to_int(source, line, key, value);
        } else if (key == "alu_latency") {
            model.alu_latency = to_int(source, line, key, value);
        } else if (key == "mul_latency") {
            model.mul_latency = to_int(source, line, key, value);
        } else if (key == "mem_latency") {
            model.mem_latency = to_int(source, line, key, value);
        } else if (key == "shift_latency") {
            model.shift_latency = to_int(source, line, key, value);
        } else if (key == "float_latency") {
            model.float_latency = to_int(source, line, key, value);
        } else if (key == "barrel_shifter") {
            model.barrel_shifter = to_bool(source, line, key, value);
        } else if (key == "loop_overhead_cycles") {
            model.loop_overhead_cycles = to_ll(source, line, key, value);
        } else if (key == "native_wl") {
            model.native_wl = to_int(source, line, key, value);
        } else if (key == "scalar_wls") {
            model.scalar_wls = to_int_list(source, line, key, value);
        } else if (key == "simd_width_bits") {
            model.simd_width_bits = to_int(source, line, key, value);
        } else if (key == "simd_element_wls") {
            model.simd_element_wls = to_int_list(source, line, key, value);
        } else if (key == "pack2_ops") {
            model.pack2_ops = to_int(source, line, key, value);
        } else if (key == "extract_ops") {
            model.extract_ops = to_int(source, line, key, value);
        } else if (key == "fp.hardware") {
            model.fp.hardware = to_bool(source, line, key, value);
        } else if (key == "fp.add_cycles") {
            model.fp.add_cycles = to_int(source, line, key, value);
        } else if (key == "fp.mul_cycles") {
            model.fp.mul_cycles = to_int(source, line, key, value);
        } else if (key == "fp.div_cycles") {
            model.fp.div_cycles = to_int(source, line, key, value);
        } else if (key.rfind("op_cost.", 0) == 0) {
            const std::string cls = key.substr(8);
            size_t index = kNumOpClasses;
            for (size_t i = 0; i < kNumOpClasses; ++i) {
                if (cls == kOpClassKeys[i]) index = i;
            }
            if (index == kNumOpClasses) {
                fail(source, line,
                     "unknown op class `" + cls +
                         "`; known: alu, mul, mem, shift, float, branch");
            }
            model.op_class_cost[index] = to_double(source, line, key, value);
        } else {
            fail(source, line, "unknown key `" + key + "`");
        }
    }

    if (!has_name) {
        throw Error(source + ": target description has no `name` key");
    }
    try {
        model.validate();
    } catch (const Error& e) {
        throw Error(source + ": " + e.what());
    }
    return model;
}

TargetModel load_target_description(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw Error("cannot read target description `" + path + "`");
    std::ostringstream text;
    text << in.rdbuf();
    return parse_target_description(text.str(), path);
}

std::string target_description(const TargetModel& model) {
    std::ostringstream os;
    const auto int_list = [](const std::vector<int>& values) {
        std::string out;
        for (const int v : values) {
            if (!out.empty()) out += ", ";
            out += std::to_string(v);
        }
        return out;
    };
    // kv::exact_double round-trips any double exactly, so a
    // serialize-parse cycle preserves the content fingerprint bit-for-bit.
    const auto number = [](double value) { return kv::exact_double(value); };
    os << "# slpwlo target description\n";
    // write_pair hard-errors on a name the parser would corrupt (embedded
    // newline, '#', padding) instead of silently breaking the round trip.
    kv::write_pair(os, "name", model.name);
    os << "issue_width = " << model.issue_width << "\n"
       << "alu_slots = " << model.alu_slots << "\n"
       << "mul_slots = " << model.mul_slots << "\n"
       << "mem_slots = " << model.mem_slots << "\n"
       << "shift_slots = " << model.shift_slots << "\n"
       << "float_slots = " << model.float_slots << "\n"
       << "alu_latency = " << model.alu_latency << "\n"
       << "mul_latency = " << model.mul_latency << "\n"
       << "mem_latency = " << model.mem_latency << "\n"
       << "shift_latency = " << model.shift_latency << "\n"
       << "float_latency = " << model.float_latency << "\n"
       << "barrel_shifter = " << (model.barrel_shifter ? "true" : "false")
       << "\n"
       << "loop_overhead_cycles = " << model.loop_overhead_cycles << "\n"
       << "native_wl = " << model.native_wl << "\n"
       << "scalar_wls = " << int_list(model.scalar_wls) << "\n"
       << "simd_width_bits = " << model.simd_width_bits << "\n";
    if (!model.simd_element_wls.empty()) {
        os << "simd_element_wls = " << int_list(model.simd_element_wls)
           << "\n";
    }
    os << "pack2_ops = " << model.pack2_ops << "\n"
       << "extract_ops = " << model.extract_ops << "\n";
    for (size_t i = 0; i < kNumOpClasses; ++i) {
        os << "op_cost." << kOpClassKeys[i] << " = "
           << number(model.op_class_cost[i]) << "\n";
    }
    os << "fp.hardware = " << (model.fp.hardware ? "true" : "false") << "\n"
       << "fp.add_cycles = " << model.fp.add_cycles << "\n"
       << "fp.mul_cycles = " << model.fp.mul_cycles << "\n"
       << "fp.div_cycles = " << model.fp.div_cycles << "\n";
    return os.str();
}

namespace targets {

std::vector<TargetModel> preset_targets() {
    return {parse_target_description(neon128_description(), "<neon128>"),
            parse_target_description(sse128_description(), "<sse128>"),
            parse_target_description(dsp64_description(), "<dsp64>")};
}

}  // namespace targets

}  // namespace slpwlo
