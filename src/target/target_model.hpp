// Target processor models (Section V.B: XENTIUM, ST240 and the VEX
// configurations), described by the handful of parameters the optimization
// and timing layers consume:
//
//  * VLIW shape — issue width and per-class slot counts (ALU, multiplier,
//    memory, dedicated shifter, floating point) plus result latencies;
//  * word lengths — the supported scalar storage widths (the Tabu WLO move
//    set), the native register width, and the SIMD configuration: datapath
//    width and the supported element widths (equation 1: a group of k lanes
//    is implementable iff some supported element width m has k * m equal to
//    the SIMD datapath width);
//  * lane traffic — cost in ALU ops of a 2-element pack and of a lane
//    extract (the Fig. 2 overheads);
//  * floating point — hardware FP latency, or the soft-float library call
//    costs that dominate the Fig. 6 speedups on XENTIUM.
//
// TargetModel is a plain aggregate so user code can describe its own
// processor (see examples/custom_target.cpp) and validate() it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/op.hpp"

namespace slpwlo {

/// Functional-unit class an operation occupies for slot accounting.
enum class OpClass { Alu, MulUnit, Mem, Shift, Float, Branch };

/// Floating-point support: hardware FUs or soft-float library calls whose
/// cycle costs serialize the machine (Section V.B's XENTIUM emulation).
struct FloatSupport {
    bool hardware = false;
    int add_cycles = 38;  ///< soft-float add/sub call cost
    int mul_cycles = 45;  ///< soft-float multiply call cost
    int div_cycles = 120; ///< soft-float divide call cost
};

struct TargetModel {
    std::string name = "GENERIC32";

    // --- VLIW shape -----------------------------------------------------------
    int issue_width = 1;
    int alu_slots = 1;
    int mul_slots = 1;
    int mem_slots = 1;
    /// Dedicated shift slots; 0 means shifts issue on the ALU slots.
    int shift_slots = 0;
    int float_slots = 0;

    int alu_latency = 1;
    int mul_latency = 3;
    int mem_latency = 3;
    int shift_latency = 1;
    int float_latency = 3;

    /// Barrel shifter: any shift amount in shift_latency cycles. Without
    /// one, an n-bit shift costs shift_latency + (n - 1) cycles.
    bool barrel_shifter = true;

    /// Per-iteration loop-control overhead (induction update + branch).
    long long loop_overhead_cycles = 1;

    // --- word lengths ---------------------------------------------------------
    /// Native scalar register width.
    int native_wl = 32;
    /// Scalar storage widths the ISA supports, descending (the WLO move
    /// set; also the storage rounding grid).
    std::vector<int> scalar_wls{32, 16, 8};

    /// SIMD datapath width in bits; 0 disables SIMD entirely.
    int simd_width_bits = 0;
    /// Supported SIMD element widths, descending (e.g. {16, 8} for a
    /// 32-bit datapath that implements 2x16 and 4x8).
    std::vector<int> simd_element_wls;

    /// ALU ops needed to pack two scalars into (or one step deeper into) a
    /// vector register: assembling w lanes costs (w-1) * pack2_ops.
    int pack2_ops = 1;
    /// ALU ops needed to move one lane to a scalar register.
    int extract_ops = 1;

    FloatSupport fp;

    // --- derived queries ------------------------------------------------------
    /// Widest supported scalar word length.
    int max_wl() const;

    /// Smallest supported storage width >= wl (clamped to max_wl()).
    int storage_wl_for(int wl) const;

    /// Equation (1): the element word length a group of `group_width` lanes
    /// executes at, or nullopt when the target has no such configuration.
    /// A width-1 "group" is scalar and runs at the native width.
    std::optional<int> simd_element_wl(int group_width) const;

    /// True when a group of `group_width` lanes is implementable.
    bool supports_group_size(int group_width) const;

    /// Largest implementable group width (1 when SIMD is absent).
    int max_group_size() const;

    /// Relative cost of one op at word length `wl`, normalized so that an
    /// op at max_wl() costs 1.0 (the Menard-style WLO cost model): the
    /// storage-rounded width divided by the maximum width. `kind` is kept
    /// in the signature so ports can price multiplies differently.
    double relative_op_cost(OpKind kind, int wl) const;

    /// Throws Error when the description is inconsistent (empty WL sets,
    /// non-positive widths or latencies, SIMD element widths that do not
    /// divide the datapath, hardware FP without float slots...). Note
    /// that per-class slot counts may legitimately sum past the issue
    /// width — they are caps per class, not a partition of the slots.
    void validate() const;
};

namespace targets {

/// Recore XENTIUM DSP: 4-issue VLIW, 32-bit datapath with 2x16 SIMD,
/// no hardware floating point (soft-float library).
TargetModel xentium();

/// STMicroelectronics ST240: 4-issue VLIW, hardware FP, 32-bit datapath
/// with 2x16 and 4x8 SIMD.
TargetModel st240();

/// 1-issue VEX configuration (the ILP-free reference of Fig. 4).
TargetModel vex1();

/// 4-issue VEX configuration.
TargetModel vex4();

/// Plain 32-bit scalar machine: no SIMD, one storage width. The neutral
/// baseline for frontend and codegen tests.
TargetModel generic32();

/// The four targets of the paper's evaluation: XENTIUM, ST240, VEX-1,
/// VEX-4 (stable order).
const std::vector<TargetModel>& paper_targets();

/// Case-insensitive lookup among the built-in models ("XENTIUM", "ST240",
/// "VEX-1", "VEX-4", "GENERIC32"); throws Error for unknown names.
TargetModel by_name(const std::string& name);

}  // namespace targets

}  // namespace slpwlo
