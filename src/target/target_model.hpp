// Target processor models (Section V.B: XENTIUM, ST240 and the VEX
// configurations), described by the handful of parameters the optimization
// and timing layers consume:
//
//  * VLIW shape — issue width and per-class slot counts (ALU, multiplier,
//    memory, dedicated shifter, floating point) plus result latencies;
//  * word lengths — the supported scalar storage widths (the Tabu WLO move
//    set), the native register width, and the SIMD configuration: datapath
//    width and the supported element widths (equation 1: a group of k lanes
//    is implementable iff some supported element width m has k * m equal to
//    the SIMD datapath width);
//  * lane traffic — cost in ALU ops of a 2-element pack and of a lane
//    extract (the Fig. 2 overheads);
//  * floating point — hardware FP latency, or the soft-float library call
//    costs that dominate the Fig. 6 speedups on XENTIUM.
//
// TargetModel is a plain aggregate so user code can describe its own
// processor (see examples/custom_target.cpp) and validate() it. Models
// are first-class data: the TargetRegistry (target_registry.hpp) maps
// names to models, textual description files (target_desc.hpp) load and
// serialize them, and the derived-target transforms below spawn SIMD
// width/element variants of a base ISA for design-space sweeps.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "ir/op.hpp"

namespace slpwlo {

/// Functional-unit class an operation occupies for slot accounting.
enum class OpClass { Alu, MulUnit, Mem, Shift, Float, Branch };

/// Number of OpClass enumerators (the op_class_cost table size).
inline constexpr size_t kNumOpClasses = 6;

/// The functional-unit class the WLO cost model charges an IR op to:
/// Load/Store -> Mem, Mul/Div -> MulUnit, everything else -> Alu (shifts
/// and float traffic only appear after lowering; see lower/machine_ir.hpp
/// for the machine-op classification).
OpClass op_class_for(OpKind kind);

/// Floating-point support: hardware FUs or soft-float library calls whose
/// cycle costs serialize the machine (Section V.B's XENTIUM emulation).
struct FloatSupport {
    bool hardware = false;
    int add_cycles = 38;  ///< soft-float add/sub call cost
    int mul_cycles = 45;  ///< soft-float multiply call cost
    int div_cycles = 120; ///< soft-float divide call cost
};

struct TargetModel {
    std::string name = "GENERIC32";

    // --- VLIW shape -----------------------------------------------------------
    int issue_width = 1;
    int alu_slots = 1;
    int mul_slots = 1;
    int mem_slots = 1;
    /// Dedicated shift slots; 0 means shifts issue on the ALU slots.
    int shift_slots = 0;
    int float_slots = 0;

    int alu_latency = 1;
    int mul_latency = 3;
    int mem_latency = 3;
    int shift_latency = 1;
    int float_latency = 3;

    /// Barrel shifter: any shift amount in shift_latency cycles. Without
    /// one, an n-bit shift costs shift_latency + (n - 1) cycles.
    bool barrel_shifter = true;

    /// Per-iteration loop-control overhead (induction update + branch).
    long long loop_overhead_cycles = 1;

    // --- word lengths ---------------------------------------------------------
    /// Native scalar register width.
    int native_wl = 32;
    /// Scalar storage widths the ISA supports, descending (the WLO move
    /// set; also the storage rounding grid).
    std::vector<int> scalar_wls{32, 16, 8};

    /// SIMD datapath width in bits; 0 disables SIMD entirely.
    int simd_width_bits = 0;
    /// Supported SIMD element widths, descending (e.g. {16, 8} for a
    /// 32-bit datapath that implements 2x16 and 4x8).
    std::vector<int> simd_element_wls;

    /// ALU ops needed to pack two scalars into (or one step deeper into) a
    /// vector register: assembling w lanes costs (w-1) * pack2_ops.
    int pack2_ops = 1;
    /// ALU ops needed to move one lane to a scalar register.
    int extract_ops = 1;

    /// Per-OpClass multipliers for relative_op_cost, indexed by
    /// static_cast<size_t>(OpClass) — the ISA's cost-table row weights
    /// (e.g. a DSP whose multiplies are twice as expensive as ALU ops
    /// sets op_class_cost[MulUnit] = 2). All 1.0 reproduces the uniform
    /// Menard-style pricing of the paper's hand-coded models. Only the
    /// Alu/MulUnit/Mem rows are consumed today (op_class_for maps IR ops
    /// to those three); the Shift/Float/Branch rows are reserved for a
    /// lowering-aware cost model and currently only distinguish
    /// fingerprints.
    std::array<double, kNumOpClasses> op_class_cost{1.0, 1.0, 1.0,
                                                    1.0, 1.0, 1.0};

    FloatSupport fp;

    // --- derived queries ------------------------------------------------------
    /// Widest supported scalar word length.
    int max_wl() const;

    /// Smallest supported storage width >= wl (clamped to max_wl()).
    int storage_wl_for(int wl) const;

    /// Equation (1): the element word length a group of `group_width` lanes
    /// executes at, or nullopt when the target has no such configuration.
    /// A width-1 "group" is scalar and runs at the native width.
    std::optional<int> simd_element_wl(int group_width) const;

    /// True when a group of `group_width` lanes is implementable.
    bool supports_group_size(int group_width) const;

    /// Largest implementable group width (1 when SIMD is absent).
    int max_group_size() const;

    /// Every lane count >= 2 for which equation (1) has a solution,
    /// ascending (the SLP run-seeding menu). Empty when SIMD is absent.
    std::vector<int> feasible_group_sizes() const;

    /// Smallest implementable lane count >= 2, or 1 when SIMD is absent.
    /// A target whose minimum exceeds 2 has the pair-seeding cliff:
    /// pairwise fusion of scalars can only reach it through virtual
    /// intermediate widths or direct k-lane run seeding (src/slp).
    int min_group_size() const;

    /// Realization width of a (possibly virtual) fused width: the
    /// smallest implementable lane count reachable from `group_width` by
    /// the extraction engine's pairwise doubling (group_width * 2^j,
    /// j >= 0). Equals `group_width` itself when directly implementable;
    /// nullopt when no doubling chain lands on a supported size.
    std::optional<int> realization_group_size(int group_width) const;

    /// True when a fused group of `group_width` lanes is either directly
    /// implementable or can still grow into an implementable size by
    /// pairwise doubling (a *virtual* intermediate width).
    bool fusion_can_reach(int group_width) const;

    /// Element word length a group of `group_width` lanes will execute at
    /// once realized (equation 1 at realization_group_size); nullopt when
    /// the width has no realization.
    std::optional<int> realized_element_wl(int group_width) const;

    /// Cost-table weight of a functional-unit class (op_class_cost).
    double op_class_weight(OpClass cls) const;

    /// Relative cost of one op at word length `wl`: the storage-rounded
    /// width divided by the maximum width (the Menard-style WLO cost
    /// model, 1.0 for a uniformly-priced op at max_wl()), scaled by the
    /// op_class_cost weight of the class `kind` maps to.
    double relative_op_cost(OpKind kind, int wl) const;

    // --- derived-target transforms --------------------------------------------
    /// True when with_simd_width(bits) would succeed: bits == 0, or some
    /// supported element width divides `bits` into >= 2 lanes.
    bool can_derive_simd_width(int bits) const;

    /// Width variant of this ISA: the same pipeline with a `bits`-wide
    /// SIMD datapath, keeping the element widths that divide `bits` into
    /// >= 2 lanes (bits == 0 disables SIMD entirely). The variant is
    /// renamed `<name>@simd<bits>` and validated; throws Error when
    /// bits > 0 and no supported element width fits.
    TargetModel with_simd_width(int bits) const;

    /// Element-set variant: the same datapath restricted (or extended) to
    /// `element_wls`, renamed `<name>@e<w0>-<w1>...` and validated.
    TargetModel with_element_wls(std::vector<int> element_wls) const;

    /// Throws Error when the description is inconsistent: empty WL sets,
    /// WL sets that are not strictly descending, non-positive widths,
    /// zero/negative latencies or cost weights, SIMD element widths that
    /// do not divide the datapath or never yield a group of >= 2 lanes,
    /// hardware FP without float slots... Note that per-class slot
    /// counts may legitimately sum past the issue width — they are caps
    /// per class, not a partition of the slots.
    void validate() const;
};

namespace targets {

/// Recore XENTIUM DSP: 4-issue VLIW, 32-bit datapath with 2x16 SIMD,
/// no hardware floating point (soft-float library).
TargetModel xentium();

/// STMicroelectronics ST240: 4-issue VLIW, hardware FP, 32-bit datapath
/// with 2x16 and 4x8 SIMD.
TargetModel st240();

/// 1-issue VEX configuration (the ILP-free reference of Fig. 4).
TargetModel vex1();

/// 4-issue VEX configuration.
TargetModel vex4();

/// Plain 32-bit scalar machine: no SIMD, one storage width. The neutral
/// baseline for frontend and codegen tests.
TargetModel generic32();

/// The four targets of the paper's evaluation: XENTIUM, ST240, VEX-1,
/// VEX-4 (stable order).
const std::vector<TargetModel>& paper_targets();

/// Case-insensitive lookup in the TargetRegistry (the paper's models, the
/// shipped ISA presets — NEON128, SSE128, DSP64 — and anything user code
/// registered); an unknown name throws Error listing every registered
/// target name.
TargetModel by_name(const std::string& name);

}  // namespace targets

}  // namespace slpwlo
