#include "target/target_model.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "support/diagnostics.hpp"
#include "support/text.hpp"
#include "target/target_registry.hpp"

namespace slpwlo {

OpClass op_class_for(OpKind kind) {
    switch (kind) {
        case OpKind::Load:
        case OpKind::Store:
            return OpClass::Mem;
        case OpKind::Mul:
        case OpKind::Div:
            return OpClass::MulUnit;
        default:
            return OpClass::Alu;
    }
}

int TargetModel::max_wl() const {
    SLPWLO_CHECK(!scalar_wls.empty(), "target `" + name +
                                          "` declares no scalar word lengths");
    return *std::max_element(scalar_wls.begin(), scalar_wls.end());
}

int TargetModel::storage_wl_for(int wl) const {
    // Smallest supported width that holds `wl` bits; saturate at the widest.
    int best = max_wl();
    for (const int s : scalar_wls) {
        if (s >= wl && s < best) best = s;
    }
    return best;
}

std::optional<int> TargetModel::simd_element_wl(int group_width) const {
    if (group_width <= 1) return native_wl;
    if (simd_width_bits <= 0) return std::nullopt;
    // Equation (1): a k-lane group needs a configuration with exactly
    // k elements of some supported width m, i.e. k * m == datapath width.
    for (const int m : simd_element_wls) {
        if (m > 0 && group_width * m == simd_width_bits) return m;
    }
    return std::nullopt;
}

bool TargetModel::supports_group_size(int group_width) const {
    return simd_element_wl(group_width).has_value();
}

int TargetModel::max_group_size() const {
    if (simd_width_bits <= 0 || simd_element_wls.empty()) return 1;
    const int narrowest =
        *std::min_element(simd_element_wls.begin(), simd_element_wls.end());
    return narrowest > 0 ? simd_width_bits / narrowest : 1;
}

std::vector<int> TargetModel::feasible_group_sizes() const {
    std::vector<int> sizes;
    if (simd_width_bits <= 0) return sizes;
    // simd_element_wls is strictly descending, so the lane counts come
    // out ascending without a sort.
    for (const int m : simd_element_wls) {
        if (m > 0 && simd_width_bits % m == 0 && simd_width_bits / m >= 2) {
            sizes.push_back(simd_width_bits / m);
        }
    }
    return sizes;
}

int TargetModel::min_group_size() const {
    const std::vector<int> sizes = feasible_group_sizes();
    return sizes.empty() ? 1 : sizes.front();
}

std::optional<int> TargetModel::realization_group_size(int group_width) const {
    if (group_width < 2 || simd_width_bits <= 0) return std::nullopt;
    for (int k = group_width; k <= max_group_size(); k *= 2) {
        if (supports_group_size(k)) return k;
    }
    return std::nullopt;
}

bool TargetModel::fusion_can_reach(int group_width) const {
    return realization_group_size(group_width).has_value();
}

std::optional<int> TargetModel::realized_element_wl(int group_width) const {
    const auto k = realization_group_size(group_width);
    if (!k.has_value()) return std::nullopt;
    return simd_element_wl(*k);
}

double TargetModel::op_class_weight(OpClass cls) const {
    return op_class_cost[static_cast<size_t>(cls)];
}

double TargetModel::relative_op_cost(OpKind kind, int wl) const {
    return op_class_weight(op_class_for(kind)) *
           static_cast<double>(storage_wl_for(wl)) /
           static_cast<double>(max_wl());
}

namespace {

/// An element width usable on a `bits`-wide datapath: it must tile the
/// datapath into at least two lanes (equation 1 with k >= 2).
bool element_fits_width(int m, int bits) {
    return m > 0 && bits % m == 0 && bits / m >= 2;
}

}  // namespace

bool TargetModel::can_derive_simd_width(int bits) const {
    if (bits == 0) return true;
    if (bits < 0) return false;
    for (const int m : simd_element_wls) {
        if (element_fits_width(m, bits)) return true;
    }
    return false;
}

TargetModel TargetModel::with_simd_width(int bits) const {
    SLPWLO_CHECK(bits >= 0, "target `" + name +
                                "`: derived SIMD width must be >= 0");
    TargetModel variant = *this;
    variant.name = name + "@simd" + std::to_string(bits);
    variant.simd_width_bits = bits;
    variant.simd_element_wls.clear();
    if (bits > 0) {
        for (const int m : simd_element_wls) {
            if (element_fits_width(m, bits)) {
                variant.simd_element_wls.push_back(m);
            }
        }
        if (variant.simd_element_wls.empty()) {
            // Name every element and why it cannot pair at the new width,
            // instead of the generic validate() complaint.
            std::string why;
            for (const int m : simd_element_wls) {
                if (!why.empty()) why += "; ";
                why += "element " + std::to_string(m) + " bits ";
                if (m <= 0) {
                    why += "is not positive";
                } else if (bits % m != 0) {
                    why += "does not divide " + std::to_string(bits);
                } else {
                    why += "yields only " + std::to_string(bits / m) +
                           " lane(s)";
                }
            }
            if (why.empty()) why = "the element set is empty";
            throw Error("target `" + name + "`: no supported element width "
                        "divides a " + std::to_string(bits) +
                        "-bit SIMD datapath into >= 2 lanes (" + why + ")");
        }
    }
    variant.validate();
    return variant;
}

TargetModel TargetModel::with_element_wls(std::vector<int> element_wls) const {
    TargetModel variant = *this;
    std::vector<std::string> parts;
    parts.reserve(element_wls.size());
    for (const int m : element_wls) parts.push_back(std::to_string(m));
    variant.name = name + "@e" + join(parts, "-");
    variant.simd_element_wls = std::move(element_wls);
    variant.validate();
    return variant;
}

void TargetModel::validate() const {
    SLPWLO_CHECK(!name.empty(), "target has an empty name");
    SLPWLO_CHECK(issue_width > 0,
                 "target `" + name + "`: issue width must be positive");
    SLPWLO_CHECK(alu_slots > 0,
                 "target `" + name + "`: at least one ALU slot is required");
    SLPWLO_CHECK(mul_slots > 0 && mem_slots > 0,
                 "target `" + name +
                     "`: multiplier and memory slots must be positive");
    SLPWLO_CHECK(shift_slots >= 0 && float_slots >= 0,
                 "target `" + name + "`: negative slot count");
    SLPWLO_CHECK(alu_latency > 0 && mul_latency > 0 && mem_latency > 0 &&
                     shift_latency > 0 && float_latency > 0,
                 "target `" + name + "`: latencies must be positive");
    SLPWLO_CHECK(loop_overhead_cycles >= 0,
                 "target `" + name + "`: negative loop overhead");
    SLPWLO_CHECK(!scalar_wls.empty(),
                 "target `" + name + "`: empty scalar word-length set");
    for (const int s : scalar_wls) {
        SLPWLO_CHECK(s > 0 && s <= native_wl,
                     "target `" + name +
                         "`: scalar word lengths must be in (0, native_wl]");
    }
    for (size_t i = 1; i < scalar_wls.size(); ++i) {
        SLPWLO_CHECK(scalar_wls[i] < scalar_wls[i - 1],
                     "target `" + name +
                         "`: scalar word lengths must be strictly descending");
    }
    SLPWLO_CHECK(native_wl == max_wl(),
                 "target `" + name +
                     "`: native_wl must equal the widest scalar word length");
    SLPWLO_CHECK(simd_width_bits >= 0,
                 "target `" + name + "`: negative SIMD width");
    if (simd_width_bits > 0) {
        SLPWLO_CHECK(!simd_element_wls.empty(),
                     "target `" + name +
                         "`: SIMD datapath without element word lengths");
        for (const int m : simd_element_wls) {
            SLPWLO_CHECK(m > 0 && simd_width_bits % m == 0,
                         "target `" + name +
                             "`: SIMD element width must divide the datapath "
                             "width");
            // Elements wider than native_wl are legal: they are lane
            // containers (NEON/SSE 2x64 configurations hold 32-bit
            // scalars with headroom), not scalar storage widths.
        }
        for (size_t i = 1; i < simd_element_wls.size(); ++i) {
            SLPWLO_CHECK(
                simd_element_wls[i] < simd_element_wls[i - 1],
                "target `" + name +
                    "`: SIMD element widths must be strictly descending");
        }
        // Equation (1) must have at least one solution with k >= 2 lanes;
        // a datapath whose every element configuration is a single lane
        // is no SIMD at all.
        bool has_group = false;
        for (const int m : simd_element_wls) {
            if (simd_width_bits / m >= 2) has_group = true;
        }
        SLPWLO_CHECK(has_group,
                     "target `" + name +
                         "`: no SIMD element width divides the datapath into "
                         ">= 2 lanes");
    } else {
        SLPWLO_CHECK(simd_element_wls.empty(),
                     "target `" + name +
                         "`: element word lengths declared without a SIMD "
                         "datapath");
    }
    SLPWLO_CHECK(pack2_ops > 0 && extract_ops > 0,
                 "target `" + name + "`: pack/extract op counts must be "
                                     "positive");
    for (const double w : op_class_cost) {
        SLPWLO_CHECK(std::isfinite(w) && w > 0.0,
                     "target `" + name +
                         "`: op-class cost weights must be positive and "
                         "finite");
    }
    if (fp.hardware) {
        SLPWLO_CHECK(float_slots > 0,
                     "target `" + name +
                         "`: hardware FP requires at least one float slot");
    } else {
        SLPWLO_CHECK(fp.add_cycles > 0 && fp.mul_cycles > 0 &&
                         fp.div_cycles > 0,
                     "target `" + name +
                         "`: soft-float call costs must be positive");
    }
}

namespace targets {

TargetModel xentium() {
    TargetModel t;
    t.name = "XENTIUM";
    t.issue_width = 4;
    t.alu_slots = 2;
    t.mul_slots = 1;
    t.mem_slots = 1;
    t.shift_slots = 1;  // dedicated shift/scale unit
    t.float_slots = 0;  // no hardware FP
    t.alu_latency = 1;
    t.mul_latency = 3;
    t.mem_latency = 3;
    t.shift_latency = 1;
    t.float_latency = 1;  // unused (soft float)
    t.barrel_shifter = true;
    t.loop_overhead_cycles = 1;
    t.native_wl = 32;
    t.scalar_wls = {32, 16, 8};
    t.simd_width_bits = 32;
    t.simd_element_wls = {16};  // 2x16 only (no 4x8)
    t.pack2_ops = 1;
    t.extract_ops = 1;
    t.fp.hardware = false;
    t.fp.add_cycles = 38;
    t.fp.mul_cycles = 45;
    t.fp.div_cycles = 120;
    return t;
}

TargetModel st240() {
    TargetModel t;
    t.name = "ST240";
    t.issue_width = 4;
    t.alu_slots = 4;
    t.mul_slots = 2;
    t.mem_slots = 1;
    t.shift_slots = 0;  // shifts issue on the ALUs
    t.float_slots = 1;
    t.alu_latency = 1;
    t.mul_latency = 3;
    t.mem_latency = 3;
    t.shift_latency = 1;
    t.float_latency = 3;
    t.barrel_shifter = true;
    t.loop_overhead_cycles = 1;
    t.native_wl = 32;
    t.scalar_wls = {32, 16, 8};
    t.simd_width_bits = 32;
    t.simd_element_wls = {16, 8};  // 2x16 and 4x8
    t.pack2_ops = 1;
    t.extract_ops = 1;
    t.fp.hardware = true;
    return t;
}

namespace {

TargetModel vex(int issue) {
    TargetModel t;
    t.name = "VEX-" + std::to_string(issue);
    t.issue_width = issue;
    t.alu_slots = issue;
    t.mul_slots = std::max(1, issue / 2);
    t.mem_slots = 1;
    t.shift_slots = 0;
    t.float_slots = 1;
    t.alu_latency = 1;
    t.mul_latency = 3;
    t.mem_latency = 3;
    t.shift_latency = 1;
    t.float_latency = 3;
    t.barrel_shifter = true;
    t.loop_overhead_cycles = 1;
    t.native_wl = 32;
    t.scalar_wls = {32, 16, 8};
    t.simd_width_bits = 32;
    t.simd_element_wls = {16, 8};  // 2x16 and 4x8
    t.pack2_ops = 1;
    t.extract_ops = 1;
    t.fp.hardware = true;
    return t;
}

}  // namespace

TargetModel vex1() { return vex(1); }

TargetModel vex4() { return vex(4); }

TargetModel generic32() {
    TargetModel t;
    t.name = "GENERIC32";
    t.issue_width = 1;
    t.alu_slots = 1;
    t.mul_slots = 1;
    t.mem_slots = 1;
    t.shift_slots = 0;
    t.float_slots = 1;
    t.barrel_shifter = true;
    t.loop_overhead_cycles = 1;
    t.native_wl = 32;
    t.scalar_wls = {32};
    t.simd_width_bits = 0;
    t.simd_element_wls = {};
    t.fp.hardware = true;
    return t;
}

const std::vector<TargetModel>& paper_targets() {
    static const std::vector<TargetModel> all{xentium(), st240(), vex1(),
                                              vex4()};
    return all;
}

TargetModel by_name(const std::string& name) {
    return TargetRegistry::instance().get(name);
}

}  // namespace targets

}  // namespace slpwlo
