#include "farm/farm_server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "farm/framing.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo::farm {

namespace {

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    SLPWLO_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                 std::string("farm: fcntl O_NONBLOCK failed: ") +
                     std::strerror(errno));
}

long long steady_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

Message ok() {
    Message response;
    response.verb = "ok";
    return response;
}

Message error_message(const std::string& text) {
    Message response;
    response.verb = "error";
    // The kv line format cannot carry newlines; flatten multi-line
    // errors rather than corrupting the frame.
    std::string flat = text;
    for (char& c : flat) {
        if (c == '\n' || c == '\r') c = ' ';
    }
    response.fields["message"] = flat;
    return response;
}

}  // namespace

FarmServer::FarmServer(const ServerOptions& options)
    : options_(options), board_(options.ttl_ms), start_ns_(steady_ns()) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    SLPWLO_CHECK(listen_fd_ >= 0, std::string("farm: socket failed: ") +
                                      std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_addr.s_addr =
        htonl(options.all_interfaces ? INADDR_ANY : INADDR_LOOPBACK);
    address.sin_port = htons(static_cast<uint16_t>(options.port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
               sizeof(address)) != 0) {
        const std::string reason = std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw Error("farm: cannot bind port " + std::to_string(options.port) +
                    ": " + reason);
    }
    SLPWLO_CHECK(::listen(listen_fd_, 64) == 0,
                 std::string("farm: listen failed: ") + std::strerror(errno));
    set_nonblocking(listen_fd_);

    sockaddr_in bound{};
    socklen_t length = sizeof(bound);
    SLPWLO_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                               &length) == 0,
                 std::string("farm: getsockname failed: ") +
                     std::strerror(errno));
    port_ = ntohs(bound.sin_port);
}

FarmServer::~FarmServer() {
    for (Connection& connection : connections_) {
        if (connection.fd >= 0) ::close(connection.fd);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
}

long long FarmServer::now_ms() const {
    return (steady_ns() - start_ns_) / 1000000;
}

void FarmServer::flush(Connection& connection) {
    while (!connection.out.empty()) {
        const ssize_t n = ::send(connection.fd, connection.out.data(),
                                 connection.out.size(), MSG_NOSIGNAL);
        if (n > 0) {
            connection.out.erase(0, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
        if (n < 0 && errno == EINTR) continue;
        // Peer gone mid-write: drop the rest, close on the next sweep.
        connection.out.clear();
        connection.close_after_flush = true;
        return;
    }
}

void FarmServer::run() {
    while (!stop_.load()) {
        std::vector<pollfd> fds;
        fds.push_back({listen_fd_, POLLIN, 0});
        for (const Connection& connection : connections_) {
            short events = POLLIN;
            if (!connection.out.empty()) events |= POLLOUT;
            fds.push_back({connection.fd, events, 0});
        }
        const int ready = ::poll(fds.data(), fds.size(),
                                 static_cast<int>(options_.tick_ms));
        if (ready < 0 && errno != EINTR) {
            throw Error(std::string("farm: poll failed: ") +
                        std::strerror(errno));
        }
        const long long now = now_ms();
        // Every tick is an expiry sweep: stale workers lose their claims
        // whether or not any socket is active.
        board_.expire(now);

        if (fds[0].revents & POLLIN) {
            while (true) {
                const int fd = ::accept(listen_fd_, nullptr, nullptr);
                if (fd < 0) break;  // EAGAIN: accepted everything pending
                set_nonblocking(fd);
                Connection connection;
                connection.fd = fd;
                connections_.push_back(std::move(connection));
            }
        }

        for (size_t i = 0; i < connections_.size(); ++i) {
            Connection& connection = connections_[i];
            const short revents =
                i + 1 < fds.size() ? fds[i + 1].revents : 0;
            bool dead = (revents & (POLLERR | POLLNVAL)) != 0;

            if (!dead && (revents & (POLLIN | POLLHUP))) {
                char chunk[16384];
                while (true) {
                    const ssize_t n =
                        ::recv(connection.fd, chunk, sizeof(chunk), 0);
                    if (n > 0) {
                        connection.in.append(chunk, static_cast<size_t>(n));
                        continue;
                    }
                    if (n < 0 &&
                        (errno == EAGAIN || errno == EWOULDBLOCK)) {
                        break;
                    }
                    if (n < 0 && errno == EINTR) continue;
                    // EOF or hard error. Any partial frame in the buffer
                    // is dropped unacted-on: a worker killed mid-frame
                    // delivered nothing.
                    dead = true;
                    break;
                }
            }

            if (!connection.close_after_flush) {
                try {
                    while (std::optional<Message> request =
                               take_frame(connection.in)) {
                        connection.out +=
                            encode_frame(handle(*request, now));
                    }
                } catch (const Error& e) {
                    // Framing errors (garbage header, oversized length,
                    // version mismatch) poison the stream: answer once,
                    // then close.
                    connection.out += encode_frame(error_message(e.what()));
                    connection.close_after_flush = true;
                }
            }

            if (!connection.out.empty()) flush(connection);
            if (dead ||
                (connection.close_after_flush && connection.out.empty())) {
                ::close(connection.fd);
                connection.fd = -1;
            }
        }
        connections_.erase(
            std::remove_if(connections_.begin(), connections_.end(),
                           [](const Connection& c) { return c.fd < 0; }),
            connections_.end());
    }
    // Best-effort flush of anything still queued (e.g. the `shutdown`
    // acknowledgment) before the destructor closes the sockets.
    for (Connection& connection : connections_) {
        if (connection.fd >= 0 && !connection.out.empty()) flush(connection);
    }
}

Message FarmServer::handle(const Message& request, long long now) {
    try {
        if (request.verb == "hello" || request.verb == "heartbeat") {
            board_.heartbeat(request.require_field("worker"), now);
            Message response = ok();
            if (request.verb == "hello") {
                response.fields["protocol"] = kProtocolTag;
            }
            return response;
        }
        if (request.verb == "submit") {
            dist::ChunkOptions chunking;
            if (!request.field("chunk_cost").empty()) {
                try {
                    chunking.chunk_cost = std::stod(request.field("chunk_cost"));
                } catch (const std::exception&) {
                    throw Error("farm: submit chunk_cost is not a number: '" +
                                request.field("chunk_cost") + "'");
                }
            }
            if (!request.field("chunk_slots").empty()) {
                chunking.max_chunk_slots =
                    static_cast<size_t>(request.require_ll("chunk_slots"));
            }
            std::string manifest_text = request.body;
            std::string splice_text;
            if (!request.field("splice_bytes").empty()) {
                const long long splice_bytes =
                    request.require_ll("splice_bytes");
                SLPWLO_CHECK(
                    splice_bytes >= 0 &&
                        static_cast<size_t>(splice_bytes) <=
                            manifest_text.size(),
                    "farm: splice_bytes exceeds the submit body");
                const size_t cut =
                    manifest_text.size() - static_cast<size_t>(splice_bytes);
                splice_text = manifest_text.substr(cut);
                manifest_text.erase(cut);
            }
            const size_t job =
                board_.submit(manifest_text, chunking, splice_text, now);
            Message response = ok();
            response.fields["job"] = std::to_string(job);
            response.fields["spliced"] =
                std::to_string(board_.splice_count(job));
            return response;
        }
        if (request.verb == "next_job") {
            Message response = ok();
            if (const std::optional<size_t> job = board_.next_job()) {
                response.fields["job"] = std::to_string(*job);
            } else if (board_.job_count() == 0) {
                // Nothing submitted yet: a worker that connected early
                // should poll, not exit.
                response.fields["wait"] = "1";
            } else {
                response.fields["drained"] = "1";
            }
            return response;
        }
        if (request.verb == "manifest") {
            Message response = ok();
            response.body = board_.manifest_text(
                static_cast<size_t>(request.require_ll("job")));
            return response;
        }
        if (request.verb == "acquire") {
            const JobBoard::Acquired acquired = board_.acquire(
                request.require_field("worker"),
                static_cast<size_t>(request.require_ll("job")),
                request.field("max_slots").empty()
                    ? 0
                    : static_cast<size_t>(request.require_ll("max_slots")),
                now);
            Message response = ok();
            if (acquired.slots.empty()) {
                response.fields["wait"] = acquired.wait ? "1" : "0";
            } else {
                response.fields["lease"] = std::to_string(acquired.lease);
                std::string slots;
                for (const size_t slot : acquired.slots) {
                    if (!slots.empty()) slots += ",";
                    slots += std::to_string(slot);
                }
                response.fields["slots"] = slots;
            }
            return response;
        }
        if (request.verb == "complete") {
            const bool finalized = board_.complete(
                request.require_field("worker"),
                static_cast<size_t>(request.require_ll("job")),
                static_cast<uint64_t>(request.require_ll("lease")),
                request.body, now);
            Message response = ok();
            response.fields["finalized"] = finalized ? "1" : "0";
            return response;
        }
        if (request.verb == "abandon") {
            board_.abandon(static_cast<size_t>(request.require_ll("job")),
                           static_cast<uint64_t>(request.require_ll("lease")));
            return ok();
        }
        if (request.verb == "status") {
            Message response = ok();
            response.body = board_.status_json(now);
            return response;
        }
        if (request.verb == "report") {
            Message response = ok();
            response.body =
                board_.report(static_cast<size_t>(request.require_ll("job")));
            return response;
        }
        if (request.verb == "rows") {
            Message response = ok();
            response.body = board_.rows_text(
                static_cast<size_t>(request.require_ll("job")));
            return response;
        }
        if (request.verb == "shutdown") {
            stop_.store(true);
            return ok();
        }
        throw Error("farm: unknown verb '" + request.verb + "'");
    } catch (const Error& e) {
        // Application-level failure: the frame was well-formed, the
        // connection stays usable.
        return error_message(e.what());
    }
}

}  // namespace slpwlo::farm
