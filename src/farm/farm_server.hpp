// FarmServer: the JobBoard behind a TCP socket.
//
// A deliberately small daemon: one thread, one poll() loop, no
// dependencies beyond POSIX sockets. Connections are non-blocking with
// per-connection input/output buffers, and a request is acted on only
// once its entire frame has arrived (framing.hpp's atomicity rule) — a
// worker killed mid-`complete` delivers nothing, a slow or hostile
// client cannot stall the others, and every poll timeout doubles as the
// heartbeat-expiry tick.
//
// The verb set (request -> response; errors come back as
// `verb = error` with a `message` field, the connection stays usable):
//
//   hello      worker=<id>                      -> ok  protocol=slpwlo-farm/1
//   submit     [chunk_cost=] [chunk_slots=]     -> ok  job= spliced=
//              [splice_bytes=N]
//              body: manifest text, then (when
//              splice_bytes is set) N bytes of a
//              previous run's rows file
//   next_job                                    -> ok  job= | drained=1 | wait=1
//   manifest   job=                             -> ok  body: manifest text
//   acquire    worker= job= [max_slots=]        -> ok  lease= slots=a,b,c
//                                                      | wait=0|1 (empty)
//   complete   worker= job= lease=              -> ok  finalized=0|1
//              body: rows file covering the
//              lease's slots exactly
//   abandon    job= lease=                      -> ok
//   heartbeat  worker=<id>                      -> ok
//   status                                      -> ok  body: status JSON
//   report     job=                             -> ok  body: merged report
//   rows       job=                             -> ok  body: whole-grid rows
//   shutdown                                    -> ok  (server stops)
//
// Time: the server stamps every JobBoard call with a steady monotonic
// clock (milliseconds since server start). Wall clocks never appear —
// results must not depend on when the farm ran.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "farm/framing.hpp"
#include "farm/job_board.hpp"

namespace slpwlo::farm {

struct ServerOptions {
    /// TCP port to listen on; 0 picks an ephemeral port (see port()).
    int port = 0;
    /// Bind all interfaces instead of loopback only. Off by default:
    /// the protocol is unauthenticated, exposing it is an operator
    /// decision.
    bool all_interfaces = false;
    /// Heartbeat time-to-live (JobBoard).
    long long ttl_ms = 10000;
    /// poll() timeout — the expiry tick period.
    long long tick_ms = 100;
};

class FarmServer {
public:
    /// Binds and listens immediately (so port() is valid before run());
    /// throws Error when the port is taken.
    explicit FarmServer(const ServerOptions& options = {});
    ~FarmServer();

    FarmServer(const FarmServer&) = delete;
    FarmServer& operator=(const FarmServer&) = delete;

    /// The bound port (the actual one when options.port was 0).
    int port() const { return port_; }

    /// Serve until stop() or a `shutdown` frame. Blocking — callers
    /// wanting a background daemon run this on their own thread.
    void run();

    /// Ask a run() loop (typically on another thread) to return at its
    /// next tick.
    void stop() { stop_.store(true); }

    /// The state machine, exposed for in-process tests and for the CLI
    /// to pre-submit jobs before serving.
    JobBoard& board() { return board_; }

    /// Milliseconds since server start (the steady clock run() stamps
    /// JobBoard calls with).
    long long now_ms() const;

private:
    struct Connection {
        int fd = -1;
        std::string in;
        std::string out;
        bool close_after_flush = false;
    };

    Message handle(const Message& request, long long now);
    void flush(Connection& connection);

    ServerOptions options_;
    JobBoard board_;
    int listen_fd_ = -1;
    int port_ = 0;
    std::atomic<bool> stop_{false};
    long long start_ns_ = 0;
    std::vector<Connection> connections_;
};

}  // namespace slpwlo::farm
