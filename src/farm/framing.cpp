#include "farm/framing.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "support/diagnostics.hpp"
#include "support/kv_format.hpp"

namespace slpwlo::farm {

namespace {

// Longest legal header line: tag, space, 20-digit length, newline. A
// buffer that exceeds this without a newline cannot be a frame header.
constexpr size_t kMaxHeaderBytes = 64;

const std::string kEmpty;

}  // namespace

const std::string& Message::field(const std::string& key) const {
    const auto it = fields.find(key);
    return it == fields.end() ? kEmpty : it->second;
}

const std::string& Message::require_field(const std::string& key) const {
    const auto it = fields.find(key);
    if (it == fields.end()) {
        throw Error("farm: '" + verb + "' message is missing required field '" +
                    key + "'");
    }
    return it->second;
}

long long Message::require_ll(const std::string& key) const {
    const std::string& value = require_field(key);
    try {
        size_t used = 0;
        const long long parsed = std::stoll(value, &used);
        if (used == value.size()) return parsed;
    } catch (const std::exception&) {
    }
    throw Error("farm: '" + verb + "' field '" + key +
                "' is not an integer: '" + value + "'");
}

std::string encode_message(const Message& message) {
    SLPWLO_CHECK(!message.verb.empty(), "farm: message has no verb");
    std::ostringstream os;
    kv::write_pair(os, "verb", message.verb);
    for (const auto& [key, value] : message.fields) {
        SLPWLO_CHECK(key != "verb", "farm: 'verb' is not a free-form field");
        kv::write_pair(os, key, value);
    }
    os << "\n" << message.body;
    return os.str();
}

Message decode_message(const std::string& payload) {
    Message message;
    size_t pos = 0;
    while (pos <= payload.size()) {
        const size_t eol = payload.find('\n', pos);
        if (eol == std::string::npos) {
            throw Error("farm: message payload has no header/body separator");
        }
        const std::string line = payload.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty()) break;  // blank separator: the rest is body
        const size_t eq = line.find('=');
        if (eq == std::string::npos) {
            throw Error("farm: malformed message header line: '" + line + "'");
        }
        const std::string key = kv::trim(line.substr(0, eq));
        const std::string value = kv::trim(line.substr(eq + 1));
        if (key == "verb") {
            if (!message.verb.empty()) {
                throw Error("farm: message carries two verb lines");
            }
            message.verb = value;
        } else {
            if (message.verb.empty()) {
                throw Error("farm: message must start with its verb line");
            }
            if (!message.fields.emplace(key, value).second) {
                throw Error("farm: duplicate message field '" + key + "'");
            }
        }
    }
    if (message.verb.empty()) throw Error("farm: message has no verb");
    message.body = payload.substr(pos);
    return message;
}

std::string encode_frame(const Message& message) {
    const std::string payload = encode_message(message);
    SLPWLO_CHECK(payload.size() <= kMaxFrameBytes,
                 "farm: frame payload exceeds " +
                     std::to_string(kMaxFrameBytes) + " bytes");
    std::string frame = std::string(kProtocolTag) + " " +
                        std::to_string(payload.size()) + "\n";
    frame += payload;
    return frame;
}

std::optional<Message> take_frame(std::string& buffer) {
    const size_t eol = buffer.find('\n');
    if (eol == std::string::npos) {
        if (buffer.size() > kMaxHeaderBytes) {
            throw Error("farm: not a frame header (no newline in the first " +
                        std::to_string(kMaxHeaderBytes) + " bytes)");
        }
        return std::nullopt;  // header still arriving
    }
    const std::string header = buffer.substr(0, eol);
    const size_t space = header.find(' ');
    if (space == std::string::npos) {
        throw Error("farm: malformed frame header: '" + header + "'");
    }
    const std::string tag = header.substr(0, space);
    const std::string len_text = header.substr(space + 1);
    const std::string prefix = "slpwlo-farm/";
    if (tag.compare(0, prefix.size(), prefix) != 0) {
        throw Error("farm: not a slpwlo-farm frame (header tag '" + tag +
                    "')");
    }
    const std::string version = tag.substr(prefix.size());
    if (version != std::to_string(kProtocolVersion)) {
        throw Error("farm: protocol version mismatch — peer speaks slpwlo-farm/" +
                    version + ", this build speaks " + kProtocolTag);
    }
    if (len_text.empty() ||
        len_text.find_first_not_of("0123456789") != std::string::npos) {
        throw Error("farm: malformed frame length: '" + len_text + "'");
    }
    unsigned long long length = 0;
    try {
        length = std::stoull(len_text);
    } catch (const std::exception&) {
        throw Error("farm: malformed frame length: '" + len_text + "'");
    }
    if (length > kMaxFrameBytes) {
        throw Error("farm: frame length " + len_text + " exceeds the " +
                    std::to_string(kMaxFrameBytes) + "-byte cap");
    }
    if (buffer.size() - (eol + 1) < length) return std::nullopt;  // payload arriving
    const std::string payload = buffer.substr(eol + 1, length);
    buffer.erase(0, eol + 1 + length);
    return decode_message(payload);
}

void write_frame(int fd, const Message& message) {
    const std::string frame = encode_frame(message);
    size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw Error(std::string("farm: send failed: ") +
                        std::strerror(errno));
        }
        sent += static_cast<size_t>(n);
    }
}

std::optional<Message> read_frame(int fd) {
    std::string buffer;
    char chunk[4096];
    while (true) {
        if (std::optional<Message> message = take_frame(buffer)) {
            return message;
        }
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw Error(std::string("farm: recv failed: ") +
                        std::strerror(errno));
        }
        if (n == 0) {
            if (buffer.empty()) return std::nullopt;  // clean close
            throw Error("farm: connection closed mid-frame (" +
                        std::to_string(buffer.size()) +
                        " bytes of an incomplete frame)");
        }
        buffer.append(chunk, static_cast<size_t>(n));
    }
}

}  // namespace slpwlo::farm
