#include "farm/farm_client.hpp"

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "dist/shard_merger.hpp"
#include "dist/shard_runner.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo::farm {

namespace {

int connect_to(const std::string& host, int port) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* results = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                                 &hints, &results);
    if (rc != 0) {
        throw Error("farm: cannot resolve '" + host + "': " +
                    ::gai_strerror(rc));
    }
    int fd = -1;
    std::string reason = "no addresses";
    for (addrinfo* entry = results; entry != nullptr; entry = entry->ai_next) {
        fd = ::socket(entry->ai_family, entry->ai_socktype,
                      entry->ai_protocol);
        if (fd < 0) {
            reason = std::strerror(errno);
            continue;
        }
        if (::connect(fd, entry->ai_addr, entry->ai_addrlen) == 0) break;
        reason = std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(results);
    if (fd < 0) {
        throw Error("farm: cannot connect to " + host + ":" +
                    std::to_string(port) + ": " + reason);
    }
    return fd;
}

void sleep_ms(long long ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

FarmClient::FarmClient(const std::string& host, int port)
    : fd_(connect_to(host, port)) {}

FarmClient::~FarmClient() {
    if (fd_ >= 0) ::close(fd_);
}

Message FarmClient::call(const Message& request) {
    write_frame(fd_, request);
    std::optional<Message> response = read_frame(fd_);
    if (!response) {
        throw Error("farm: daemon closed the connection mid-'" +
                    request.verb + "'");
    }
    if (response->verb == "error") {
        throw Error("farm: daemon rejected '" + request.verb + "': " +
                    response->field("message"));
    }
    return *response;
}

void parse_endpoint(const std::string& endpoint, std::string& host,
                    int& port) {
    const size_t colon = endpoint.rfind(':');
    const std::string host_part =
        colon == std::string::npos ? "" : endpoint.substr(0, colon);
    const std::string port_part =
        colon == std::string::npos ? endpoint : endpoint.substr(colon + 1);
    host = host_part.empty() ? "127.0.0.1" : host_part;
    try {
        size_t used = 0;
        port = std::stoi(port_part, &used);
        if (used == port_part.size() && port > 0 && port <= 65535) return;
    } catch (const std::exception&) {
    }
    throw Error("farm: '" + endpoint +
                "' is not a host:port endpoint (port must be 1..65535)");
}

Heartbeater::Heartbeater(std::string host, int port, std::string worker,
                         long long period_ms) {
    SLPWLO_CHECK(period_ms > 0, "farm: heartbeat period must be positive");
    thread_ = std::thread([this, host = std::move(host), port,
                           worker = std::move(worker), period_ms] {
        try {
            FarmClient client(host, port);
            Message beat;
            beat.verb = "heartbeat";
            beat.fields["worker"] = worker;
            while (true) {
                {
                    std::unique_lock<std::mutex> lock(mutex_);
                    wake_.wait_for(lock,
                                   std::chrono::milliseconds(period_ms),
                                   [this] { return stop_.load(); });
                }
                if (stop_.load()) return;
                client.call(beat);
            }
        } catch (const Error&) {
            // Daemon unreachable: go quiet and let the server-side ttl
            // expire this worker — exactly what a crash would look like.
        }
    });
}

Heartbeater::~Heartbeater() {
    stop_.store(true);
    wake_.notify_all();
    if (thread_.joinable()) thread_.join();
}

SocketWorkSource::SocketWorkSource(FarmClient& client, std::string worker,
                                   size_t job,
                                   const dist::ShardManifest& manifest,
                                   long long poll_ms, long long straggle_ms)
    : client_(client),
      worker_(std::move(worker)),
      job_(job),
      manifest_(manifest),
      poll_ms_(poll_ms),
      straggle_ms_(straggle_ms) {
    SLPWLO_CHECK(manifest_.slots.size() == manifest_.total_slots,
                 "farm: SocketWorkSource needs the whole-grid manifest the "
                 "daemon serves");
}

size_t SocketWorkSource::total_slots() const { return manifest_.total_slots; }

Lease SocketWorkSource::acquire(size_t max_slots) {
    Message request;
    request.verb = "acquire";
    request.fields["worker"] = worker_;
    request.fields["job"] = std::to_string(job_);
    if (max_slots > 0) {
        request.fields["max_slots"] = std::to_string(max_slots);
    }
    while (true) {
        const Message response = client_.call(request);
        if (response.field("lease").empty()) {
            if (response.field("wait") == "1") {
                // Unfinished chunks are claimed elsewhere; they may
                // expire back into the pool, so poll.
                sleep_ms(poll_ms_);
                continue;
            }
            return {};  // job finalized: drained
        }
        Lease lease;
        lease.id = static_cast<uint64_t>(response.require_ll("lease"));
        const std::string& slots = response.require_field("slots");
        size_t pos = 0;
        while (pos < slots.size()) {
            size_t comma = slots.find(',', pos);
            if (comma == std::string::npos) comma = slots.size();
            const size_t slot =
                static_cast<size_t>(std::stoull(slots.substr(pos, comma - pos)));
            SLPWLO_CHECK(slot < manifest_.points.size(),
                         "farm: daemon leased slot " + std::to_string(slot) +
                             " beyond the manifest grid");
            lease.slots.push_back(slot);
            lease.points.push_back(manifest_.points[slot]);
            pos = comma + 1;
        }
        SLPWLO_CHECK(!lease.slots.empty(),
                     "farm: daemon sent a lease with no slots");
        return lease;
    }
}

void SocketWorkSource::complete(const Lease& lease,
                                std::vector<WorkRow> rows) {
    SLPWLO_CHECK(rows.size() == lease.slots.size(),
                 "farm: lease completion row count mismatch");
    dist::ShardResultsFile file;
    file.shard_index = 0;
    file.shard_count = 1;
    file.total_slots = manifest_.total_slots;
    file.grid_fp = manifest_.grid_fp;
    file.rows.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        file.rows.push_back(dist::make_shard_row(
            lease.slots[i], manifest_.points[lease.slots[i]], rows[i]));
    }
    if (straggle_ms_ > 0) sleep_ms(straggle_ms_);

    Message request;
    request.verb = "complete";
    request.fields["worker"] = worker_;
    request.fields["job"] = std::to_string(job_);
    request.fields["lease"] = std::to_string(lease.id);
    request.body = dist::shard_results_text(file);
    client_.call(request);
}

void SocketWorkSource::abandon(const Lease& lease) {
    Message request;
    request.verb = "abandon";
    request.fields["job"] = std::to_string(job_);
    request.fields["lease"] = std::to_string(lease.id);
    try {
        client_.call(request);
    } catch (const Error&) {
        // abandon runs on the failure path; if the daemon is gone too,
        // the ttl will re-issue the chunk. Don't mask the original error.
    }
}

size_t run_farm_worker(const std::string& host, int port,
                       const FarmWorkerOptions& options) {
    SLPWLO_CHECK(!options.worker.empty(), "farm: worker id must not be empty");
    FarmClient client(host, port);

    Message hello;
    hello.verb = "hello";
    hello.fields["worker"] = options.worker;
    client.call(hello);  // also the protocol handshake: frames must parse

    Heartbeater heartbeater(host, port, options.worker,
                            options.heartbeat_ms);

    Message next;
    next.verb = "next_job";
    size_t executed = 0;
    while (true) {
        const Message response = client.call(next);
        if (response.field("drained") == "1") break;
        if (response.field("wait") == "1") {
            sleep_ms(options.poll_ms);
            continue;
        }
        const size_t job =
            static_cast<size_t>(response.require_ll("job"));

        Message fetch;
        fetch.verb = "manifest";
        fetch.fields["job"] = std::to_string(job);
        const dist::ShardManifest manifest = dist::parse_shard_manifest(
            client.call(fetch).body, "farm job " + std::to_string(job));

        // Per-job service: different jobs legitimately carry different
        // sweep-wide flow defaults, and the defaults shape result bytes.
        ExecOptions exec = options.exec;
        exec.flow_options = manifest.defaults;
        if (options.evaluator) exec.flow_options.evaluator = *options.evaluator;
        if (options.measure) exec.flow_options.measure = true;
        if (options.optimizer) {
            exec.flow_options.solver.optimizer = *options.optimizer;
        }
        SweepService service(exec);
        SocketWorkSource source(client, options.worker, job, manifest,
                                options.poll_ms, options.straggle_ms);
        executed += service.drain(source, options.max_slots);
    }
    return executed;
}

}  // namespace slpwlo::farm
