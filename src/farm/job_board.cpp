#include "farm/job_board.hpp"

#include <algorithm>
#include <sstream>

#include "flow/report.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo::farm {

JobBoard::JobBoard(long long ttl_ms) : ttl_ms_(ttl_ms) {
    SLPWLO_CHECK(ttl_ms_ >= 0, "farm: heartbeat ttl must be >= 0 ms");
}

size_t JobBoard::submit(const std::string& manifest_text,
                        const dist::ChunkOptions& chunking,
                        const std::string& splice_rows_text, long long now_ms) {
    const std::string source = "job " + std::to_string(jobs_.size());
    dist::ShardManifest manifest =
        dist::parse_shard_manifest(manifest_text, source);

    // The farm serves whole grids: slot i must be grid slot i, so a
    // worker can look any lease slot up directly in manifest.points.
    SLPWLO_CHECK(manifest.slots.size() == manifest.total_slots,
                 "farm: submitted manifest covers " +
                     std::to_string(manifest.slots.size()) + " of " +
                     std::to_string(manifest.total_slots) +
                     " slots — the farm serves whole grids only");
    for (size_t i = 0; i < manifest.slots.size(); ++i) {
        SLPWLO_CHECK(manifest.slots[i] == i,
                     "farm: submitted manifest is not a whole grid (slot " +
                         std::to_string(manifest.slots[i]) + " at position " +
                         std::to_string(i) + ")");
    }

    const size_t total_slots = manifest.total_slots;
    const uint64_t grid_fp = manifest.grid_fp;
    Job job{manifest_text,
            std::move(manifest),
            {},
            dist::RowAccumulator(total_slots, grid_fp,
                                 dist::DuplicatePolicy::AllowIdentical),
            0,
            false,
            now_ms,
            -1};

    // Incremental re-sweep: pre-fill every slot whose point fingerprint
    // matches a row of the previous run, then chunk only what's left.
    if (!splice_rows_text.empty()) {
        const dist::ShardResultsFile old_rows = dist::parse_shard_results(
            splice_rows_text, source + " splice rows");
        std::vector<uint64_t> slot_fps;
        slot_fps.reserve(job.manifest.points.size());
        for (const SweepPoint& point : job.manifest.points) {
            slot_fps.push_back(dist::point_fingerprint(point));
        }
        const dist::ShardResultsFile spliced =
            dist::splice_rows({old_rows}, slot_fps, job.manifest.grid_fp);
        job.spliced = job.rows.add(spliced);
    }

    std::vector<size_t> missing;
    std::vector<SweepPoint> missing_points;
    for (size_t slot = 0; slot < job.manifest.total_slots; ++slot) {
        if (job.rows.has_slot(slot)) continue;
        missing.push_back(slot);
        missing_points.push_back(job.manifest.points[slot]);
    }
    if (!missing.empty()) {
        for (const std::vector<size_t>& chunk :
             dist::chunk_grid_slots(missing_points, missing, chunking)) {
            Chunk state;
            state.slots = chunk;
            job.chunks.push_back(std::move(state));
        }
    }

    jobs_.push_back(std::move(job));
    finalize_if_complete(jobs_.back(), now_ms);
    return jobs_.size() - 1;
}

void JobBoard::heartbeat(const std::string& worker, long long now_ms) {
    SLPWLO_CHECK(!worker.empty(), "farm: worker id must not be empty");
    Worker& state = workers_[worker];
    state.last_heartbeat_ms = now_ms;
    state.expired = false;
}

size_t JobBoard::expire(long long now_ms) {
    size_t reissued = 0;
    for (auto& [name, worker] : workers_) {
        if (now_ms - worker.last_heartbeat_ms < ttl_ms_) continue;
        worker.expired = true;
        for (Job& job : jobs_) {
            for (Chunk& chunk : job.chunks) {
                if (chunk.state != Chunk::State::Claimed ||
                    chunk.worker != name) {
                    continue;
                }
                // Back to the pool; the stale lease id stays resolvable
                // so a straggler's late complete is still accepted.
                chunk.state = Chunk::State::Pending;
                chunk.worker.clear();
                chunk.lease = 0;
                reissued++;
            }
        }
    }
    reissues_ += reissued;
    return reissued;
}

std::optional<size_t> JobBoard::next_job() const {
    std::optional<size_t> unfinished;
    for (size_t i = 0; i < jobs_.size(); ++i) {
        if (jobs_[i].finalized) continue;
        if (!unfinished) unfinished = i;
        for (const Chunk& chunk : jobs_[i].chunks) {
            if (chunk.state == Chunk::State::Pending) return i;
        }
    }
    return unfinished;
}

bool JobBoard::drained() const {
    return std::all_of(jobs_.begin(), jobs_.end(),
                       [](const Job& job) { return job.finalized; });
}

const std::string& JobBoard::manifest_text(size_t job) const {
    return job_at(job).text;
}

JobBoard::Acquired JobBoard::acquire(const std::string& worker, size_t job_id,
                                     size_t max_slots, long long now_ms) {
    heartbeat(worker, now_ms);
    Job& job = job_at(job_id);
    Acquired out;
    if (job.finalized) return out;  // empty, wait = false: move on

    // Claim the first pending chunk, whole: one chunk per lease, never
    // split — the pre-cut chunk is the natural granularity WorkSource
    // lets a source round a positive max_slots up to.
    (void)max_slots;
    for (size_t index = 0; index < job.chunks.size(); ++index) {
        Chunk& chunk = job.chunks[index];
        if (chunk.state != Chunk::State::Pending) continue;
        out.lease = next_lease_++;
        leases_[out.lease] = {job_id, index};
        chunk.state = Chunk::State::Claimed;
        chunk.worker = worker;
        chunk.lease = out.lease;
        chunk.issues++;
        out.slots = chunk.slots;
        return out;
    }
    // Nothing pending. Unfinished chunks are claimed elsewhere — worth
    // polling, they may expire back.
    out.wait = !job.finalized;
    return out;
}

bool JobBoard::complete(const std::string& worker, size_t job_id,
                        uint64_t lease, const std::string& rows_text,
                        long long now_ms) {
    heartbeat(worker, now_ms);
    Job& job = job_at(job_id);

    // Resolve the lease's chunk. Stale ids stay in the map, so a
    // straggler whose chunk was re-issued (even already completed by the
    // replacement) still resolves.
    const auto it = leases_.find(lease);
    SLPWLO_CHECK(it != leases_.end(), "farm: unknown lease " +
                                          std::to_string(lease) +
                                          " for job " +
                                          std::to_string(job_id));
    SLPWLO_CHECK(it->second.first == job_id,
                 "farm: lease " + std::to_string(lease) + " belongs to job " +
                     std::to_string(it->second.first) + ", not job " +
                     std::to_string(job_id));
    const size_t chunk_index = it->second.second;
    std::vector<size_t> expected = job.chunks[chunk_index].slots;

    const dist::ShardResultsFile rows = dist::parse_shard_results(
        rows_text, "lease " + std::to_string(lease) + " rows");
    std::vector<size_t> got;
    got.reserve(rows.rows.size());
    for (const dist::ShardRow& row : rows.rows) got.push_back(row.slot);
    std::sort(got.begin(), got.end());
    SLPWLO_CHECK(got == expected,
                 "farm: lease " + std::to_string(lease) + " completion covers " +
                     std::to_string(got.size()) + " slots, expected the " +
                     std::to_string(expected.size()) +
                     " slots of its chunk(s) exactly");

    // Atomic: RowAccumulator::add validates everything before inserting
    // anything, so a conflicting frame is rejected whole.
    job.rows.add(rows);

    Chunk& chunk = job.chunks[chunk_index];
    if (chunk.state != Chunk::State::Done) {
        chunk.state = Chunk::State::Done;
        chunk.worker.clear();
        chunk.lease = 0;
    }
    workers_[worker].completed_chunks++;

    const bool was_finalized = job.finalized;
    finalize_if_complete(job, now_ms);
    return job.finalized && !was_finalized;
}

void JobBoard::abandon(size_t job_id, uint64_t lease) {
    Job& job = job_at(job_id);
    const auto it = leases_.find(lease);
    if (it == leases_.end() || it->second.first != job_id) return;
    Chunk& chunk = job.chunks[it->second.second];
    if (chunk.state != Chunk::State::Claimed || chunk.lease != lease) {
        return;  // stale: expired and re-issued, or already done
    }
    chunk.state = Chunk::State::Pending;
    chunk.worker.clear();
    chunk.lease = 0;
}

bool JobBoard::job_finalized(size_t job) const {
    return job_at(job).finalized;
}

size_t JobBoard::splice_count(size_t job) const { return job_at(job).spliced; }

std::string JobBoard::report(size_t job) const {
    return job_at(job).rows.report();
}

std::string JobBoard::rows_text(size_t job) const {
    return dist::shard_results_text(job_at(job).rows.rows_file());
}

std::string JobBoard::status_json(long long now_ms) const {
    std::ostringstream os;
    os << "{\n";
    os << "  \"protocol\": \"" << "slpwlo-farm/1" << "\",\n";
    os << "  \"drained\": " << (drained() ? "true" : "false") << ",\n";
    os << "  \"reissues\": " << reissues_ << ",\n";
    os << "  \"jobs\": [";
    for (size_t i = 0; i < jobs_.size(); ++i) {
        const Job& job = jobs_[i];
        size_t pending = 0;
        size_t claimed = 0;
        size_t done = 0;
        for (const Chunk& chunk : job.chunks) {
            switch (chunk.state) {
                case Chunk::State::Pending: pending++; break;
                case Chunk::State::Claimed: claimed++; break;
                case Chunk::State::Done: done++; break;
            }
        }
        os << (i == 0 ? "\n" : ",\n");
        os << "    {\"job\": " << i << ", \"grid_fingerprint\": \""
           << fingerprint_hex(job.manifest.grid_fp) << "\", \"total_slots\": "
           << job.rows.total_slots() << ", \"done_slots\": "
           << job.rows.done_slots() << ", \"spliced_slots\": " << job.spliced
           << ", \"chunks\": " << job.chunks.size()
           << ", \"pending_chunks\": " << pending
           << ", \"claimed_chunks\": " << claimed
           << ", \"done_chunks\": " << done << ", \"age_ms\": "
           << (now_ms - job.submitted_ms) << ", \"finalized\": "
           << (job.finalized ? "true" : "false") << "}";
    }
    os << (jobs_.empty() ? "" : "\n  ") << "],\n";
    os << "  \"workers\": [";
    size_t emitted = 0;
    for (const auto& [name, worker] : workers_) {
        size_t claimed = 0;
        for (const Job& job : jobs_) {
            for (const Chunk& chunk : job.chunks) {
                if (chunk.state == Chunk::State::Claimed &&
                    chunk.worker == name) {
                    claimed++;
                }
            }
        }
        os << (emitted++ == 0 ? "\n" : ",\n");
        os << "    {\"worker\": " << json_escape(name)
           << ", \"heartbeat_age_ms\": "
           << (now_ms - worker.last_heartbeat_ms) << ", \"alive\": "
           << (worker.expired ? "false" : "true")
           << ", \"claimed_chunks\": " << claimed
           << ", \"completed_chunks\": " << worker.completed_chunks << "}";
    }
    os << (emitted == 0 ? "" : "\n  ") << "]\n";
    os << "}\n";
    return os.str();
}

JobBoard::Job& JobBoard::job_at(size_t job) {
    SLPWLO_CHECK(job < jobs_.size(), "farm: no such job " +
                                         std::to_string(job) + " (" +
                                         std::to_string(jobs_.size()) +
                                         " submitted)");
    return jobs_[job];
}

const JobBoard::Job& JobBoard::job_at(size_t job) const {
    return const_cast<JobBoard*>(this)->job_at(job);
}

void JobBoard::finalize_if_complete(Job& job, long long now_ms) {
    if (job.finalized || !job.rows.complete()) return;
    job.finalized = true;
    job.finalized_ms = now_ms;
}

}  // namespace slpwlo::farm
