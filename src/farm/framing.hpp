// FarmService wire framing: length-prefixed message frames over a byte
// stream.
//
// Every farm exchange — worker registration, lease acquire/complete,
// heartbeats, status polls — is one request frame answered by one
// response frame. A frame is an ASCII header line followed by an exact
// byte count of payload:
//
//   slpwlo-farm/1 <payload-bytes>\n
//   <payload...>
//
// The header carries the protocol version explicitly so a client and
// server from different builds fail loudly at the first frame instead of
// corrupting each other's state. The payload is itself line-oriented: a
// `verb = <name>` line, further `key = value` fields, a blank line, then
// a raw body (manifest text, a rows file, a JSON report) whose bytes are
// never inspected by the framing layer:
//
//   verb = complete
//   job = 0
//   lease = 17
//   worker = w1
//
//   # slpwlo shard results
//   ...
//
// Defensive rules (exercised by tests/test_farm.cpp):
//   * a header that is not `slpwlo-farm/<ver> <len>\n` is garbage — the
//     connection is poisoned and must close;
//   * a known tag with an unknown version is a *version mismatch*, named
//     as such so operators see "upgrade the worker" instead of "garbage";
//   * a length above kMaxFrameBytes is rejected before any allocation —
//     a hostile or corrupt prefix cannot OOM the daemon;
//   * EOF mid-frame is a truncation error, distinct from EOF at a frame
//     boundary (clean close). Frames are atomic: a receiver acts on a
//     message only once every payload byte has arrived, so a worker
//     killed mid-`complete` delivers nothing rather than half a result.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace slpwlo::farm {

/// Protocol tag sent on every frame; bump the version on any change an
/// old peer cannot ignore.
inline constexpr const char* kProtocolTag = "slpwlo-farm/1";
inline constexpr int kProtocolVersion = 1;

/// Hard cap on one frame's payload. Large enough for a whole-grid
/// manifest plus splice rows, small enough that a corrupt length prefix
/// cannot balloon the daemon.
inline constexpr size_t kMaxFrameBytes = 64ull << 20;  // 64 MiB

/// One request or response: a verb, sorted `key = value` fields, and an
/// opaque body. Field keys/values must survive the kv line format (no
/// newlines, no `#`, no outer whitespace) — encode_message enforces it.
struct Message {
    std::string verb;
    std::map<std::string, std::string> fields;
    std::string body;

    /// Field accessors: `field` returns "" when absent, `require_field`
    /// throws Error naming the verb and key.
    const std::string& field(const std::string& key) const;
    const std::string& require_field(const std::string& key) const;
    long long require_ll(const std::string& key) const;
};

/// Serialize the payload (verb line, fields, blank line, body).
std::string encode_message(const Message& message);

/// Parse a payload produced by encode_message; throws Error on a missing
/// or misplaced verb line.
Message decode_message(const std::string& payload);

/// Header + payload, ready to write to a socket.
std::string encode_frame(const Message& message);

/// Try to take one complete frame off the front of `buffer` (erasing its
/// bytes). Returns nullopt when more bytes are needed — the caller keeps
/// reading. Throws Error on a malformed header, a protocol-version
/// mismatch, or an oversized length prefix; the connection is then
/// unusable and must close.
std::optional<Message> take_frame(std::string& buffer);

// --- blocking fd helpers (client side) -----------------------------------------

/// Write one frame to `fd`, looping over short writes; throws Error when
/// the peer is gone. Uses MSG_NOSIGNAL — a dead peer is an Error, never
/// a SIGPIPE.
void write_frame(int fd, const Message& message);

/// Read one frame from `fd`, blocking. Returns nullopt on EOF at a frame
/// boundary (clean close); throws Error on EOF mid-frame (truncation),
/// read failure, or any take_frame error.
std::optional<Message> read_frame(int fd);

}  // namespace slpwlo::farm
