// FarmService client side: the daemon's WorkSource contract over a
// socket.
//
// Three layers, each reusable on its own:
//
//   FarmClient        one connection, synchronous request/response RPC
//                     (write a frame, read the answer, `error` responses
//                     become thrown slpwlo::Error);
//   Heartbeater       a second connection on a background thread sending
//                     `heartbeat` every period_ms. A separate connection
//                     because the worker's RPC socket is silent for the
//                     whole duration of a running chunk (SweepService
//                     blocks in the flow) — exactly when liveness must
//                     keep flowing;
//   SocketWorkSource  one job's slice of the daemon as a WorkSource:
//                     acquire() is the `acquire` verb (polling while the
//                     daemon says wait — claimed chunks elsewhere may
//                     expire back), complete() packages rows with the
//                     same dist::make_shard_row the lease path uses and
//                     ships them as one atomic `complete` frame.
//
// run_worker() is the whole worker loop the CLI's `work --connect` verb
// wraps: register, then per job — fetch the manifest, build a
// SweepService whose flow defaults are *that job's* manifest defaults,
// drain a SocketWorkSource — until the daemon reports drained. Because
// the loop reuses SweepService/SweepDriver unchanged, farm results
// inherit the slot-determinism guarantee: report bytes are identical to
// the 1-process sweep no matter how chunks landed on workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "dist/shard_manifest.hpp"
#include "farm/framing.hpp"
#include "flow/work_source.hpp"

namespace slpwlo::farm {

/// One synchronous connection to a farm daemon. Not thread-safe: one
/// thread, one client (the Heartbeater brings its own).
class FarmClient {
public:
    /// Resolve and connect; throws Error when the daemon is unreachable.
    FarmClient(const std::string& host, int port);
    ~FarmClient();

    FarmClient(const FarmClient&) = delete;
    FarmClient& operator=(const FarmClient&) = delete;

    /// Send `request`, wait for the response. Throws Error when the
    /// connection drops or the daemon answers `verb = error` (carrying
    /// the daemon's message).
    Message call(const Message& request);

private:
    int fd_ = -1;
};

/// Parse "host:port" (or ":port" / "port" for localhost).
void parse_endpoint(const std::string& endpoint, std::string& host,
                    int& port);

/// Background liveness: `heartbeat` frames for `worker` every
/// `period_ms` on a dedicated connection. Starts on construction, stops
/// (promptly) on destruction. A lost connection ends the thread quietly
/// — the daemon will expire the worker, which is the correct outcome.
class Heartbeater {
public:
    Heartbeater(std::string host, int port, std::string worker,
                long long period_ms);
    ~Heartbeater();

    Heartbeater(const Heartbeater&) = delete;
    Heartbeater& operator=(const Heartbeater&) = delete;

private:
    std::atomic<bool> stop_{false};
    std::mutex mutex_;
    std::condition_variable wake_;
    std::thread thread_;
};

/// One farm job as a WorkSource. The manifest (fetched via the
/// `manifest` verb, parsed by the caller) must be the daemon's whole
/// grid and outlive the source; lease slots index straight into
/// manifest.points.
class SocketWorkSource final : public WorkSource {
public:
    /// `poll_ms` is the retry sleep while the daemon says wait;
    /// `straggle_ms` delays each complete() just before its frame is
    /// sent — a test hook widening the window in which killing the
    /// worker leaves a claimed chunk behind (CI's SIGKILL run).
    SocketWorkSource(FarmClient& client, std::string worker, size_t job,
                     const dist::ShardManifest& manifest,
                     long long poll_ms = 200, long long straggle_ms = 0);

    size_t total_slots() const override;
    Lease acquire(size_t max_slots) override;
    void complete(const Lease& lease, std::vector<WorkRow> rows) override;
    void abandon(const Lease& lease) override;

private:
    FarmClient& client_;
    std::string worker_;
    size_t job_;
    const dist::ShardManifest& manifest_;
    long long poll_ms_;
    long long straggle_ms_;
};

/// Options for one farm worker process.
struct FarmWorkerOptions {
    std::string worker;           ///< worker id (must be unique per farm)
    long long heartbeat_ms = 1000;
    long long poll_ms = 200;
    size_t max_slots = 0;         ///< acquire hint (chunks never split)
    ExecOptions exec;             ///< flow_options overridden per job
    long long straggle_ms = 0;    ///< test hook, see SocketWorkSource
    /// Worker-local execution knobs, re-applied on top of every job's
    /// manifest defaults (each job replaces flow_options wholesale).
    /// evaluator/measure never change row bytes; optimizer does — a farm
    /// must agree on it or the streaming merge rejects the rows.
    std::optional<SimBackend> evaluator;
    bool measure = false;
    std::optional<Optimizer> optimizer;
};

/// The complete worker loop: register, drain every job the daemon hands
/// out (a fresh SweepService per job, flow defaults from that job's
/// manifest), return the number of points this worker executed once the
/// daemon reports drained.
size_t run_farm_worker(const std::string& host, int port,
                       const FarmWorkerOptions& options);

}  // namespace slpwlo::farm
