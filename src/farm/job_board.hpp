// FarmService job state: every decision the daemon makes, with the
// socket layer peeled off.
//
// The JobBoard owns the farm's entire job lifecycle — submitted
// manifests chopped into demand-paged chunks, worker claims, heartbeat
// liveness, expiry re-issue, and the per-job streaming merge — as a
// plain in-memory state machine. Time is an explicit `now_ms` parameter
// on every mutating call, never a clock read: the socket server passes
// its steady clock, tests pass literal milliseconds, so the whole
// expiry/re-issue state machine is unit-testable at ttl 0 without a
// single sleep.
//
// The design transplants the elastic lease directory's semantics
// (dist/lease_coordinator.hpp) from the filesystem to memory:
//
//   * a job is a whole-grid manifest (slots 0..n-1), cut into
//     cost-balanced chunks by the shared dist::chunk_grid_slots cutter —
//     the same function the lease directory uses, so both layers chop
//     identical chunks from identical inputs;
//   * workers claim chunks (each claim issues a fresh lease id), renew
//     liveness by heartbeat, and a worker whose heartbeat goes stale for
//     ttl_ms has every claimed chunk silently re-issued;
//   * a straggler that completes after its chunk was re-issued is not an
//     error: its rows merge under DuplicatePolicy::AllowIdentical —
//     byte-identical duplicates deduplicate, anything else is a
//     conflict;
//   * completed rows stream into a per-job dist::RowAccumulator the
//     moment they arrive, and the job finalizes — report bytes ready —
//     the instant the last slot lands. No offline merge step exists;
//     byte-identity to the 1-process sweep is RowAccumulator's
//     construction guarantee.
//
// Incremental re-sweeps ride the same path: a submit may carry rows from
// a previous run, and every slot whose point fingerprint matches an old
// row is spliced into the accumulator up front (dist::splice_rows) —
// only the changed slots are chunked and served.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dist/shard_manifest.hpp"
#include "dist/shard_merger.hpp"
#include "dist/shard_plan.hpp"

namespace slpwlo::farm {

class JobBoard {
public:
    /// `ttl_ms` is the heartbeat time-to-live: a worker whose last
    /// heartbeat is `ttl_ms` or more milliseconds old is expired and its
    /// claims re-issued. ttl 0 expires everything on the next tick
    /// (tests); negative throws.
    explicit JobBoard(long long ttl_ms);

    /// Enqueue a manifest (whole grid required: slots must be exactly
    /// 0..n-1) as a new job; returns its id (0, 1, ...). `splice_rows_text`
    /// is an optional previous run's rows file ("" = none): matching
    /// slots are pre-filled (see splice_count). A job whose every slot
    /// splices finalizes immediately with zero chunks.
    size_t submit(const std::string& manifest_text,
                  const dist::ChunkOptions& chunking,
                  const std::string& splice_rows_text, long long now_ms);

    /// Record a worker's liveness (hello, heartbeat, or any claim).
    void heartbeat(const std::string& worker, long long now_ms);

    /// Re-issue every chunk claimed by a worker whose heartbeat went
    /// stale; returns how many chunks went back to the pool. The server
    /// calls this on every tick.
    size_t expire(long long now_ms);

    /// The job a worker should drain next: the first job with claimable
    /// chunks, else the first unfinished job (worth polling — expiry may
    /// free chunks), else nullopt (everything finalized: drain done).
    std::optional<size_t> next_job() const;

    /// True when every submitted job is finalized. An empty board is
    /// trivially drained — workers connecting before the first submit
    /// should poll next_job(), not drained().
    bool drained() const;

    size_t job_count() const { return jobs_.size(); }

    /// The manifest text as submitted — served verbatim so the worker
    /// parses byte-identical input.
    const std::string& manifest_text(size_t job) const;

    struct Acquired {
        uint64_t lease = 0;
        std::vector<size_t> slots;  ///< empty = nothing claimed
        /// With empty slots: true = unfinished chunks are claimed
        /// elsewhere, poll again (they may expire back); false = the job
        /// is finalized, move on.
        bool wait = false;
    };

    /// Claim the next pending chunk of `job` for `worker`, whole: one
    /// chunk per lease, never split — the pre-cut chunk is the natural
    /// granularity WorkSource lets a source round a positive max_slots
    /// up to. Claims count as heartbeats.
    Acquired acquire(const std::string& worker, size_t job, size_t max_slots,
                     long long now_ms);

    /// Fold one completed lease in: `rows_text` is a shard results file
    /// whose rows cover exactly the lease's slots. Atomic — a validation
    /// error rejects the whole frame and no row lands. Stragglers
    /// (leases already re-issued, even already completed by the
    /// replacement) are accepted when byte-identical. Returns true when
    /// this completion finalized the job.
    bool complete(const std::string& worker, size_t job, uint64_t lease,
                  const std::string& rows_text, long long now_ms);

    /// Return a lease's chunk to the pool unfinished (worker shutting
    /// down cleanly). Unknown/stale leases are ignored.
    void abandon(size_t job, uint64_t lease);

    bool job_finalized(size_t job) const;

    /// Slots pre-filled from the splice file at submit time.
    size_t splice_count(size_t job) const;

    /// The finalized job's merged JSON report — byte-identical to the
    /// 1-process sweep_to_json. Throws while slots are missing.
    std::string report(size_t job) const;

    /// The finalized job's whole-grid rows file text (for --rows-out /
    /// future splices).
    std::string rows_text(size_t job) const;

    /// Total chunks re-issued by heartbeat expiry, across all jobs.
    size_t reissues() const { return reissues_; }

    /// Machine-readable daemon state: per-job chunk/slot progress,
    /// per-worker heartbeat ages and claims, global re-issue count. The
    /// `status` verb's response body.
    std::string status_json(long long now_ms) const;

private:
    struct Chunk {
        enum class State { Pending, Claimed, Done };
        std::vector<size_t> slots;
        State state = State::Pending;
        std::string worker;  ///< claimant while Claimed
        uint64_t lease = 0;  ///< current lease id while Claimed
        int issues = 0;      ///< times handed out (>1 = re-issued)
    };

    struct Job {
        std::string text;  ///< manifest as submitted, served verbatim
        dist::ShardManifest manifest;
        std::vector<Chunk> chunks;
        dist::RowAccumulator rows;
        size_t spliced = 0;
        bool finalized = false;
        long long submitted_ms = 0;
        long long finalized_ms = -1;
    };

    struct Worker {
        long long last_heartbeat_ms = 0;
        size_t completed_chunks = 0;
        bool expired = false;  ///< stale at the last expire() sweep
    };

    Job& job_at(size_t job);
    const Job& job_at(size_t job) const;
    void finalize_if_complete(Job& job, long long now_ms);

    long long ttl_ms_;
    std::vector<Job> jobs_;
    std::map<std::string, Worker> workers_;
    /// Every lease ever issued, by id: stragglers completing a re-issued
    /// chunk still resolve to it.
    std::map<uint64_t, std::pair<size_t, size_t>> leases_;  ///< id -> (job, chunk)
    uint64_t next_lease_ = 1;
    size_t reissues_ = 0;
};

}  // namespace slpwlo::farm
