#include "accuracy/gain_analyzer.hpp"

#include <algorithm>

#include "sim/sim_tape.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo {
namespace {

struct Response {
    double sum_sq = 0.0;
    double sum = 0.0;
};

Response response_of(const std::vector<double>& base,
                     const std::vector<double>& perturbed, double delta) {
    SLPWLO_ASSERT(base.size() == perturbed.size(),
                  "perturbed run changed the output trace length");
    Response r;
    for (size_t i = 0; i < base.size(); ++i) {
        const double h = (perturbed[i] - base[i]) / delta;
        r.sum_sq += h * h;
        r.sum += h;
    }
    return r;
}

}  // namespace

KernelGains analyze_gains(const Kernel& kernel, const GainOptions& options) {
    // One compiled tape for the whole calibration: the analyzer issues one
    // perturbed run per injection point, all over the same kernel.
    const SimTape tape(kernel);
    const Stimulus stimulus = make_stimulus(kernel, options.seed);
    const DoubleSimResult base = run_double(tape, stimulus);

    KernelGains gains;
    gains.op_gains.assign(kernel.ops().size(), NodeGains{});
    gains.array_gains.assign(kernel.arrays().size(), NodeGains{});
    gains.n_outputs = static_cast<long long>(base.outputs.size());
    SLPWLO_CHECK(gains.n_outputs > 0,
                 "kernel `" + kernel.name() + "` produces no outputs");

    // --- op sources ----------------------------------------------------------
    for (const BlockId block : kernel.blocks_in_order()) {
        const auto& chain = kernel.enclosing_loops(block);
        const long long per_sample = kernel.block_frequency_per_sample(block);
        // Inject at a mid-stream iteration of the outermost loop so the
        // response window sits in steady state.
        const long long outer_trip =
            chain.empty() ? 1 : kernel.loop(chain[0]).trip_count();
        const long long s0 = outer_trip / 2;
        // The source fires at every instance once per outer iteration; the
        // per-output-sample variance multiplier is the accumulated response
        // energy divided by the number of outputs produced per period
        // (1 for FIR/IIR, the j-trip count for the 2-D CONV).
        const double outputs_per_period =
            static_cast<double>(gains.n_outputs) /
            static_cast<double>(outer_trip);

        for (const OpId op_id : kernel.block(block).ops) {
            NodeGains& slot = gains.op_gains[static_cast<size_t>(op_id.index())];
            for (long long inst = 0; inst < per_sample; ++inst) {
                DoubleSimOptions sim_options;
                DoubleSimOptions::Injection inj;
                inj.op = op_id;
                inj.occurrence = s0 * per_sample + inst;
                inj.delta = options.delta;
                sim_options.injections.push_back(inj);
                const DoubleSimResult run =
                    run_double(tape, stimulus, sim_options);
                const Response r =
                    response_of(base.outputs, run.outputs, options.delta);
                slot.a += r.sum_sq;
                slot.b += r.sum;
            }
            slot.a /= outputs_per_period;
            slot.b /= outputs_per_period;
        }
    }

    // --- array sources ----------------------------------------------------------
    for (size_t a = 0; a < kernel.arrays().size(); ++a) {
        const ArrayDecl& decl = kernel.arrays()[a];
        if (decl.storage != StorageClass::Input &&
            decl.storage != StorageClass::Param) {
            continue;
        }
        const ArrayId id(static_cast<int32_t>(a));
        const int samples = std::min(options.array_samples, decl.size);

        double sum_a = 0.0;
        double sum_b = 0.0;
        for (int s = 0; s < samples; ++s) {
            int element;
            if (decl.storage == StorageClass::Input) {
                // Mid-array cluster: stream arrays are time-shift invariant,
                // so mid elements all see the steady-state response.
                element = decl.size / 2 - samples / 2 + s;
            } else {
                // Coefficients are position-dependent: spread the samples.
                element = (s * decl.size) / samples + decl.size / (2 * samples);
                element = std::min(element, decl.size - 1);
            }
            DoubleSimOptions sim_options;
            sim_options.array_injections.push_back(
                DoubleSimOptions::ArrayInjection{id, element, options.delta});
            const DoubleSimResult run =
                run_double(tape, stimulus, sim_options);
            const Response r =
                response_of(base.outputs, run.outputs, options.delta);
            sum_a += r.sum_sq;
            sum_b += r.sum;
        }

        NodeGains& slot = gains.array_gains[a];
        if (decl.storage == StorageClass::Input) {
            // Time-shift argument: per-output variance multiplier equals the
            // single-element response energy.
            slot.a = sum_a / samples;
            slot.b = sum_b / samples;
        } else {
            // Per-element average energy over the output window, scaled by
            // the element count (every coefficient is quantized once).
            const double n = static_cast<double>(gains.n_outputs);
            slot.a = (sum_a / samples) / n * decl.size;
            slot.b = (sum_b / samples) / n * decl.size;
        }
    }

    return gains;
}

}  // namespace slpwlo
