#include "accuracy/noise_source.hpp"

#include "support/diagnostics.hpp"

namespace slpwlo {

std::vector<NodeRef> compute_var_def_nodes(const Kernel& kernel) {
    std::vector<NodeRef> def_nodes(kernel.vars().size());
    FixedPointSpec probe(kernel);  // reuse node_of resolution
    for (const BlockId block : kernel.blocks_in_order()) {
        for (const OpId op_id : kernel.block(block).ops) {
            const Op& op = kernel.op(op_id);
            if (!op.dest.valid()) continue;
            const NodeRef node = probe.node_of(op_id);
            NodeRef& slot = def_nodes[op.dest.index()];
            SLPWLO_CHECK(!slot.valid() || slot == node,
                         "variable `" + kernel.var(op.dest).name +
                             "` is defined with conflicting format nodes "
                             "(mixing loads and arithmetic definitions)");
            slot = node;
        }
    }
    return def_nodes;
}

std::vector<NoiseSite> enumerate_noise_sites(
    const Kernel& kernel, const std::vector<NodeRef>& def_nodes) {
    std::vector<NoiseSite> sites;
    sites.reserve(kernel.ops().size() + kernel.arrays().size());

    auto def_node = [&](VarId v) {
        const NodeRef node = def_nodes[v.index()];
        SLPWLO_ASSERT(node.valid(), "operand variable never defined: " +
                                        kernel.var(v).name);
        return node;
    };

    auto push = [&](NoiseSite::Kind kind, OpId op, double dc_sign,
                    const char* why, NodeRef d0, NodeRef d1 = {},
                    NodeRef d2 = {}) {
        NoiseSite s;
        s.site_kind = kind;
        s.op = op;
        s.dc_sign = dc_sign;
        s.why = why;
        s.deps[0] = d0;
        s.deps[1] = d1;
        s.deps[2] = d2;
        sites.push_back(s);
    };

    for (const BlockId block : kernel.blocks_in_order()) {
        for (const OpId op_id : kernel.block(block).ops) {
            const Op& op = kernel.op(op_id);
            switch (op.kind) {
                case OpKind::Const:
                    push(NoiseSite::Kind::ConstLiteral, op_id, 1.0,
                         "const literal", NodeRef::of_var(op.dest));
                    break;
                case OpKind::Copy:
                case OpKind::Neg:
                    push(NoiseSite::Kind::Narrowing, op_id, 1.0, "narrowing",
                         NodeRef::of_var(op.dest), def_node(op.args[0]));
                    break;
                case OpKind::Add:
                case OpKind::Sub:
                    push(NoiseSite::Kind::AlignArg0, op_id, 1.0, "align arg0",
                         NodeRef::of_var(op.dest), def_node(op.args[0]));
                    push(NoiseSite::Kind::AlignArg1, op_id,
                         op.kind == OpKind::Sub ? -1.0 : 1.0, "align arg1",
                         NodeRef::of_var(op.dest), def_node(op.args[1]));
                    break;
                case OpKind::Mul:
                    push(NoiseSite::Kind::MulResult, op_id, 1.0, "mul result",
                         NodeRef::of_var(op.dest), def_node(op.args[0]),
                         def_node(op.args[1]));
                    break;
                case OpKind::Div:
                    push(NoiseSite::Kind::DivResult, op_id, 1.0, "div result",
                         NodeRef::of_var(op.dest));
                    break;
                case OpKind::Store:
                    push(NoiseSite::Kind::StoreNarrowing, op_id, 1.0,
                         "store narrowing", NodeRef::of_array(op.array),
                         def_node(op.args[0]));
                    break;
                case OpKind::Load:
                    break;  // representation-preserving
            }
        }
    }

    for (size_t a = 0; a < kernel.arrays().size(); ++a) {
        const ArrayDecl& decl = kernel.arrays()[a];
        const ArrayId id(static_cast<int32_t>(a));
        if (decl.storage != StorageClass::Input &&
            decl.storage != StorageClass::Param) {
            continue;
        }
        NoiseSite s;
        s.site_kind = NoiseSite::Kind::ArrayQuant;
        s.array = id;
        s.why = decl.storage == StorageClass::Input
                    ? "input quantization"
                    : "coefficient quantization";
        s.deps[0] = NodeRef::of_array(id);
        sites.push_back(s);
    }

    return sites;
}

NoiseStats compute_site_stats(const NoiseSite& site, const Kernel& kernel,
                              const FixedPointSpec& spec,
                              const std::vector<NodeRef>& def_nodes) {
    const QuantMode mode = spec.quant_mode();

    auto operand_fwl = [&](VarId v) {
        return spec.format(def_nodes[v.index()]).fwl;
    };

    switch (site.site_kind) {
        case NoiseSite::Kind::ConstLiteral: {
            const Op& op = kernel.op(site.op);
            const FixedFormat fmt = spec.result_format(site.op);
            const double err =
                quantize_value(op.const_value, fmt.fwl, mode) - op.const_value;
            return NoiseStats{err, 0.0};
        }
        case NoiseSite::Kind::Narrowing: {
            const Op& op = kernel.op(site.op);
            const int fr = spec.result_format(site.op).fwl;
            const int fs = operand_fwl(op.args[0]);
            return quantization_stats(fr, fs - fr, mode);
        }
        case NoiseSite::Kind::AlignArg0: {
            const Op& op = kernel.op(site.op);
            const int fr = spec.result_format(site.op).fwl;
            const int fa = operand_fwl(op.args[0]);
            return quantization_stats(fr, fa - fr, mode);
        }
        case NoiseSite::Kind::AlignArg1: {
            const Op& op = kernel.op(site.op);
            const int fr = spec.result_format(site.op).fwl;
            const int fb = operand_fwl(op.args[1]);
            return quantization_stats(fr, fb - fr, mode);
        }
        case NoiseSite::Kind::MulResult: {
            const Op& op = kernel.op(site.op);
            const int fr = spec.result_format(site.op).fwl;
            const int fa = operand_fwl(op.args[0]);
            const int fb = operand_fwl(op.args[1]);
            return quantization_stats(fr, fa + fb - fr, mode);
        }
        case NoiseSite::Kind::DivResult: {
            const int fr = spec.result_format(site.op).fwl;
            return continuous_quantization_stats(fr, mode);
        }
        case NoiseSite::Kind::StoreNarrowing: {
            const Op& op = kernel.op(site.op);
            const int fr = spec.array_format(kernel.op(site.op).array).fwl;
            const int fs = operand_fwl(op.args[0]);
            return quantization_stats(fr, fs - fr, mode);
        }
        case NoiseSite::Kind::ArrayQuant:
            return continuous_quantization_stats(
                spec.array_format(site.array).fwl, mode);
    }
    SLPWLO_ASSERT(false, "unreachable site kind");
    return NoiseStats{};
}

std::vector<NoiseSource> enumerate_noise_sources(
    const Kernel& kernel, const FixedPointSpec& spec,
    const std::vector<NodeRef>& def_nodes) {
    const std::vector<NoiseSite> sites =
        enumerate_noise_sites(kernel, def_nodes);
    std::vector<NoiseSource> sources;
    sources.reserve(sites.size());
    for (const NoiseSite& site : sites) {
        const NoiseStats stats =
            compute_site_stats(site, kernel, spec, def_nodes);
        if (!site_active(site, stats)) continue;
        NoiseSource s;
        s.op = site.op;
        s.array = site.array;
        s.stats = stats;
        s.dc_sign = site.dc_sign;
        s.why = site.why;
        sources.push_back(s);
    }
    return sources;
}

}  // namespace slpwlo
