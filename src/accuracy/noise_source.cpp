#include "accuracy/noise_source.hpp"

#include "support/diagnostics.hpp"

namespace slpwlo {

std::vector<NodeRef> compute_var_def_nodes(const Kernel& kernel) {
    std::vector<NodeRef> def_nodes(kernel.vars().size());
    FixedPointSpec probe(kernel);  // reuse node_of resolution
    for (const BlockId block : kernel.blocks_in_order()) {
        for (const OpId op_id : kernel.block(block).ops) {
            const Op& op = kernel.op(op_id);
            if (!op.dest.valid()) continue;
            const NodeRef node = probe.node_of(op_id);
            NodeRef& slot = def_nodes[op.dest.index()];
            SLPWLO_CHECK(!slot.valid() || slot == node,
                         "variable `" + kernel.var(op.dest).name +
                             "` is defined with conflicting format nodes "
                             "(mixing loads and arithmetic definitions)");
            slot = node;
        }
    }
    return def_nodes;
}

std::vector<NoiseSource> enumerate_noise_sources(
    const Kernel& kernel, const FixedPointSpec& spec,
    const std::vector<NodeRef>& def_nodes) {
    std::vector<NoiseSource> sources;
    sources.reserve(kernel.ops().size() + kernel.arrays().size());
    const QuantMode mode = spec.quant_mode();

    auto operand_fwl = [&](VarId v) {
        const NodeRef node = def_nodes[v.index()];
        SLPWLO_ASSERT(node.valid(), "operand variable never defined: " +
                                        kernel.var(v).name);
        return spec.format(node).fwl;
    };

    auto push_op_source = [&](OpId op, const NoiseStats& stats, double dc_sign,
                              const char* why) {
        if (stats.mean == 0.0 && stats.variance == 0.0) return;
        NoiseSource s;
        s.op = op;
        s.stats = stats;
        s.dc_sign = dc_sign;
        s.why = why;
        sources.push_back(s);
    };

    for (const BlockId block : kernel.blocks_in_order()) {
        for (const OpId op_id : kernel.block(block).ops) {
            const Op& op = kernel.op(op_id);
            switch (op.kind) {
                case OpKind::Const: {
                    const FixedFormat fmt = spec.result_format(op_id);
                    const double err =
                        quantize_value(op.const_value, fmt.fwl, mode) -
                        op.const_value;
                    if (err != 0.0) {
                        push_op_source(op_id, NoiseStats{err, 0.0}, 1.0,
                                       "const literal");
                    }
                    break;
                }
                case OpKind::Copy:
                case OpKind::Neg: {
                    // The quantization happens at the op's *output* (after
                    // negation, for Neg), so the DC sign is always +1: the
                    // measured gains already include downstream propagation.
                    const int fr = spec.result_format(op_id).fwl;
                    const int fs = operand_fwl(op.args[0]);
                    push_op_source(op_id, quantization_stats(fr, fs - fr, mode),
                                   1.0, "narrowing");
                    break;
                }
                case OpKind::Add:
                case OpKind::Sub: {
                    const int fr = spec.result_format(op_id).fwl;
                    const int fa = operand_fwl(op.args[0]);
                    const int fb = operand_fwl(op.args[1]);
                    push_op_source(op_id, quantization_stats(fr, fa - fr, mode),
                                   1.0, "align arg0");
                    const double sign = op.kind == OpKind::Sub ? -1.0 : 1.0;
                    push_op_source(op_id, quantization_stats(fr, fb - fr, mode),
                                   sign, "align arg1");
                    break;
                }
                case OpKind::Mul: {
                    const int fr = spec.result_format(op_id).fwl;
                    const int fa = operand_fwl(op.args[0]);
                    const int fb = operand_fwl(op.args[1]);
                    push_op_source(op_id,
                                   quantization_stats(fr, fa + fb - fr, mode),
                                   1.0, "mul result");
                    break;
                }
                case OpKind::Div: {
                    const int fr = spec.result_format(op_id).fwl;
                    push_op_source(op_id, continuous_quantization_stats(fr, mode),
                                   1.0, "div result");
                    break;
                }
                case OpKind::Store: {
                    const int fr = spec.array_format(op.array).fwl;
                    const int fs = operand_fwl(op.args[0]);
                    push_op_source(op_id, quantization_stats(fr, fs - fr, mode),
                                   1.0, "store narrowing");
                    break;
                }
                case OpKind::Load:
                    break;  // representation-preserving
            }
        }
    }

    for (size_t a = 0; a < kernel.arrays().size(); ++a) {
        const ArrayDecl& decl = kernel.arrays()[a];
        const ArrayId id(static_cast<int32_t>(a));
        if (decl.storage == StorageClass::Input) {
            NoiseSource s;
            s.array = id;
            s.stats = continuous_quantization_stats(
                spec.array_format(id).fwl, mode);
            s.why = "input quantization";
            sources.push_back(s);
        } else if (decl.storage == StorageClass::Param) {
            NoiseSource s;
            s.array = id;
            s.stats = continuous_quantization_stats(
                spec.array_format(id).fwl, mode);
            s.why = "coefficient quantization";
            sources.push_back(s);
        }
    }

    return sources;
}

}  // namespace slpwlo
