// Quantization noise-source enumeration.
//
// Given a fixed-point specification, list every point where the generated
// fixed-point code discards information, with the statistical error model of
// each (fixpoint/quantize.hpp):
//
//  * add/sub operand alignment: an operand whose FWL exceeds the result FWL
//    is right-shifted (bits dropped) before the operation — these are the
//    scaling operations of Section III.C;
//  * mul/div result quantization down from full product precision;
//  * copy/store narrowing;
//  * const literals (exact deterministic error);
//  * input quantization (continuous-amplitude -> input format);
//  * coefficient quantization of Param arrays (modelled as per-element
//    noise through the same sensitivity gains — see DESIGN.md).
//
// The analytical evaluator pairs each source with its precomputed output
// gain; the enumeration is also exposed for tests and reports.
#pragma once

#include <vector>

#include "fixpoint/spec.hpp"

namespace slpwlo {

struct NoiseSource {
    /// Op-attached source (alignment/result/store quantization).
    OpId op;
    /// Array-attached source (input/coefficient quantization).
    ArrayId array;
    /// Error statistics of this source.
    NoiseStats stats;
    /// Sign applied to the DC gain: -1 for the subtrahend operand of Sub
    /// (its alignment error enters the output negated).
    double dc_sign = 1.0;
    /// Human-readable origin, e.g. "mul result", "align arg0".
    const char* why = "";
};

/// The node that defines the format of each variable's value: the array node
/// for load-defined variables, the variable's own node otherwise.
/// Indexed by VarId; invalid NodeRef for never-defined variables.
std::vector<NodeRef> compute_var_def_nodes(const Kernel& kernel);

/// Enumerate all noise sources implied by `spec`.
/// `def_nodes` must come from compute_var_def_nodes(kernel).
std::vector<NoiseSource> enumerate_noise_sources(
    const Kernel& kernel, const FixedPointSpec& spec,
    const std::vector<NodeRef>& def_nodes);

}  // namespace slpwlo
