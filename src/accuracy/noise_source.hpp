// Quantization noise-source enumeration.
//
// Given a fixed-point specification, list every point where the generated
// fixed-point code discards information, with the statistical error model of
// each (fixpoint/quantize.hpp):
//
//  * add/sub operand alignment: an operand whose FWL exceeds the result FWL
//    is right-shifted (bits dropped) before the operation — these are the
//    scaling operations of Section III.C;
//  * mul/div result quantization down from full product precision;
//  * copy/store narrowing;
//  * const literals (exact deterministic error);
//  * input quantization (continuous-amplitude -> input format);
//  * coefficient quantization of Param arrays (modelled as per-element
//    noise through the same sensitivity gains — see DESIGN.md).
//
// The analytical evaluator pairs each source with its precomputed output
// gain; the enumeration is also exposed for tests and reports.
#pragma once

#include <vector>

#include "fixpoint/spec.hpp"

namespace slpwlo {

struct NoiseSource {
    /// Op-attached source (alignment/result/store quantization).
    OpId op;
    /// Array-attached source (input/coefficient quantization).
    ArrayId array;
    /// Error statistics of this source.
    NoiseStats stats;
    /// Sign applied to the DC gain: -1 for the subtrahend operand of Sub
    /// (its alignment error enters the output negated).
    double dc_sign = 1.0;
    /// Human-readable origin, e.g. "mul result", "align arg0".
    const char* why = "";
};

/// The node that defines the format of each variable's value: the array node
/// for load-defined variables, the variable's own node otherwise.
/// Indexed by VarId; invalid NodeRef for never-defined variables.
std::vector<NodeRef> compute_var_def_nodes(const Kernel& kernel);

/// A noise *site*: the structural identity of a potential noise source,
/// independent of any spec. Sites are enumerated once per kernel in the
/// exact order enumerate_noise_sources() emits sources; per-site statistics
/// are recomputed from a spec on demand (compute_site_stats). Incremental
/// evaluators cache one contribution per site and refresh only the sites
/// whose `deps` nodes changed.
struct NoiseSite {
    enum class Kind : uint8_t {
        ConstLiteral,
        Narrowing,       ///< Copy/Neg output quantization
        AlignArg0,       ///< Add/Sub first-operand alignment
        AlignArg1,       ///< Add/Sub second-operand alignment
        MulResult,
        DivResult,
        StoreNarrowing,
        ArrayQuant,      ///< Input/Param continuous quantization
    };
    Kind site_kind = Kind::ConstLiteral;
    /// Op-attached site (everything but ArrayQuant).
    OpId op;
    /// Array-attached site (ArrayQuant only).
    ArrayId array;
    /// Sign applied to the DC gain (-1 for the Sub subtrahend alignment).
    double dc_sign = 1.0;
    const char* why = "";
    /// Nodes whose format affects this site's statistics; invalid entries
    /// unused (at most 3: result + two operand definitions for Mul).
    NodeRef deps[3];
};

/// Enumerate the kernel's noise sites, in source-enumeration order.
/// `def_nodes` must come from compute_var_def_nodes(kernel).
std::vector<NoiseSite> enumerate_noise_sites(
    const Kernel& kernel, const std::vector<NodeRef>& def_nodes);

/// Error statistics of one site under `spec` — bit-identical to what
/// enumerate_noise_sources computes for the corresponding source.
NoiseStats compute_site_stats(const NoiseSite& site, const Kernel& kernel,
                              const FixedPointSpec& spec,
                              const std::vector<NodeRef>& def_nodes);

/// Whether a site contributes to the noise sum. Op sites with exactly-zero
/// statistics are skipped (matching the enumeration's filter); array sites
/// always contribute (the enumeration emits them unconditionally).
inline bool site_active(const NoiseSite& site, const NoiseStats& stats) {
    if (site.site_kind == NoiseSite::Kind::ArrayQuant) return true;
    return stats.mean != 0.0 || stats.variance != 0.0;
}

/// Enumerate all noise sources implied by `spec`.
/// `def_nodes` must come from compute_var_def_nodes(kernel).
std::vector<NoiseSource> enumerate_noise_sources(
    const Kernel& kernel, const FixedPointSpec& spec,
    const std::vector<NodeRef>& def_nodes);

}  // namespace slpwlo
