#include "accuracy/sim_evaluator.hpp"

#include "sim/fixed_sim.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo {

SimulationEvaluator::SimulationEvaluator(const Kernel& kernel, int runs,
                                         uint64_t seed)
    : kernel_(&kernel), runs_(runs), seed_(seed) {
    SLPWLO_CHECK(runs >= 1, "SimulationEvaluator requires at least one run");
}

double SimulationEvaluator::noise_power(const FixedPointSpec& spec) const {
    SLPWLO_ASSERT(&spec.kernel() == kernel_,
                  "spec belongs to a different kernel");
    double total = 0.0;
    for (int run = 0; run < runs_; ++run) {
        const Stimulus stimulus =
            make_stimulus(*kernel_, seed_ + static_cast<uint64_t>(run));
        total += measure_noise_power(*kernel_, spec, stimulus);
    }
    return total / runs_;
}

}  // namespace slpwlo
