#include "accuracy/sim_evaluator.hpp"

#include "support/diagnostics.hpp"

namespace slpwlo {

SimulationEvaluator::SimulationEvaluator(const Kernel& kernel, int runs,
                                         uint64_t seed)
    : kernel_(&kernel), tape_(kernel), runs_(runs) {
    SLPWLO_CHECK(runs >= 1, "SimulationEvaluator requires at least one run");
    stimuli_.reserve(static_cast<size_t>(runs));
    ref_outputs_.reserve(static_cast<size_t>(runs));
    for (int run = 0; run < runs; ++run) {
        stimuli_.push_back(
            make_stimulus(kernel, seed + static_cast<uint64_t>(run)));
        ref_outputs_.push_back(run_double(tape_, stimuli_.back()).outputs);
    }
}

double SimulationEvaluator::noise_power(const FixedPointSpec& spec) const {
    SLPWLO_ASSERT(&spec.kernel() == kernel_,
                  "spec belongs to a different kernel");
    double total = 0.0;
    for (int run = 0; run < runs_; ++run) {
        total += measure_noise_power(tape_, spec,
                                     stimuli_[static_cast<size_t>(run)],
                                     ref_outputs_[static_cast<size_t>(run)]);
    }
    return total / runs_;
}

WalkerEvaluator::WalkerEvaluator(const Kernel& kernel, int runs,
                                 uint64_t seed)
    : kernel_(&kernel), runs_(runs) {
    SLPWLO_CHECK(runs >= 1, "WalkerEvaluator requires at least one run");
    const SimTape tape(kernel);
    stimuli_.reserve(static_cast<size_t>(runs));
    ref_outputs_.reserve(static_cast<size_t>(runs));
    for (int run = 0; run < runs; ++run) {
        stimuli_.push_back(
            make_stimulus(kernel, seed + static_cast<uint64_t>(run)));
        ref_outputs_.push_back(run_double(tape, stimuli_.back()).outputs);
    }
}

double WalkerEvaluator::noise_power(const FixedPointSpec& spec) const {
    SLPWLO_ASSERT(&spec.kernel() == kernel_,
                  "spec belongs to a different kernel");
    double total = 0.0;
    for (int run = 0; run < runs_; ++run) {
        const FixedSimResult fix = run_fixed_walker(
            *kernel_, spec, stimuli_[static_cast<size_t>(run)]);
        const std::vector<double>& ref =
            ref_outputs_[static_cast<size_t>(run)];
        SLPWLO_ASSERT(ref.size() == fix.outputs.size(),
                      "reference and fixed-point traces differ in length");
        double sum = 0.0;
        for (size_t i = 0; i < ref.size(); ++i) {
            const double e = fix.outputs[i] - ref[i];
            sum += e * e;
        }
        total += ref.empty() ? 0.0 : sum / static_cast<double>(ref.size());
    }
    return total / runs_;
}

}  // namespace slpwlo
