// Simulation-based accuracy evaluator.
//
// Measures the output noise power by running the bit-accurate fixed-point
// simulator against the double-precision reference under random stimulus
// (the paper's [9]-style alternative). Orders of magnitude slower than the
// analytical evaluator; used for cross-validation and final verification
// that an optimized spec really meets its constraint.
//
// The stimuli and the spec-independent double reference traces are
// generated once at construction on a compiled SimTape, so noise_power()
// costs one fixed-point tape replay per run instead of stimulus generation
// plus reference + fixed tree-walks.
#pragma once

#include "accuracy/evaluator.hpp"
#include "ir/kernel.hpp"
#include "sim/sim_tape.hpp"

namespace slpwlo {

class SimulationEvaluator final : public AccuracyEvaluator {
public:
    explicit SimulationEvaluator(const Kernel& kernel, int runs = 2,
                                 uint64_t seed = 0x5E1F);

    double noise_power(const FixedPointSpec& spec) const override;

private:
    const Kernel* kernel_;
    SimTape tape_;
    /// Per run: the stimulus and its cached double reference output trace.
    std::vector<Stimulus> stimuli_;
    std::vector<std::vector<double>> ref_outputs_;
    int runs_;
};

/// The tree-walker variant of SimulationEvaluator: same stimuli, same
/// double references (tape-replayed — the traces are bit-identical), but
/// each noise_power() runs the recursive walker. Exists as the
/// differential reference of the `--evaluator` axis; its results are
/// bit-identical to SimulationEvaluator by the tape/walker contract.
class WalkerEvaluator final : public AccuracyEvaluator {
public:
    explicit WalkerEvaluator(const Kernel& kernel, int runs = 2,
                             uint64_t seed = 0x5E1F);

    double noise_power(const FixedPointSpec& spec) const override;

private:
    const Kernel* kernel_;
    std::vector<Stimulus> stimuli_;
    std::vector<std::vector<double>> ref_outputs_;
    int runs_;
};

}  // namespace slpwlo
