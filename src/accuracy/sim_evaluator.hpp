// Simulation-based accuracy evaluator.
//
// Measures the output noise power by running the bit-accurate fixed-point
// simulator against the double-precision reference under random stimulus
// (the paper's [9]-style alternative). Orders of magnitude slower than the
// analytical evaluator; used for cross-validation and final verification
// that an optimized spec really meets its constraint.
#pragma once

#include "accuracy/evaluator.hpp"
#include "ir/kernel.hpp"

namespace slpwlo {

class SimulationEvaluator final : public AccuracyEvaluator {
public:
    explicit SimulationEvaluator(const Kernel& kernel, int runs = 2,
                                 uint64_t seed = 0x5E1F);

    double noise_power(const FixedPointSpec& spec) const override;

private:
    const Kernel* kernel_;
    int runs_;
    uint64_t seed_;
};

}  // namespace slpwlo
