// Analytical accuracy evaluator (the paper's [11]-style noise model).
//
// Construction calibrates the kernel's noise gains once (seconds at most)
// and enumerates the kernel's noise *sites* (accuracy/noise_source.hpp);
// each noise_power() call is then O(#static ops), making it cheap enough
// for the candidate/conflict enumeration loops of Fig. 1c and the Tabu
// search of the WLO-First baseline.
//
// open_session() returns an incremental session that caches one (variance,
// mean) contribution per site and tracks the spec's change journal: after a
// single-node move only that node's dependent sites are recomputed, and the
// total is re-summed over the cached contributions in site order — the same
// terms in the same order as the full evaluation, so the returned double is
// bit-identical. An O(n)-op kernel's Tabu iteration drops from O(n^2) noise
// work to O(n).
#pragma once

#include <cstdint>
#include <memory>

#include "accuracy/evaluator.hpp"
#include "accuracy/gain_analyzer.hpp"
#include "accuracy/noise_source.hpp"

namespace slpwlo {

class AnalyticEvaluator final : public AccuracyEvaluator {
public:
    explicit AnalyticEvaluator(const Kernel& kernel,
                               const GainOptions& options = {});

    /// Construct from pre-computed gains (shared across evaluators).
    AnalyticEvaluator(const Kernel& kernel, KernelGains gains);

    double noise_power(const FixedPointSpec& spec) const override;

    /// Incremental journal-tracking session (see class comment).
    std::unique_ptr<EvalSession> open_session(
        FixedPointSpec& spec) const override;

    const KernelGains& gains() const { return gains_; }

    /// The kernel's noise sites, in summation order.
    const std::vector<NoiseSite>& sites() const { return sites_; }

    /// Indices into sites() of every site whose statistics depend on
    /// `node`'s format.
    const std::vector<uint32_t>& sites_of(NodeRef node) const;

private:
    friend class AnalyticEvalSession;

    const Kernel* kernel_;
    KernelGains gains_;
    std::vector<NodeRef> def_nodes_;
    std::vector<NoiseSite> sites_;
    /// Per-node dependent-site lists: vars first, then arrays.
    std::vector<std::vector<uint32_t>> node_sites_;
};

}  // namespace slpwlo
