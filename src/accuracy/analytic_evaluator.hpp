// Analytical accuracy evaluator (the paper's [11]-style noise model).
//
// Construction calibrates the kernel's noise gains once (seconds at most);
// each noise_power() call is then O(#static ops), making it cheap enough
// for the candidate/conflict enumeration loops of Fig. 1c and the Tabu
// search of the WLO-First baseline.
#pragma once

#include <memory>

#include "accuracy/evaluator.hpp"
#include "accuracy/gain_analyzer.hpp"
#include "accuracy/noise_source.hpp"

namespace slpwlo {

class AnalyticEvaluator final : public AccuracyEvaluator {
public:
    explicit AnalyticEvaluator(const Kernel& kernel,
                               const GainOptions& options = {});

    /// Construct from pre-computed gains (shared across evaluators).
    AnalyticEvaluator(const Kernel& kernel, KernelGains gains);

    double noise_power(const FixedPointSpec& spec) const override;

    const KernelGains& gains() const { return gains_; }

private:
    const Kernel* kernel_;
    KernelGains gains_;
    std::vector<NodeRef> def_nodes_;
};

}  // namespace slpwlo
