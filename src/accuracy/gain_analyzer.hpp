// Noise-gain calibration by linearized perturbation analysis.
//
// For every noise-injection point we need two structural constants that do
// not depend on the fixed-point specification:
//
//   A = sum over injection events within one steady-state period of
//       sum_n h(n)^2   -- multiplies the source variance,
//   B = sum of h(n)    -- multiplies the source mean (DC accumulation),
//
// where h(n) is the output response to a unit perturbation at that point.
// They are measured by finite differences on the double-precision simulator
// (exact for the linear/LTI kernels this paper evaluates: every multiply is
// signal x coefficient). With them, the analytical noise power of a spec is
//
//   P = sum_s var_s * A_s + ( sum_s mean_s * B_s )^2
//
// evaluated in O(#static ops) — fast enough for the tens of thousands of
// EVALACC calls the joint optimization issues. See DESIGN.md section 4.
//
// Op sources: A/B are accumulated over the op's dynamic instances within one
// iteration of the outermost (sample) loop, injecting at a mid-stream
// iteration. Array sources: input arrays use a mid-element time-shift
// measurement; coefficient arrays sample elements and scale by element count
// (DESIGN.md, "Known deviations" #4).
#pragma once

#include <vector>

#include "ir/kernel.hpp"

namespace slpwlo {

struct NodeGains {
    double a = 0.0;  ///< variance gain
    double b = 0.0;  ///< DC gain
};

struct KernelGains {
    /// Per static op, aggregated over its per-sample dynamic instances.
    std::vector<NodeGains> op_gains;
    /// Per array (meaningful for Input and Param storage).
    std::vector<NodeGains> array_gains;
    /// Output trace length of the calibration run.
    long long n_outputs = 0;
};

struct GainOptions {
    /// Finite-difference step.
    double delta = 1.0 / 1024.0;
    /// Stimulus seed for the nominal run.
    uint64_t seed = 0xCA11B;
    /// Number of sampled elements for array-source calibration.
    int array_samples = 8;
};

KernelGains analyze_gains(const Kernel& kernel, const GainOptions& options = {});

}  // namespace slpwlo
