// The simulation-backend axis of the flow: which engine executes
// simulation-backed noise measurement (measured_noise_db, benches, the
// `--evaluator` sweep axis).
//
// All three backends are bit-identical by contract — the tape replay
// matches the tree walker, and the compiled path matches the tape (see
// DESIGN.md §12) — so the axis trades nothing but speed: Walker is the
// original reference, Tape the interpreted fast path, Compiled the native
// one. Compiled degrades to Tape at runtime when no host compiler is
// usable, which keeps reports byte-identical by construction.
#pragma once

#include <string>

#include "support/diagnostics.hpp"

namespace slpwlo {

enum class SimBackend {
    Tape,      ///< SimTape interpretation (default)
    Walker,    ///< recursive tree walker (differential reference)
    Compiled,  ///< emit + compile + execute (src/exec)
};

inline std::string to_string(SimBackend backend) {
    switch (backend) {
        case SimBackend::Tape: return "tape";
        case SimBackend::Walker: return "walker";
        case SimBackend::Compiled: return "compiled";
    }
    return "tape";
}

inline SimBackend parse_sim_backend(const std::string& text) {
    if (text == "tape") return SimBackend::Tape;
    if (text == "walker") return SimBackend::Walker;
    if (text == "compiled") return SimBackend::Compiled;
    throw Error("unknown evaluator backend `" + text +
                "` (expected tape, walker or compiled)");
}

}  // namespace slpwlo
