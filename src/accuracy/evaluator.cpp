#include "accuracy/evaluator.hpp"

namespace slpwlo {

namespace {

/// Fallback session: every call is a full evaluation of the bound spec.
class FullEvalSession final : public EvalSession {
public:
    FullEvalSession(const AccuracyEvaluator& evaluator, FixedPointSpec& spec)
        : evaluator_(&evaluator), spec_(&spec) {}

    double noise_power() override { return evaluator_->noise_power(*spec_); }

    FixedPointSpec& spec() override { return *spec_; }

private:
    const AccuracyEvaluator* evaluator_;
    FixedPointSpec* spec_;
};

}  // namespace

std::unique_ptr<EvalSession> AccuracyEvaluator::open_session(
    FixedPointSpec& spec) const {
    return std::make_unique<FullEvalSession>(*this, spec);
}

}  // namespace slpwlo
