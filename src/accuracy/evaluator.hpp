// AccuracyEvaluator interface.
//
// The WLO algorithms only ever ask one question of the accuracy machinery:
// "what is the output quantization-noise power of this spec, and does it
// violate the constraint?" (EVALACC in Fig. 1). The paper stresses that its
// WLO is decoupled from any particular accuracy-evaluation method; we mirror
// that with this interface, implemented analytically (AnalyticEvaluator)
// and by bit-accurate simulation (SimulationEvaluator).
#pragma once

#include "fixpoint/spec.hpp"
#include "support/dbmath.hpp"

namespace slpwlo {

class AccuracyEvaluator {
public:
    virtual ~AccuracyEvaluator() = default;

    /// Output noise power (linear) of the given fixed-point specification.
    virtual double noise_power(const FixedPointSpec& spec) const = 0;

    /// Noise power in dB (10 log10 P); -inf for an exact spec.
    double noise_power_db(const FixedPointSpec& spec) const {
        return power_to_db(noise_power(spec));
    }

    /// EVALACC check: true if the spec's noise exceeds the constraint.
    /// The constraint is the maximum tolerable noise power in dB (e.g. -40).
    bool violates(const FixedPointSpec& spec, double constraint_db) const {
        return noise_power_db(spec) > constraint_db;
    }
};

}  // namespace slpwlo
