// AccuracyEvaluator interface.
//
// The WLO algorithms only ever ask one question of the accuracy machinery:
// "what is the output quantization-noise power of this spec, and does it
// violate the constraint?" (EVALACC in Fig. 1). The paper stresses that its
// WLO is decoupled from any particular accuracy-evaluation method; we mirror
// that with this interface, implemented analytically (AnalyticEvaluator)
// and by bit-accurate simulation (SimulationEvaluator).
//
// Hot loops (Tabu moves, SLP candidate filtering, scaling equalization)
// evaluate thousands of single-node variations of one spec. For those,
// open_session() returns an EvalSession bound to the (mutable) spec being
// optimized: sessions may cache per-site noise contributions and track the
// spec's change journal so each re-evaluation only recomputes what a move
// touched. The contract is strict bit-identity: a session's noise_power()
// returns the exact double the evaluator's full noise_power(spec) would
// return for the spec's current state. The default session simply forwards
// to the full evaluation, so simulation-backed evaluators work unchanged.
#pragma once

#include <memory>

#include "fixpoint/spec.hpp"
#include "support/dbmath.hpp"

namespace slpwlo {

/// A per-optimization-run evaluation handle bound to one spec.
///
/// Sessions exist so that a *shared, const* evaluator (KernelContext hands
/// one AnalyticEvaluator to every sweep thread) can still keep mutable
/// incremental state per optimization run. The bound spec may be mutated
/// freely between calls — through set_wl, set_format, or checkpoint/revert —
/// and the session resynchronizes from the spec's change journal.
class EvalSession {
public:
    virtual ~EvalSession() = default;

    /// Output noise power (linear) of the bound spec in its current state.
    /// Bit-identical to the owning evaluator's noise_power(spec).
    virtual double noise_power() = 0;

    /// Bracket a single-node probe: between begin_move(node) and end_move()
    /// the caller may mutate only `node` and must restore it to its
    /// begin-time format before end_move(). Incremental sessions snapshot
    /// the cached terms the node feeds in begin_move() and put them back in
    /// end_move(), so the probe's restore costs a copy instead of a second
    /// refresh pass. At most one probe may be outstanding per session.
    /// The default is a no-op (full-recompute sessions have no cache).
    virtual void begin_move(NodeRef) {}
    virtual void end_move() {}

    /// Noise power of the spec with `node` moved to word length `wl`, the
    /// spec left unchanged on return. The single-move candidate evaluation
    /// of the Tabu loop; incremental sessions make this O(degree(node)).
    double preview_move(NodeRef node, int wl) {
        FixedPointSpec& spec = this->spec();
        begin_move(node);
        const FixedFormat saved = spec.format(node);
        spec.set_wl(node, wl);
        const double power = noise_power();
        spec.set_format(node, saved);
        end_move();
        return power;
    }

    /// Apply a move to the bound spec (the accepted candidate).
    void commit_move(NodeRef node, int wl) { spec().set_wl(node, wl); }

    double noise_power_db() { return power_to_db(noise_power()); }

    bool violates(double constraint_db) {
        return noise_power_db() > constraint_db;
    }

    virtual FixedPointSpec& spec() = 0;
};

class AccuracyEvaluator {
public:
    virtual ~AccuracyEvaluator() = default;

    /// Output noise power (linear) of the given fixed-point specification.
    virtual double noise_power(const FixedPointSpec& spec) const = 0;

    /// Noise power in dB (10 log10 P); -inf for an exact spec.
    double noise_power_db(const FixedPointSpec& spec) const {
        return power_to_db(noise_power(spec));
    }

    /// EVALACC check: true if the spec's noise exceeds the constraint.
    /// The constraint is the maximum tolerable noise power in dB (e.g. -40).
    bool violates(const FixedPointSpec& spec, double constraint_db) const {
        return noise_power_db(spec) > constraint_db;
    }

    /// Open an evaluation session bound to `spec` for a hot optimization
    /// loop. The default implementation re-evaluates from scratch on every
    /// call; evaluators with incremental state override this.
    virtual std::unique_ptr<EvalSession> open_session(
        FixedPointSpec& spec) const;
};

}  // namespace slpwlo
