#include "accuracy/analytic_evaluator.hpp"

#include "support/diagnostics.hpp"

namespace slpwlo {

AnalyticEvaluator::AnalyticEvaluator(const Kernel& kernel,
                                     const GainOptions& options)
    : AnalyticEvaluator(kernel, analyze_gains(kernel, options)) {}

AnalyticEvaluator::AnalyticEvaluator(const Kernel& kernel, KernelGains gains)
    : kernel_(&kernel),
      gains_(std::move(gains)),
      def_nodes_(compute_var_def_nodes(kernel)) {
    SLPWLO_CHECK(gains_.op_gains.size() == kernel.ops().size(),
                 "gains were computed for a different kernel");
}

double AnalyticEvaluator::noise_power(const FixedPointSpec& spec) const {
    SLPWLO_ASSERT(&spec.kernel() == kernel_,
                  "spec belongs to a different kernel");
    double variance = 0.0;
    double mean = 0.0;
    for (const NoiseSource& src :
         enumerate_noise_sources(*kernel_, spec, def_nodes_)) {
        const NodeGains& g =
            src.op.valid()
                ? gains_.op_gains[static_cast<size_t>(src.op.index())]
                : gains_.array_gains[static_cast<size_t>(src.array.index())];
        variance += src.stats.variance * g.a;
        mean += src.stats.mean * g.b * src.dc_sign;
    }
    return variance + mean * mean;
}

}  // namespace slpwlo
