#include "accuracy/analytic_evaluator.hpp"

#include "support/diagnostics.hpp"

namespace slpwlo {

namespace {

size_t node_slot(const Kernel& kernel, NodeRef node) {
    SLPWLO_ASSERT(node.valid(), "invalid node");
    const size_t id = static_cast<size_t>(node.id);
    return node.kind == NodeRef::Kind::Var ? id : kernel.vars().size() + id;
}

}  // namespace

/// Journal-tracking incremental session. Caches each site's gain-weighted
/// contribution terms; noise_power() refreshes the sites dependent on nodes
/// the spec's journal reports as changed, then re-sums the cached terms in
/// site order. The terms and the summation order are exactly those of
/// AnalyticEvaluator::noise_power, so the result is bit-identical.
class AnalyticEvalSession final : public EvalSession {
public:
    AnalyticEvalSession(const AnalyticEvaluator& evaluator,
                        FixedPointSpec& spec)
        : evaluator_(&evaluator), spec_(&spec) {
        contribs_.resize(evaluator_->sites_.size());
        for (size_t i = 0; i < contribs_.size(); ++i) refresh(i);
        cursor_ = spec_->journal_size();
    }

    double noise_power() override {
        sync();
        // Inactive sites hold +0.0 terms, so the sum needs no branch.
        // Adding +0.0 is bitwise neutral here: the accumulators start at
        // +0.0 and round-to-nearest addition never produces -0.0 from a
        // non-negative-zero left operand, so `x + 0.0` is exactly `x` at
        // every step and the result matches the skip-inactive loop of
        // AnalyticEvaluator::noise_power bit for bit.
        double variance = 0.0;
        double mean = 0.0;
        for (const Contrib& c : contribs_) {
            variance += c.v_term;
            mean += c.m_term;
        }
        return variance + mean * mean;
    }

    void begin_move(NodeRef node) override {
        sync();  // snapshot from a cache that is current
        move_sites_ = &evaluator_->sites_of(node);
        saved_contribs_.clear();
        for (const uint32_t i : *move_sites_) {
            saved_contribs_.push_back(contribs_[i]);
        }
    }

    void end_move() override {
        SLPWLO_ASSERT(move_sites_ != nullptr, "end_move without begin_move");
        // The caller restored the node's format; the journal window holds
        // only that node's set/restore entries, so putting the snapshot
        // back and skipping the window re-establishes the cache bit-exactly
        // without recomputing any site.
        for (size_t k = 0; k < move_sites_->size(); ++k) {
            contribs_[(*move_sites_)[k]] = saved_contribs_[k];
        }
        cursor_ = spec_->journal_size();
        move_sites_ = nullptr;
    }

    FixedPointSpec& spec() override { return *spec_; }

private:
    struct Contrib {
        double v_term = 0.0;  ///< stats.variance * gain.a, +0.0 if inactive
        double m_term = 0.0;  ///< stats.mean * gain.b * dc_sign, ditto
    };

    void sync() {
        while (cursor_ < spec_->journal_size()) {
            const NodeRef node = spec_->journal_entry(cursor_++);
            for (const uint32_t i : evaluator_->sites_of(node)) refresh(i);
        }
    }

    void refresh(size_t i) {
        const NoiseSite& site = evaluator_->sites_[i];
        const NoiseStats stats = compute_site_stats(
            site, *evaluator_->kernel_, *spec_, evaluator_->def_nodes_);
        const NodeGains& g =
            site.op.valid()
                ? evaluator_->gains_.op_gains[static_cast<size_t>(
                      site.op.index())]
                : evaluator_->gains_.array_gains[static_cast<size_t>(
                      site.array.index())];
        Contrib& c = contribs_[i];
        if (site_active(site, stats)) {
            c.v_term = stats.variance * g.a;
            c.m_term = stats.mean * g.b * site.dc_sign;
        } else {
            c.v_term = 0.0;
            c.m_term = 0.0;
        }
    }

    const AnalyticEvaluator* evaluator_;
    FixedPointSpec* spec_;
    std::vector<Contrib> contribs_;
    std::vector<Contrib> saved_contribs_;  ///< begin_move() snapshot scratch
    const std::vector<uint32_t>* move_sites_ = nullptr;
    size_t cursor_ = 0;
};

AnalyticEvaluator::AnalyticEvaluator(const Kernel& kernel,
                                     const GainOptions& options)
    : AnalyticEvaluator(kernel, analyze_gains(kernel, options)) {}

AnalyticEvaluator::AnalyticEvaluator(const Kernel& kernel, KernelGains gains)
    : kernel_(&kernel),
      gains_(std::move(gains)),
      def_nodes_(compute_var_def_nodes(kernel)),
      sites_(enumerate_noise_sites(kernel, def_nodes_)) {
    SLPWLO_CHECK(gains_.op_gains.size() == kernel.ops().size(),
                 "gains were computed for a different kernel");
    node_sites_.resize(kernel.vars().size() + kernel.arrays().size());
    for (size_t i = 0; i < sites_.size(); ++i) {
        for (const NodeRef dep : sites_[i].deps) {
            if (!dep.valid()) continue;
            std::vector<uint32_t>& list =
                node_sites_[node_slot(kernel, dep)];
            // A site may name the same node twice (e.g. an accumulator's
            // result and operand); one entry is enough.
            if (!list.empty() && list.back() == i) continue;
            list.push_back(static_cast<uint32_t>(i));
        }
    }
}

const std::vector<uint32_t>& AnalyticEvaluator::sites_of(NodeRef node) const {
    return node_sites_[node_slot(*kernel_, node)];
}

double AnalyticEvaluator::noise_power(const FixedPointSpec& spec) const {
    SLPWLO_ASSERT(&spec.kernel() == kernel_,
                  "spec belongs to a different kernel");
    double variance = 0.0;
    double mean = 0.0;
    for (const NoiseSite& site : sites_) {
        const NoiseStats stats =
            compute_site_stats(site, *kernel_, spec, def_nodes_);
        if (!site_active(site, stats)) continue;
        const NodeGains& g =
            site.op.valid()
                ? gains_.op_gains[static_cast<size_t>(site.op.index())]
                : gains_.array_gains[static_cast<size_t>(site.array.index())];
        variance += stats.variance * g.a;
        mean += stats.mean * g.b * site.dc_sign;
    }
    return variance + mean * mean;
}

std::unique_ptr<EvalSession> AnalyticEvaluator::open_session(
    FixedPointSpec& spec) const {
    SLPWLO_ASSERT(&spec.kernel() == kernel_,
                  "spec belongs to a different kernel");
    return std::make_unique<AnalyticEvalSession>(*this, spec);
}

}  // namespace slpwlo
