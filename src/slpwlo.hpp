// slpwlo — umbrella header for the public API.
//
// Reproduction of "Superword Level Parallelism aware Word Length
// Optimization" (El Moussawi & Derrien, DATE 2017): joint float-to-fixed-
// point word-length optimization and SLP extraction for embedded VLIW
// processors. See README.md for a tour and DESIGN.md for the architecture.
//
// Typical use:
//
//   #include "slpwlo.hpp"
//   using namespace slpwlo;
//
//   auto bench = kernels::make_benchmark_kernel("FIR");
//   KernelContext context(std::move(bench.kernel), bench.range_options);
//   FlowOptions options;
//   options.accuracy_db = -35.0;                      // noise budget
//   FlowResult r = run_wlo_slp_flow(context, targets::xentium(), options);
//   std::cout << summarize(r) << "\n"
//             << emit_simd_c(context.kernel(), r.spec, r.groups).code;
#pragma once

#include "codegen/fixed_c.hpp"
#include "codegen/simd_c.hpp"
#include "core/slp_aware_wlo.hpp"
#include "core/wlo_first.hpp"
#include "flow/flow.hpp"
#include "flow/pass.hpp"
#include "flow/report.hpp"
#include "flow/sweep.hpp"
#include "frontend/kernel_file.hpp"
#include "frontend/kernel_gen.hpp"
#include "frontend/lower_ast.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/unroll.hpp"
#include "ir/verifier.hpp"
#include "kernels/kernel_registry.hpp"
#include "kernels/kernels.hpp"
#include "target/target_desc.hpp"
#include "target/target_model.hpp"
#include "target/target_registry.hpp"
