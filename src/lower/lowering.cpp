#include "lower/lowering.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "ir/dependence.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo {

std::string to_string(LowerMode mode) {
    switch (mode) {
        case LowerMode::FixedScalar: return "fixed-scalar";
        case LowerMode::FixedSimd: return "fixed-simd";
        case LowerMode::Float: return "float";
    }
    return "<invalid-mode>";
}

namespace {

/// Where a kernel value currently lives at machine level.
struct ValueLoc {
    int producer = -1;  ///< machine op index (-1: constant / live-in)
    int group = -1;     ///< owning group if the value sits in a vector lane
    int lane = 0;
};

class BlockLowering {
public:
    BlockLowering(const Kernel& kernel, const FixedPointSpec* spec,
                  const std::vector<SimdGroup>& groups,
                  const TargetModel& target, LowerMode mode, BlockId block)
        : kernel_(kernel),
          spec_(spec),
          groups_(groups),
          target_(target),
          mode_(mode),
          block_(block) {}

    MachineBlock run() {
        index_groups();
        for (const int unit : block_unit_order(kernel_, block_, groups_)) {
            if (unit >= 0) {
                lower_scalar(kernel_.block(block_).ops[static_cast<size_t>(
                    unit)]);
            } else {
                lower_group(-unit - 1);
            }
        }
        add_loop_carried();
        fill_structure();
        return std::move(out_);
    }

private:
    // --- bookkeeping ---------------------------------------------------------

    void index_groups() {
        const auto& ops = kernel_.block(block_).ops;
        for (size_t pos = 0; pos < ops.size(); ++pos) {
            position_[ops[pos]] = static_cast<int>(pos);
        }
        group_emit_pos_.assign(groups_.size(), -1);
        if (mode_ != LowerMode::FixedSimd) return;
        for (size_t g = 0; g < groups_.size(); ++g) {
            for (size_t lane = 0; lane < groups_[g].lanes.size(); ++lane) {
                const OpId op = groups_[g].lanes[lane];
                group_of_[op] = static_cast<int>(g);
                lane_of_[op] = static_cast<int>(lane);
                group_emit_pos_[g] =
                    std::max(group_emit_pos_[g], position_.at(op));
            }
        }
    }

    int group_of(OpId op) const {
        const auto it = group_of_.find(op);
        return it == group_of_.end() ? -1 : it->second;
    }

    int emit(MachOp op) {
        out_.ops.push_back(std::move(op));
        return static_cast<int>(out_.ops.size()) - 1;
    }

    void add_pred(MachOp& op, int pred) {
        if (pred >= 0) op.preds.push_back(pred);
    }

    int result_wl(OpId op) const {
        if (mode_ == LowerMode::Float || spec_ == nullptr) {
            return target_.native_wl;
        }
        return target_.storage_wl_for(spec_->result_format(op).wl());
    }

    int result_fwl(OpId op) const { return spec_->result_format(op).fwl; }

    /// FWL of the value read through `op`'s argument `arg` (the defining
    /// node's format; live-ins default to the variable's own node).
    int operand_fwl(OpId op, int arg) const {
        const OpId def = def_of(op, arg);
        if (def.valid()) return result_fwl(def);
        return spec_->var_format(kernel_.op(op).args[arg]).fwl;
    }

    OpId def_of(OpId op, int arg) const {
        const auto it = defs_.find({op, arg});
        return it == defs_.end() ? OpId() : it->second;
    }

    // --- memory dependences ----------------------------------------------------

    struct MemAccess {
        int mach = 0;
        bool is_store = false;
        std::vector<Affine> indices;
    };

    void mem_deps(MachOp& op, ArrayId array, bool is_store,
                  const std::vector<Affine>& indices) {
        for (const MemAccess& prev : mem_[array]) {
            if (!is_store && !prev.is_store) continue;
            bool alias = false;
            for (const Affine& a : indices) {
                for (const Affine& b : prev.indices) {
                    if (may_alias(a, b)) alias = true;
                }
            }
            if (alias) add_pred(op, prev.mach);
        }
    }

    void record_mem(int mach, ArrayId array, bool is_store,
                    std::vector<Affine> indices) {
        mem_[array].push_back(MemAccess{mach, is_store, std::move(indices)});
    }

    // --- scalar lowering -----------------------------------------------------------

    /// Machine index of the scalar value of variable read by (op, arg),
    /// inserting an Extract when the value lives in a vector lane.
    int scalar_operand(OpId op, int arg) {
        const VarId var = kernel_.op(op).args[arg];
        const auto it = values_.find(var);
        if (it == values_.end()) return -1;  // live-in or constant
        ValueLoc& loc = it->second;
        if (loc.group >= 0) {
            // Extract the lane to a scalar register (cached).
            const auto cached = extracted_.find(var);
            if (cached != extracted_.end()) return cached->second;
            MachOp ex;
            ex.kind = MachKind::Extract;
            ex.wl = target_.native_wl;
            ex.why = "lane-to-scalar";
            add_pred(ex, loc.producer);
            int idx = -1;
            for (int i = 0; i < target_.extract_ops; ++i) {
                idx = emit(ex);
                ex.preds = {idx};
            }
            extracted_[var] = idx;
            return idx;
        }
        return loc.producer;
    }

    /// Emit a scaling shift of `amount` (nonzero) on top of `source`.
    int emit_shift(int source, int amount, int lanes, int wl,
                   const char* why) {
        MachOp sh;
        sh.kind = MachKind::Shift;
        sh.lanes = lanes;
        sh.wl = wl;
        sh.shift_amount = std::abs(amount);
        sh.why = why;
        add_pred(sh, source);
        return emit(sh);
    }

    /// Scalar value of (op, arg) aligned to fwl `target_fwl`.
    int aligned_scalar_operand(OpId op, int arg, int target_fwl, int wl) {
        int idx = scalar_operand(op, arg);
        const int amount = operand_fwl(op, arg) - target_fwl;
        if (amount != 0) {
            idx = emit_shift(idx, amount, 1, wl, "align");
        }
        return idx;
    }

    void lower_scalar(OpId op_id) {
        const Op& op = kernel_.op(op_id);
        switch (op.kind) {
            case OpKind::Const:
                // Immediates are free; the value has no machine producer.
                values_[op.dest] = ValueLoc{};
                main_mach_[op_id] = -1;
                break;
            case OpKind::Copy: {
                MachOp m;
                m.kind = MachKind::Alu;
                m.wl = result_wl(op_id);
                m.why = "copy";
                add_pred(m, scalar_operand(op_id, 0));
                const int idx = emit(m);
                set_scalar_result(op_id, idx);
                break;
            }
            case OpKind::Load: {
                MachOp m;
                m.kind = MachKind::Load;
                m.wl = result_wl(op_id);
                m.array = op.array;
                m.index = op.index;
                mem_deps(m, op.array, false, {op.index});
                const int idx = emit(m);
                record_mem(idx, op.array, false, {op.index});
                set_scalar_result(op_id, idx);
                break;
            }
            case OpKind::Store: {
                int value;
                if (mode_ == LowerMode::Float) {
                    value = scalar_operand(op_id, 0);
                } else {
                    value = aligned_scalar_operand(
                        op_id, 0, spec_->array_format(op.array).fwl,
                        result_wl(op_id));
                }
                MachOp m;
                m.kind = MachKind::Store;
                m.wl = result_wl(op_id);
                m.array = op.array;
                m.index = op.index;
                add_pred(m, value);
                mem_deps(m, op.array, true, {op.index});
                const int idx = emit(m);
                record_mem(idx, op.array, true, {op.index});
                main_mach_[op_id] = idx;
                break;
            }
            case OpKind::Add:
            case OpKind::Sub:
            case OpKind::Neg: {
                if (mode_ == LowerMode::Float) {
                    lower_float_arith(op_id, /*is_mul=*/false);
                    break;
                }
                MachOp m;
                m.kind = MachKind::Alu;
                m.wl = result_wl(op_id);
                const int fr = result_fwl(op_id);
                for (int a = 0; a < op.num_args(); ++a) {
                    add_pred(m, aligned_scalar_operand(op_id, a, fr, m.wl));
                }
                const int idx = emit(m);
                set_scalar_result(op_id, idx);
                break;
            }
            case OpKind::Mul:
            case OpKind::Div: {
                if (mode_ == LowerMode::Float) {
                    lower_float_arith(op_id, /*is_mul=*/true);
                    break;
                }
                MachOp m;
                m.kind = MachKind::Mul;
                m.wl = result_wl(op_id);
                add_pred(m, scalar_operand(op_id, 0));
                add_pred(m, scalar_operand(op_id, 1));
                int idx = emit(m);
                // Product quantization back to the result format.
                const int amount = operand_fwl_sum(op_id) - result_fwl(op_id);
                if (op.kind == OpKind::Mul && amount != 0) {
                    idx = emit_shift(idx, amount, 1, m.wl, "mul-quant");
                }
                set_scalar_result(op_id, idx);
                break;
            }
        }
    }

    int operand_fwl_sum(OpId op_id) const {
        return operand_fwl(op_id, 0) + operand_fwl(op_id, 1);
    }

    void lower_float_arith(OpId op_id, bool is_mul) {
        const Op& op = kernel_.op(op_id);
        MachOp m;
        if (target_.fp.hardware) {
            m.kind = is_mul ? MachKind::Mul : MachKind::FloatOp;
            if (is_mul) m.kind = MachKind::FloatOp;
        } else {
            m.kind = MachKind::SoftFloat;
            m.soft_cycles = op.kind == OpKind::Div ? target_.fp.div_cycles
                            : is_mul               ? target_.fp.mul_cycles
                                                   : target_.fp.add_cycles;
        }
        m.wl = target_.native_wl;
        for (int a = 0; a < op.num_args(); ++a) {
            add_pred(m, scalar_operand(op_id, a));
        }
        set_scalar_result(op_id, emit(m));
    }

    void set_scalar_result(OpId op_id, int mach) {
        const Op& op = kernel_.op(op_id);
        values_[op.dest] = ValueLoc{mach, -1, 0};
        extracted_.erase(op.dest);
        main_mach_[op_id] = mach;
        record_defs(op_id);
    }

    /// Record which op defines each later operand (for fwl queries).
    void record_defs(OpId op_id) {
        const Op& op = kernel_.op(op_id);
        if (op.dest.valid()) last_def_[op.dest] = op_id;
    }

    // --- group lowering -----------------------------------------------------------

    /// Scaling amounts of operand `slot` of each lane, relative to the
    /// lane's result fwl (add/sub alignment). Empty when not applicable.
    std::vector<int> lane_align_amounts(const SimdGroup& group, int slot) {
        std::vector<int> amounts;
        amounts.reserve(group.lanes.size());
        for (const OpId lane : group.lanes) {
            amounts.push_back(operand_fwl(lane, slot) - result_fwl(lane));
        }
        return amounts;
    }

    /// True when operand `slot` of every lane reads the lane's own
    /// destination variable (acc = acc + p): the operand superword is the
    /// group's own result of the previous iteration and lives in a vector
    /// register — no packing, no machine dependence within the iteration.
    bool self_accumulation(const SimdGroup& group, int slot) const {
        for (const OpId lane : group.lanes) {
            const Op& op = kernel_.op(lane);
            if (!op.dest.valid() || op.args[slot] != op.dest) return false;
            if (def_of(lane, slot).valid()) return false;  // defined in-block
        }
        return true;
    }

    /// Produce the operand superword for `slot` of `group`, including the
    /// required scalings. Returns the machine index of the vector.
    int vector_operand(const SimdGroup& group, int slot, int wl,
                       const std::vector<int>& amounts) {
        if (self_accumulation(group, slot)) {
            return -1;  // loop-carried vector register, already in place
        }
        const bool uniform = std::all_of(
            amounts.begin(), amounts.end(),
            [&](int a) { return a == amounts[0]; });

        // Is the operand produced lane-exactly by another lowered group —
        // directly, or in reverse lane order (one vector permute)?
        std::vector<OpId> defs;
        bool have_defs = true;
        for (const OpId lane : group.lanes) {
            const OpId def = def_of(lane, slot);
            if (!def.valid()) {
                have_defs = false;
                break;
            }
            defs.push_back(def);
        }
        int producer_group = -1;
        bool reversed = false;
        if (have_defs) {
            const std::vector<OpId> defs_reversed(defs.rbegin(), defs.rend());
            for (size_t g = 0; g < groups_.size(); ++g) {
                if (groups_[g].lanes == defs) {
                    producer_group = static_cast<int>(g);
                    break;
                }
                if (groups_[g].lanes == defs_reversed) {
                    producer_group = static_cast<int>(g);
                    reversed = true;
                    break;
                }
            }
        }

        const int w = static_cast<int>(group.lanes.size());
        if (producer_group >= 0 &&
            group_vector_.count(producer_group) != 0) {
            int vec = group_vector_.at(producer_group);
            if (reversed) {
                MachOp perm;
                perm.kind = MachKind::Pack;
                perm.lanes = w;
                perm.wl = wl;
                perm.why = "permute";
                add_pred(perm, vec);
                vec = emit(perm);
            }
            // Element-width conversion between producer and consumer
            // vectors (e.g. an 8-bit loaded vector feeding 16-bit lanes).
            int producer_wl = 0;
            for (const OpId def : defs) {
                producer_wl = std::max(producer_wl, result_wl(def));
            }
            if (producer_wl != wl) {
                MachOp cvt;
                cvt.kind = MachKind::Pack;
                cvt.lanes = w;
                cvt.wl = wl;
                cvt.why = "lane-convert";
                add_pred(cvt, vec);
                vec = emit(cvt);
            }
            if (uniform) {
                if (amounts[0] == 0) return vec;  // direct superword reuse
                return emit_shift(vec, amounts[0], w, wl, "align-vshift");
            }
            // Fig. 2 right side: unequal scalings break the reuse chain —
            // unpack, shift each lane, repack.
            std::vector<int> lanes_scalar;
            for (int lane = 0; lane < w; ++lane) {
                MachOp ex;
                ex.kind = MachKind::Extract;
                ex.wl = wl;
                ex.why = "scaling-unpack";
                add_pred(ex, vec);
                int idx = emit(ex);
                if (amounts[static_cast<size_t>(lane)] != 0) {
                    idx = emit_shift(idx, amounts[static_cast<size_t>(lane)],
                                     1, wl, "lane-shift");
                }
                lanes_scalar.push_back(idx);
            }
            return emit_pack(lanes_scalar, wl, "scaling-repack");
        }

        // Assemble from scalars (aligning each lane as needed).
        std::vector<int> lanes_scalar;
        for (size_t lane = 0; lane < group.lanes.size(); ++lane) {
            int idx = scalar_operand(group.lanes[lane], slot);
            const int amount = amounts[lane];
            if (amount != 0) idx = emit_shift(idx, amount, 1, wl, "align");
            lanes_scalar.push_back(idx);
        }
        // Splat of one live-in value still needs one pack op.
        const bool splat =
            !have_defs &&
            std::all_of(group.lanes.begin(), group.lanes.end(),
                        [&](OpId lane) {
                            return kernel_.op(lane).args[slot] ==
                                   kernel_.op(group.lanes.front()).args[slot];
                        }) &&
            std::all_of(amounts.begin(), amounts.end(),
                        [](int a) { return a == 0; });
        if (splat) {
            MachOp pk;
            pk.kind = MachKind::Pack;
            pk.lanes = w;
            pk.wl = wl;
            pk.why = "splat";
            add_pred(pk, lanes_scalar.front());
            return emit(pk);
        }
        return emit_pack(lanes_scalar, wl, "lane-pack");
    }

    /// (w-1) * pack2_ops pack operations assembling scalars into a vector.
    int emit_pack(const std::vector<int>& lanes_scalar, int wl,
                  const char* why) {
        const int w = static_cast<int>(lanes_scalar.size());
        int last = -1;
        for (int step = 0; step < (w - 1) * target_.pack2_ops; ++step) {
            MachOp pk;
            pk.kind = MachKind::Pack;
            pk.lanes = w;
            pk.wl = wl;
            pk.why = why;
            if (step == 0) {
                for (const int lane : lanes_scalar) add_pred(pk, lane);
            } else {
                add_pred(pk, last);
            }
            last = emit(pk);
        }
        if (last < 0) {
            // Single-lane "vector": nothing to pack.
            return lanes_scalar.front();
        }
        return last;
    }

    std::vector<Affine> lane_indices(const SimdGroup& group) const {
        std::vector<Affine> indices;
        for (const OpId lane : group.lanes) {
            indices.push_back(kernel_.op(lane).index);
        }
        return indices;
    }

    bool adjacent(const std::vector<Affine>& indices) const {
        for (size_t i = 1; i < indices.size(); ++i) {
            const auto diff =
                indices[i].constant_difference(indices[i - 1]);
            if (!diff.has_value() || *diff != 1) return false;
        }
        return true;
    }

    void lower_group(int g) {
        const SimdGroup& group = groups_[static_cast<size_t>(g)];
        const int w = group.width();
        const OpKind kind = kernel_.op(group.lanes.front()).kind;
        int wl = 0;
        for (const OpId lane : group.lanes) {
            wl = std::max(wl, result_wl(lane));
        }

        switch (kind) {
            case OpKind::Load: {
                const std::vector<Affine> indices = lane_indices(group);
                int idx;
                if (adjacent(indices)) {
                    MachOp m;
                    m.kind = MachKind::Load;
                    m.lanes = w;
                    m.wl = wl;
                    m.array = kernel_.op(group.lanes.front()).array;
                    m.index = indices.front();
                    mem_deps(m, m.array, false, indices);
                    idx = emit(m);
                    record_mem(idx, m.array, false, indices);
                } else {
                    // Gather: scalar loads + pack.
                    std::vector<int> lanes_scalar;
                    for (const OpId lane : group.lanes) {
                        const Op& lop = kernel_.op(lane);
                        MachOp m;
                        m.kind = MachKind::Load;
                        m.wl = wl;
                        m.array = lop.array;
                        m.index = lop.index;
                        mem_deps(m, lop.array, false, {lop.index});
                        const int li = emit(m);
                        record_mem(li, lop.array, false, {lop.index});
                        lanes_scalar.push_back(li);
                    }
                    idx = emit_pack(lanes_scalar, wl, "gather-pack");
                }
                register_group_result(g, idx);
                break;
            }
            case OpKind::Store: {
                // Per-lane narrowing amounts to each lane's array format.
                std::vector<int> amounts;
                const int f_arr =
                    spec_->array_format(kernel_.op(group.lanes.front()).array)
                        .fwl;
                for (const OpId lane : group.lanes) {
                    amounts.push_back(operand_fwl(lane, 0) - f_arr);
                }
                const int value = vector_operand(group, 0, wl, amounts);
                const std::vector<Affine> indices = lane_indices(group);
                if (adjacent(indices)) {
                    MachOp m;
                    m.kind = MachKind::Store;
                    m.lanes = w;
                    m.wl = wl;
                    m.array = kernel_.op(group.lanes.front()).array;
                    m.index = indices.front();
                    add_pred(m, value);
                    mem_deps(m, m.array, true, indices);
                    const int idx = emit(m);
                    record_mem(idx, m.array, true, indices);
                    for (const OpId lane : group.lanes) {
                        main_mach_[lane] = idx;
                    }
                } else {
                    // Scatter: extract lanes + scalar stores.
                    for (int lane = 0; lane < w; ++lane) {
                        MachOp ex;
                        ex.kind = MachKind::Extract;
                        ex.wl = wl;
                        ex.why = "scatter-unpack";
                        add_pred(ex, value);
                        const int s = emit(ex);
                        const Op& lop = kernel_.op(group.lanes[lane]);
                        MachOp m;
                        m.kind = MachKind::Store;
                        m.wl = wl;
                        m.array = lop.array;
                        m.index = lop.index;
                        add_pred(m, s);
                        mem_deps(m, lop.array, true, {lop.index});
                        const int idx = emit(m);
                        record_mem(idx, lop.array, true, {lop.index});
                        main_mach_[group.lanes[lane]] = idx;
                    }
                }
                for (const OpId lane : group.lanes) record_defs(lane);
                break;
            }
            case OpKind::Add:
            case OpKind::Sub:
            case OpKind::Neg: {
                MachOp m;
                m.kind = MachKind::Alu;
                m.lanes = w;
                m.wl = wl;
                const int nargs = kernel_.op(group.lanes.front()).num_args();
                for (int slot = 0; slot < nargs; ++slot) {
                    add_pred(m, vector_operand(group, slot, wl,
                                               lane_align_amounts(group, slot)));
                }
                register_group_result(g, emit(m));
                break;
            }
            case OpKind::Mul: {
                MachOp m;
                m.kind = MachKind::Mul;
                m.lanes = w;
                m.wl = wl;
                const std::vector<int> zero(static_cast<size_t>(w), 0);
                add_pred(m, vector_operand(group, 0, wl, zero));
                add_pred(m, vector_operand(group, 1, wl, zero));
                int idx = emit(m);
                // Product quantization per lane.
                std::vector<int> amounts;
                for (const OpId lane : group.lanes) {
                    amounts.push_back(operand_fwl_sum(lane) -
                                      result_fwl(lane));
                }
                const bool uniform = std::all_of(
                    amounts.begin(), amounts.end(),
                    [&](int a) { return a == amounts[0]; });
                if (uniform) {
                    if (amounts[0] != 0) {
                        idx = emit_shift(idx, amounts[0], w, wl, "mulq-vshift");
                    }
                } else {
                    std::vector<int> lanes_scalar;
                    for (int lane = 0; lane < w; ++lane) {
                        MachOp ex;
                        ex.kind = MachKind::Extract;
                        ex.wl = wl;
                        ex.why = "mulq-unpack";
                        add_pred(ex, idx);
                        int s = emit(ex);
                        if (amounts[static_cast<size_t>(lane)] != 0) {
                            s = emit_shift(s,
                                           amounts[static_cast<size_t>(lane)],
                                           1, wl, "mulq-lane-shift");
                        }
                        lanes_scalar.push_back(s);
                    }
                    idx = emit_pack(lanes_scalar, wl, "mulq-repack");
                }
                register_group_result(g, idx);
                break;
            }
            default:
                throw InternalError("unloweable group kind " +
                                    to_string(kind));
        }
    }

    void register_group_result(int g, int mach) {
        group_vector_[g] = mach;
        const SimdGroup& group = groups_[static_cast<size_t>(g)];
        for (size_t lane = 0; lane < group.lanes.size(); ++lane) {
            const OpId lane_op = group.lanes[lane];
            const Op& op = kernel_.op(lane_op);
            if (op.dest.valid()) {
                values_[op.dest] =
                    ValueLoc{mach, g, static_cast<int>(lane)};
                extracted_.erase(op.dest);
            }
            main_mach_[lane_op] = mach;
            record_defs(lane_op);
        }
    }

    // --- loop-carried recurrences ------------------------------------------------

    void add_loop_carried() {
        const auto& chain = kernel_.enclosing_loops(block_);
        if (chain.empty()) return;
        const LoopId loop = chain.back();

        // Memory recurrences: stores feeding loads of later iterations.
        for (const auto& [array, accesses] : mem_) {
            (void)array;
            for (const MemAccess& load : accesses) {
                if (load.is_store) continue;
                for (const MemAccess& store : accesses) {
                    if (!store.is_store) continue;
                    for (const Affine& si : store.indices) {
                        for (const Affine& li : load.indices) {
                            const auto d =
                                loop_carried_distance(si, li, loop);
                            if (d.has_value()) {
                                out_.recurrences.push_back(Recurrence{
                                    load.mach, store.mach, *d});
                            }
                        }
                    }
                }
            }
        }

        // Scalar recurrences through loop-carried user variables: the last
        // in-block definition feeds the first read of the next iteration.
        const auto& ops = kernel_.block(block_).ops;
        std::map<VarId, OpId> first_read_before_def;
        std::map<VarId, OpId> last_def;
        std::map<VarId, bool> defined;
        for (const OpId op_id : ops) {
            const Op& op = kernel_.op(op_id);
            for (int a = 0; a < op.num_args(); ++a) {
                const VarId v = op.args[a];
                if (!defined[v] && first_read_before_def.count(v) == 0 &&
                    !kernel_.var(v).is_temp) {
                    first_read_before_def[v] = op_id;
                }
            }
            if (op.dest.valid()) {
                defined[op.dest] = true;
                last_def[op.dest] = op_id;
            }
        }
        for (const auto& [var, reader] : first_read_before_def) {
            const auto def = last_def.find(var);
            if (def == last_def.end()) continue;
            const int from = main_mach_.count(reader) ? main_mach_.at(reader) : -1;
            const int to = main_mach_.count(def->second)
                               ? main_mach_.at(def->second)
                               : -1;
            if (from >= 0 && to >= 0 && from <= to) {
                out_.recurrences.push_back(Recurrence{from, to, 1});
            }
        }
    }

    void fill_structure() {
        const auto& chain = kernel_.enclosing_loops(block_);
        out_.frequency = kernel_.block_frequency(block_);
        if (chain.empty()) {
            out_.innermost_trip = 1;
            out_.entries = 1;
        } else {
            out_.innermost = chain.back();
            out_.innermost_trip = kernel_.loop(chain.back()).trip_count();
            out_.entries = out_.frequency / out_.innermost_trip;
        }
    }

    const Kernel& kernel_;
    const FixedPointSpec* spec_;
    const std::vector<SimdGroup>& groups_;
    const TargetModel& target_;
    LowerMode mode_;
    BlockId block_;

    MachineBlock out_;
    std::map<OpId, int> position_;
    std::map<OpId, int> group_of_;
    std::map<OpId, int> lane_of_;
    std::vector<int> group_emit_pos_;
    std::map<int, int> group_vector_;
    std::map<VarId, ValueLoc> values_;
    std::map<VarId, int> extracted_;
    std::map<OpId, int> main_mach_;
    std::map<VarId, OpId> last_def_;
    std::map<std::pair<OpId, int>, OpId> defs_;
    std::map<ArrayId, std::vector<MemAccess>> mem_;

public:
    /// Pre-pass: record in-block defining ops for operand-format queries.
    void compute_defs() {
        std::map<VarId, OpId> def;
        for (const OpId op_id : kernel_.block(block_).ops) {
            const Op& op = kernel_.op(op_id);
            for (int a = 0; a < op.num_args(); ++a) {
                const auto it = def.find(op.args[a]);
                if (it != def.end()) defs_[{op_id, a}] = it->second;
            }
            if (op.dest.valid()) def[op.dest] = op_id;
        }
    }
};

}  // namespace

std::vector<int> block_unit_order(const Kernel& kernel, BlockId block,
                                  const std::vector<SimdGroup>& groups) {
    const auto& ops = kernel.block(block).ops;
    const int n = static_cast<int>(ops.size());

    // Unit id per position: scalar units use their position, group lanes
    // map to the group unit.
    std::map<OpId, int> group_of;
    for (size_t g = 0; g < groups.size(); ++g) {
        for (const OpId op : groups[g].lanes) {
            group_of[op] = static_cast<int>(g);
        }
    }
    auto unit_of_pos = [&](int pos) {
        const auto it = group_of.find(ops[static_cast<size_t>(pos)]);
        return it == group_of.end() ? pos : -it->second - 1;
    };

    // Anchor (earliest lane position) per unit for tie-breaking.
    std::map<int, int> anchor;
    for (int pos = 0; pos < n; ++pos) {
        const int unit = unit_of_pos(pos);
        if (anchor.count(unit) == 0) anchor[unit] = pos;
    }

    // Unit-level edges: scalar def-use plus memory ordering.
    std::map<int, std::set<int>> succs;
    std::map<int, int> in_degree;
    for (const auto& [unit, a] : anchor) {
        (void)a;
        in_degree[unit] = 0;
    }
    auto add_edge = [&](int from, int to) {
        if (from == to) return;
        if (succs[from].insert(to).second) in_degree[to]++;
    };

    std::map<VarId, int> def_pos;
    struct Access {
        int pos;
        bool is_store;
        Affine index;
    };
    std::map<ArrayId, std::vector<Access>> accesses;
    for (int pos = 0; pos < n; ++pos) {
        const Op& op = kernel.op(ops[static_cast<size_t>(pos)]);
        const int unit = unit_of_pos(pos);
        for (int a = 0; a < op.num_args(); ++a) {
            const auto it = def_pos.find(op.args[a]);
            if (it != def_pos.end()) {
                add_edge(unit_of_pos(it->second), unit);
            }
        }
        if (op.dest.valid()) def_pos[op.dest] = pos;
        if (op.is_memory()) {
            auto& list = accesses[op.array];
            const bool is_store = op.kind == OpKind::Store;
            for (const Access& prev : list) {
                if (!is_store && !prev.is_store) continue;
                if (may_alias(op.index, prev.index)) {
                    add_edge(unit_of_pos(prev.pos), unit);
                }
            }
            list.push_back(Access{pos, is_store, op.index});
        }
    }

    // Kahn's algorithm, smallest anchor first (deterministic).
    std::vector<int> order;
    std::set<std::pair<int, int>> ready;  // (anchor, unit)
    for (const auto& [unit, degree] : in_degree) {
        if (degree == 0) ready.insert({anchor[unit], unit});
    }
    while (!ready.empty()) {
        const auto [a, unit] = *ready.begin();
        (void)a;
        ready.erase(ready.begin());
        order.push_back(unit);
        for (const int next : succs[unit]) {
            if (--in_degree[next] == 0) {
                ready.insert({anchor[next], next});
            }
        }
    }
    SLPWLO_ASSERT(order.size() == in_degree.size(),
                  "cyclic unit dependences in block lowering");
    return order;
}

MachineKernel lower_kernel(const Kernel& kernel, const FixedPointSpec* spec,
                           const std::vector<BlockGroups>* groups,
                           const TargetModel& target, LowerMode mode) {
    if (mode != LowerMode::Float) {
        SLPWLO_CHECK(spec != nullptr,
                     "fixed-point lowering requires a spec");
    }
    MachineKernel machine;
    machine.name = kernel.name() + "." + to_string(mode);

    static const std::vector<SimdGroup> no_groups;
    for (const BlockId block : kernel.blocks_in_order()) {
        const std::vector<SimdGroup>* block_groups = &no_groups;
        if (mode == LowerMode::FixedSimd && groups != nullptr) {
            for (const BlockGroups& bg : *groups) {
                if (bg.block == block) block_groups = &bg.groups;
            }
        }
        BlockLowering lowering(kernel, spec, *block_groups, target, mode,
                               block);
        lowering.compute_defs();
        machine.blocks.push_back(lowering.run());
    }

    // Loop-control overhead accounting: total iterations of every loop.
    for (const Loop& loop : kernel.loops()) {
        long long iters = loop.trip_count();
        for (const LoopId outer : kernel.enclosing_loops(loop.id)) {
            iters *= kernel.loop(outer).trip_count();
        }
        machine.total_loop_iterations += iters;
    }
    return machine;
}

int count_ops(const MachineKernel& machine, MachKind kind) {
    int count = 0;
    for (const MachineBlock& block : machine.blocks) {
        for (const MachOp& op : block.ops) {
            if (op.kind == kind) count++;
        }
    }
    return count;
}

}  // namespace slpwlo
