#include "lower/machine_ir.hpp"

#include <sstream>

namespace slpwlo {

std::string to_string(MachKind kind) {
    switch (kind) {
        case MachKind::Alu: return "alu";
        case MachKind::Mul: return "mul";
        case MachKind::Load: return "load";
        case MachKind::Store: return "store";
        case MachKind::Shift: return "shift";
        case MachKind::Pack: return "pack";
        case MachKind::Extract: return "extract";
        case MachKind::FloatOp: return "fop";
        case MachKind::SoftFloat: return "softfloat";
    }
    return "<invalid-mach>";
}

OpClass op_class(const MachOp& op, const TargetModel& target) {
    switch (op.kind) {
        case MachKind::Alu:
        case MachKind::Pack:
        case MachKind::Extract:
            return OpClass::Alu;
        case MachKind::Mul:
            return OpClass::MulUnit;
        case MachKind::Load:
        case MachKind::Store:
            return OpClass::Mem;
        case MachKind::Shift:
            return target.shift_slots > 0 ? OpClass::Shift : OpClass::Alu;
        case MachKind::FloatOp:
            return OpClass::Float;
        case MachKind::SoftFloat:
            return OpClass::Alu;  // serialization handled by the scheduler
    }
    return OpClass::Alu;
}

int op_latency(const MachOp& op, const TargetModel& target) {
    switch (op.kind) {
        case MachKind::Alu:
        case MachKind::Pack:
        case MachKind::Extract:
            return target.alu_latency;
        case MachKind::Mul:
            return target.mul_latency;
        case MachKind::Load:
        case MachKind::Store:
            return target.mem_latency;
        case MachKind::Shift:
            return target.barrel_shifter
                       ? target.shift_latency
                       : target.shift_latency +
                             std::max(0, op.shift_amount - 1);
        case MachKind::FloatOp:
            return target.float_latency;
        case MachKind::SoftFloat:
            return op.soft_cycles;
    }
    return 1;
}

std::string print_machine_block(const MachineBlock& block) {
    std::ostringstream os;
    os << "machine block (freq " << block.frequency << ", trip "
       << block.innermost_trip << "):\n";
    for (size_t i = 0; i < block.ops.size(); ++i) {
        const MachOp& op = block.ops[i];
        os << "  m" << i << ": " << to_string(op.kind);
        if (op.lanes > 1) os << " x" << op.lanes;
        os << " wl" << op.wl;
        if (op.kind == MachKind::Shift) os << " by " << op.shift_amount;
        if (!op.preds.empty()) {
            os << " <-";
            for (const int p : op.preds) os << " m" << p;
        }
        if (op.why[0] != '\0') os << "  ; " << op.why;
        os << "\n";
    }
    return os.str();
}

}  // namespace slpwlo
