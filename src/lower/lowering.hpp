// Lowering: kernel IR + fixed-point spec + SIMD groups -> machine IR.
//
// Three modes, matching the three code versions the paper measures:
//  * FixedScalar — the fixed-point C code with no SIMD: every op scalar,
//    every format change an explicit scaling shift (the speedup baseline);
//  * FixedSimd — selected groups become vector ops; operand superwords are
//    reused when a producing group exists, assembled with pack ops
//    otherwise; per-lane scaling amounts fold into one vector shift iff
//    they are equal, and otherwise cost extract/shift/pack per lane
//    (Fig. 2's penalty — what the scaling optimization removes);
//  * Float — the original single-precision code: hardware FP ops on
//    targets that have them, serializing soft-float calls elsewhere.
#pragma once

#include "core/slp_aware_wlo.hpp"
#include "lower/machine_ir.hpp"

namespace slpwlo {

enum class LowerMode { FixedScalar, FixedSimd, Float };

std::string to_string(LowerMode mode);

/// Lower the whole kernel. `spec` is required for the fixed modes;
/// `groups` only matters for FixedSimd (pass the WLO result's
/// block_groups). Cross-checked invariants throw InternalError.
MachineKernel lower_kernel(const Kernel& kernel, const FixedPointSpec* spec,
                           const std::vector<BlockGroups>* groups,
                           const TargetModel& target, LowerMode mode);

/// Count machine ops of one kind across the whole machine kernel
/// (static count, unweighted). Useful for tests and ablation reports.
int count_ops(const MachineKernel& machine, MachKind kind);

/// Dependence-topological emission order for a block partitioned into SIMD
/// groups: values >= 0 are block positions of ungrouped scalar ops, -g-1
/// encodes group g. A group's last lane can precede its producer group's
/// last lane in program order, so plain program order is not topological.
/// Shared by the machine lowering and the SIMD C emitter.
std::vector<int> block_unit_order(const Kernel& kernel, BlockId block,
                                  const std::vector<SimdGroup>& groups);

}  // namespace slpwlo
