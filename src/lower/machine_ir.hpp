// Machine IR: the target-level operation stream the timing model runs on.
//
// Lowering (lower/lowering.hpp) turns each kernel basic block plus the
// fixed-point spec and the selected SIMD groups into a MachineBlock of
// target operations: arithmetic (scalar or vector), loads/stores, the
// scaling shifts implied by the fixed-point formats, pack/extract lane
// traffic, and (for the float flow) hardware-FP or serializing soft-float
// ops. This is where the paper's central effects become visible as real
// instructions: equal per-lane scaling amounts fold into one vector shift,
// unequal ones explode into extract/shift/pack sequences (Fig. 2).
#pragma once

#include <string>
#include <vector>

#include "ir/kernel.hpp"
#include "target/target_model.hpp"

namespace slpwlo {

enum class MachKind {
    Alu,        ///< add/sub/neg (scalar or vector)
    Mul,        ///< multiply (scalar or vector)
    Load,       ///< memory read (vector if lanes > 1)
    Store,      ///< memory write
    Shift,      ///< scaling shift; `shift_amount` holds the magnitude
    Pack,       ///< insert scalars into vector lanes (ALU slot)
    Extract,    ///< move one lane to a scalar register (ALU slot)
    FloatOp,    ///< hardware floating-point operation
    SoftFloat,  ///< soft-float library call: serializes the machine
};

std::string to_string(MachKind kind);

struct MachOp {
    MachKind kind = MachKind::Alu;
    /// Vector lane count (1 = scalar).
    int lanes = 1;
    /// Element word length.
    int wl = 32;
    /// Shift magnitude (Shift ops; drives serial-shifter cost).
    int shift_amount = 0;
    /// Soft-float cycle cost (SoftFloat ops).
    int soft_cycles = 0;
    /// Dependence predecessors (indices into the owning block).
    std::vector<int> preds;
    /// Memory identity for loop-carried dependence analysis.
    ArrayId array;
    Affine index;
    /// Debug provenance, e.g. "align-vshift", "lane-pack".
    const char* why = "";
};

/// A loop-carried dependence: op `to` of iteration i feeds op `from` of
/// iteration i + distance. Bounds the recurrence-constrained II:
/// II >= path_latency(from..to) / distance.
struct Recurrence {
    int from = 0;  ///< consumer (earlier in the block)
    int to = 0;    ///< producer (later in the block)
    int distance = 1;
};

struct MachineBlock {
    std::vector<MachOp> ops;
    std::vector<Recurrence> recurrences;
    /// The innermost enclosing loop (invalid if none) — carries the
    /// recurrence distances for the II computation.
    LoopId innermost;
    /// Trip count of that loop (1 if none).
    long long innermost_trip = 1;
    /// Total executions per kernel run.
    long long frequency = 1;
    /// Number of times the enclosing loop is entered (frequency /
    /// innermost_trip) — each entry pays the pipeline fill.
    long long entries = 1;
};

struct MachineKernel {
    std::string name;
    std::vector<MachineBlock> blocks;
    /// Total loop iterations executed across the whole run (for the
    /// per-iteration loop-control overhead).
    long long total_loop_iterations = 0;
};

/// FU class an op occupies (Shift maps to Alu when the target has no
/// dedicated shift slots).
OpClass op_class(const MachOp& op, const TargetModel& target);

/// Result latency of an op on the target.
int op_latency(const MachOp& op, const TargetModel& target);

/// Debug dump of a machine block.
std::string print_machine_block(const MachineBlock& block);

}  // namespace slpwlo
