#include "support/diagnostics.hpp"

#include <sstream>

namespace slpwlo {

ParseError::ParseError(const std::string& message, int line, int column)
    : Error("parse error at " + std::to_string(line) + ":" +
            std::to_string(column) + ": " + message),
      line_(line),
      column_(column) {}

namespace detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& message) {
    std::ostringstream os;
    os << "internal error: assertion `" << expr << "` failed at " << file
       << ":" << line;
    if (!message.empty()) {
        os << ": " << message;
    }
    throw InternalError(os.str());
}

}  // namespace detail
}  // namespace slpwlo
