#include "support/kv_format.hpp"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/diagnostics.hpp"

namespace slpwlo::kv {

std::string trim(const std::string& s) {
    size_t begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos) return "";
    size_t end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

void fail(const std::string& source, int line, const std::string& message) {
    throw Error(source + ":" + std::to_string(line) + ": " + message);
}

long long to_ll(const std::string& source, int line, const std::string& key,
                const std::string& value) {
    try {
        size_t pos = 0;
        const long long parsed = std::stoll(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        fail(source, line, "key `" + key + "`: not an integer: `" + value + "`");
    }
}

int to_int(const std::string& source, int line, const std::string& key,
           const std::string& value) {
    const long long parsed = to_ll(source, line, key, value);
    if (parsed < INT32_MIN || parsed > INT32_MAX) {
        fail(source, line, "key `" + key + "`: out of range: `" + value + "`");
    }
    return static_cast<int>(parsed);
}

double to_double(const std::string& source, int line, const std::string& key,
                 const std::string& value) {
    try {
        size_t pos = 0;
        const double parsed = std::stod(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        fail(source, line, "key `" + key + "`: not a number: `" + value + "`");
    }
}

bool to_bool(const std::string& source, int line, const std::string& key,
             const std::string& value) {
    if (value == "true" || value == "1") return true;
    if (value == "false" || value == "0") return false;
    fail(source, line,
         "key `" + key + "`: expected true/false/1/0, got `" + value + "`");
}

std::vector<int> to_int_list(const std::string& source, int line,
                             const std::string& key,
                             const std::string& value) {
    std::vector<int> out;
    std::string item;
    // Commas are separators like whitespace: "32, 16, 8" == "32 16 8".
    std::string normalized = value;
    for (char& c : normalized) {
        if (c == ',') c = ' ';
    }
    std::istringstream items(normalized);
    while (items >> item) {
        out.push_back(to_int(source, line, key, item));
    }
    return out;
}

uint64_t to_fingerprint(const std::string& source, int line,
                        const std::string& key, const std::string& value) {
    if (value.size() != 16) {
        fail(source, line,
             "key `" + key + "`: expected 16 hex digits, got `" + value + "`");
    }
    uint64_t out = 0;
    for (const char c : value) {
        out <<= 4;
        if (c >= '0' && c <= '9') {
            out |= static_cast<uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            out |= static_cast<uint64_t>(c - 'a' + 10);
        } else {
            fail(source, line,
                 "key `" + key + "`: expected 16 hex digits, got `" + value +
                     "`");
        }
    }
    return out;
}

std::string exact_double(double value) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return std::string(buffer);
}

void check_round_trips(const std::string& what, const std::string& value) {
    if (value.find('\n') != std::string::npos ||
        value.find('\r') != std::string::npos) {
        throw Error(what + " `" + value +
                    "` cannot be serialized: embedded newline (the parser "
                    "splits lines first, so the value would not round-trip)");
    }
    if (value.find('#') != std::string::npos) {
        throw Error(what + " `" + value +
                    "` cannot be serialized: `#` starts a comment on read");
    }
    if (trim(value) != value) {
        throw Error(what + " `" + value +
                    "` cannot be serialized: leading/trailing whitespace "
                    "is trimmed on read");
    }
}

void write_pair(std::ostream& os, const std::string& key,
                const std::string& value) {
    check_round_trips("key `" + key + "`", key);
    if (key.empty() || key.find('=') != std::string::npos) {
        throw Error("key `" + key + "` cannot be serialized: keys must be "
                    "non-empty and free of `=`");
    }
    check_round_trips("key `" + key + "`: value", value);
    os << key << " = " << value << "\n";
}

KvReader::KvReader(const std::string& text, std::string source)
    : text_(text), source_(std::move(source)) {}

bool KvReader::next(KvLine& out) {
    while (offset_ < text_.size()) {
        size_t end = text_.find('\n', offset_);
        if (end == std::string::npos) end = text_.size();
        const std::string raw = text_.substr(offset_, end - offset_);
        offset_ = end + 1;
        line_++;

        std::string content = raw;
        const size_t comment = content.find('#');
        if (comment != std::string::npos) content.resize(comment);
        content = trim(content);
        if (content.empty()) continue;

        out.line = line_;
        out.raw = raw;
        const size_t eq = content.find('=');
        if (eq == std::string::npos) {
            out.key.clear();
            out.value = content;
        } else {
            out.key = trim(content.substr(0, eq));
            out.value = trim(content.substr(eq + 1));
        }
        return true;
    }
    return false;
}

void KvReader::fail_here(const std::string& message) const {
    fail(source_, line_, message);
}

}  // namespace slpwlo::kv
