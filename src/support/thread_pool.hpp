// Work-stealing thread pool for constraint sweeps.
//
// Each worker owns a deque: it pushes and pops its own work at the back
// (LIFO, cache-friendly) and steals from other workers' fronts (FIFO,
// oldest first) when its deque runs dry. External submissions are dealt
// round-robin across the workers. The pool tracks in-flight tasks so
// wait_idle() can block until everything submitted so far has finished —
// including tasks that tasks spawned.
//
// Determinism note: the pool schedules *when* tasks run, never *what* they
// compute; sweep results are written to pre-assigned slots, so the output
// of a sweep is identical at any thread count (tested in
// tests/test_flow_engine.cpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slpwlo {

class ThreadPool {
public:
    /// `threads` <= 0 picks std::thread::hardware_concurrency().
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int thread_count() const { return static_cast<int>(workers_.size()); }

    /// Enqueue a task. Safe to call from worker threads (nested submits
    /// go to the submitting worker's own deque). Tasks must handle their
    /// own errors: an exception escaping a task is swallowed (the task
    /// still counts as completed for wait_idle()).
    void submit(std::function<void()> task);

    /// Block until every submitted task (and their nested submissions)
    /// has completed.
    void wait_idle();

private:
    struct Worker {
        std::mutex mutex;
        std::deque<std::function<void()>> deque;
    };

    void worker_loop(size_t self);
    bool try_pop_own(size_t self, std::function<void()>& task);
    bool try_steal(size_t self, std::function<void()>& task);
    bool any_queue_nonempty();

    std::vector<std::unique_ptr<Worker>> queues_;
    std::vector<std::thread> workers_;

    std::mutex state_mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_done_;
    size_t pending_ = 0;  ///< queued + running tasks
    size_t next_queue_ = 0;
    bool stopping_ = false;
};

}  // namespace slpwlo
