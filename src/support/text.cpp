#include "support/text.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace slpwlo {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string pad_left(const std::string& s, size_t width) {
    if (s.size() >= width) return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, size_t width) {
    if (s.size() >= width) return s;
    return s + std::string(width - s.size(), ' ');
}

std::string format_double(double value, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
    return buf;
}

std::string render_table(const std::vector<std::vector<std::string>>& rows) {
    if (rows.empty()) return "";
    size_t cols = 0;
    for (const auto& row : rows) cols = std::max(cols, row.size());
    std::vector<size_t> widths(cols, 0);
    for (const auto& row : rows) {
        for (size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::ostringstream os;
    for (size_t r = 0; r < rows.size(); ++r) {
        for (size_t c = 0; c < rows[r].size(); ++c) {
            os << pad_right(rows[r][c], widths[c]);
            if (c + 1 < rows[r].size()) os << "  ";
        }
        os << "\n";
        if (r == 0) {
            size_t total = 0;
            for (size_t c = 0; c < cols; ++c) total += widths[c] + (c ? 2 : 0);
            os << std::string(total, '-') << "\n";
        }
    }
    return os.str();
}

bool contains(const std::string& text, const std::string& needle) {
    return text.find(needle) != std::string::npos;
}

std::string replace_all(std::string text, const std::string& from,
                        const std::string& to) {
    if (from.empty()) return text;
    size_t pos = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
        text.replace(pos, from.size(), to);
        pos += to.size();
    }
    return text;
}

}  // namespace slpwlo
