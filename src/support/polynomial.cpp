#include "support/polynomial.hpp"

#include <cmath>

#include "support/diagnostics.hpp"

namespace slpwlo {

Polynomial poly_mul(const Polynomial& a, const Polynomial& b) {
    if (a.empty() || b.empty()) return {};
    Polynomial out(a.size() + b.size() - 1, 0.0);
    for (size_t i = 0; i < a.size(); ++i) {
        for (size_t j = 0; j < b.size(); ++j) {
            out[i + j] += a[i] * b[j];
        }
    }
    return out;
}

double poly_eval(const Polynomial& p, double x) {
    double acc = 0.0;
    for (auto it = p.rbegin(); it != p.rend(); ++it) {
        acc = acc * x + *it;
    }
    return acc;
}

Polynomial expand_biquad_sections(
    const std::vector<std::pair<double, double>>& sections) {
    Polynomial acc{1.0};
    for (const auto& [c1, c2] : sections) {
        acc = poly_mul(acc, Polynomial{1.0, c1, c2});
    }
    return acc;
}

double poly_l1(const Polynomial& p) {
    double sum = 0.0;
    for (const double c : p) sum += std::fabs(c);
    return sum;
}

}  // namespace slpwlo
