// Diagnostics: error type and assertion helpers used across the library.
//
// The library reports user-facing failures (malformed kernels, invalid
// configurations, infeasible constraints) by throwing slpwlo::Error.
// Internal invariant violations use SLPWLO_ASSERT, which throws
// InternalError with source location so tests can detect logic bugs.
#pragma once

#include <stdexcept>
#include <string>

namespace slpwlo {

/// Base class for all errors raised by the library.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// Raised when an internal invariant is violated (a bug in the library).
class InternalError : public Error {
public:
    explicit InternalError(const std::string& message) : Error(message) {}
};

/// Raised by the frontend on malformed kernel-DSL input.
class ParseError : public Error {
public:
    ParseError(const std::string& message, int line, int column);

    int line() const { return line_; }
    int column() const { return column_; }

private:
    int line_;
    int column_;
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& message);
}  // namespace detail

}  // namespace slpwlo

/// Internal invariant check. Always enabled: the algorithms in this library
/// are cheap relative to the cost of silently producing a wrong fixed-point
/// specification.
#define SLPWLO_ASSERT(expr, message)                                          \
    do {                                                                      \
        if (!(expr)) {                                                        \
            ::slpwlo::detail::assert_fail(#expr, __FILE__, __LINE__,          \
                                          (message));                        \
        }                                                                     \
    } while (false)

/// User-facing precondition check: throws slpwlo::Error with `message`.
#define SLPWLO_CHECK(expr, message)                                           \
    do {                                                                      \
        if (!(expr)) {                                                        \
            throw ::slpwlo::Error(message);                                   \
        }                                                                     \
    } while (false)
