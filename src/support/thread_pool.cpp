#include "support/thread_pool.hpp"

#include <algorithm>

namespace slpwlo {

namespace {

/// Index of the worker the current thread belongs to, or SIZE_MAX for
/// external threads. Set once per worker thread at startup.
thread_local size_t tls_worker_index = static_cast<size_t>(-1);
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int threads) {
    size_t count = threads > 0
                       ? static_cast<size_t>(threads)
                       : std::max(1u, std::thread::hardware_concurrency());
    queues_.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        queues_.push_back(std::make_unique<Worker>());
    }
    workers_.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    wait_idle();
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::submit(std::function<void()> task) {
    // The push happens under the state lock so that a worker that found
    // all queues empty and re-checks under the same lock (worker_loop)
    // cannot miss it: either the re-check sees the task, or the worker is
    // already waiting and the notify wakes it.
    std::lock_guard<std::mutex> lock(state_mutex_);
    size_t queue_index;
    if (tls_worker_pool == this) {
        queue_index = tls_worker_index;  // nested submit: keep it local
    } else {
        queue_index = next_queue_;
        next_queue_ = (next_queue_ + 1) % queues_.size();
    }
    pending_++;
    {
        Worker& worker = *queues_[queue_index];
        std::lock_guard<std::mutex> queue_lock(worker.mutex);
        worker.deque.push_back(std::move(task));
    }
    work_available_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(state_mutex_);
    all_done_.wait(lock, [this] { return pending_ == 0; });
}

bool ThreadPool::try_pop_own(size_t self, std::function<void()>& task) {
    Worker& worker = *queues_[self];
    std::lock_guard<std::mutex> lock(worker.mutex);
    if (worker.deque.empty()) return false;
    task = std::move(worker.deque.back());
    worker.deque.pop_back();
    return true;
}

bool ThreadPool::try_steal(size_t self, std::function<void()>& task) {
    const size_t n = queues_.size();
    for (size_t offset = 1; offset < n; ++offset) {
        Worker& victim = *queues_[(self + offset) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.deque.empty()) continue;
        task = std::move(victim.deque.front());  // steal the oldest
        victim.deque.pop_front();
        return true;
    }
    return false;
}

void ThreadPool::worker_loop(size_t self) {
    tls_worker_index = self;
    tls_worker_pool = this;
    for (;;) {
        std::function<void()> task;
        if (try_pop_own(self, task) || try_steal(self, task)) {
            try {
                task();
            } catch (...) {
                // Tasks own their error handling (see the header); an
                // escaped exception must not kill the worker or wedge
                // the pending count.
            }
            std::lock_guard<std::mutex> lock(state_mutex_);
            pending_--;
            if (pending_ == 0) all_done_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(state_mutex_);
        if (stopping_) return;
        // Re-check the queues under the state lock: a submit that slipped
        // in between the failed scans and this point pushed under the
        // same lock, so it is visible here — and one that arrives later
        // finds us waiting and its notify wakes us.
        if (any_queue_nonempty()) continue;
        work_available_.wait(lock);
    }
}

bool ThreadPool::any_queue_nonempty() {
    for (const auto& worker : queues_) {
        std::lock_guard<std::mutex> lock(worker->mutex);
        if (!worker->deque.empty()) return true;
    }
    return false;
}

}  // namespace slpwlo
