// Deterministic random number generation.
//
// Every stochastic component of the library (range-analysis stimulus, tabu
// search, benchmark inputs) draws from a named Rng stream so that runs are
// bit-reproducible: the same (seed, stream name) pair always yields the same
// sequence, independent of what other components do.
#pragma once

#include <cstdint>
#include <string_view>

namespace slpwlo {

/// SplitMix64-seeded xoshiro256** generator. Small, fast, and good enough
/// for stimulus generation and metaheuristic tie-breaking; not for crypto.
class Rng {
public:
    /// Stream derived from a global seed and a stream name, so independent
    /// components cannot perturb each other's sequences.
    Rng(uint64_t seed, std::string_view stream_name);

    explicit Rng(uint64_t seed);

    /// Uniform 64-bit value.
    uint64_t next_u64();

    /// Uniform in [0, 1).
    double next_double();

    /// Uniform in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] (inclusive).
    int uniform_int(int lo, int hi);

    /// Standard normal via Box-Muller.
    double normal();

private:
    uint64_t state_[4];
};

/// FNV-1a hash of a string, used to derive stream offsets from names.
uint64_t hash_name(std::string_view name);

}  // namespace slpwlo
