// Line-oriented `key = value` text helpers shared by every serialized
// artifact in the project: target descriptions (target/target_desc.hpp),
// shard manifests and shard result files (dist/), and EvalCache snapshots.
//
// The format rules are common to all of them:
//   * `#` starts a comment, blank lines are ignored;
//   * one `key = value` pair per line, both sides trimmed;
//   * malformed values are reported with `source:line:` positions.
//
// `KvReader` walks a text one significant line at a time and exposes the
// raw line too, so container formats can embed verbatim blocks (e.g. a
// shard manifest embedding a whole target description between
// begin_target / end_target markers).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace slpwlo::kv {

/// Strip leading/trailing spaces, tabs and carriage returns.
std::string trim(const std::string& s);

/// Throw Error with a `source:line: message` position prefix.
[[noreturn]] void fail(const std::string& source, int line,
                       const std::string& message);

// --- value conversions (all report `source:line: key ...` on error) ------------
long long to_ll(const std::string& source, int line, const std::string& key,
                const std::string& value);
int to_int(const std::string& source, int line, const std::string& key,
           const std::string& value);
double to_double(const std::string& source, int line, const std::string& key,
                 const std::string& value);
bool to_bool(const std::string& source, int line, const std::string& key,
             const std::string& value);
/// Comma- or whitespace-separated integer list ("32, 16, 8" == "32 16 8").
std::vector<int> to_int_list(const std::string& source, int line,
                             const std::string& key, const std::string& value);
/// uint64 from exactly 16 lowercase hex digits (the fingerprint form that
/// fingerprint_hex in flow/report.hpp emits).
uint64_t to_fingerprint(const std::string& source, int line,
                        const std::string& key, const std::string& value);

/// `%.17g` rendering: round-trips any finite double exactly, so a
/// serialize-parse cycle preserves content fingerprints bit-for-bit.
std::string exact_double(double value);

// --- write side ----------------------------------------------------------------
// The parser splits lines first, strips `#` comments, then trims both
// sides of the `=`. A value that embeds any of those would therefore not
// round-trip — it would silently come back as something else (an embedded
// `\n` even smuggles extra lines into the file). Writers must hard-error
// instead of corrupting.

/// Throws Error (naming `what`) when `value` would not survive a
/// write -> parse round trip of the line format: it embeds a newline or
/// carriage return, contains `#`, or carries leading/trailing whitespace
/// the reader would trim away.
void check_round_trips(const std::string& what, const std::string& value);

/// Emit one `key = value\n` line after validating both sides
/// (check_round_trips; keys additionally must be non-empty and free of
/// `=`, which would split the line at the wrong place).
void write_pair(std::ostream& os, const std::string& key,
                const std::string& value);

/// One significant line of a kv text.
struct KvLine {
    int line = 0;       ///< 1-based line number in the source text
    std::string raw;    ///< the line as written (comments not stripped)
    std::string key;    ///< empty when the line is not `key = value`
    std::string value;
};

/// Iterates the significant (non-blank, non-comment) lines of a text.
/// Lines that do not parse as `key = value` are still returned (with an
/// empty key) so callers can treat them as block markers or raw payload.
class KvReader {
public:
    KvReader(const std::string& text, std::string source);

    /// Advance to the next significant line; false at end of text.
    bool next(KvLine& out);

    /// The name used in error positions (a path, "<string>", ...).
    const std::string& source() const { return source_; }

    /// Position-prefixed error for the line most recently returned.
    [[noreturn]] void fail_here(const std::string& message) const;

private:
    std::string text_;
    std::string source_;
    size_t offset_ = 0;
    int line_ = 0;
};

}  // namespace slpwlo::kv
