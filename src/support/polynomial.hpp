// Small polynomial utilities used by the built-in filter designers
// (src/kernels): convolution to expand pole/zero factors into direct-form
// coefficients, and evaluation for sanity checks.
#pragma once

#include <vector>

namespace slpwlo {

/// Coefficients in ascending powers: p[0] + p[1] x + p[2] x^2 + ...
using Polynomial = std::vector<double>;

/// Polynomial product (discrete convolution of coefficient sequences).
Polynomial poly_mul(const Polynomial& a, const Polynomial& b);

/// Evaluate p at x (Horner).
double poly_eval(const Polynomial& p, double x);

/// Expand the product of second-order factors (1 + c1 z^-1 + c2 z^-2) given
/// per-section (c1, c2) pairs; returns direct-form coefficients of length
/// 2 * sections + 1, leading coefficient 1.
Polynomial expand_biquad_sections(const std::vector<std::pair<double, double>>& sections);

/// Sum of |p[i]| — the L1 norm, used for worst-case gain reasoning.
double poly_l1(const Polynomial& p);

}  // namespace slpwlo
