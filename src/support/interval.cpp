#include "support/interval.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "support/diagnostics.hpp"

namespace slpwlo {

Interval::Interval() : lo_(0.0), hi_(0.0), empty_(true) {}

Interval::Interval(double point) : Interval(point, point) {}

Interval::Interval(double lo, double hi) : lo_(lo), hi_(hi), empty_(false) {
    SLPWLO_CHECK(!std::isnan(lo) && !std::isnan(hi),
                 "interval bounds must not be NaN");
    SLPWLO_CHECK(lo <= hi, "interval lower bound exceeds upper bound");
}

Interval Interval::empty() { return Interval(); }

double Interval::max_abs() const {
    if (empty_) return 0.0;
    return std::max(std::fabs(lo_), std::fabs(hi_));
}

bool Interval::contains(double value) const {
    return !empty_ && lo_ <= value && value <= hi_;
}

bool Interval::contains(const Interval& other) const {
    if (other.empty_) return true;
    return !empty_ && lo_ <= other.lo_ && other.hi_ <= hi_;
}

double Interval::width() const { return empty_ ? 0.0 : hi_ - lo_; }

Interval Interval::hull(const Interval& other) const {
    if (empty_) return other;
    if (other.empty_) return *this;
    return Interval(std::min(lo_, other.lo_), std::max(hi_, other.hi_));
}

Interval Interval::intersect(const Interval& other) const {
    if (empty_ || other.empty_) return Interval::empty();
    const double lo = std::max(lo_, other.lo_);
    const double hi = std::min(hi_, other.hi_);
    if (lo > hi) return Interval::empty();
    return Interval(lo, hi);
}

Interval Interval::widened(double factor) const {
    SLPWLO_CHECK(factor >= 1.0, "widening factor must be >= 1");
    if (empty_) return *this;
    const double lo = lo_ < 0 ? lo_ * factor : lo_ / factor;
    const double hi = hi_ > 0 ? hi_ * factor : hi_ / factor;
    return Interval(std::min(lo, hi), std::max(lo, hi));
}

bool Interval::operator==(const Interval& other) const {
    if (empty_ != other.empty_) return false;
    if (empty_) return true;
    return lo_ == other.lo_ && hi_ == other.hi_;
}

Interval Interval::operator-() const {
    if (empty_) return *this;
    return Interval(-hi_, -lo_);
}

namespace {

// Endpoint arithmetic in the extended reals: 0 * inf := 0 (the "cset"
// convention) and opposing infinities saturate toward the conservative
// side. Keeps diverging abstract executions (IIR feedback) NaN-free so the
// range analysis can detect divergence instead of crashing.
double mul_bound(double a, double b) {
    if (a == 0.0 || b == 0.0) return 0.0;
    return a * b;
}

double add_bound_lo(double a, double b) {
    const double s = a + b;
    return std::isnan(s) ? -std::numeric_limits<double>::infinity() : s;
}

double add_bound_hi(double a, double b) {
    const double s = a + b;
    return std::isnan(s) ? std::numeric_limits<double>::infinity() : s;
}

}  // namespace

Interval Interval::operator+(const Interval& rhs) const {
    if (empty_ || rhs.empty_) return Interval::empty();
    return Interval(add_bound_lo(lo_, rhs.lo_), add_bound_hi(hi_, rhs.hi_));
}

Interval Interval::operator-(const Interval& rhs) const {
    if (empty_ || rhs.empty_) return Interval::empty();
    return Interval(add_bound_lo(lo_, -rhs.hi_), add_bound_hi(hi_, -rhs.lo_));
}

Interval Interval::operator*(const Interval& rhs) const {
    if (empty_ || rhs.empty_) return Interval::empty();
    const double a = mul_bound(lo_, rhs.lo_);
    const double b = mul_bound(lo_, rhs.hi_);
    const double c = mul_bound(hi_, rhs.lo_);
    const double d = mul_bound(hi_, rhs.hi_);
    return Interval(std::min(std::min(a, b), std::min(c, d)),
                    std::max(std::max(a, b), std::max(c, d)));
}

Interval Interval::operator/(const Interval& rhs) const {
    if (empty_ || rhs.empty_) return Interval::empty();
    SLPWLO_CHECK(!rhs.contains(0.0),
                 "interval division by an interval containing zero");
    const double a = lo_ / rhs.lo_;
    const double b = lo_ / rhs.hi_;
    const double c = hi_ / rhs.lo_;
    const double d = hi_ / rhs.hi_;
    return Interval(std::min(std::min(a, b), std::min(c, d)),
                    std::max(std::max(a, b), std::max(c, d)));
}

Interval Interval::scaled_pow2(int amount) const {
    if (empty_) return *this;
    const double factor = std::ldexp(1.0, amount);
    const double a = lo_ * factor;
    const double b = hi_ * factor;
    return Interval(std::min(a, b), std::max(a, b));
}

std::string Interval::str() const {
    std::ostringstream os;
    os << *this;
    return os.str();
}

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
    if (iv.is_empty()) return os << "[empty]";
    return os << "[" << iv.lo() << ", " << iv.hi() << "]";
}

}  // namespace slpwlo
