// Closed real intervals with outward-directed arithmetic.
//
// Used by the dynamic-range analysis (fixpoint/range_analysis) to propagate
// the value ranges declared on kernel inputs through the data-flow graph, as
// in the ID.Fix front half of the paper's flow. All operations are
// conservative: the result interval contains every value obtainable by
// applying the operation to points of the operand intervals.
#pragma once

#include <iosfwd>
#include <string>

namespace slpwlo {

class Interval {
public:
    /// The empty interval (identity for hull()).
    Interval();

    /// [point, point].
    explicit Interval(double point);

    /// [lo, hi]; throws Error if lo > hi or either bound is NaN.
    Interval(double lo, double hi);

    static Interval empty();

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    bool is_empty() const { return empty_; }

    /// Largest absolute value contained in the interval (0 for empty).
    double max_abs() const;

    /// True if `value` lies within the interval (inclusive).
    bool contains(double value) const;

    /// True if `other` is a subset of this interval.
    bool contains(const Interval& other) const;

    /// Width hi - lo (0 for empty).
    double width() const;

    /// Smallest interval containing both operands.
    Interval hull(const Interval& other) const;

    /// Intersection; empty if disjoint.
    Interval intersect(const Interval& other) const;

    /// Widen both bounds multiplicatively away from zero by `factor` >= 1.
    /// Used as a safety margin on simulation-derived ranges.
    Interval widened(double factor) const;

    bool operator==(const Interval& other) const;
    bool operator!=(const Interval& other) const { return !(*this == other); }

    Interval operator-() const;
    Interval operator+(const Interval& rhs) const;
    Interval operator-(const Interval& rhs) const;
    Interval operator*(const Interval& rhs) const;
    /// Division; throws Error if rhs contains zero.
    Interval operator/(const Interval& rhs) const;

    /// Interval scaled by 2^amount (exact; used for shift operators).
    Interval scaled_pow2(int amount) const;

    std::string str() const;

private:
    double lo_;
    double hi_;
    bool empty_;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

}  // namespace slpwlo
