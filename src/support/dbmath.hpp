// Decibel and power-of-two helpers shared by the accuracy model and the
// experiment harnesses. Header-only.
#pragma once

#include <cmath>
#include <limits>

namespace slpwlo {

/// Linear power -> dB. Zero or negative power maps to -infinity.
inline double power_to_db(double power) {
    if (power <= 0.0) return -std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(power);
}

/// dB -> linear power.
inline double db_to_power(double db) { return std::pow(10.0, db / 10.0); }

/// 2^exponent as a double, for arbitrary (possibly negative) exponents.
inline double pow2(int exponent) { return std::ldexp(1.0, exponent); }

/// Smallest integer i such that value <= 2^i. Requires value > 0.
inline int ceil_log2(double value) {
    int e = static_cast<int>(std::ceil(std::log2(value)));
    // Guard against floating rounding: make sure the bound actually holds.
    while (pow2(e) < value) ++e;
    while (e > -1074 && pow2(e - 1) >= value) --e;
    return e;
}

}  // namespace slpwlo
