// Small text-formatting helpers used by printers, reports and emitters.
#pragma once

#include <string>
#include <vector>

namespace slpwlo {

/// Join `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Fixed-width left/right padding with spaces.
std::string pad_left(const std::string& s, size_t width);
std::string pad_right(const std::string& s, size_t width);

/// Format a double with `digits` significant decimal digits, trimming
/// trailing zeros (used for stable golden-test output).
std::string format_double(double value, int digits = 6);

/// Render a simple aligned text table: first row is the header.
std::string render_table(const std::vector<std::vector<std::string>>& rows);

/// True if `text` contains `needle`.
bool contains(const std::string& text, const std::string& needle);

/// Replace all occurrences of `from` with `to` in `text`.
std::string replace_all(std::string text, const std::string& from,
                        const std::string& to);

}  // namespace slpwlo
