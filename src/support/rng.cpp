#include "support/rng.hpp"

#include <cmath>

#include "support/diagnostics.hpp"

namespace slpwlo {
namespace {

uint64_t splitmix64(uint64_t& state) {
    state += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t hash_name(std::string_view name) {
    uint64_t h = 0xCBF29CE484222325ULL;
    for (const char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ULL;
    }
    return h;
}

Rng::Rng(uint64_t seed, std::string_view stream_name)
    : Rng(seed ^ hash_name(stream_name)) {}

Rng::Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
        word = splitmix64(sm);
    }
}

uint64_t Rng::next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::next_double() {
    // 53 high bits -> uniform double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    SLPWLO_CHECK(lo <= hi, "uniform(lo, hi) requires lo <= hi");
    return lo + (hi - lo) * next_double();
}

int Rng::uniform_int(int lo, int hi) {
    SLPWLO_CHECK(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
    const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() {
    // Box-Muller; discard the second variate for simplicity.
    double u1 = next_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace slpwlo
