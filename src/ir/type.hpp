// Core identifier types and enums of the kernel IR.
//
// The IR models the *floating-point* kernel the user wrote: data values are
// real-valued signals, and the fixed-point interpretation lives in a side
// table (fixpoint::FixedPointSpec) keyed by OpId — mirroring how ID.Fix
// annotates the GeCoS IR in the paper's flow.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace slpwlo {

/// Strongly typed integer id. Ids index into the owning Kernel's tables.
template <class Tag>
struct Id {
    int32_t value = -1;

    constexpr Id() = default;
    constexpr explicit Id(int32_t v) : value(v) {}

    constexpr bool valid() const { return value >= 0; }
    constexpr int32_t index() const { return value; }

    friend constexpr bool operator==(Id, Id) = default;
    friend constexpr auto operator<=>(Id, Id) = default;
};

struct VarTag {};
struct ArrayTag {};
struct LoopTag {};
struct OpTag {};
struct BlockTag {};

/// A scalar variable (user variable or compiler temporary).
using VarId = Id<VarTag>;
/// A declared array (input, parameter, output or scratch buffer).
using ArrayId = Id<ArrayTag>;
/// A counted loop in the kernel's loop nest.
using LoopId = Id<LoopTag>;
/// A single IR operation.
using OpId = Id<OpTag>;
/// A straight-line basic block of operations.
using BlockId = Id<BlockTag>;

/// Storage class of a declared array.
enum class StorageClass {
    Input,   ///< read-only stream data; dynamic range declared by the user
    Param,   ///< read-only coefficients with compile-time known values
    Output,  ///< written results; may be read back (IIR feedback)
    Buffer,  ///< read-write scratch storage
};

std::string to_string(StorageClass storage);

}  // namespace slpwlo

namespace std {
template <class Tag>
struct hash<slpwlo::Id<Tag>> {
    size_t operator()(slpwlo::Id<Tag> id) const noexcept {
        return std::hash<int32_t>{}(id.value);
    }
};
}  // namespace std
