#include "ir/type.hpp"

namespace slpwlo {

std::string to_string(StorageClass storage) {
    switch (storage) {
        case StorageClass::Input: return "input";
        case StorageClass::Param: return "param";
        case StorageClass::Output: return "output";
        case StorageClass::Buffer: return "buffer";
    }
    return "<invalid-storage>";
}

}  // namespace slpwlo
