// Structural well-formedness checks for kernels.
//
// verify_kernel throws slpwlo::Error describing the first problem found:
//  - operand/dest ids out of range, missing operands for the op kind;
//  - Store with a dest, non-Store without one;
//  - array accesses referencing undeclared arrays, writes to read-only
//    storage, reads of Output arrays before any write (feedback is allowed,
//    reads-before-first-write of outputs are not checked dynamically here);
//  - index expressions referencing loops that do not enclose the block;
//  - statically out-of-bounds accesses over the loop iteration ranges;
//  - Param arrays with missing values; Input arrays with empty ranges;
//  - temps assigned more than once (single-assignment of temporaries).
#pragma once

#include "ir/kernel.hpp"

namespace slpwlo {

/// Throws Error on the first violation; returns normally if well-formed.
void verify_kernel(const Kernel& kernel);

}  // namespace slpwlo
