#include "ir/verifier.hpp"

#include <algorithm>
#include <set>

#include "ir/printer.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo {
namespace {

class Verifier {
public:
    explicit Verifier(const Kernel& kernel) : kernel_(kernel) {}

    void run() {
        check_arrays();
        std::set<OpId> seen_ops;
        for (const BlockId block : kernel_.blocks_in_order()) {
            check_block(block, seen_ops);
        }
        check_temp_single_assignment();
    }

private:
    void fail(const std::string& message) const {
        throw Error("kernel `" + kernel_.name() + "` verification failed: " +
                    message);
    }

    void check_arrays() const {
        for (const ArrayDecl& a : kernel_.arrays()) {
            if (a.storage == StorageClass::Param &&
                static_cast<int>(a.values.size()) != a.size) {
                fail("param array `" + a.name +
                     "` value count does not match its size");
            }
            if (a.storage == StorageClass::Input && a.declared_range.is_empty()) {
                fail("input array `" + a.name + "` has no declared range");
            }
        }
    }

    void check_index(const Op& op, BlockId block) const {
        const auto& enclosing = kernel_.enclosing_loops(block);
        // Every loop referenced by the index must enclose the block, and the
        // access must stay in bounds over the full iteration space.
        int lo = op.index.offset();
        int hi = op.index.offset();
        for (const auto& [loop_id, coeff] : op.index.coeffs()) {
            if (std::find(enclosing.begin(), enclosing.end(), loop_id) ==
                enclosing.end()) {
                fail("op references loop L" + std::to_string(loop_id.index()) +
                     " that does not enclose its block: " +
                     print_op(kernel_, find_op_id(op)));
            }
            const Loop& loop = kernel_.loop(loop_id);
            const int a = coeff * loop.begin;
            const int b = coeff * (loop.end - 1);
            lo += std::min(a, b);
            hi += std::max(a, b);
        }
        const ArrayDecl& arr = kernel_.array(op.array);
        if (lo < 0 || hi >= arr.size) {
            fail("access to `" + arr.name + "` out of bounds: index range [" +
                 std::to_string(lo) + ", " + std::to_string(hi) +
                 "] vs size " + std::to_string(arr.size));
        }
    }

    OpId find_op_id(const Op& op) const {
        for (size_t i = 0; i < kernel_.ops().size(); ++i) {
            if (&kernel_.ops()[i] == &op) return OpId(static_cast<int32_t>(i));
        }
        return OpId();
    }

    void check_block(BlockId block, std::set<OpId>& seen_ops) const {
        for (const OpId op_id : kernel_.block(block).ops) {
            if (!op_id.valid() ||
                op_id.index() >= static_cast<int32_t>(kernel_.ops().size())) {
                fail("block references an op id out of range");
            }
            if (!seen_ops.insert(op_id).second) {
                fail("op o" + std::to_string(op_id.index()) +
                     " appears in more than one block position");
            }
            const Op& op = kernel_.op(op_id);
            for (int i = 0; i < op.num_args(); ++i) {
                if (!op.args[i].valid() ||
                    op.args[i].index() >=
                        static_cast<int32_t>(kernel_.vars().size())) {
                    fail("missing operand " + std::to_string(i) + " of " +
                         print_op(kernel_, op_id));
                }
            }
            if (op.kind == OpKind::Store) {
                if (op.dest.valid()) fail("store must not define a variable");
                const ArrayDecl& arr = kernel_.array(op.array);
                if (arr.storage == StorageClass::Input ||
                    arr.storage == StorageClass::Param) {
                    fail("write to read-only array `" + arr.name + "`");
                }
            } else {
                if (!op.dest.valid() ||
                    op.dest.index() >=
                        static_cast<int32_t>(kernel_.vars().size())) {
                    fail("op has no destination: " + print_op(kernel_, op_id));
                }
            }
            if (op.is_memory()) {
                if (!op.array.valid() ||
                    op.array.index() >=
                        static_cast<int32_t>(kernel_.arrays().size())) {
                    fail("memory op references an undeclared array");
                }
                check_index(op, block);
            }
        }
    }

    void check_temp_single_assignment() const {
        std::vector<int> def_count(kernel_.vars().size(), 0);
        for (const BlockId block : kernel_.blocks_in_order()) {
            for (const OpId op_id : kernel_.block(block).ops) {
                const Op& op = kernel_.op(op_id);
                if (op.dest.valid()) def_count[op.dest.index()]++;
            }
        }
        for (size_t v = 0; v < kernel_.vars().size(); ++v) {
            const VarDecl& decl = kernel_.vars()[v];
            if (decl.is_temp && def_count[v] > 1) {
                fail("temporary `" + decl.name + "` assigned " +
                     std::to_string(def_count[v]) + " times");
            }
        }
    }

    const Kernel& kernel_;
};

}  // namespace

void verify_kernel(const Kernel& kernel) { Verifier(kernel).run(); }

}  // namespace slpwlo
