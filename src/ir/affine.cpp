#include "ir/affine.hpp"

#include <sstream>

#include "support/diagnostics.hpp"

namespace slpwlo {

Affine Affine::var(LoopId loop) {
    Affine a;
    a.coeffs_[loop] = 1;
    return a;
}

int Affine::coeff(LoopId loop) const {
    const auto it = coeffs_.find(loop);
    return it == coeffs_.end() ? 0 : it->second;
}

Affine Affine::operator+(const Affine& rhs) const {
    Affine out = *this;
    out.offset_ += rhs.offset_;
    for (const auto& [loop, c] : rhs.coeffs_) {
        out.coeffs_[loop] += c;
    }
    out.prune();
    return out;
}

Affine Affine::operator-(const Affine& rhs) const { return *this + (-rhs); }

Affine Affine::operator+(int k) const {
    Affine out = *this;
    out.offset_ += k;
    return out;
}

Affine Affine::operator-(int k) const { return *this + (-k); }

Affine Affine::operator*(int k) const {
    Affine out;
    out.offset_ = offset_ * k;
    if (k != 0) {
        for (const auto& [loop, c] : coeffs_) {
            out.coeffs_[loop] = c * k;
        }
    }
    return out;
}

Affine Affine::operator-() const { return *this * -1; }

bool Affine::operator==(const Affine& rhs) const {
    return offset_ == rhs.offset_ && coeffs_ == rhs.coeffs_;
}

bool Affine::comparable(const Affine& rhs) const {
    return coeffs_ == rhs.coeffs_;
}

std::optional<int> Affine::constant_difference(const Affine& rhs) const {
    if (!comparable(rhs)) return std::nullopt;
    return offset_ - rhs.offset_;
}

Affine Affine::substituted(LoopId loop, const Affine& replacement) const {
    const int c = coeff(loop);
    Affine out = *this;
    out.coeffs_.erase(loop);
    return out + replacement * c;
}

int Affine::evaluate(const std::map<LoopId, int>& values) const {
    int result = offset_;
    for (const auto& [loop, c] : coeffs_) {
        const auto it = values.find(loop);
        SLPWLO_CHECK(it != values.end(),
                     "affine index references a loop with no value bound");
        result += c * it->second;
    }
    return result;
}

void Affine::prune() {
    for (auto it = coeffs_.begin(); it != coeffs_.end();) {
        if (it->second == 0) {
            it = coeffs_.erase(it);
        } else {
            ++it;
        }
    }
}

std::string Affine::str() const {
    std::ostringstream os;
    bool first = true;
    for (const auto& [loop, c] : coeffs_) {
        if (!first) os << (c >= 0 ? " + " : " - ");
        const int mag = first ? c : std::abs(c);
        first = false;
        if (mag == 1) {
            os << "L" << loop.index();
        } else if (mag == -1) {
            os << "-L" << loop.index();
        } else {
            os << mag << "*L" << loop.index();
        }
    }
    if (first) {
        os << offset_;
    } else if (offset_ > 0) {
        os << " + " << offset_;
    } else if (offset_ < 0) {
        os << " - " << -offset_;
    }
    return os.str();
}

}  // namespace slpwlo
