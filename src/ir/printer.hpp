// Human-readable kernel dump, used for debugging and golden tests.
#pragma once

#include <string>

#include "ir/kernel.hpp"

namespace slpwlo {

/// Render the whole kernel (declarations + loop nest + ops).
std::string print_kernel(const Kernel& kernel);

/// Render a single op, e.g. "%t3 = mul %t1, %t2" or "store y[L0], acc".
std::string print_op(const Kernel& kernel, OpId id);

}  // namespace slpwlo
