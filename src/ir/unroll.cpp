#include "ir/unroll.hpp"

#include <map>

#include "support/diagnostics.hpp"

namespace slpwlo {
namespace {

class Unroller {
public:
    explicit Unroller(const Kernel& src) : src_(src), dst_(src.name()) {}

    Kernel run() {
        for (const ArrayDecl& a : src_.arrays()) dst_.add_array(a);
        // User variables are copied 1:1 so VarIds stay stable; temporaries
        // are re-created per instance on demand.
        for (const VarDecl& v : src_.vars()) {
            VarDecl copy = v;
            if (copy.is_temp) copy.name += ".dead";  // placeholder, unused
            dst_.add_var(std::move(copy));
        }
        Ctx ctx;
        dst_.body_mut() = copy_region(src_.body(), ctx);
        dst_.invalidate_structure();
        return std::move(dst_);
    }

private:
    struct Ctx {
        std::map<LoopId, Affine> subst;   // old loop var -> new-index affine
        std::map<VarId, VarId> temp_map;  // old temp -> instance temp
    };

    Affine rewrite_index(const Affine& index, const Ctx& ctx) const {
        Affine out = index;
        for (const auto& [old_loop, replacement] : ctx.subst) {
            out = out.substituted(old_loop, replacement);
        }
        return out;
    }

    VarId map_var(VarId v, Ctx& ctx, bool is_def) {
        if (!v.valid()) return v;
        if (!src_.var(v).is_temp) return v;
        if (is_def) {
            VarDecl decl;
            decl.name = "%u" + std::to_string(temp_counter_++);
            decl.is_temp = true;
            const VarId fresh = dst_.add_var(std::move(decl));
            ctx.temp_map[v] = fresh;
            return fresh;
        }
        const auto it = ctx.temp_map.find(v);
        SLPWLO_ASSERT(it != ctx.temp_map.end(),
                      "temporary read before definition during unroll");
        return it->second;
    }

    void copy_block(BlockId block, Ctx& ctx, Region& out) {
        // Merge into a trailing block so unrolled instances share one BB.
        BlockId target;
        if (!out.items.empty() &&
            out.items.back().kind == RegionItem::Kind::Block) {
            target = out.items.back().block;
        } else {
            target = dst_.add_block();
            out.items.push_back(RegionItem::make_block(target));
        }
        for (const OpId op_id : src_.block(block).ops) {
            Op op = src_.op(op_id);
            for (int i = 0; i < op.num_args(); ++i) {
                op.args[i] = map_var(op.args[i], ctx, /*is_def=*/false);
            }
            if (op.is_memory()) op.index = rewrite_index(op.index, ctx);
            if (op.dest.valid()) op.dest = map_var(op.dest, ctx, /*is_def=*/true);
            const OpId new_id = dst_.add_op(std::move(op));
            dst_.block_mut(target).ops.push_back(new_id);
        }
    }

    Region copy_region(const Region& region, Ctx& ctx) {
        Region out;
        for (const RegionItem& item : region.items) {
            if (item.kind == RegionItem::Kind::Block) {
                copy_block(item.block, ctx, out);
                continue;
            }
            const Loop& loop = src_.loop(item.loop);
            const int trip = loop.trip_count();
            int factor = loop.unroll == 0 ? trip : loop.unroll;
            SLPWLO_CHECK(factor >= 1 && trip % factor == 0,
                         "unroll factor " + std::to_string(factor) +
                             " does not divide trip count " +
                             std::to_string(trip) + " of loop `" +
                             loop.var_name + "`");
            if (factor == trip) {
                // Full unroll: inline `trip` instances, no residual loop.
                for (int i = 0; i < trip; ++i) {
                    Ctx inst = ctx;
                    inst.subst[loop.id] = Affine(loop.begin + i);
                    Region inlined = copy_region(loop.body, inst);
                    splice(out, std::move(inlined));
                }
            } else if (factor == 1) {
                Loop copy;
                copy.var_name = loop.var_name;
                copy.begin = loop.begin;
                copy.end = loop.end;
                copy.unroll = 1;
                const LoopId new_id = dst_.add_loop(std::move(copy));
                Ctx inner = ctx;
                inner.subst[loop.id] = Affine::var(new_id);
                dst_.loop_mut(new_id).body = copy_region(loop.body, inner);
                out.items.push_back(RegionItem::make_loop(new_id));
            } else {
                // Partial unroll: new loop over trip/factor, `factor`
                // instances of the body with i := begin + factor*j + lane.
                Loop copy;
                copy.var_name = loop.var_name + ".u";
                copy.begin = 0;
                copy.end = trip / factor;
                copy.unroll = 1;
                const LoopId new_id = dst_.add_loop(std::move(copy));
                Region body;
                for (int lane = 0; lane < factor; ++lane) {
                    Ctx inst = ctx;
                    inst.subst[loop.id] =
                        Affine::var(new_id) * factor + (loop.begin + lane);
                    Region inlined = copy_region(loop.body, inst);
                    splice(body, std::move(inlined));
                }
                dst_.loop_mut(new_id).body = std::move(body);
                out.items.push_back(RegionItem::make_loop(new_id));
            }
        }
        return out;
    }

    /// Append `src` items to `dst`, merging a leading block of `src` into a
    /// trailing block of `dst`.
    void splice(Region& dst, Region&& src) {
        for (RegionItem& item : src.items) {
            if (item.kind == RegionItem::Kind::Block && !dst.items.empty() &&
                dst.items.back().kind == RegionItem::Kind::Block) {
                BasicBlock& into = dst_.block_mut(dst.items.back().block);
                const BasicBlock& from = dst_.block(item.block);
                into.ops.insert(into.ops.end(), from.ops.begin(),
                                from.ops.end());
                dst_.block_mut(item.block).ops.clear();
            } else {
                dst.items.push_back(item);
            }
        }
    }

    const Kernel& src_;
    Kernel dst_;
    int temp_counter_ = 0;
};

}  // namespace

Kernel unroll_kernel(const Kernel& kernel) { return Unroller(kernel).run(); }

}  // namespace slpwlo
