// Loop unrolling pass.
//
// Consumes the per-loop `unroll` attribute (1 = keep, 0 = full, U = by U)
// and produces a new kernel in which unrolled body instances are merged
// into common basic blocks — this is what exposes SLP candidates to the
// extractor (the paper unrolls the FIR/IIR tap loops by 4 and the 3x3
// convolution fully, Section V.C).
//
// Temporaries are re-created per unrolled instance to preserve single
// assignment; user variables (accumulators) keep their identity, which
// yields the serial accumulation chains the dependence analysis must see.
#pragma once

#include "ir/kernel.hpp"

namespace slpwlo {

/// Apply all unroll attributes. Throws Error if a partial unroll factor does
/// not divide the trip count (pad the loop instead, as the built-in IIR
/// kernel does).
Kernel unroll_kernel(const Kernel& kernel);

}  // namespace slpwlo
