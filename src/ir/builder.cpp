#include "ir/builder.hpp"

#include "support/diagnostics.hpp"

namespace slpwlo {

KernelBuilder::KernelBuilder(std::string name)
    : kernel_(std::make_unique<Kernel>(std::move(name))) {
    open_block_.push_back(BlockId());
}

ArrayId KernelBuilder::input(const std::string& name, int size,
                             const Interval& range) {
    ArrayDecl decl;
    decl.name = name;
    decl.size = size;
    decl.storage = StorageClass::Input;
    decl.declared_range = range;
    return kernel_->add_array(std::move(decl));
}

ArrayId KernelBuilder::param(const std::string& name,
                             std::vector<double> values) {
    SLPWLO_CHECK(!values.empty(), "param array must have values: " + name);
    ArrayDecl decl;
    decl.name = name;
    decl.size = static_cast<int>(values.size());
    decl.storage = StorageClass::Param;
    decl.values = std::move(values);
    return kernel_->add_array(std::move(decl));
}

ArrayId KernelBuilder::output(const std::string& name, int size) {
    ArrayDecl decl;
    decl.name = name;
    decl.size = size;
    decl.storage = StorageClass::Output;
    return kernel_->add_array(std::move(decl));
}

ArrayId KernelBuilder::buffer(const std::string& name, int size) {
    ArrayDecl decl;
    decl.name = name;
    decl.size = size;
    decl.storage = StorageClass::Buffer;
    return kernel_->add_array(std::move(decl));
}

VarId KernelBuilder::user_var(const std::string& name) {
    VarDecl decl;
    decl.name = name;
    decl.is_temp = false;
    return kernel_->add_var(std::move(decl));
}

LoopId KernelBuilder::begin_loop(const std::string& var, int begin, int end,
                                 int unroll) {
    SLPWLO_CHECK(begin < end, "loop must have a positive trip count: " + var);
    SLPWLO_CHECK(unroll >= 0, "unroll factor must be >= 0: " + var);
    Loop loop;
    loop.var_name = var;
    loop.begin = begin;
    loop.end = end;
    loop.unroll = unroll;
    const LoopId id = kernel_->add_loop(std::move(loop));
    current_region().items.push_back(RegionItem::make_loop(id));
    // Close the enclosing region's open block and start a nested level.
    open_block_.back() = BlockId();
    loop_stack_.push_back(id);
    open_block_.push_back(BlockId());
    return id;
}

void KernelBuilder::end_loop() {
    SLPWLO_CHECK(!loop_stack_.empty(), "end_loop with no open loop");
    loop_stack_.pop_back();
    open_block_.pop_back();
    kernel_->invalidate_structure();
}

VarId KernelBuilder::set_const(VarId dest, double value) {
    Op op;
    op.kind = OpKind::Const;
    op.const_value = value;
    return emit(std::move(op), dest);
}

VarId KernelBuilder::copy(VarId src, VarId dest) {
    Op op;
    op.kind = OpKind::Copy;
    op.args[0] = src;
    return emit(std::move(op), dest);
}

VarId KernelBuilder::load(ArrayId array, const Affine& index, VarId dest) {
    Op op;
    op.kind = OpKind::Load;
    op.array = array;
    op.index = index;
    return emit(std::move(op), dest);
}

void KernelBuilder::store(ArrayId array, const Affine& index, VarId value) {
    Op op;
    op.kind = OpKind::Store;
    op.array = array;
    op.index = index;
    op.args[0] = value;
    const OpId id = kernel_->add_op(std::move(op));
    append_op(id);
}

VarId KernelBuilder::add(VarId a, VarId b, VarId dest) {
    Op op;
    op.kind = OpKind::Add;
    op.args = {a, b};
    return emit(std::move(op), dest);
}

VarId KernelBuilder::sub(VarId a, VarId b, VarId dest) {
    Op op;
    op.kind = OpKind::Sub;
    op.args = {a, b};
    return emit(std::move(op), dest);
}

VarId KernelBuilder::mul(VarId a, VarId b, VarId dest) {
    Op op;
    op.kind = OpKind::Mul;
    op.args = {a, b};
    return emit(std::move(op), dest);
}

VarId KernelBuilder::div(VarId a, VarId b, VarId dest) {
    Op op;
    op.kind = OpKind::Div;
    op.args = {a, b};
    return emit(std::move(op), dest);
}

VarId KernelBuilder::neg(VarId a, VarId dest) {
    Op op;
    op.kind = OpKind::Neg;
    op.args[0] = a;
    return emit(std::move(op), dest);
}

Kernel KernelBuilder::take() {
    SLPWLO_CHECK(loop_stack_.empty(), "take() with open loops");
    SLPWLO_CHECK(!taken_, "take() called twice");
    taken_ = true;
    Kernel out = std::move(*kernel_);
    out.invalidate_structure();
    return out;
}

VarId KernelBuilder::fresh_temp() {
    VarDecl decl;
    decl.name = "%t" + std::to_string(temp_counter_++);
    decl.is_temp = true;
    return kernel_->add_var(std::move(decl));
}

VarId KernelBuilder::emit(Op op, VarId dest) {
    if (!dest.valid()) dest = fresh_temp();
    op.dest = dest;
    const OpId id = kernel_->add_op(std::move(op));
    append_op(id);
    return dest;
}

void KernelBuilder::append_op(OpId id) {
    BlockId& open = open_block_.back();
    if (!open.valid()) {
        open = kernel_->add_block();
        current_region().items.push_back(RegionItem::make_block(open));
    }
    kernel_->block_mut(open).ops.push_back(id);
}

Region& KernelBuilder::current_region() {
    if (loop_stack_.empty()) return kernel_->body_mut();
    return kernel_->loop_mut(loop_stack_.back()).body;
}

}  // namespace slpwlo
