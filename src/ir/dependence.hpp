// Dependence analysis.
//
// BlockDeps computes, for one basic block, the direct and transitive
// dependences between its operations (flow/anti/output dependences through
// scalar variables, plus memory dependences through arrays using affine
// index comparison). SLP candidate legality ("independent operations") and
// conflict cycles are decided on top of this (Section II.A / III.B).
//
// Loop-carried dependence distances (store in iteration i feeding a load in
// iteration i+d of the same loop) bound the recurrence-constrained
// initiation interval of the VLIW timing model (IIR feedback).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ir/kernel.hpp"

namespace slpwlo {

/// True if two accesses to the same array may reference the same element
/// within one iteration of all enclosing loops.
bool may_alias(const Affine& a, const Affine& b);

/// If a store with index `store_idx` in iteration i of `loop` writes the
/// element read by `load_idx` in iteration i + d (d >= 1), returns d.
/// Returns nullopt when no such cross-iteration dependence exists, and
/// 1 (the conservative worst case) when the indices are incomparable.
std::optional<int> loop_carried_distance(const Affine& store_idx,
                                         const Affine& load_idx, LoopId loop);

class BlockDeps {
public:
    BlockDeps(const Kernel& kernel, BlockId block);

    int size() const { return static_cast<int>(direct_.size()); }

    /// Direct dependence predecessors (positions within the block) of the op
    /// at position `pos`.
    const std::vector<int>& direct_preds(int pos) const { return direct_[pos]; }

    /// True if the op at `later` transitively depends on the op at `earlier`
    /// (earlier < later in program order).
    bool depends(int later, int earlier) const;

    /// True if no dependence path connects the two ops in either direction,
    /// i.e. they may execute in parallel (SLP group legality).
    bool independent(int a, int b) const;

private:
    std::vector<std::vector<int>> direct_;
    /// reach_[i] = bitset over positions j < i that i transitively depends on.
    std::vector<std::vector<uint64_t>> reach_;
};

}  // namespace slpwlo
