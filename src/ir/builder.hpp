// KernelBuilder: the fluent construction API for kernels.
//
// This is the primary way library users define a system to optimize (the
// frontend DSL lowers to the same calls). Example:
//
//   KernelBuilder b("dot4");
//   ArrayId x = b.input("x", 16, {-1.0, 1.0});
//   ArrayId c = b.param("c", {0.5, -0.25, 0.125, 0.3});
//   ArrayId y = b.output("y", 4);
//   VarId acc = b.user_var("acc");
//   LoopId n = b.begin_loop("n", 0, 4);
//     b.set_const(acc, 0.0);
//     LoopId k = b.begin_loop("k", 0, 4);
//       VarId prod = b.mul(b.load(x, Affine::var(k)), b.load(c, Affine::var(k)));
//       b.add(acc, prod, acc);                 // acc = acc + prod
//     b.end_loop();
//     b.store(y, Affine::var(n), acc);
//   b.end_loop();
//   Kernel kernel = b.take();
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/kernel.hpp"

namespace slpwlo {

class KernelBuilder {
public:
    explicit KernelBuilder(std::string name);

    // --- declarations -------------------------------------------------------
    /// Input stream array with a declared value range.
    ArrayId input(const std::string& name, int size, const Interval& range);
    /// Coefficient array with compile-time values.
    ArrayId param(const std::string& name, std::vector<double> values);
    /// Output array.
    ArrayId output(const std::string& name, int size);
    /// Read-write scratch array.
    ArrayId buffer(const std::string& name, int size);
    /// Named user variable (multi-assignment allowed).
    VarId user_var(const std::string& name);

    // --- structure ------------------------------------------------------------
    /// Open `for (var = begin; var < end; ++var)`; `unroll` is consumed by the
    /// unroll pass (1 = keep, 0 = full unroll).
    LoopId begin_loop(const std::string& var, int begin, int end, int unroll = 1);
    void end_loop();

    // --- operations (emitted into the innermost open region) ------------------
    /// dest = literal; returns a fresh temp when dest is invalid.
    VarId set_const(VarId dest, double value);
    VarId constant(double value) { return set_const(VarId(), value); }
    VarId copy(VarId src, VarId dest = VarId());
    VarId load(ArrayId array, const Affine& index, VarId dest = VarId());
    void store(ArrayId array, const Affine& index, VarId value);
    VarId add(VarId a, VarId b, VarId dest = VarId());
    VarId sub(VarId a, VarId b, VarId dest = VarId());
    VarId mul(VarId a, VarId b, VarId dest = VarId());
    VarId div(VarId a, VarId b, VarId dest = VarId());
    VarId neg(VarId a, VarId dest = VarId());

    /// Affine index helper for the loop variable opened by begin_loop.
    Affine idx(LoopId loop) const { return Affine::var(loop); }

    /// Finish construction; the builder must have no open loops.
    Kernel take();

private:
    VarId fresh_temp();
    VarId emit(Op op, VarId dest);
    void append_op(OpId id);
    Region& current_region();

    std::unique_ptr<Kernel> kernel_;
    std::vector<LoopId> loop_stack_;
    /// Block currently receiving ops in each open region level (invalid when
    /// the next op must open a new block).
    std::vector<BlockId> open_block_;
    int temp_counter_ = 0;
    bool taken_ = false;
};

}  // namespace slpwlo
