// Affine array-index expressions: sum(coeff_i * loopvar_i) + offset.
//
// Affine indices let the dependence analysis decide exactly whether two
// accesses to the same array can alias within a loop iteration, and whether
// consecutive accesses are memory-adjacent — the property that makes SLP
// vector loads/stores cheap (Section II.A of the paper).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "ir/type.hpp"

namespace slpwlo {

class Affine {
public:
    /// The constant index `offset`.
    Affine() = default;
    explicit Affine(int offset) : offset_(offset) {}

    /// The index consisting of a single loop variable.
    static Affine var(LoopId loop);

    int offset() const { return offset_; }
    /// Coefficient of `loop` (0 if absent).
    int coeff(LoopId loop) const;
    const std::map<LoopId, int>& coeffs() const { return coeffs_; }

    bool is_constant() const { return coeffs_.empty(); }

    Affine operator+(const Affine& rhs) const;
    Affine operator-(const Affine& rhs) const;
    Affine operator+(int k) const;
    Affine operator-(int k) const;
    Affine operator*(int k) const;
    Affine operator-() const;

    bool operator==(const Affine& rhs) const;
    bool operator!=(const Affine& rhs) const { return !(*this == rhs); }

    /// True if both indices have identical loop-variable coefficients, i.e.
    /// their difference is a compile-time constant.
    bool comparable(const Affine& rhs) const;

    /// offset difference this - rhs if comparable(), otherwise nullopt.
    std::optional<int> constant_difference(const Affine& rhs) const;

    /// Substitute `loop := replacement + delta` (used by the unroller:
    /// k -> unroll_factor * k' + lane).
    Affine substituted(LoopId loop, const Affine& replacement) const;

    /// Evaluate given concrete loop-variable values. Loops not present in
    /// `values` must have coefficient zero; otherwise an Error is thrown.
    int evaluate(const std::map<LoopId, int>& values) const;

    std::string str() const;

private:
    void prune();

    std::map<LoopId, int> coeffs_;
    int offset_ = 0;
};

}  // namespace slpwlo
