#include "ir/op.hpp"

namespace slpwlo {

std::string to_string(OpKind kind) {
    switch (kind) {
        case OpKind::Const: return "const";
        case OpKind::Copy: return "copy";
        case OpKind::Load: return "load";
        case OpKind::Store: return "store";
        case OpKind::Add: return "add";
        case OpKind::Sub: return "sub";
        case OpKind::Mul: return "mul";
        case OpKind::Div: return "div";
        case OpKind::Neg: return "neg";
    }
    return "<invalid-op>";
}

int operand_count(OpKind kind) {
    switch (kind) {
        case OpKind::Const:
        case OpKind::Load:
            return 0;
        case OpKind::Copy:
        case OpKind::Store:
        case OpKind::Neg:
            return 1;
        case OpKind::Add:
        case OpKind::Sub:
        case OpKind::Mul:
        case OpKind::Div:
            return 2;
    }
    return 0;
}

bool is_binary_arith(OpKind kind) {
    return kind == OpKind::Add || kind == OpKind::Sub || kind == OpKind::Mul ||
           kind == OpKind::Div;
}

bool is_commutative(OpKind kind) {
    return kind == OpKind::Add || kind == OpKind::Mul;
}

}  // namespace slpwlo
