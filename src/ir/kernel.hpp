// Kernel: the top-level IR container.
//
// A kernel is a loop-nest of straight-line basic blocks over scalar
// variables and arrays, modelling one "system" in the paper's sense: a
// stream-processing routine whose outermost loop enumerates samples.
// Example shape (64-tap FIR, inner loop unrolled by 4):
//
//   loop n = 0..512 {          <- sample loop
//     bb { acc0 = 0; ... }
//     loop k = 0..16 {         <- unrolled tap loop
//       bb { 4 taps worth of loads / muls / accumulates }
//     }
//     bb { y[n] = acc0+acc1+acc2+acc3 }
//   }
#pragma once

#include <string>
#include <vector>

#include "ir/op.hpp"
#include "ir/type.hpp"
#include "support/interval.hpp"

namespace slpwlo {

struct ArrayDecl {
    std::string name;
    int size = 0;
    StorageClass storage = StorageClass::Buffer;
    /// Declared per-element value range (Input arrays). Following the
    /// Q-format convention, [-1, 1] is interpreted as [-1, 1).
    Interval declared_range;
    /// Compile-time element values (Param arrays).
    std::vector<double> values;
};

struct VarDecl {
    std::string name;
    /// Compiler-generated expression temporary (single-assignment by
    /// construction) as opposed to a user variable such as an accumulator.
    bool is_temp = false;
};

/// One entry of a Region: either a basic block or a nested loop.
struct RegionItem {
    enum class Kind { Block, Loop };
    Kind kind = Kind::Block;
    BlockId block;
    LoopId loop;

    static RegionItem make_block(BlockId b);
    static RegionItem make_loop(LoopId l);
};

/// An ordered sequence of blocks and loops.
struct Region {
    std::vector<RegionItem> items;
};

/// Counted loop, normalized to `for (v = begin; v < end; ++v)`.
struct Loop {
    LoopId id;
    std::string var_name;
    int begin = 0;
    int end = 0;
    /// Unroll request consumed by the unroll pass (1 = keep as is;
    /// 0 = fully unroll).
    int unroll = 1;
    Region body;

    int trip_count() const { return end - begin; }
};

/// Straight-line sequence of operations in program order.
struct BasicBlock {
    BlockId id;
    std::vector<OpId> ops;
};

class Kernel {
public:
    explicit Kernel(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    // --- declaration tables ------------------------------------------------
    const std::vector<ArrayDecl>& arrays() const { return arrays_; }
    const std::vector<VarDecl>& vars() const { return vars_; }
    const std::vector<Op>& ops() const { return ops_; }
    const std::vector<Loop>& loops() const { return loops_; }
    const std::vector<BasicBlock>& blocks() const { return blocks_; }

    const ArrayDecl& array(ArrayId id) const;
    const VarDecl& var(VarId id) const;
    const Op& op(OpId id) const;
    const Loop& loop(LoopId id) const;
    const BasicBlock& block(BlockId id) const;

    Op& op_mut(OpId id);
    Loop& loop_mut(LoopId id);
    BasicBlock& block_mut(BlockId id);
    ArrayDecl& array_mut(ArrayId id);

    /// Top-level region (typically a single sample loop).
    const Region& body() const { return body_; }
    Region& body_mut() { return body_; }

    // --- construction (used by KernelBuilder and passes) --------------------
    ArrayId add_array(ArrayDecl decl);
    VarId add_var(VarDecl decl);
    OpId add_op(Op op);
    LoopId add_loop(Loop loop);
    BlockId add_block();

    /// Look up an array/variable by name; returns an invalid id if absent.
    ArrayId find_array(std::string_view name) const;
    VarId find_var(std::string_view name) const;

    // --- structural queries --------------------------------------------------
    /// Loops enclosing each block, outermost first. Computed on demand and
    /// cached; invalidated by structural edits through invalidate_structure().
    const std::vector<LoopId>& enclosing_loops(BlockId block) const;

    /// The chain of loops enclosing `loop`, outermost first, excluding it.
    std::vector<LoopId> enclosing_loops(LoopId loop) const;

    /// Number of times a block executes per full kernel run.
    long long block_frequency(BlockId block) const;

    /// Number of times a block executes per iteration of the outermost loop
    /// that encloses it (1 if the block is directly under that loop).
    long long block_frequency_per_sample(BlockId block) const;

    /// All blocks in execution order.
    std::vector<BlockId> blocks_in_order() const;

    /// Invalidate cached structural queries after editing the region tree.
    void invalidate_structure() const;

private:
    void ensure_structure() const;

    std::string name_;
    std::vector<ArrayDecl> arrays_;
    std::vector<VarDecl> vars_;
    std::vector<Op> ops_;
    std::vector<Loop> loops_;
    std::vector<BasicBlock> blocks_;
    Region body_;

    mutable bool structure_valid_ = false;
    mutable std::vector<std::vector<LoopId>> block_loops_;
    mutable std::vector<BlockId> block_order_;
};

}  // namespace slpwlo
