#include "ir/dependence.hpp"

#include <map>

#include "support/diagnostics.hpp"

namespace slpwlo {

bool may_alias(const Affine& a, const Affine& b) {
    const auto diff = a.constant_difference(b);
    if (!diff.has_value()) return true;  // incomparable: be conservative
    return *diff == 0;
}

std::optional<int> loop_carried_distance(const Affine& store_idx,
                                         const Affine& load_idx, LoopId loop) {
    const int cs = store_idx.coeff(loop);
    const int cl = load_idx.coeff(loop);
    // Compare the index parts that do not involve `loop`.
    const Affine store_rest = store_idx - Affine::var(loop) * cs;
    const Affine load_rest = load_idx - Affine::var(loop) * cl;
    if (!store_rest.comparable(load_rest)) {
        return 1;  // incomparable across iterations: conservative distance 1
    }
    if (cs != cl) {
        // The accesses drift relative to each other; they may coincide at
        // isolated iterations. Be conservative.
        return 1;
    }
    if (cl == 0) {
        // Same element every iteration (e.g. accumulator spilled to memory):
        // if the constant parts match it is a distance-1 recurrence.
        const int delta = store_rest.offset() - load_rest.offset();
        if (delta == 0) return 1;
        return std::nullopt;
    }
    // store(i) == load(i + d)  <=>  s0 + c*i == l0 + c*(i+d)
    //                          <=>  d == (s0 - l0) / c
    const int delta = store_rest.offset() - load_rest.offset();
    if (delta % cl != 0) return std::nullopt;
    const int d = delta / cl;
    if (d >= 1) return d;
    return std::nullopt;
}

BlockDeps::BlockDeps(const Kernel& kernel, BlockId block) {
    const std::vector<OpId>& ops = kernel.block(block).ops;
    const int n = static_cast<int>(ops.size());
    direct_.assign(n, {});
    const int words = (n + 63) / 64;
    reach_.assign(n, std::vector<uint64_t>(words, 0));

    std::map<VarId, int> last_write;            // var -> position
    std::map<VarId, std::vector<int>> readers;  // var -> reads since last write
    // Memory accesses so far: (position, is_store) per array.
    struct MemAccess {
        int pos;
        bool is_store;
        Affine index;
    };
    std::map<ArrayId, std::vector<MemAccess>> mem;

    auto add_dep = [&](int later, int earlier) {
        if (earlier < 0 || earlier == later) return;
        SLPWLO_ASSERT(earlier < later, "dependence must point backwards");
        direct_[later].push_back(earlier);
    };

    for (int pos = 0; pos < n; ++pos) {
        const Op& op = kernel.op(ops[pos]);

        // Flow dependences through scalar reads.
        for (int i = 0; i < op.num_args(); ++i) {
            const VarId v = op.args[i];
            const auto it = last_write.find(v);
            if (it != last_write.end()) add_dep(pos, it->second);
            readers[v].push_back(pos);
        }

        // Memory dependences.
        if (op.is_memory()) {
            auto& accesses = mem[op.array];
            const bool is_store = op.kind == OpKind::Store;
            for (const MemAccess& prev : accesses) {
                if (!is_store && !prev.is_store) continue;  // load-load: none
                if (may_alias(op.index, prev.index)) add_dep(pos, prev.pos);
            }
            accesses.push_back(MemAccess{pos, is_store, op.index});
        }

        // Anti and output dependences through the destination.
        if (op.dest.valid()) {
            const auto wit = last_write.find(op.dest);
            if (wit != last_write.end()) add_dep(pos, wit->second);
            const auto rit = readers.find(op.dest);
            if (rit != readers.end()) {
                for (const int r : rit->second) add_dep(pos, r);
                rit->second.clear();
            }
            last_write[op.dest] = pos;
        }

        // Transitive closure: union predecessor reach sets.
        for (const int pred : direct_[pos]) {
            reach_[pos][pred / 64] |= (1ULL << (pred % 64));
            for (int w = 0; w < words; ++w) {
                reach_[pos][w] |= reach_[pred][w];
            }
        }
    }
}

bool BlockDeps::depends(int later, int earlier) const {
    SLPWLO_ASSERT(later >= 0 && later < size() && earlier >= 0 &&
                      earlier < size(),
                  "position out of range");
    if (earlier >= later) return false;
    return (reach_[later][earlier / 64] >> (earlier % 64)) & 1ULL;
}

bool BlockDeps::independent(int a, int b) const {
    if (a == b) return false;
    const int later = std::max(a, b);
    const int earlier = std::min(a, b);
    return !depends(later, earlier);
}

}  // namespace slpwlo
