#include "ir/printer.hpp"

#include <sstream>

#include "support/text.hpp"

namespace slpwlo {
namespace {

std::string var_name(const Kernel& kernel, VarId id) {
    if (!id.valid()) return "<novar>";
    return kernel.var(id).name;
}

void print_region(const Kernel& kernel, const Region& region, int indent,
                  std::ostringstream& os) {
    const std::string pad(static_cast<size_t>(indent) * 2, ' ');
    for (const RegionItem& item : region.items) {
        if (item.kind == RegionItem::Kind::Block) {
            os << pad << "bb" << item.block.index() << " {\n";
            for (const OpId op : kernel.block(item.block).ops) {
                os << pad << "  " << print_op(kernel, op) << "\n";
            }
            os << pad << "}\n";
        } else {
            const Loop& loop = kernel.loop(item.loop);
            os << pad << "loop " << loop.var_name << " (L" << loop.id.index()
               << ") = " << loop.begin << ".." << loop.end;
            if (loop.unroll != 1) os << " unroll " << loop.unroll;
            os << " {\n";
            print_region(kernel, loop.body, indent + 1, os);
            os << pad << "}\n";
        }
    }
}

}  // namespace

std::string print_op(const Kernel& kernel, OpId id) {
    const Op& op = kernel.op(id);
    std::ostringstream os;
    os << "o" << id.index() << ": ";
    switch (op.kind) {
        case OpKind::Const:
            os << var_name(kernel, op.dest) << " = const "
               << format_double(op.const_value, 12);
            break;
        case OpKind::Copy:
            os << var_name(kernel, op.dest) << " = copy "
               << var_name(kernel, op.args[0]);
            break;
        case OpKind::Load:
            os << var_name(kernel, op.dest) << " = load "
               << kernel.array(op.array).name << "[" << op.index.str() << "]";
            break;
        case OpKind::Store:
            os << "store " << kernel.array(op.array).name << "["
               << op.index.str() << "], " << var_name(kernel, op.args[0]);
            break;
        case OpKind::Neg:
            os << var_name(kernel, op.dest) << " = neg "
               << var_name(kernel, op.args[0]);
            break;
        default:
            os << var_name(kernel, op.dest) << " = " << to_string(op.kind)
               << " " << var_name(kernel, op.args[0]) << ", "
               << var_name(kernel, op.args[1]);
            break;
    }
    return os.str();
}

std::string print_kernel(const Kernel& kernel) {
    std::ostringstream os;
    os << "kernel " << kernel.name() << " {\n";
    for (const ArrayDecl& a : kernel.arrays()) {
        os << "  " << to_string(a.storage) << " " << a.name << "[" << a.size
           << "]";
        if (a.storage == StorageClass::Input) {
            os << " range " << a.declared_range.str();
        }
        if (a.storage == StorageClass::Param) {
            os << " = {" << a.values.size() << " values}";
        }
        os << "\n";
    }
    print_region(kernel, kernel.body(), 1, os);
    os << "}\n";
    return os.str();
}

}  // namespace slpwlo
