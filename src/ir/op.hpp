// IR operations.
//
// Every non-Store operation defines exactly one scalar variable (its dest);
// Store writes an array element. Operations are owned by the Kernel and
// referenced from basic blocks by OpId in program order.
#pragma once

#include <array>
#include <string>

#include "ir/affine.hpp"
#include "ir/type.hpp"

namespace slpwlo {

enum class OpKind {
    Const,  ///< dest = literal
    Copy,   ///< dest = arg0
    Load,   ///< dest = array[index]
    Store,  ///< array[index] = arg0
    Add,    ///< dest = arg0 + arg1
    Sub,    ///< dest = arg0 - arg1
    Mul,    ///< dest = arg0 * arg1
    Div,    ///< dest = arg0 / arg1
    Neg,    ///< dest = -arg0
};

std::string to_string(OpKind kind);

/// Number of variable operands consumed by an op of this kind.
int operand_count(OpKind kind);

/// True for the binary arithmetic kinds (Add, Sub, Mul, Div).
bool is_binary_arith(OpKind kind);

/// True for kinds whose operands commute (Add, Mul).
bool is_commutative(OpKind kind);

struct Op {
    OpKind kind = OpKind::Const;
    /// Defined variable; invalid for Store.
    VarId dest;
    /// Variable operands; unused slots are invalid.
    std::array<VarId, 2> args{};
    /// Literal for Const.
    double const_value = 0.0;
    /// Array and index for Load/Store.
    ArrayId array;
    Affine index;

    int num_args() const { return operand_count(kind); }
    bool is_memory() const { return kind == OpKind::Load || kind == OpKind::Store; }
};

}  // namespace slpwlo
