#include "ir/kernel.hpp"

#include "support/diagnostics.hpp"

namespace slpwlo {

RegionItem RegionItem::make_block(BlockId b) {
    RegionItem item;
    item.kind = Kind::Block;
    item.block = b;
    return item;
}

RegionItem RegionItem::make_loop(LoopId l) {
    RegionItem item;
    item.kind = Kind::Loop;
    item.loop = l;
    return item;
}

namespace {
template <class T, class IdT>
const T& at(const std::vector<T>& table, IdT id, const char* what) {
    SLPWLO_ASSERT(id.valid() && id.index() < static_cast<int32_t>(table.size()),
                  std::string("invalid ") + what + " id");
    return table[id.index()];
}
}  // namespace

const ArrayDecl& Kernel::array(ArrayId id) const { return at(arrays_, id, "array"); }
const VarDecl& Kernel::var(VarId id) const { return at(vars_, id, "var"); }
const Op& Kernel::op(OpId id) const { return at(ops_, id, "op"); }
const Loop& Kernel::loop(LoopId id) const { return at(loops_, id, "loop"); }
const BasicBlock& Kernel::block(BlockId id) const { return at(blocks_, id, "block"); }

Op& Kernel::op_mut(OpId id) { return const_cast<Op&>(op(id)); }
Loop& Kernel::loop_mut(LoopId id) { return const_cast<Loop&>(loop(id)); }
BasicBlock& Kernel::block_mut(BlockId id) { return const_cast<BasicBlock&>(block(id)); }
ArrayDecl& Kernel::array_mut(ArrayId id) { return const_cast<ArrayDecl&>(array(id)); }

ArrayId Kernel::add_array(ArrayDecl decl) {
    SLPWLO_CHECK(!find_array(decl.name).valid(),
                 "duplicate array name: " + decl.name);
    SLPWLO_CHECK(decl.size > 0, "array size must be positive: " + decl.name);
    arrays_.push_back(std::move(decl));
    return ArrayId(static_cast<int32_t>(arrays_.size()) - 1);
}

VarId Kernel::add_var(VarDecl decl) {
    if (!decl.is_temp) {
        SLPWLO_CHECK(!find_var(decl.name).valid(),
                     "duplicate variable name: " + decl.name);
    }
    vars_.push_back(std::move(decl));
    return VarId(static_cast<int32_t>(vars_.size()) - 1);
}

OpId Kernel::add_op(Op op) {
    ops_.push_back(std::move(op));
    return OpId(static_cast<int32_t>(ops_.size()) - 1);
}

LoopId Kernel::add_loop(Loop loop) {
    const LoopId id(static_cast<int32_t>(loops_.size()));
    loop.id = id;
    loops_.push_back(std::move(loop));
    invalidate_structure();
    return id;
}

BlockId Kernel::add_block() {
    const BlockId id(static_cast<int32_t>(blocks_.size()));
    BasicBlock bb;
    bb.id = id;
    blocks_.push_back(std::move(bb));
    invalidate_structure();
    return id;
}

ArrayId Kernel::find_array(std::string_view name) const {
    for (size_t i = 0; i < arrays_.size(); ++i) {
        if (arrays_[i].name == name) return ArrayId(static_cast<int32_t>(i));
    }
    return ArrayId();
}

VarId Kernel::find_var(std::string_view name) const {
    for (size_t i = 0; i < vars_.size(); ++i) {
        if (!vars_[i].is_temp && vars_[i].name == name) {
            return VarId(static_cast<int32_t>(i));
        }
    }
    return VarId();
}

void Kernel::invalidate_structure() const { structure_valid_ = false; }

void Kernel::ensure_structure() const {
    if (structure_valid_) return;
    block_loops_.assign(blocks_.size(), {});
    block_order_.clear();

    // Depth-first walk of the region tree collecting enclosing loops.
    struct Walker {
        const Kernel& kernel;
        std::vector<std::vector<LoopId>>& block_loops;
        std::vector<BlockId>& order;
        std::vector<LoopId> stack;

        void walk(const Region& region) {
            for (const RegionItem& item : region.items) {
                if (item.kind == RegionItem::Kind::Block) {
                    block_loops[item.block.index()] = stack;
                    order.push_back(item.block);
                } else {
                    stack.push_back(item.loop);
                    walk(kernel.loop(item.loop).body);
                    stack.pop_back();
                }
            }
        }
    };
    Walker walker{*this, block_loops_, block_order_, {}};
    walker.walk(body_);
    structure_valid_ = true;
}

const std::vector<LoopId>& Kernel::enclosing_loops(BlockId block) const {
    ensure_structure();
    return block_loops_[block.index()];
}

std::vector<LoopId> Kernel::enclosing_loops(LoopId target) const {
    ensure_structure();
    // Find any block inside the target loop; its chain contains the answer.
    for (size_t b = 0; b < blocks_.size(); ++b) {
        const auto& chain = block_loops_[b];
        for (size_t i = 0; i < chain.size(); ++i) {
            if (chain[i] == target) {
                return std::vector<LoopId>(chain.begin(), chain.begin() + i);
            }
        }
    }
    return {};
}

long long Kernel::block_frequency(BlockId block) const {
    long long freq = 1;
    for (const LoopId l : enclosing_loops(block)) {
        freq *= loop(l).trip_count();
    }
    return freq;
}

long long Kernel::block_frequency_per_sample(BlockId block) const {
    const auto& chain = enclosing_loops(block);
    long long freq = 1;
    for (size_t i = 1; i < chain.size(); ++i) {
        freq *= loop(chain[i]).trip_count();
    }
    return freq;
}

std::vector<BlockId> Kernel::blocks_in_order() const {
    ensure_structure();
    return block_order_;
}

}  // namespace slpwlo
