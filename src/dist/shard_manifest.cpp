#include "dist/shard_manifest.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "flow/pass.hpp"
#include "flow/report.hpp"
#include "support/diagnostics.hpp"
#include "support/kv_format.hpp"
#include "target/target_desc.hpp"

namespace slpwlo::dist {

namespace {

std::string quant_mode_kv(QuantMode mode) {
    return mode == QuantMode::Truncate ? "truncate" : "round";
}

QuantMode quant_mode_from_kv(const std::string& value,
                             const std::string& source, int line) {
    if (value == "truncate") return QuantMode::Truncate;
    if (value == "round") return QuantMode::Round;
    kv::fail(source, line,
             "quant_mode: expected truncate/round, got `" + value + "`");
}

std::string benefit_mode_kv(BenefitMode mode) {
    return mode == BenefitMode::ReuseOverCost ? "reuse-over-cost"
                                              : "savings-only";
}

BenefitMode benefit_mode_from_kv(const std::string& value,
                                 const std::string& source, int line) {
    if (value == "reuse-over-cost") return BenefitMode::ReuseOverCost;
    if (value == "savings-only") return BenefitMode::SavingsOnly;
    kv::fail(source, line,
             "benefit_mode: expected reuse-over-cost/savings-only, got `" +
                 value + "`");
}

/// Serializable strings (labels, names) must survive the line format and
/// be non-empty (an empty label would be indistinguishable from a missing
/// key on re-read).
void check_serializable(const std::string& what, const std::string& value) {
    SLPWLO_CHECK(!value.empty(), what + " cannot be empty");
    kv::check_round_trips(what, value);
}

}  // namespace

std::string flow_options_kv(const FlowOptions& options,
                            const std::string& prefix) {
    std::ostringstream os;
    const auto emit = [&](const char* key, const std::string& value) {
        os << prefix << key << " = " << value << "\n";
    };
    const auto emit_bool = [&](const char* key, bool value) {
        emit(key, value ? "true" : "false");
    };
    const auto emit_slp = [&](const std::string& head, const SlpOptions& slp) {
        emit((head + ".max_rounds").c_str(), std::to_string(slp.max_rounds));
        emit((head + ".benefit_mode").c_str(),
             benefit_mode_kv(slp.benefit_mode));
        emit((head + ".min_benefit").c_str(), kv::exact_double(slp.min_benefit));
    };
    emit("accuracy_db", kv::exact_double(options.accuracy_db));
    emit("quant_mode", quant_mode_kv(options.quant_mode));
    emit_bool("wlo_slp.scaling_optim", options.wlo_slp.scaling_optim);
    emit_bool("wlo_slp.accuracy_conflicts", options.wlo_slp.accuracy_conflicts);
    emit_bool("wlo_slp.strict_feasibility",
              options.wlo_slp.strict_feasibility);
    emit_slp("wlo_slp.slp", options.wlo_slp.slp);
    emit_slp("wlo_first.slp", options.wlo_first.slp);
    emit("wlo_first.tabu.max_iterations",
         std::to_string(options.wlo_first.tabu.max_iterations));
    emit("wlo_first.tabu.tenure",
         std::to_string(options.wlo_first.tabu.tenure));
    emit("wlo_first.tabu.stagnation_limit",
         std::to_string(options.wlo_first.tabu.stagnation_limit));
    emit("wlo_first.tabu.infeasibility_penalty",
         kv::exact_double(options.wlo_first.tabu.infeasibility_penalty));
    // Execution-strategy fields (manifest_version >= 2): they never change
    // a result byte, but workers must inherit the launcher's choice of
    // noise backend and timing so an --evaluator=compiled sweep runs
    // compiled on every shard.
    emit("evaluator", to_string(options.evaluator));
    emit_bool("measure", options.measure);
    // Solver fields (manifest_version >= 3). Unlike evaluator/measure the
    // optimizer axis changes outcomes, so a worker that dropped it would
    // produce different result bytes than the launcher's local run.
    emit("solver.optimizer", to_string(options.solver.optimizer));
    emit("solver.max_nodes", std::to_string(options.solver.budget.max_nodes));
    emit("solver.max_millis",
         std::to_string(options.solver.budget.max_millis));
    return os.str();
}

void apply_flow_option(FlowOptions& options, const std::string& key,
                       const std::string& value, const std::string& source,
                       int line) {
    const auto slp_field = [&](SlpOptions& slp, const std::string& field) {
        if (field == "max_rounds") {
            slp.max_rounds = kv::to_int(source, line, key, value);
        } else if (field == "benefit_mode") {
            slp.benefit_mode = benefit_mode_from_kv(value, source, line);
        } else if (field == "min_benefit") {
            slp.min_benefit = kv::to_double(source, line, key, value);
        } else {
            kv::fail(source, line, "unknown option key `" + key + "`");
        }
    };
    if (key == "accuracy_db") {
        options.accuracy_db = kv::to_double(source, line, key, value);
    } else if (key == "quant_mode") {
        options.quant_mode = quant_mode_from_kv(value, source, line);
    } else if (key == "wlo_slp.scaling_optim") {
        options.wlo_slp.scaling_optim = kv::to_bool(source, line, key, value);
    } else if (key == "wlo_slp.accuracy_conflicts") {
        options.wlo_slp.accuracy_conflicts =
            kv::to_bool(source, line, key, value);
    } else if (key == "wlo_slp.strict_feasibility") {
        options.wlo_slp.strict_feasibility =
            kv::to_bool(source, line, key, value);
    } else if (key.rfind("wlo_slp.slp.", 0) == 0) {
        slp_field(options.wlo_slp.slp, key.substr(12));
    } else if (key.rfind("wlo_first.slp.", 0) == 0) {
        slp_field(options.wlo_first.slp, key.substr(14));
    } else if (key == "wlo_first.tabu.max_iterations") {
        options.wlo_first.tabu.max_iterations =
            kv::to_int(source, line, key, value);
    } else if (key == "wlo_first.tabu.tenure") {
        options.wlo_first.tabu.tenure = kv::to_int(source, line, key, value);
    } else if (key == "wlo_first.tabu.stagnation_limit") {
        options.wlo_first.tabu.stagnation_limit =
            kv::to_int(source, line, key, value);
    } else if (key == "wlo_first.tabu.infeasibility_penalty") {
        options.wlo_first.tabu.infeasibility_penalty =
            kv::to_double(source, line, key, value);
    } else if (key == "evaluator") {
        try {
            options.evaluator = parse_sim_backend(value);
        } catch (const Error& e) {
            kv::fail(source, line, e.what());
        }
    } else if (key == "measure") {
        options.measure = kv::to_bool(source, line, key, value);
    } else if (key == "solver.optimizer") {
        try {
            options.solver.optimizer = optimizer_from_string(value);
        } catch (const Error& e) {
            kv::fail(source, line, e.what());
        }
    } else if (key == "solver.max_nodes") {
        options.solver.budget.max_nodes =
            kv::to_ll(source, line, key, value);
    } else if (key == "solver.max_millis") {
        options.solver.budget.max_millis =
            kv::to_ll(source, line, key, value);
    } else {
        kv::fail(source, line, "unknown option key `" + key + "`");
    }
}

std::string shard_manifest_text(const ShardPlan& plan,
                                const FlowOptions& defaults) {
    SLPWLO_CHECK(plan.slots.size() == plan.points.size(),
                 "shard plan slots/points size mismatch");
    std::ostringstream os;
    os << "# slpwlo shard manifest\n"
       << "manifest_version = 4\n"
       << "shard_index = " << plan.shard_index << "\n"
       << "shard_count = " << plan.shard_count << "\n"
       << "strategy = " << to_string(plan.strategy) << "\n"
       << "total_slots = " << plan.total_slots << "\n"
       << "grid_fingerprint = " << fingerprint_hex(plan.grid_fp) << "\n"
       << "points = " << plan.points.size() << "\n\n";

    os << "begin_defaults\n"
       << flow_options_kv(defaults, "option.") << "end_defaults\n";

    // Embed each distinct model once, in first-use order, and reference
    // it from the points by id. Deduplication keys on the serialized
    // description — which includes the name — not the name-free content
    // fingerprint: a renamed copy of a model (with_simd_width at the
    // native width is one) must keep its own name in the worker's
    // reports, or the merged JSON would drift from the single-process
    // run.
    std::map<std::string, std::string> model_ids;
    std::vector<std::string> point_model(plan.points.size());
    for (size_t i = 0; i < plan.points.size(); ++i) {
        const SweepPoint& point = plan.points[i];
        SLPWLO_CHECK(point.target_model.has_value(),
                     "manifest points must embed a target model "
                     "(make_shard_plans)");
        std::string desc = target_description(*point.target_model);
        const auto it = model_ids.find(desc);
        if (it != model_ids.end()) {
            point_model[i] = it->second;
            continue;
        }
        const std::string id = "t" + std::to_string(model_ids.size());
        point_model[i] = id;
        os << "\nbegin_target " << id << "\n" << desc << "end_target\n";
        model_ids.emplace(std::move(desc), id);
    }

    // Embedded kernel sources, deduplicated the same way (keyed on the
    // exact source text — the bytes the point fingerprint mixes). Only
    // file-based kernels carry one; built-in points emit nothing here, so
    // built-in-only manifests keep their historical shape.
    std::map<std::string, std::string> kernel_ids;
    std::vector<std::string> point_kernel_src(plan.points.size());
    for (size_t i = 0; i < plan.points.size(); ++i) {
        const SweepPoint& point = plan.points[i];
        if (!point.kernel_source.has_value()) continue;
        const std::string& src = *point.kernel_source;
        const auto it = kernel_ids.find(src);
        if (it != kernel_ids.end()) {
            point_kernel_src[i] = it->second;
            continue;
        }
        // The block is parsed back line-by-line through the kv container
        // format; a blank or comment-only line would silently vanish and
        // the re-read source (and its point fingerprint) would drift.
        // canonical_kernel_source (frontend/kernel_file.hpp) produces the
        // safe form; anything else is a caller bug, not a data error.
        size_t pos = 0;
        while (pos < src.size()) {
            size_t end = src.find('\n', pos);
            SLPWLO_CHECK(end != std::string::npos,
                         "kernel source lines must be newline-terminated "
                         "(canonical_kernel_source)");
            std::string check = src.substr(pos, end - pos);
            const size_t comment = check.find('#');
            if (comment != std::string::npos) check.resize(comment);
            SLPWLO_CHECK(!kv::trim(check).empty(),
                         "kernel source must not contain blank or "
                         "comment-only lines (canonical_kernel_source)");
            pos = end + 1;
        }
        const std::string id = "k" + std::to_string(kernel_ids.size());
        point_kernel_src[i] = id;
        os << "\nbegin_kernel " << id << "\n" << src << "end_kernel\n";
        kernel_ids.emplace(src, id);
    }

    for (size_t i = 0; i < plan.points.size(); ++i) {
        const SweepPoint& point = plan.points[i];
        check_serializable("kernel name", point.kernel);
        check_serializable("target label", point.target);
        check_serializable("flow name", point.flow);
        os << "\nbegin_point\n"
           << "slot = " << plan.slots[i] << "\n"
           << "kernel = " << point.kernel << "\n"
           << "target = " << point.target << "\n"
           << "flow = " << point.flow << "\n"
           << "accuracy_db = " << kv::exact_double(point.accuracy_db) << "\n"
           << "model = " << point_model[i] << "\n";
        if (!point_kernel_src[i].empty()) {
            os << "kernel_source = " << point_kernel_src[i] << "\n";
        }
        if (point.options.has_value()) {
            os << flow_options_kv(*point.options, "option.");
        }
        os << "end_point\n";
    }
    return os.str();
}

ShardManifest parse_shard_manifest(const std::string& text,
                                   const std::string& source) {
    ShardManifest manifest;
    kv::KvReader reader(text, source);
    kv::KvLine kvline;

    bool saw_version = false;
    bool saw_defaults = false;
    long long declared_points = -1;
    std::map<std::string, TargetModel> models;
    std::map<std::string, std::string> kernel_sources;
    std::set<std::string> header_seen;

    while (reader.next(kvline)) {
        if (kvline.key.empty()) {
            const std::string& marker = kvline.value;
            if (marker == "begin_defaults") {
                if (saw_defaults) reader.fail_here("duplicate begin_defaults");
                saw_defaults = true;
                bool closed = false;
                while (reader.next(kvline)) {
                    if (kvline.key.empty() && kvline.value == "end_defaults") {
                        closed = true;
                        break;
                    }
                    if (kvline.key.rfind("option.", 0) != 0) {
                        reader.fail_here(
                            "defaults block expects `option.*` keys");
                    }
                    apply_flow_option(manifest.defaults, kvline.key.substr(7),
                                      kvline.value, source, kvline.line);
                }
                if (!closed) reader.fail_here("unterminated begin_defaults");
            } else if (marker.rfind("begin_target ", 0) == 0) {
                const std::string id = kv::trim(marker.substr(13));
                if (id.empty()) reader.fail_here("begin_target needs an id");
                if (models.count(id) != 0) {
                    reader.fail_here("duplicate target id `" + id + "`");
                }
                // Accumulate the embedded description verbatim and hand it
                // to the target parser (which validates the model).
                std::string desc;
                bool closed = false;
                while (reader.next(kvline)) {
                    if (kvline.key.empty() && kvline.value == "end_target") {
                        closed = true;
                        break;
                    }
                    desc += kvline.raw;
                    desc += "\n";
                }
                if (!closed) reader.fail_here("unterminated begin_target");
                models.emplace(
                    id, parse_target_description(desc, source + ":" + id));
            } else if (marker.rfind("begin_kernel ", 0) == 0) {
                const std::string id = kv::trim(marker.substr(13));
                if (id.empty()) reader.fail_here("begin_kernel needs an id");
                if (kernel_sources.count(id) != 0) {
                    reader.fail_here("duplicate kernel id `" + id + "`");
                }
                // Accumulate the embedded DSL source verbatim; it is
                // compiled (and so validated) when a worker registers it,
                // not here — parsing a manifest must not require the
                // frontend.
                std::string src;
                bool closed = false;
                while (reader.next(kvline)) {
                    if (kvline.key.empty() && kvline.value == "end_kernel") {
                        closed = true;
                        break;
                    }
                    src += kvline.raw;
                    src += "\n";
                }
                if (!closed) reader.fail_here("unterminated begin_kernel");
                kernel_sources.emplace(id, std::move(src));
            } else if (marker == "begin_point") {
                SweepPoint point;
                long long slot = -1;
                bool has_kernel = false, has_target = false, has_flow = false;
                bool has_model = false, has_accuracy = false;
                FlowOptions point_options;
                bool has_options = false;
                std::set<std::string> seen;
                bool closed = false;
                while (reader.next(kvline)) {
                    if (kvline.key.empty() && kvline.value == "end_point") {
                        closed = true;
                        break;
                    }
                    if (kvline.key.empty()) {
                        reader.fail_here("expected `key = value`, got `" +
                                         kvline.value + "`");
                    }
                    if (!seen.insert(kvline.key).second) {
                        reader.fail_here("duplicate key `" + kvline.key + "`");
                    }
                    if (kvline.key == "slot") {
                        slot = kv::to_ll(source, kvline.line, kvline.key,
                                         kvline.value);
                    } else if (kvline.key == "kernel") {
                        point.kernel = kvline.value;
                        has_kernel = true;
                    } else if (kvline.key == "target") {
                        point.target = kvline.value;
                        has_target = true;
                    } else if (kvline.key == "flow") {
                        point.flow = kvline.value;
                        has_flow = true;
                    } else if (kvline.key == "accuracy_db") {
                        point.accuracy_db = kv::to_double(
                            source, kvline.line, kvline.key, kvline.value);
                        has_accuracy = true;
                    } else if (kvline.key == "model") {
                        const auto it = models.find(kvline.value);
                        if (it == models.end()) {
                            reader.fail_here("unknown target id `" +
                                             kvline.value + "`");
                        }
                        point.target_model = it->second;
                        has_model = true;
                    } else if (kvline.key == "kernel_source") {
                        const auto kit = kernel_sources.find(kvline.value);
                        if (kit == kernel_sources.end()) {
                            reader.fail_here("unknown kernel id `" +
                                             kvline.value + "`");
                        }
                        point.kernel_source = kit->second;
                    } else if (kvline.key.rfind("option.", 0) == 0) {
                        apply_flow_option(point_options,
                                          kvline.key.substr(7), kvline.value,
                                          source, kvline.line);
                        has_options = true;
                    } else {
                        reader.fail_here("unknown point key `" + kvline.key +
                                         "`");
                    }
                }
                if (!closed) reader.fail_here("unterminated begin_point");
                if (slot < 0 || !has_kernel || !has_target || !has_flow ||
                    !has_model || !has_accuracy) {
                    reader.fail_here(
                        "point needs slot, kernel, target, flow, "
                        "accuracy_db and model keys");
                }
                if (has_options) point.options = point_options;
                manifest.slots.push_back(static_cast<size_t>(slot));
                manifest.points.push_back(std::move(point));
            } else {
                reader.fail_here("expected `key = value` or a block marker, "
                                 "got `" + marker + "`");
            }
            continue;
        }

        // Header keys.
        if (!header_seen.insert(kvline.key).second) {
            reader.fail_here("duplicate key `" + kvline.key + "`");
        }
        if (kvline.key == "manifest_version") {
            manifest.version =
                kv::to_int(source, kvline.line, kvline.key, kvline.value);
            if (manifest.version < 1 || manifest.version > 4) {
                reader.fail_here("unsupported manifest_version " +
                                 kvline.value + " (this reader knows 1-4)");
            }
            saw_version = true;
        } else if (kvline.key == "shard_index") {
            manifest.shard_index =
                kv::to_int(source, kvline.line, kvline.key, kvline.value);
        } else if (kvline.key == "shard_count") {
            manifest.shard_count =
                kv::to_int(source, kvline.line, kvline.key, kvline.value);
        } else if (kvline.key == "strategy") {
            manifest.strategy = shard_strategy_from_string(kvline.value);
        } else if (kvline.key == "total_slots") {
            manifest.total_slots = static_cast<size_t>(
                kv::to_ll(source, kvline.line, kvline.key, kvline.value));
        } else if (kvline.key == "grid_fingerprint") {
            manifest.grid_fp = kv::to_fingerprint(source, kvline.line,
                                                  kvline.key, kvline.value);
        } else if (kvline.key == "points") {
            declared_points =
                kv::to_ll(source, kvline.line, kvline.key, kvline.value);
        } else {
            reader.fail_here("unknown key `" + kvline.key + "`");
        }
    }

    if (!saw_version) {
        throw Error(source + ": missing manifest_version");
    }
    if (manifest.shard_count < 1 || manifest.shard_index < 0 ||
        manifest.shard_index >= manifest.shard_count) {
        throw Error(source + ": inconsistent shard_index/shard_count");
    }
    if (declared_points >= 0 &&
        static_cast<size_t>(declared_points) != manifest.points.size()) {
        throw Error(source + ": header declares " +
                    std::to_string(declared_points) + " points, file has " +
                    std::to_string(manifest.points.size()));
    }
    for (size_t i = 0; i < manifest.slots.size(); ++i) {
        if (manifest.slots[i] >= manifest.total_slots) {
            throw Error(source + ": slot " +
                        std::to_string(manifest.slots[i]) +
                        " out of range (total_slots = " +
                        std::to_string(manifest.total_slots) + ")");
        }
        if (i > 0 && manifest.slots[i] <= manifest.slots[i - 1]) {
            throw Error(source + ": slots must be strictly ascending");
        }
    }
    return manifest;
}

ShardManifest load_shard_manifest(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw Error("cannot read shard manifest `" + path + "`");
    std::ostringstream text;
    text << in.rdbuf();
    return parse_shard_manifest(text.str(), path);
}

}  // namespace slpwlo::dist
