// ShardEngine, stage 5: executing one shard's manifest.
//
// run_shard is the worker-side entry point shared by the slpwlo-shard CLI
// and the in-process tests. Since the SweepService redesign it is a thin
// wrapper: the manifest becomes a PlanSource, a SweepService drains it,
// and the source packages slot-tagged, fingerprinted result rows (plus
// the cache contents, so new entries can ship back to the coordinator).
#pragma once

#include <optional>

#include "dist/cache_snapshot.hpp"
#include "dist/shard_manifest.hpp"
#include "dist/shard_merger.hpp"
#include "flow/work_source.hpp"

namespace slpwlo::dist {

/// Options for one shard worker: the unified ExecOptions (threads, flow
/// defaults, memoization, cache bound — the same struct SweepDriver and
/// the lease workers consume) plus the dist-only warm-start snapshot.
/// `flow_options` is overridden by the manifest's embedded defaults.
struct ShardRunOptions : ExecOptions {
    /// Warm-start snapshot, preloaded into the EvalCache before the run.
    const CacheSnapshot* warm = nullptr;
};

/// Package one completed point as the serialized row the merge stage
/// consumes: `json` is exactly sweep_result_to_json, `point_fp` the
/// point's fingerprint, `micros` the measured wall-clock. The one place
/// row packaging lives — PlanSource and the lease workers both use it,
/// so a new column cannot be added to one path and missed in the other.
ShardRow make_shard_row(size_t slot, const SweepPoint& point,
                        const WorkRow& row);

/// A static shard plan (already parsed into a manifest) as a WorkSource:
/// leases hand out the manifest's slots in order, and completed rows are
/// serialized into the ShardResultsFile the merge stage consumes —
/// `row.json` is exactly sweep_result_to_json, `row.point_fp` the
/// manifest point's fingerprint, `row.micros` the measured wall-clock.
class PlanSource final : public WorkSource {
public:
    /// The manifest must embed a target model in every point (workers do
    /// not resolve names) and outlive the source; throws Error otherwise.
    explicit PlanSource(const ShardManifest& manifest);

    size_t total_slots() const override { return slots_.size(); }
    Lease acquire(size_t max_slots) override;
    void complete(const Lease& lease, std::vector<WorkRow> rows) override;
    void abandon(const Lease& lease) override;

    struct Output {
        /// Slot-tagged rows with the manifest's shard header (EvalCache
        /// counters still zero — the caller owns the cache and fills
        /// them in).
        ShardResultsFile results;
        /// Raw sweep results, manifest (ascending-slot) order.
        std::vector<SweepResult> sweep;
    };

    /// Drain the completed rows once the service is done; throws when
    /// any of the manifest's slots was never completed.
    Output take();

private:
    const ShardManifest& manifest_;
    std::vector<size_t> slots_;      ///< manifest slots (grid positions)
    VectorSource inner_;             ///< leases indexed into the manifest
};

struct ShardRunOutput {
    ShardResultsFile results;           ///< slot-tagged rows + counters
    CacheSnapshot snapshot;             ///< cache contents after the run
    SweepCacheStats stats;              ///< hit/miss/size counters
    std::vector<SweepResult> sweep;     ///< raw results, manifest order
};

/// Run every point of `manifest` and package the outputs. Results are
/// bit-identical to the same points' slice of a single-process sweep at
/// any thread count (the SweepDriver guarantee, inherited through
/// SweepService).
ShardRunOutput run_shard(const ShardManifest& manifest,
                         const ShardRunOptions& options = {});

}  // namespace slpwlo::dist
