// ShardEngine, stage 5: executing one shard's manifest.
//
// run_shard is the worker-side entry point shared by the slpwlo-shard CLI
// and the in-process tests: it feeds a manifest's points through a
// SweepDriver (optionally warm-started from a cache snapshot), tags each
// result row with its grid slot and point fingerprint, and captures the
// cache contents so new entries can ship back to the coordinator.
#pragma once

#include <optional>

#include "dist/cache_snapshot.hpp"
#include "dist/shard_manifest.hpp"
#include "dist/shard_merger.hpp"

namespace slpwlo::dist {

struct ShardRunOptions {
    /// Worker threads for the shard's internal sweep; <= 0 picks the
    /// hardware concurrency.
    int threads = 0;
    /// Warm-start snapshot, preloaded into the EvalCache before the run.
    const CacheSnapshot* warm = nullptr;
    /// Optional EvalCache entry bound (insertion-order eviction); nullopt
    /// leaves the cache unlimited.
    std::optional<size_t> cache_capacity;
};

struct ShardRunOutput {
    ShardResultsFile results;           ///< slot-tagged rows + counters
    CacheSnapshot snapshot;             ///< cache contents after the run
    SweepCacheStats stats;              ///< hit/miss/size counters
    std::vector<SweepResult> sweep;     ///< raw results, manifest order
};

/// Run every point of `manifest` and package the outputs. Results are
/// bit-identical to the same points' slice of a single-process sweep at
/// any thread count (the SweepDriver guarantee).
ShardRunOutput run_shard(const ShardManifest& manifest,
                         const ShardRunOptions& options = {});

}  // namespace slpwlo::dist
