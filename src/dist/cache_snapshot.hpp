// ShardEngine, stage 3: serializable, mergeable EvalCache snapshots.
//
// The EvalCache (flow/pass.hpp) memoizes the evaluation stage of a flow
// under content-hash keys — kernel, target, final spec and groups — so
// entries are valid on any machine: a snapshot taken on one worker can
// warm-start any other. The sharded workflow is:
//
//   coordinator:  merge yesterday's snapshots -> shared warm snapshot
//   shard run:    preload_cache(warm) -> run -> snapshot_cache -> ship home
//   coordinator:  merge_cache_snapshots(all shards) -> next warm snapshot
//
// Format (versioned, fingerprint-keyed, line-oriented):
//
//   # slpwlo evalcache snapshot
//   snapshot_version = 3
//   entries = 2
//   entry = <key:16 hex> <scalar cycles> <simd cycles> <noise bits:16 hex>
//   entry = ...
//   stage_entries = 1
//   stage_entry = <key:16 hex> <flattened StageEntry, counted fields>
//
// Version 2 adds the stage-memo table (optimization-stage results keyed
// by stage_memo_key, so warm sweeps skip Tabu/SLP); each stage_entry line
// flattens one StageEntry as space-separated tokens with explicit counts:
//
//   <quant mode> <#formats> {<iwl> <fwl>}* <#blocks> {<block> <#groups>
//   {<#lanes> {<lane>}*}*}* <8 slp ints> <6 scaling ints>
//   <tabu iters> <tabu improvements> <initial cost bits:16 hex>
//   <best cost bits:16 hex> <feasible> <group count>
//
// Doubles are stored as their raw IEEE-754 bits, so save -> load is
// bit-exact (including the -inf noise of an exact spec) and a round-trip
// preserves snapshot_fingerprint identically. Entries are sorted by key:
// a snapshot's bytes are a pure function of the cache contents.
//
// Versioning policy mirrors the manifest: readers reject versions they do
// not know (this reader knows 1 to 3; a version-1 file simply has no
// stage lines, a version-2 stage line lacks the version-3 solver-stats
// suffix and deserializes with zeroed solver stats); any incompatible
// change bumps `snapshot_version`.
#pragma once

#include <string>
#include <vector>

#include "flow/pass.hpp"

namespace slpwlo::dist {

struct CacheSnapshot {
    int version = 3;
    /// Entries sorted by key, each key unique.
    std::vector<std::pair<uint64_t, EvalCache::Entry>> entries;
    /// Stage-memo entries sorted by key, each key unique (empty when the
    /// snapshot was written by a version-1 producer).
    std::vector<std::pair<uint64_t, EvalCache::StageEntry>> stage_entries;
};

/// Capture a cache's current contents (sorted by key).
CacheSnapshot snapshot_cache(const EvalCache& cache);

/// Preload snapshot entries into `cache` (the warm-start path).
/// Existing keys keep their entries. On a capacity-bounded cache only
/// the free slots are filled — with the snapshot's highest-keyed
/// entries, a deterministic survivor set — so resident entries are
/// never displaced. Preloading is counter-neutral: it never inflates
/// the cache's hit/miss counters and never counts as evictions.
void preload_cache(EvalCache& cache, const CacheSnapshot& snapshot);

/// Serialize / parse the snapshot text format. parse validates the
/// version, the declared entry count, key ordering and uniqueness.
std::string cache_snapshot_text(const CacheSnapshot& snapshot);
CacheSnapshot parse_cache_snapshot(const std::string& text,
                                   const std::string& source = "<string>");
CacheSnapshot load_cache_snapshot(const std::string& path);

/// Union of several snapshots. The same key appearing with bit-identical
/// entries deduplicates; the same key with different entries is a hard
/// error — content-hash keys make that either a hash collision or
/// nondeterminism, and both must surface, not be papered over.
CacheSnapshot merge_cache_snapshots(const std::vector<CacheSnapshot>& parts);

/// Content hash of a snapshot (order- and bit-sensitive); save -> load
/// round-trips preserve it exactly.
uint64_t snapshot_fingerprint(const CacheSnapshot& snapshot);

}  // namespace slpwlo::dist
