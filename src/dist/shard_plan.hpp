// ShardEngine, stage 1: turning a SweepDriver grid into N deterministic,
// disjoint shard plans.
//
// A sweep grid is a vector of SweepPoints whose index is its *slot* — the
// position the point's result occupies in the single-process
// SweepDriver::run output (and therefore in sweep_to_json). Sharding
// never reorders slots: a plan is a subset of slot indices plus the exact
// points behind them, and the merge stage (shard_merger.hpp) folds
// per-shard results back into slot order, so an N-shard run reproduces
// the 1-process output byte for byte.
//
// Two assignment strategies, both deterministic functions of (grid, N):
//
//  * RoundRobin     slot i goes to shard i % N — trivially balanced in
//                   point count, ideal for homogeneous grids;
//  * CostBalanced   longest-processing-time greedy over a deterministic
//                   per-point cost heuristic (estimate_point_cost), so a
//                   grid mixing cheap Float reference points with
//                   expensive strict-constraint Tabu searches still
//                   spreads wall-clock evenly across shards.
//
// Every plan embeds the exact TargetModel each of its points must run
// against (registry names are resolved at plan time): the manifest a
// shard receives (shard_manifest.hpp) is self-contained, and a worker
// machine never resolves a target name it may not know.
#pragma once

#include <string>
#include <vector>

#include "flow/sweep.hpp"

namespace slpwlo::dist {

enum class ShardStrategy {
    RoundRobin,
    CostBalanced,
};

/// "round-robin" / "cost-balanced" (the manifest spelling).
std::string to_string(ShardStrategy strategy);

/// Inverse of to_string; throws Error for unknown spellings.
ShardStrategy shard_strategy_from_string(const std::string& text);

/// Deterministic relative wall-clock estimate of one sweep point, for
/// CostBalanced assignment and lease chunk sizing. A heuristic, not a
/// measurement: stricter accuracy constraints drive more optimizer
/// iterations, the decoupled WLO-First flows add a Tabu search, the
/// Float reference skips optimization entirely, and a point's embedded
/// `target_model` override weighs in through its lane-count menu (a
/// derived `@simd256` point costs more than its narrow base). Balance
/// quality only affects wall-clock spread across shards — never results.
double estimate_point_cost(const SweepPoint& point);

/// Resolve registry names into embedded per-point models: points without
/// a target_model get `targets::by_name(point.target)`; points that
/// already carry one are validated. After this every point is
/// self-contained (serializable without a registry on the other side).
void embed_target_models(std::vector<SweepPoint>& points);

/// The kernel-side analogue of embed_target_models: points naming a
/// file-based registry kernel (one registered with DSL source —
/// frontend/kernel_file.hpp) get that source embedded as
/// `point.kernel_source`, so manifests carry it and workers re-register
/// the kernel by content. Built-in and builder-made kernels embed
/// nothing (workers resolve those names themselves, bit-identically).
/// Points that already carry a source are left untouched.
void embed_kernel_sources(std::vector<SweepPoint>& points);

/// Content hash of one grid point: kernel/flow identity, the constraint,
/// the per-point options (when present), the embedded kernel source
/// (when present — same-name kernels with different sources must not
/// alias) and the embedded target model's content fingerprint. The point
/// must carry an embedded model (embed_target_models). Used to tag shard
/// result rows so the merger can tell a true conflict from a benign
/// duplicate.
uint64_t point_fingerprint(const SweepPoint& point);

/// Content hash of a whole grid in slot order. Identical for any shard
/// count over the same grid; the merge stage refuses to fold result files
/// whose grids disagree.
uint64_t grid_fingerprint(const std::vector<SweepPoint>& points);

/// One shard's slice of a grid: parallel slot/point arrays in ascending
/// slot order.
struct ShardPlan {
    int shard_index = 0;
    int shard_count = 1;
    ShardStrategy strategy = ShardStrategy::RoundRobin;
    size_t total_slots = 0;       ///< size of the full grid
    uint64_t grid_fp = 0;         ///< grid_fingerprint of the full grid
    std::vector<size_t> slots;    ///< this shard's grid slots, ascending
    std::vector<SweepPoint> points;  ///< points[i] is the grid point at slots[i]
};

/// Partition `grid` into `shard_count` disjoint plans covering every slot
/// exactly once. Deterministic: the same grid and count produce identical
/// plans on every run and every machine. Registry names are resolved and
/// embedded (embed_target_models) before assignment, so the returned
/// plans are self-contained. Shards may be empty when shard_count exceeds
/// the grid size.
std::vector<ShardPlan> make_shard_plans(
    std::vector<SweepPoint> grid, int shard_count,
    ShardStrategy strategy = ShardStrategy::RoundRobin);

/// CostBalanced partition with explicit per-slot costs instead of the
/// estimate_point_cost heuristic — the re-serve path: slot_costs[i] is
/// the relative cost of grid slot i (one entry per grid point). Costs
/// only shape the wall-clock balance, never results.
std::vector<ShardPlan> make_shard_plans(std::vector<SweepPoint> grid,
                                        int shard_count,
                                        const std::vector<double>& slot_costs);

/// Options for chunk_grid_slots — how a whole grid is chopped into the
/// demand-paged units an elastic lease directory or a farm daemon hands
/// to workers. Shared by dist::init_lease_dir and farm::JobBoard so both
/// layers cut identical chunks from identical inputs.
struct ChunkOptions {
    /// Target estimated cost per chunk (estimate_point_cost units);
    /// <= 0 auto-sizes to total_cost / 16 — roughly four chunks in
    /// flight per worker on a 4-worker farm.
    double chunk_cost = 0.0;
    /// Hard cap on slots per chunk; 0 = uncapped.
    size_t max_chunk_slots = 0;
    /// Measured per-slot costs replacing the estimate_point_cost
    /// heuristic, one entry per *grid* slot (indexed by slot id, not by
    /// position in `slots`). Empty = use the heuristic. Costs shape only
    /// chunk boundaries, never results.
    std::vector<double> measured_costs;
};

/// Chop `slots` (ascending grid slots; points[i] is the point at
/// slots[i]) into cost-balanced chunks: greedy, in slot order, cut when
/// the accumulated per-point cost reaches the target. A pure function of
/// its inputs — the same grid and options always produce the same chunks
/// on every machine.
std::vector<std::vector<size_t>> chunk_grid_slots(
    const std::vector<SweepPoint>& points, const std::vector<size_t>& slots,
    const ChunkOptions& options = {});

struct ShardResultsFile;

/// Per-slot costs measured by a previous run of the same grid: the
/// minimum `micros` reported for each slot across `files` (elastic
/// re-issue legitimately reports a slot twice; the straggler's inflated
/// wall-clock must not poison the plan). Slots no file reported get the
/// mean of the measured ones (1.0 when nothing was measured), and every
/// cost is floored at one microsecond so a degenerate measurement cannot
/// zero out the LPT ordering. Files whose grid fingerprint or slot count
/// disagree with (`total_slots`, `grid_fp`) throw — re-serving a
/// different grid from old measurements would balance garbage.
std::vector<double> measured_slot_costs(
    const std::vector<ShardResultsFile>& files, size_t total_slots,
    uint64_t grid_fp);

}  // namespace slpwlo::dist
