#include "dist/shard_plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "dist/shard_manifest.hpp"
#include "flow/pass.hpp"
#include "support/diagnostics.hpp"
#include "target/target_model.hpp"

namespace slpwlo::dist {

std::string to_string(ShardStrategy strategy) {
    switch (strategy) {
        case ShardStrategy::RoundRobin: return "round-robin";
        case ShardStrategy::CostBalanced: return "cost-balanced";
    }
    SLPWLO_ASSERT(false, "unhandled ShardStrategy");
}

ShardStrategy shard_strategy_from_string(const std::string& text) {
    if (text == "round-robin") return ShardStrategy::RoundRobin;
    if (text == "cost-balanced") return ShardStrategy::CostBalanced;
    // Same convention as targets::by_name: an unknown spelling names
    // every valid one (sorted).
    throw Error("unknown shard strategy `" + text +
                "`; known: cost-balanced, round-robin");
}

double estimate_point_cost(const SweepPoint& point) {
    // Flow weight: the Float reference only lowers and schedules; the
    // decoupled flows run a Tabu search on top of extraction.
    double flow_weight = 1.0;
    if (point.flow == "Float") {
        flow_weight = 0.1;
    } else if (point.flow.rfind("WLO-First", 0) == 0) {
        flow_weight = 1.5;
    }
    // Stricter constraints make the optimizers work harder before the
    // noise budget closes.
    const double constraint_weight = 1.0 + std::abs(point.accuracy_db) / 20.0;
    // Per-point model overrides change the work: a wider derived datapath
    // (@simd256) admits more lane counts, and candidate seeding, fusion
    // and equation-(1) WL commitments all grow with them. Points without
    // an embedded model stay at the neutral weight (make_shard_plans and
    // the lease coordinator both embed models before costing). The Float
    // reference skips the SLP machinery entirely, so width is free there.
    double width_weight = 1.0;
    if (point.flow != "Float" && point.target_model.has_value()) {
        const int lanes = point.target_model->max_group_size();
        if (lanes > 1) {
            width_weight += 0.25 * std::log2(static_cast<double>(lanes));
        }
    }
    return flow_weight * constraint_weight * width_weight;
}

void embed_target_models(std::vector<SweepPoint>& points) {
    for (SweepPoint& point : points) {
        if (point.target_model.has_value()) {
            point.target_model->validate();
        } else {
            point.target_model = targets::by_name(point.target);
        }
    }
}

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

void mix(uint64_t& h, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
}

void mix_string(uint64_t& h, const std::string& s) {
    mix(h, s.size());
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
}

}  // namespace

uint64_t point_fingerprint(const SweepPoint& point) {
    SLPWLO_CHECK(point.target_model.has_value(),
                 "point_fingerprint needs an embedded target model "
                 "(embed_target_models)");
    uint64_t h = kFnvOffset;
    mix_string(h, point.kernel);
    mix_string(h, point.target);
    mix_string(h, point.flow);
    uint64_t accuracy_bits;
    static_assert(sizeof(accuracy_bits) == sizeof(point.accuracy_db));
    std::memcpy(&accuracy_bits, &point.accuracy_db, sizeof(accuracy_bits));
    mix(h, accuracy_bits);
    mix(h, point.options.has_value() ? 1u : 0u);
    if (point.options.has_value()) {
        // The serialized form covers every field the manifest round-trips,
        // so two points whose options differ anywhere get distinct
        // fingerprints.
        mix_string(h, flow_options_kv(*point.options, ""));
    }
    // Both the name-free content fingerprint and the name: the name
    // lands in FlowResult.target_name (and so in the report bytes), so
    // renamed-identical models must not alias.
    mix(h, target_fingerprint(*point.target_model));
    mix_string(h, point.target_model->name);
    return h;
}

uint64_t grid_fingerprint(const std::vector<SweepPoint>& points) {
    uint64_t h = kFnvOffset;
    mix(h, points.size());
    for (const SweepPoint& point : points) {
        mix(h, point_fingerprint(point));
    }
    return h;
}

std::vector<ShardPlan> make_shard_plans(std::vector<SweepPoint> grid,
                                        int shard_count,
                                        ShardStrategy strategy) {
    SLPWLO_CHECK(shard_count >= 1, "shard count must be >= 1");
    embed_target_models(grid);
    const uint64_t grid_fp = grid_fingerprint(grid);

    // Slot -> shard assignment.
    std::vector<int> shard_of(grid.size(), 0);
    if (strategy == ShardStrategy::RoundRobin) {
        for (size_t i = 0; i < grid.size(); ++i) {
            shard_of[i] = static_cast<int>(i % shard_count);
        }
    } else {
        // Longest-processing-time greedy: place expensive points first,
        // each on the currently least-loaded shard. Ties break on the
        // lower slot / lower shard index, so the assignment is a pure
        // function of the grid.
        std::vector<size_t> order(grid.size());
        std::iota(order.begin(), order.end(), size_t{0});
        std::vector<double> cost(grid.size());
        for (size_t i = 0; i < grid.size(); ++i) {
            cost[i] = estimate_point_cost(grid[i]);
        }
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            if (cost[a] != cost[b]) return cost[a] > cost[b];
            return a < b;
        });
        std::vector<double> load(shard_count, 0.0);
        for (const size_t slot : order) {
            int lightest = 0;
            for (int s = 1; s < shard_count; ++s) {
                if (load[s] < load[lightest]) lightest = s;
            }
            shard_of[slot] = lightest;
            load[lightest] += cost[slot];
        }
    }

    std::vector<ShardPlan> plans(shard_count);
    for (int s = 0; s < shard_count; ++s) {
        plans[s].shard_index = s;
        plans[s].shard_count = shard_count;
        plans[s].strategy = strategy;
        plans[s].total_slots = grid.size();
        plans[s].grid_fp = grid_fp;
    }
    // Walking slots in ascending order keeps each plan's slot list sorted.
    for (size_t slot = 0; slot < grid.size(); ++slot) {
        ShardPlan& plan = plans[shard_of[slot]];
        plan.slots.push_back(slot);
        plan.points.push_back(std::move(grid[slot]));
    }
    return plans;
}

}  // namespace slpwlo::dist
