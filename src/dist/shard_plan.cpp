#include "dist/shard_plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "dist/shard_manifest.hpp"
#include "dist/shard_merger.hpp"
#include "flow/pass.hpp"
#include "flow/report.hpp"
#include "kernels/kernel_registry.hpp"
#include "support/diagnostics.hpp"
#include "target/target_model.hpp"

namespace slpwlo::dist {

std::string to_string(ShardStrategy strategy) {
    switch (strategy) {
        case ShardStrategy::RoundRobin: return "round-robin";
        case ShardStrategy::CostBalanced: return "cost-balanced";
    }
    SLPWLO_ASSERT(false, "unhandled ShardStrategy");
}

ShardStrategy shard_strategy_from_string(const std::string& text) {
    if (text == "round-robin") return ShardStrategy::RoundRobin;
    if (text == "cost-balanced") return ShardStrategy::CostBalanced;
    // Same convention as targets::by_name: an unknown spelling names
    // every valid one (sorted).
    throw Error("unknown shard strategy `" + text +
                "`; known: cost-balanced, round-robin");
}

double estimate_point_cost(const SweepPoint& point) {
    // Flow weight: the Float reference only lowers and schedules; the
    // decoupled flows run a Tabu search on top of extraction.
    double flow_weight = 1.0;
    if (point.flow == "Float") {
        flow_weight = 0.1;
    } else if (point.flow.rfind("WLO-First", 0) == 0) {
        flow_weight = 1.5;
    }
    // Stricter constraints make the optimizers work harder before the
    // noise budget closes.
    const double constraint_weight = 1.0 + std::abs(point.accuracy_db) / 20.0;
    // Per-point model overrides change the work: a wider derived datapath
    // (@simd256) admits more lane counts, and candidate seeding, fusion
    // and equation-(1) WL commitments all grow with them. Points without
    // an embedded model stay at the neutral weight (make_shard_plans and
    // the lease coordinator both embed models before costing). The Float
    // reference skips the SLP machinery entirely, so width is free there.
    double width_weight = 1.0;
    if (point.flow != "Float" && point.target_model.has_value()) {
        const int lanes = point.target_model->max_group_size();
        if (lanes > 1) {
            width_weight += 0.25 * std::log2(static_cast<double>(lanes));
        }
    }
    return flow_weight * constraint_weight * width_weight;
}

void embed_target_models(std::vector<SweepPoint>& points) {
    for (SweepPoint& point : points) {
        if (point.target_model.has_value()) {
            point.target_model->validate();
        } else {
            point.target_model = targets::by_name(point.target);
        }
    }
}

void embed_kernel_sources(std::vector<SweepPoint>& points) {
    for (SweepPoint& point : points) {
        if (point.kernel_source.has_value()) continue;
        // Resolving here also surfaces unknown kernel names at plan time
        // (the same moment unknown targets surface), not on a worker.
        const kernels::KernelEntry entry =
            kernels::KernelRegistry::instance().entry(point.kernel);
        if (!entry.dsl_source.empty()) {
            point.kernel_source = entry.dsl_source;
        }
    }
}

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

void mix(uint64_t& h, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= kFnvPrime;
    }
}

void mix_string(uint64_t& h, const std::string& s) {
    mix(h, s.size());
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= kFnvPrime;
    }
}

}  // namespace

uint64_t point_fingerprint(const SweepPoint& point) {
    SLPWLO_CHECK(point.target_model.has_value(),
                 "point_fingerprint needs an embedded target model "
                 "(embed_target_models)");
    uint64_t h = kFnvOffset;
    mix_string(h, point.kernel);
    mix_string(h, point.target);
    mix_string(h, point.flow);
    uint64_t accuracy_bits;
    static_assert(sizeof(accuracy_bits) == sizeof(point.accuracy_db));
    std::memcpy(&accuracy_bits, &point.accuracy_db, sizeof(accuracy_bits));
    mix(h, accuracy_bits);
    mix(h, point.options.has_value() ? 1u : 0u);
    if (point.options.has_value()) {
        // The serialized form covers every field the manifest round-trips,
        // so two points whose options differ anywhere get distinct
        // fingerprints.
        mix_string(h, flow_options_kv(*point.options, ""));
    }
    if (point.kernel_source.has_value()) {
        // File-based kernels: the name alone does not identify the kernel
        // across processes — mix the embedded DSL source so same-name
        // kernels with different bodies never alias. Built-in points mix
        // nothing here, keeping their fingerprints stable across the
        // introduction of this field.
        mix(h, 0x6b65726eull);  // "kern" tag keeps absent/present distinct
        mix_string(h, *point.kernel_source);
    }
    // Both the name-free content fingerprint and the name: the name
    // lands in FlowResult.target_name (and so in the report bytes), so
    // renamed-identical models must not alias.
    mix(h, target_fingerprint(*point.target_model));
    mix_string(h, point.target_model->name);
    return h;
}

uint64_t grid_fingerprint(const std::vector<SweepPoint>& points) {
    uint64_t h = kFnvOffset;
    mix(h, points.size());
    for (const SweepPoint& point : points) {
        mix(h, point_fingerprint(point));
    }
    return h;
}

namespace {

/// Longest-processing-time greedy: place expensive slots first, each on
/// the currently least-loaded shard. Ties break on the lower slot / lower
/// shard index, so the assignment is a pure function of the costs.
std::vector<int> lpt_assignment(const std::vector<double>& cost,
                                int shard_count) {
    std::vector<size_t> order(cost.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (cost[a] != cost[b]) return cost[a] > cost[b];
        return a < b;
    });
    std::vector<int> shard_of(cost.size(), 0);
    std::vector<double> load(shard_count, 0.0);
    for (const size_t slot : order) {
        int lightest = 0;
        for (int s = 1; s < shard_count; ++s) {
            if (load[s] < load[lightest]) lightest = s;
        }
        shard_of[slot] = lightest;
        load[lightest] += cost[slot];
    }
    return shard_of;
}

std::vector<ShardPlan> plans_from_assignment(std::vector<SweepPoint> grid,
                                             int shard_count,
                                             ShardStrategy strategy,
                                             uint64_t grid_fp,
                                             const std::vector<int>& shard_of) {
    std::vector<ShardPlan> plans(shard_count);
    for (int s = 0; s < shard_count; ++s) {
        plans[s].shard_index = s;
        plans[s].shard_count = shard_count;
        plans[s].strategy = strategy;
        plans[s].total_slots = grid.size();
        plans[s].grid_fp = grid_fp;
    }
    // Walking slots in ascending order keeps each plan's slot list sorted.
    for (size_t slot = 0; slot < grid.size(); ++slot) {
        ShardPlan& plan = plans[shard_of[slot]];
        plan.slots.push_back(slot);
        plan.points.push_back(std::move(grid[slot]));
    }
    return plans;
}

}  // namespace

std::vector<ShardPlan> make_shard_plans(std::vector<SweepPoint> grid,
                                        int shard_count,
                                        ShardStrategy strategy) {
    SLPWLO_CHECK(shard_count >= 1, "shard count must be >= 1");
    embed_target_models(grid);
    embed_kernel_sources(grid);
    const uint64_t grid_fp = grid_fingerprint(grid);

    std::vector<int> shard_of;
    if (strategy == ShardStrategy::RoundRobin) {
        shard_of.resize(grid.size(), 0);
        for (size_t i = 0; i < grid.size(); ++i) {
            shard_of[i] = static_cast<int>(i % shard_count);
        }
    } else {
        std::vector<double> cost(grid.size());
        for (size_t i = 0; i < grid.size(); ++i) {
            cost[i] = estimate_point_cost(grid[i]);
        }
        shard_of = lpt_assignment(cost, shard_count);
    }
    return plans_from_assignment(std::move(grid), shard_count, strategy,
                                 grid_fp, shard_of);
}

std::vector<ShardPlan> make_shard_plans(
    std::vector<SweepPoint> grid, int shard_count,
    const std::vector<double>& slot_costs) {
    SLPWLO_CHECK(shard_count >= 1, "shard count must be >= 1");
    SLPWLO_CHECK(slot_costs.size() == grid.size(),
                 "measured-cost plans need one cost per grid slot (" +
                     std::to_string(slot_costs.size()) + " costs, " +
                     std::to_string(grid.size()) + " slots)");
    embed_target_models(grid);
    embed_kernel_sources(grid);
    const uint64_t grid_fp = grid_fingerprint(grid);
    return plans_from_assignment(std::move(grid), shard_count,
                                 ShardStrategy::CostBalanced, grid_fp,
                                 lpt_assignment(slot_costs, shard_count));
}

std::vector<std::vector<size_t>> chunk_grid_slots(
    const std::vector<SweepPoint>& points, const std::vector<size_t>& slots,
    const ChunkOptions& options) {
    SLPWLO_CHECK(points.size() == slots.size(),
                 "chunking needs one point per slot");
    SLPWLO_CHECK(!points.empty(), "cannot chunk an empty grid");
    if (!options.measured_costs.empty()) {
        for (const size_t slot : slots) {
            SLPWLO_CHECK(slot < options.measured_costs.size(),
                         "measured chunk costs need one entry per grid slot");
        }
    }
    std::vector<double> costs;
    costs.reserve(points.size());
    double total_cost = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
        costs.push_back(options.measured_costs.empty()
                            ? estimate_point_cost(points[i])
                            : options.measured_costs[slots[i]]);
        total_cost += costs.back();
    }
    double target = options.chunk_cost;
    if (target <= 0.0) target = total_cost / 16.0;

    // Greedy in slot order: cut when the accumulated cost reaches the
    // target (or the slot cap). Deterministic for fixed inputs.
    std::vector<std::vector<size_t>> chunks;
    std::vector<size_t> current;
    double current_cost = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
        current.push_back(slots[i]);
        current_cost += costs[i];
        const bool full = current_cost >= target ||
                          (options.max_chunk_slots != 0 &&
                           current.size() >= options.max_chunk_slots);
        if (full) {
            chunks.push_back(std::move(current));
            current.clear();
            current_cost = 0.0;
        }
    }
    if (!current.empty()) chunks.push_back(std::move(current));
    return chunks;
}

std::vector<double> measured_slot_costs(
    const std::vector<ShardResultsFile>& files, size_t total_slots,
    uint64_t grid_fp) {
    std::vector<double> costs(total_slots, -1.0);
    for (const ShardResultsFile& file : files) {
        if (file.total_slots != total_slots || file.grid_fp != grid_fp) {
            throw Error("measured costs: result file for grid " +
                        fingerprint_hex(file.grid_fp) + " with " +
                        std::to_string(file.total_slots) +
                        " slots does not match the grid being planned (" +
                        std::to_string(total_slots) + " slots)");
        }
        for (const ShardRow& row : file.rows) {
            SLPWLO_CHECK(row.slot < total_slots,
                         "measured costs: row slot out of range");
            const double micros = static_cast<double>(row.micros);
            // Elastic re-issue reports a slot twice (straggler and
            // replacement); keep the faster measurement — the straggler's
            // inflated wall-clock says nothing about the point.
            if (costs[row.slot] < 0.0 || micros < costs[row.slot]) {
                costs[row.slot] = micros;
            }
        }
    }
    double sum = 0.0;
    size_t measured = 0;
    for (const double c : costs) {
        if (c < 0.0) continue;
        sum += c;
        measured++;
    }
    const double fallback = measured > 0 ? sum / measured : 1.0;
    for (double& c : costs) {
        if (c < 0.0) c = fallback;
        if (c < 1.0) c = 1.0;  // floor: zeroes would degenerate the LPT
    }
    return costs;
}

}  // namespace slpwlo::dist
