#include "dist/shard_runner.hpp"

#include <algorithm>

#include "dist/shard_plan.hpp"
#include "support/diagnostics.hpp"

namespace slpwlo::dist {

ShardRow make_shard_row(size_t slot, const SweepPoint& point,
                        const WorkRow& row) {
    ShardRow out;
    out.slot = slot;
    out.point_fp = point_fingerprint(point);
    out.json = sweep_result_to_json(row.result);
    out.micros = row.micros;
    out.measured_ns = row.result.flow.measured_ns;
    return out;
}

PlanSource::PlanSource(const ShardManifest& manifest)
    : manifest_(manifest),
      slots_(manifest.slots),
      inner_(manifest.points) {
    SLPWLO_CHECK(manifest.slots.size() == manifest.points.size(),
                 "manifest slots/points size mismatch");
    for (const SweepPoint& point : manifest.points) {
        SLPWLO_CHECK(point.target_model.has_value(),
                     "shard manifests must embed target models — workers "
                     "do not resolve names");
    }
}

Lease PlanSource::acquire(size_t max_slots) {
    // The inner source leases manifest *indices*; relabel them with the
    // grid slots the merge stage keys on.
    Lease lease = inner_.acquire(max_slots);
    for (size_t& slot : lease.slots) slot = slots_[slot];
    return lease;
}

namespace {

/// Grid slot -> manifest index over the (strictly ascending, parser-
/// checked) slot list; O(log n) per slot.
size_t manifest_index(const std::vector<size_t>& slots, size_t slot,
                      const char* what) {
    const auto it = std::lower_bound(slots.begin(), slots.end(), slot);
    SLPWLO_CHECK(it != slots.end() && *it == slot,
                 std::string(what) + " slot not in manifest");
    return static_cast<size_t>(it - slots.begin());
}

}  // namespace

void PlanSource::complete(const Lease& lease, std::vector<WorkRow> rows) {
    Lease indexed = lease;
    for (size_t& slot : indexed.slots) {
        slot = manifest_index(slots_, slot, "completed");
    }
    inner_.complete(indexed, std::move(rows));
}

void PlanSource::abandon(const Lease& lease) {
    Lease indexed = lease;
    for (size_t& slot : indexed.slots) {
        slot = manifest_index(slots_, slot, "abandoned");
    }
    inner_.abandon(indexed);
}

PlanSource::Output PlanSource::take() {
    std::vector<WorkRow> rows = inner_.take_rows();

    Output out;
    out.results.shard_index = manifest_.shard_index;
    out.results.shard_count = manifest_.shard_count;
    out.results.total_slots = manifest_.total_slots;
    out.results.grid_fp = manifest_.grid_fp;
    out.results.rows.reserve(rows.size());
    out.sweep.reserve(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        out.results.rows.push_back(
            make_shard_row(slots_[i], manifest_.points[i], rows[i]));
        out.sweep.push_back(std::move(rows[i].result));
    }
    return out;
}

ShardRunOutput run_shard(const ShardManifest& manifest,
                         const ShardRunOptions& options) {
    ExecOptions exec = options;  // slice off the dist-only extras
    exec.flow_options = manifest.defaults;
    SweepService service(exec);
    if (options.warm != nullptr) {
        preload_cache(service.driver().eval_cache(), *options.warm);
    }

    PlanSource source(manifest);
    service.drain(source);
    PlanSource::Output drained = source.take();

    ShardRunOutput out;
    out.results = std::move(drained.results);
    out.sweep = std::move(drained.sweep);
    out.stats = service.driver().cache_stats();
    out.results.eval_hits = out.stats.eval_hits;
    out.results.eval_misses = out.stats.eval_misses;
    out.results.eval_entries = out.stats.eval_entries;
    out.results.stage_hits = out.stats.stage_hits;
    out.results.stage_misses = out.stats.stage_misses;
    out.results.stage_entries = out.stats.stage_entries;
    out.snapshot = snapshot_cache(service.driver().eval_cache());
    return out;
}

}  // namespace slpwlo::dist
