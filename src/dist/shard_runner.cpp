#include "dist/shard_runner.hpp"

#include "support/diagnostics.hpp"

namespace slpwlo::dist {

ShardRunOutput run_shard(const ShardManifest& manifest,
                         const ShardRunOptions& options) {
    SLPWLO_CHECK(manifest.slots.size() == manifest.points.size(),
                 "manifest slots/points size mismatch");
    for (const SweepPoint& point : manifest.points) {
        SLPWLO_CHECK(point.target_model.has_value(),
                     "shard manifests must embed target models — workers "
                     "do not resolve names");
    }

    SweepOptions sweep_options;
    sweep_options.threads = options.threads;
    sweep_options.flow_options = manifest.defaults;
    SweepDriver driver(sweep_options);
    if (options.cache_capacity.has_value()) {
        driver.eval_cache().set_capacity(*options.cache_capacity);
    }
    if (options.warm != nullptr) {
        preload_cache(driver.eval_cache(), *options.warm);
    }

    ShardRunOutput out;
    out.sweep = driver.run(manifest.points);

    out.results.shard_index = manifest.shard_index;
    out.results.shard_count = manifest.shard_count;
    out.results.total_slots = manifest.total_slots;
    out.results.grid_fp = manifest.grid_fp;
    out.results.rows.reserve(out.sweep.size());
    for (size_t i = 0; i < out.sweep.size(); ++i) {
        ShardRow row;
        row.slot = manifest.slots[i];
        row.point_fp = point_fingerprint(manifest.points[i]);
        row.json = sweep_result_to_json(out.sweep[i]);
        out.results.rows.push_back(std::move(row));
    }

    out.stats = driver.cache_stats();
    out.results.eval_hits = out.stats.eval_hits;
    out.results.eval_misses = out.stats.eval_misses;
    out.results.eval_entries = out.stats.eval_entries;
    out.snapshot = snapshot_cache(driver.eval_cache());
    return out;
}

}  // namespace slpwlo::dist
