// ShardEngine, stage 4: folding per-shard result files back into the
// single-process sweep report.
//
// A shard result file carries one JSON row per completed slot plus the
// shard's EvalCache counters (so warm-start effectiveness is visible at
// merge time). Rows are the exact sweep_result_to_json objects the
// single-process sweep_to_json emits, tagged with their grid slot and the
// point's content fingerprint:
//
//   # slpwlo shard results
//   results_version = 1
//   shard_index = 0
//   shard_count = 4
//   total_slots = 24
//   grid_fingerprint = <16 hex>
//   eval_hits = 12
//   eval_misses = 6
//   eval_entries = 6
//   rows = 6
//   row = <slot> <point fingerprint:16 hex> <JSON object>
//
// merge_shard_results() reassembles the rows in slot order and produces
// output byte-identical to sweep_to_json over the unsharded grid. The
// merge is defensive by design:
//
//   * shards whose grid fingerprints disagree do not merge (someone ran
//     against a different grid);
//   * the same slot appearing twice with different point fingerprints or
//     row bytes is a hard conflict (two shards claim to be the same work);
//   * missing slots fail with the exact holes listed.
#pragma once

#include <string>
#include <vector>

#include "flow/sweep.hpp"

namespace slpwlo::dist {

struct ShardRow {
    size_t slot = 0;
    uint64_t point_fp = 0;   ///< point_fingerprint of the manifest point
    std::string json;        ///< sweep_result_to_json object (one line)
};

struct ShardResultsFile {
    int version = 1;
    int shard_index = 0;
    int shard_count = 1;
    size_t total_slots = 0;
    uint64_t grid_fp = 0;
    size_t eval_hits = 0;
    size_t eval_misses = 0;
    size_t eval_entries = 0;
    std::vector<ShardRow> rows;
};

std::string shard_results_text(const ShardResultsFile& results);
ShardResultsFile parse_shard_results(const std::string& text,
                                     const std::string& source = "<string>");
ShardResultsFile load_shard_results(const std::string& path);

/// Fold per-shard files into one JSON results array, byte-identical to
/// sweep_to_json(results) of the unsharded run. Throws Error on grid
/// mismatch, slot conflicts/duplicates, or missing slots.
std::string merge_shard_results(const std::vector<ShardResultsFile>& shards);

}  // namespace slpwlo::dist
