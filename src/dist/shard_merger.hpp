// ShardEngine, stage 4: folding per-shard result files back into the
// single-process sweep report.
//
// A shard result file carries one JSON row per completed slot plus the
// shard's EvalCache counters (so warm-start effectiveness is visible at
// merge time). Rows are the exact sweep_result_to_json objects the
// single-process sweep_to_json emits, tagged with their grid slot and the
// point's content fingerprint:
//
//   # slpwlo shard results
//   results_version = 4
//   shard_index = 0
//   shard_count = 4
//   total_slots = 24
//   grid_fingerprint = <16 hex>
//   eval_hits = 12
//   eval_misses = 6
//   eval_entries = 6
//   stage_hits = 0
//   stage_misses = 6
//   stage_entries = 6
//   rows = 6
//   row = <slot> <point fingerprint:16 hex> <micros> <measured_ns> <JSON>
//
// (results_version 2 added the measured per-slot wall-clock microseconds;
// the column is for cost models and is deliberately excluded from
// row identity, fingerprints and merged report bytes — measurements are
// the nondeterministic fields in an otherwise bit-reproducible pipeline.
// results_version 3 added the stage-memo counters; a version-2 file reads
// fine with all stage counters zero. results_version 4 added the
// measured_ns column — the compiled kernel body's per-execution wall time
// from FlowResult::measured_ns, 0 unless the flow ran with measure on —
// under the same exclusion discipline as micros; version-2/3 files read
// fine with measured_ns zero.)
//
// merge_shard_results() reassembles the rows in slot order and produces
// output byte-identical to sweep_to_json over the unsharded grid. The
// merge is defensive by design:
//
//   * shards whose grid fingerprints disagree do not merge (someone ran
//     against a different grid);
//   * the same slot appearing twice with different point fingerprints or
//     row bytes is a hard conflict (two shards claim to be the same work);
//   * under the default policy even an *identical* duplicate slot is an
//     overlap error (static plans are disjoint by construction — overlap
//     means someone merged the wrong files). Elastic lease re-issue
//     legitimately produces identical duplicates (a straggler and its
//     replacement both finish), so that path merges with
//     DuplicatePolicy::AllowIdentical: same fingerprint and same row
//     bytes (micros excluded) deduplicate, anything else still conflicts;
//   * missing slots fail with the exact holes listed.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "flow/sweep.hpp"

namespace slpwlo::dist {

struct ShardRow {
    size_t slot = 0;
    uint64_t point_fp = 0;   ///< point_fingerprint of the manifest point
    std::string json;        ///< sweep_result_to_json object (one line)
    /// Measured wall-clock of this slot's flow run in microseconds.
    /// Excluded from row identity and from the merged report: scheduling
    /// may read it, bytes never depend on it.
    long long micros = 0;
    /// Median wall time of one compiled kernel execution in nanoseconds
    /// (FlowResult::measured_ns); 0 unless the flow measured. Same
    /// exclusion discipline as micros.
    long long measured_ns = 0;
};

struct ShardResultsFile {
    int version = 4;
    int shard_index = 0;
    int shard_count = 1;
    size_t total_slots = 0;
    uint64_t grid_fp = 0;
    size_t eval_hits = 0;
    size_t eval_misses = 0;
    size_t eval_entries = 0;
    size_t stage_hits = 0;
    size_t stage_misses = 0;
    size_t stage_entries = 0;
    std::vector<ShardRow> rows;
};

std::string shard_results_text(const ShardResultsFile& results);
ShardResultsFile parse_shard_results(const std::string& text,
                                     const std::string& source = "<string>");
ShardResultsFile load_shard_results(const std::string& path);

/// How merge_shard_results treats the same slot reported twice with
/// identical content (fingerprint and row bytes; micros never compared).
enum class DuplicatePolicy {
    /// Hard error: static shard plans are disjoint, overlap is a bug.
    Error,
    /// Keep the first row: elastic lease re-issue runs a slot twice when
    /// a straggler and its replacement both finish. Differing content is
    /// still a conflict under either policy.
    AllowIdentical,
};

/// Fold per-shard files into one JSON results array, byte-identical to
/// sweep_to_json(results) of the unsharded run. Throws Error on grid
/// mismatch, slot conflicts, duplicates the policy forbids, or missing
/// slots.
std::string merge_shard_results(const std::vector<ShardResultsFile>& shards,
                                DuplicatePolicy duplicates =
                                    DuplicatePolicy::Error);

/// The merge stage as an *online* accumulator: rows stream in (one shard
/// file, one farm `complete` frame, one spliced batch at a time) and the
/// defensive checks of merge_shard_results — grid identity, fingerprint
/// and byte conflicts, the duplicate policy — run at arrival time, so a
/// bad row is rejected the moment it lands instead of at the final
/// offline fold. merge_shard_results is itself a thin wrapper over this
/// class, which is the byte-identity argument for every streaming
/// consumer (the farm daemon's per-job merger): accumulating rows in any
/// arrival order and rendering the report produces exactly the bytes the
/// offline merge produces, which are exactly sweep_to_json of the
/// 1-process sweep.
class RowAccumulator {
public:
    RowAccumulator(size_t total_slots, uint64_t grid_fp,
                   DuplicatePolicy duplicates = DuplicatePolicy::Error);

    /// Fold one file in; throws Error on grid mismatch, slot conflicts
    /// or duplicates the policy forbids. All-or-nothing: a throwing add
    /// leaves the accumulator unchanged (a rejected farm `complete` frame
    /// must not half-land). Rows are copied — the file need not outlive
    /// the accumulator. Returns how many previously-empty slots this
    /// file filled.
    size_t add(const ShardResultsFile& file);

    size_t total_slots() const { return total_slots_; }
    uint64_t grid_fp() const { return grid_fp_; }
    size_t done_slots() const { return rows_.size(); }
    bool complete() const { return rows_.size() == total_slots_; }
    /// True when `slot` already has an accepted row.
    bool has_slot(size_t slot) const;

    /// Up to `limit` missing slots, ascending.
    std::vector<size_t> missing(size_t limit = 8) const;

    /// The merged JSON results array — byte-identical to
    /// sweep_to_json(results) of the unsharded sweep. Throws Error while
    /// any slot is missing (listing the first few holes).
    std::string report() const;

    /// Everything accumulated as one whole-grid rows file (shard 0 of 1),
    /// rows ascending by slot — the artifact `merge --rows-out` writes so
    /// a later changed grid can splice unchanged slots out of it. Throws
    /// while incomplete.
    ShardResultsFile rows_file() const;

private:
    size_t total_slots_;
    uint64_t grid_fp_;
    DuplicatePolicy duplicates_;
    std::map<size_t, ShardRow> rows_;
};

/// Incremental re-sweeps: rows from a previous run re-slotted onto a new
/// grid by *point fingerprint*. `slot_fps[s]` is point_fingerprint of the
/// new grid's slot `s` (from its manifest — dist::point_fingerprint);
/// every slot whose fingerprint matches an old row is emitted at its new
/// slot with the old row's bytes, so only changed slots need re-running.
/// Old files may come from any grid (their own fingerprints are not
/// checked against `grid_fp`, which stamps the *returned* file); two old
/// rows with the same fingerprint but different bytes are a conflict.
/// Determinism makes the splice sound: a point's row bytes are a pure
/// function of the point, so a spliced report is byte-identical to
/// re-running everything.
ShardResultsFile splice_rows(const std::vector<ShardResultsFile>& old_files,
                             const std::vector<uint64_t>& slot_fps,
                             uint64_t grid_fp);

}  // namespace slpwlo::dist
