// LeaseCoordinator: elastic sweep execution over a shared lease directory.
//
// Static shard plans (shard_plan.hpp) freeze the slot -> worker assignment
// at plan time, so one straggling machine stretches the whole sweep (the
// per-point optimizer cost varies by orders of magnitude). The lease
// coordinator replaces the static assignment with demand paging of slot
// ranges: a coordinator chops a *whole-grid* manifest into cost-balanced
// chunks once, and any number of workers — started at any time, on any
// machine sharing the directory — acquire, run and publish chunks until
// none remain. No network dependency: every coordination primitive is an
// atomic filesystem operation (mkdir to claim, rename to steal or
// publish), so an NFS/sshfs mount or a plain local directory is a queue.
//
//   <dir>/manifest            the whole-grid manifest (plan --shards 1)
//   <dir>/config              lease_version, chunk count, grid fp, ttl
//   <dir>/chunks/<i>.chunk    slot list of chunk i (cost-balanced greedy)
//   <dir>/leases/<i>.lease/   claim directory: mkdir succeeds for exactly
//                             one worker; `claim` records owner + deadline
//   <dir>/results/<i>.<worker>.<seq>.rows
//                             published rows (tmp + rename, atomic)
//   <dir>/expired/<i>.<worker>.<seq>
//                             stolen claim dirs (the re-issue audit trail)
//   <dir>/jit/                shared compiled-kernel cache: every worker's
//                             CompiledEvaluator publishes objects here, so
//                             the farm compiles each kernel once
//
// Temp hygiene: every publish goes through a `.tmp.<pid>.<seq>` sibling
// plus an atomic rename, so a SIGKILLed worker can only orphan files whose
// names carry the `.tmp.` marker. Workers and the collector sweep such
// orphans older than one ttl (exec::jit_cleanup_stale) from results/ and
// jit/ — readers never match them (they filter on exact suffixes), so the
// sweep is pure housekeeping and can never race a live writer that is
// within its ttl.
//
// Liveness and duplicates: a claim carries a wall-clock deadline (claim
// time + ttl). A worker finding an expired claim *steals* it — renames
// the lease directory into expired/ (exactly one stealer's rename
// succeeds) and re-claims. A killed worker's chunk is therefore re-issued
// after one ttl; a merely *slow* worker may still finish and publish a
// second rows file for the same chunk, which is fine by construction:
// results are bit-deterministic, so duplicates are byte-identical (modulo
// the measured micros column) and merge_shard_results resolves them under
// DuplicatePolicy::AllowIdentical — anything that differs is still a hard
// conflict. The merged elastic report is byte-identical to the
// single-process sweep_to_json at any worker count, kill pattern or
// steal interleaving.
#pragma once

#include <string>
#include <vector>

#include "dist/shard_manifest.hpp"
#include "dist/shard_merger.hpp"
#include "flow/work_source.hpp"

namespace slpwlo::dist {

struct LeaseOptions {
    /// Target estimated cost per chunk (estimate_point_cost units);
    /// <= 0 auto-sizes to total_cost / 16 — roughly four chunks in
    /// flight per worker on a 4-worker farm, small enough to absorb
    /// stragglers, large enough to amortize claim traffic.
    double chunk_cost = 0.0;
    /// Hard cap on slots per chunk; 0 = uncapped.
    size_t max_chunk_slots = 0;
    /// Lease time-to-live: an unexpired claim blocks the chunk, an
    /// expired one may be stolen and re-issued.
    long long ttl_ms = 60000;
    /// Measured per-slot costs (measured_slot_costs over a previous run's
    /// rows files), one entry per grid slot, replacing the
    /// estimate_point_cost heuristic for chunk sizing. Empty = use the
    /// heuristic. Costs shape only the chunk boundaries, never results.
    std::vector<double> measured_costs;
};

/// Create `dir` (which must not already be an initialized lease
/// directory) and populate it from `manifest`, which must cover the whole
/// grid (every slot; serve from `plan --shards 1` output). Returns the
/// chunk count. Chunks are a pure function of (manifest, options):
/// greedy, in slot order, cut when the accumulated estimate_point_cost
/// reaches the target.
size_t init_lease_dir(const std::string& dir, const ShardManifest& manifest,
                      const LeaseOptions& options = {});

struct LeaseDirStatus {
    /// Chunks discovered in chunks/ — the config's count plus any
    /// split-off chunks workers have published since init.
    size_t chunks = 0;
    size_t completed = 0;  ///< chunks with at least one published rows file
    size_t claimed = 0;    ///< live claim directories present
    size_t reissued = 0;   ///< chunks whose claim was stolen at least once
};

LeaseDirStatus lease_dir_status(const std::string& dir);

/// Load every published rows file and fold them under
/// DuplicatePolicy::AllowIdentical into the JSON results array —
/// byte-identical to sweep_to_json(results) of the single-process sweep.
/// Throws Error while any chunk has no published rows (poll
/// lease_dir_status until completed == chunks first).
std::string collect_lease_results(const std::string& dir);

struct LeaseWorkerOptions {
    /// Unique worker name (letters, digits, `-`, `_`); it lands in
    /// results/expired filenames. Empty derives "w<pid>".
    std::string worker_id;
    /// Poll interval while other workers hold every remaining chunk.
    long long poll_ms = 25;
    /// Give up acquiring after this long with work outstanding but
    /// nothing claimable (a crashed farm, an unreachable mount).
    long long acquire_timeout_ms = 600000;
    /// Test hook (slpwlo-shard work --straggle-ms): sleep this long while
    /// *holding* each lease before publishing, to force expiry, steal and
    /// duplicate-row resolution downstream.
    long long straggle_ms = 0;
};

/// A lease directory as a WorkSource: acquire() claims the next available
/// (or expired) chunk, complete() publishes its rows file, abandon()
/// releases the claim. One source per worker; many workers per directory.
class LeaseWorkSource final : public WorkSource {
public:
    LeaseWorkSource(std::string dir, LeaseWorkerOptions options = {});
    ~LeaseWorkSource();

    size_t total_slots() const override;
    /// Blocks (polling) while undone chunks are all claimed by live
    /// leases; returns an empty lease only when every chunk has published
    /// results. A positive `max_slots` re-chops an oversized chunk on
    /// claim: the worker keeps the first `max_slots` slots and publishes
    /// the remainder as a brand-new claimable chunk (tail first, then the
    /// shrunk head — a crash in between only duplicates work, never loses
    /// it), so a small machine can take a bite of a chunk sized for a big
    /// one.
    Lease acquire(size_t max_slots) override;
    void complete(const Lease& lease, std::vector<WorkRow> rows) override;
    void abandon(const Lease& lease) override;

    /// The whole-grid manifest the directory serves (workers take their
    /// sweep-wide FlowOptions defaults from here).
    const ShardManifest& manifest() const;

    /// Leases this source stole from an expired claim (re-issues).
    size_t steals() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace slpwlo::dist
