// ShardEngine, stage 2: self-contained work manifests.
//
// A manifest is the file a worker process (or machine) receives: one
// shard's slice of a sweep grid, serialized so the worker needs nothing
// but the file — every point embeds the exact serialized target
// description it must run against (target_desc.hpp's round-trip
// guarantee preserves content fingerprints bit-for-bit), and the
// sweep-wide FlowOptions defaults plus any per-point overrides travel
// along. Workers never consult a target registry.
//
// Format (line-oriented `key = value`, versioned; see DESIGN.md §7):
//
//   # slpwlo shard manifest
//   manifest_version = 1
//   shard_index = 0
//   shard_count = 4
//   strategy = round-robin
//   total_slots = 24
//   grid_fingerprint = 01b3...16 hex...
//   points = 6
//
//   begin_defaults                  # sweep-wide FlowOptions
//   option.accuracy_db = -40
//   option.quant_mode = truncate
//   ...
//   end_defaults
//
//   begin_target t0                 # each distinct model once, verbatim
//   name = XENTIUM                  # target_desc.hpp serialization
//   ...
//   end_target
//
//   begin_kernel k0                 # each distinct DSL source once,
//   kernel dotprod {                # verbatim (canonical_kernel_source
//   ...                             # form: no blank/comment-only lines)
//   }
//   end_kernel
//
//   begin_point
//   slot = 0                        # position in the full grid
//   kernel = FIR
//   target = XENTIUM                # display label
//   flow = WLO-SLP
//   accuracy_db = -20
//   model = t0                      # embedded model reference
//   kernel_source = k0              # file-based kernels only
//   option.quant_mode = round       # optional per-point override block
//   end_point
//
// Versioning policy: `manifest_version` is bumped on any change a v1
// reader cannot ignore; readers reject versions they do not know
// (unknown keys within a known version are errors, not extensions).
// Version history:
//   1  the original format above;
//   2  adds the execution-strategy options `option.evaluator`
//      (tape/walker/compiled noise backend) and `option.measure`
//      (compiled-body timing) to defaults and per-point blocks;
//   3  adds the exact-search options `option.solver.optimizer`
//      (heuristic/optimal flow resolution) and
//      `option.solver.max_nodes` / `option.solver.max_millis`
//      (branch-and-bound budget);
//   4  adds `begin_kernel k<N>` blocks embedding the deduplicated DSL
//      source of file-based kernels (frontend/kernel_file.hpp) and the
//      per-point `kernel_source = k<N>` reference, so workers
//      reconstruct such kernels by content the way they reconstruct
//      target models. Built-in-kernel manifests carry no kernel blocks.
// This reader accepts versions 1 to 4; the writer emits 4.
#pragma once

#include <string>
#include <vector>

#include "dist/shard_plan.hpp"
#include "flow/flow.hpp"

namespace slpwlo::dist {

/// A parsed manifest: everything run_shard (shard_runner.hpp) needs.
struct ShardManifest {
    int version = 1;
    int shard_index = 0;
    int shard_count = 1;
    ShardStrategy strategy = ShardStrategy::RoundRobin;
    size_t total_slots = 0;
    uint64_t grid_fp = 0;
    FlowOptions defaults;          ///< sweep-wide flow options
    std::vector<size_t> slots;     ///< ascending grid slots
    std::vector<SweepPoint> points;  ///< every point carries its model
};

/// Serialize one shard plan (plus the sweep-wide option defaults) as a
/// self-contained manifest text.
std::string shard_manifest_text(const ShardPlan& plan,
                                const FlowOptions& defaults = {});

/// Parse a manifest; `source` names the text in errors. Validates the
/// header (version, counts), slot ordering and bounds, and every embedded
/// model (via the target description parser).
ShardManifest parse_shard_manifest(const std::string& text,
                                   const std::string& source = "<string>");

/// Read `path` and parse it; throws Error when the file cannot be read.
ShardManifest load_shard_manifest(const std::string& path);

// --- FlowOptions serialization -------------------------------------------------
// The `option.`-prefixed keys used in defaults and per-point blocks. The
// serialization covers every FlowOptions field that can influence a sweep
// result (the nested accuracy_db copies that flows overwrite per point
// are deliberately omitted).

/// Every option as `<prefix><key> = <value>` lines (one per line).
std::string flow_options_kv(const FlowOptions& options,
                            const std::string& prefix);

/// Apply one `key = value` pair (key already stripped of its prefix) onto
/// `options`; unknown keys and malformed values fail with `source:line:`.
void apply_flow_option(FlowOptions& options, const std::string& key,
                       const std::string& value, const std::string& source,
                       int line);

}  // namespace slpwlo::dist
