#include "dist/shard_merger.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "flow/report.hpp"
#include "support/diagnostics.hpp"
#include "support/kv_format.hpp"

namespace slpwlo::dist {

std::string shard_results_text(const ShardResultsFile& results) {
    std::ostringstream os;
    os << "# slpwlo shard results\n"
       << "results_version = 4\n"
       << "shard_index = " << results.shard_index << "\n"
       << "shard_count = " << results.shard_count << "\n"
       << "total_slots = " << results.total_slots << "\n"
       << "grid_fingerprint = " << fingerprint_hex(results.grid_fp) << "\n"
       << "eval_hits = " << results.eval_hits << "\n"
       << "eval_misses = " << results.eval_misses << "\n"
       << "eval_entries = " << results.eval_entries << "\n"
       << "stage_hits = " << results.stage_hits << "\n"
       << "stage_misses = " << results.stage_misses << "\n"
       << "stage_entries = " << results.stage_entries << "\n"
       << "rows = " << results.rows.size() << "\n";
    for (const ShardRow& row : results.rows) {
        SLPWLO_CHECK(row.json.find('\n') == std::string::npos,
                     "shard result rows must be single-line JSON");
        SLPWLO_CHECK(row.micros >= 0,
                     "shard result row micros must be non-negative");
        SLPWLO_CHECK(row.measured_ns >= 0,
                     "shard result row measured_ns must be non-negative");
        os << "row = " << row.slot << " " << fingerprint_hex(row.point_fp)
           << " " << row.micros << " " << row.measured_ns << " " << row.json
           << "\n";
    }
    return os.str();
}

ShardResultsFile parse_shard_results(const std::string& text,
                                     const std::string& source) {
    ShardResultsFile results;
    kv::KvReader reader(text, source);
    kv::KvLine line;
    bool saw_version = false;
    long long declared = -1;
    std::set<std::string> header_seen;

    while (reader.next(line)) {
        // Header keys appear exactly once — a concatenated or corrupted
        // file must not sneak a second grid_fingerprint past the merge
        // checks via silent last-wins.
        if (!line.key.empty() && line.key != "row" &&
            !header_seen.insert(line.key).second) {
            reader.fail_here("duplicate key `" + line.key + "`");
        }
        if (line.key == "row") {
            // The row grammar is versioned, so the header's version line
            // must have been read first (writers always emit it first).
            if (!saw_version) {
                reader.fail_here("row before results_version");
            }
            // Rows carry raw JSON which may legitimately contain '#', so
            // re-split from the raw line instead of the comment-stripped
            // value. Versions 2-3 carry three leading columns, version 4
            // adds measured_ns as a fourth.
            const size_t eq = line.raw.find('=');
            SLPWLO_ASSERT(eq != std::string::npos, "row line lost its `=`");
            const std::string payload = kv::trim(line.raw.substr(eq + 1));
            const int columns = results.version >= 4 ? 4 : 3;
            std::vector<std::string> fields;
            size_t cursor = 0;
            bool malformed = false;
            for (int c = 0; c < columns; ++c) {
                const size_t space = payload.find(' ', cursor);
                if (space == std::string::npos) {
                    malformed = true;
                    break;
                }
                fields.push_back(payload.substr(cursor, space - cursor));
                cursor = space + 1;
            }
            if (malformed) {
                reader.fail_here(
                    columns == 4
                        ? "row expects `<slot> <fingerprint> <micros> "
                          "<measured_ns> <json>`"
                        : "row expects `<slot> <fingerprint> <micros> "
                          "<json>`");
            }
            ShardRow row;
            row.slot = static_cast<size_t>(
                kv::to_ll(source, line.line, "row slot", fields[0]));
            row.point_fp = kv::to_fingerprint(source, line.line,
                                              "row fingerprint", fields[1]);
            row.micros =
                kv::to_ll(source, line.line, "row micros", fields[2]);
            if (row.micros < 0) {
                reader.fail_here("row micros must be non-negative");
            }
            if (columns == 4) {
                row.measured_ns = kv::to_ll(source, line.line,
                                            "row measured_ns", fields[3]);
                if (row.measured_ns < 0) {
                    reader.fail_here("row measured_ns must be non-negative");
                }
            }
            row.json = payload.substr(cursor);
            if (row.json.empty() || row.json.front() != '{' ||
                row.json.back() != '}') {
                reader.fail_here("row JSON must be a single-line object");
            }
            results.rows.push_back(std::move(row));
        } else if (line.key == "results_version") {
            results.version =
                kv::to_int(source, line.line, line.key, line.value);
            if (results.version < 2 || results.version > 4) {
                reader.fail_here("unsupported results_version " + line.value +
                                 " (this reader knows 2-4)");
            }
            saw_version = true;
        } else if (line.key == "shard_index") {
            results.shard_index =
                kv::to_int(source, line.line, line.key, line.value);
        } else if (line.key == "shard_count") {
            results.shard_count =
                kv::to_int(source, line.line, line.key, line.value);
        } else if (line.key == "total_slots") {
            results.total_slots = static_cast<size_t>(
                kv::to_ll(source, line.line, line.key, line.value));
        } else if (line.key == "grid_fingerprint") {
            results.grid_fp =
                kv::to_fingerprint(source, line.line, line.key, line.value);
        } else if (line.key == "eval_hits") {
            results.eval_hits = static_cast<size_t>(
                kv::to_ll(source, line.line, line.key, line.value));
        } else if (line.key == "eval_misses") {
            results.eval_misses = static_cast<size_t>(
                kv::to_ll(source, line.line, line.key, line.value));
        } else if (line.key == "eval_entries") {
            results.eval_entries = static_cast<size_t>(
                kv::to_ll(source, line.line, line.key, line.value));
        } else if (line.key == "stage_hits") {
            results.stage_hits = static_cast<size_t>(
                kv::to_ll(source, line.line, line.key, line.value));
        } else if (line.key == "stage_misses") {
            results.stage_misses = static_cast<size_t>(
                kv::to_ll(source, line.line, line.key, line.value));
        } else if (line.key == "stage_entries") {
            results.stage_entries = static_cast<size_t>(
                kv::to_ll(source, line.line, line.key, line.value));
        } else if (line.key == "rows") {
            declared = kv::to_ll(source, line.line, line.key, line.value);
        } else if (line.key.empty()) {
            reader.fail_here("expected `key = value`, got `" + line.value +
                             "`");
        } else {
            reader.fail_here("unknown key `" + line.key + "`");
        }
    }

    if (!saw_version) throw Error(source + ": missing results_version");
    if (declared >= 0 && static_cast<size_t>(declared) != results.rows.size()) {
        throw Error(source + ": header declares " + std::to_string(declared) +
                    " rows, file has " + std::to_string(results.rows.size()));
    }
    for (const ShardRow& row : results.rows) {
        if (row.slot >= results.total_slots) {
            throw Error(source + ": row slot " + std::to_string(row.slot) +
                        " out of range (total_slots = " +
                        std::to_string(results.total_slots) + ")");
        }
    }
    return results;
}

ShardResultsFile load_shard_results(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw Error("cannot read shard results `" + path + "`");
    std::ostringstream text;
    text << in.rdbuf();
    return parse_shard_results(text.str(), path);
}

std::string merge_shard_results(const std::vector<ShardResultsFile>& shards,
                                DuplicatePolicy duplicates) {
    SLPWLO_CHECK(!shards.empty(), "nothing to merge: no shard result files");
    const size_t total_slots = shards.front().total_slots;
    const uint64_t grid_fp = shards.front().grid_fp;
    for (const ShardResultsFile& shard : shards) {
        if (shard.total_slots != total_slots || shard.grid_fp != grid_fp) {
            throw Error(
                "shard merge: grid mismatch — shard " +
                std::to_string(shard.shard_index) + " ran grid " +
                fingerprint_hex(shard.grid_fp) + " with " +
                std::to_string(shard.total_slots) +
                " slots, expected grid " + fingerprint_hex(grid_fp) +
                " with " + std::to_string(total_slots) + " slots");
        }
    }

    std::map<size_t, const ShardRow*> by_slot;
    for (const ShardResultsFile& shard : shards) {
        for (const ShardRow& row : shard.rows) {
            const auto [it, inserted] = by_slot.emplace(row.slot, &row);
            if (inserted) continue;
            // Identity deliberately ignores micros and measured_ns: two
            // runs of the same point measure different wall-clocks but
            // must compare equal.
            const ShardRow& existing = *it->second;
            if (existing.point_fp != row.point_fp ||
                existing.json != row.json) {
                throw Error("shard merge conflict: slot " +
                            std::to_string(row.slot) +
                            " reported twice with different contents (" +
                            fingerprint_hex(existing.point_fp) + " vs " +
                            fingerprint_hex(row.point_fp) + ")");
            }
            if (duplicates == DuplicatePolicy::AllowIdentical) continue;
            throw Error("shard merge: slot " + std::to_string(row.slot) +
                        " reported by more than one shard (overlapping "
                        "plans)");
        }
    }

    if (by_slot.size() != total_slots) {
        std::string missing;
        int listed = 0;
        for (size_t slot = 0; slot < total_slots && listed < 8; ++slot) {
            if (by_slot.count(slot) != 0) continue;
            if (!missing.empty()) missing += ", ";
            missing += std::to_string(slot);
            listed++;
        }
        throw Error("shard merge: " +
                    std::to_string(total_slots - by_slot.size()) +
                    " of " + std::to_string(total_slots) +
                    " slots missing (first: " + missing + ")");
    }

    // Reassemble exactly as sweep_to_json does, so a sharded sweep and a
    // single-process sweep emit the same bytes.
    std::ostringstream os;
    os << "[";
    bool first = true;
    for (const auto& [slot, row] : by_slot) {
        (void)slot;
        if (!first) os << ",";
        first = false;
        os << "\n  " << row->json;
    }
    os << "\n]\n";
    return os.str();
}

}  // namespace slpwlo::dist
