#include "dist/shard_merger.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "flow/report.hpp"
#include "support/diagnostics.hpp"
#include "support/kv_format.hpp"

namespace slpwlo::dist {

std::string shard_results_text(const ShardResultsFile& results) {
    std::ostringstream os;
    os << "# slpwlo shard results\n"
       << "results_version = 4\n"
       << "shard_index = " << results.shard_index << "\n"
       << "shard_count = " << results.shard_count << "\n"
       << "total_slots = " << results.total_slots << "\n"
       << "grid_fingerprint = " << fingerprint_hex(results.grid_fp) << "\n"
       << "eval_hits = " << results.eval_hits << "\n"
       << "eval_misses = " << results.eval_misses << "\n"
       << "eval_entries = " << results.eval_entries << "\n"
       << "stage_hits = " << results.stage_hits << "\n"
       << "stage_misses = " << results.stage_misses << "\n"
       << "stage_entries = " << results.stage_entries << "\n"
       << "rows = " << results.rows.size() << "\n";
    for (const ShardRow& row : results.rows) {
        SLPWLO_CHECK(row.json.find('\n') == std::string::npos,
                     "shard result rows must be single-line JSON");
        SLPWLO_CHECK(row.micros >= 0,
                     "shard result row micros must be non-negative");
        SLPWLO_CHECK(row.measured_ns >= 0,
                     "shard result row measured_ns must be non-negative");
        os << "row = " << row.slot << " " << fingerprint_hex(row.point_fp)
           << " " << row.micros << " " << row.measured_ns << " " << row.json
           << "\n";
    }
    return os.str();
}

ShardResultsFile parse_shard_results(const std::string& text,
                                     const std::string& source) {
    ShardResultsFile results;
    kv::KvReader reader(text, source);
    kv::KvLine line;
    bool saw_version = false;
    long long declared = -1;
    std::set<std::string> header_seen;

    while (reader.next(line)) {
        // Header keys appear exactly once — a concatenated or corrupted
        // file must not sneak a second grid_fingerprint past the merge
        // checks via silent last-wins.
        if (!line.key.empty() && line.key != "row" &&
            !header_seen.insert(line.key).second) {
            reader.fail_here("duplicate key `" + line.key + "`");
        }
        if (line.key == "row") {
            // The row grammar is versioned, so the header's version line
            // must have been read first (writers always emit it first).
            if (!saw_version) {
                reader.fail_here("row before results_version");
            }
            // Rows carry raw JSON which may legitimately contain '#', so
            // re-split from the raw line instead of the comment-stripped
            // value. Versions 2-3 carry three leading columns, version 4
            // adds measured_ns as a fourth.
            const size_t eq = line.raw.find('=');
            SLPWLO_ASSERT(eq != std::string::npos, "row line lost its `=`");
            const std::string payload = kv::trim(line.raw.substr(eq + 1));
            const int columns = results.version >= 4 ? 4 : 3;
            std::vector<std::string> fields;
            size_t cursor = 0;
            bool malformed = false;
            for (int c = 0; c < columns; ++c) {
                const size_t space = payload.find(' ', cursor);
                if (space == std::string::npos) {
                    malformed = true;
                    break;
                }
                fields.push_back(payload.substr(cursor, space - cursor));
                cursor = space + 1;
            }
            if (malformed) {
                reader.fail_here(
                    columns == 4
                        ? "row expects `<slot> <fingerprint> <micros> "
                          "<measured_ns> <json>`"
                        : "row expects `<slot> <fingerprint> <micros> "
                          "<json>`");
            }
            ShardRow row;
            row.slot = static_cast<size_t>(
                kv::to_ll(source, line.line, "row slot", fields[0]));
            row.point_fp = kv::to_fingerprint(source, line.line,
                                              "row fingerprint", fields[1]);
            row.micros =
                kv::to_ll(source, line.line, "row micros", fields[2]);
            if (row.micros < 0) {
                reader.fail_here("row micros must be non-negative");
            }
            if (columns == 4) {
                row.measured_ns = kv::to_ll(source, line.line,
                                            "row measured_ns", fields[3]);
                if (row.measured_ns < 0) {
                    reader.fail_here("row measured_ns must be non-negative");
                }
            }
            row.json = payload.substr(cursor);
            if (row.json.empty() || row.json.front() != '{' ||
                row.json.back() != '}') {
                reader.fail_here("row JSON must be a single-line object");
            }
            results.rows.push_back(std::move(row));
        } else if (line.key == "results_version") {
            results.version =
                kv::to_int(source, line.line, line.key, line.value);
            if (results.version < 2 || results.version > 4) {
                reader.fail_here("unsupported results_version " + line.value +
                                 " (this reader knows 2-4)");
            }
            saw_version = true;
        } else if (line.key == "shard_index") {
            results.shard_index =
                kv::to_int(source, line.line, line.key, line.value);
        } else if (line.key == "shard_count") {
            results.shard_count =
                kv::to_int(source, line.line, line.key, line.value);
        } else if (line.key == "total_slots") {
            results.total_slots = static_cast<size_t>(
                kv::to_ll(source, line.line, line.key, line.value));
        } else if (line.key == "grid_fingerprint") {
            results.grid_fp =
                kv::to_fingerprint(source, line.line, line.key, line.value);
        } else if (line.key == "eval_hits") {
            results.eval_hits = static_cast<size_t>(
                kv::to_ll(source, line.line, line.key, line.value));
        } else if (line.key == "eval_misses") {
            results.eval_misses = static_cast<size_t>(
                kv::to_ll(source, line.line, line.key, line.value));
        } else if (line.key == "eval_entries") {
            results.eval_entries = static_cast<size_t>(
                kv::to_ll(source, line.line, line.key, line.value));
        } else if (line.key == "stage_hits") {
            results.stage_hits = static_cast<size_t>(
                kv::to_ll(source, line.line, line.key, line.value));
        } else if (line.key == "stage_misses") {
            results.stage_misses = static_cast<size_t>(
                kv::to_ll(source, line.line, line.key, line.value));
        } else if (line.key == "stage_entries") {
            results.stage_entries = static_cast<size_t>(
                kv::to_ll(source, line.line, line.key, line.value));
        } else if (line.key == "rows") {
            declared = kv::to_ll(source, line.line, line.key, line.value);
        } else if (line.key.empty()) {
            reader.fail_here("expected `key = value`, got `" + line.value +
                             "`");
        } else {
            reader.fail_here("unknown key `" + line.key + "`");
        }
    }

    if (!saw_version) throw Error(source + ": missing results_version");
    if (declared >= 0 && static_cast<size_t>(declared) != results.rows.size()) {
        throw Error(source + ": header declares " + std::to_string(declared) +
                    " rows, file has " + std::to_string(results.rows.size()));
    }
    for (const ShardRow& row : results.rows) {
        if (row.slot >= results.total_slots) {
            throw Error(source + ": row slot " + std::to_string(row.slot) +
                        " out of range (total_slots = " +
                        std::to_string(results.total_slots) + ")");
        }
    }
    return results;
}

ShardResultsFile load_shard_results(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw Error("cannot read shard results `" + path + "`");
    std::ostringstream text;
    text << in.rdbuf();
    return parse_shard_results(text.str(), path);
}

std::string merge_shard_results(const std::vector<ShardResultsFile>& shards,
                                DuplicatePolicy duplicates) {
    SLPWLO_CHECK(!shards.empty(), "nothing to merge: no shard result files");
    RowAccumulator accumulator(shards.front().total_slots,
                               shards.front().grid_fp, duplicates);
    for (const ShardResultsFile& shard : shards) accumulator.add(shard);
    return accumulator.report();
}

// --- RowAccumulator ------------------------------------------------------------

RowAccumulator::RowAccumulator(size_t total_slots, uint64_t grid_fp,
                               DuplicatePolicy duplicates)
    : total_slots_(total_slots), grid_fp_(grid_fp), duplicates_(duplicates) {
    SLPWLO_CHECK(total_slots_ > 0, "cannot accumulate a zero-slot grid");
}

size_t RowAccumulator::add(const ShardResultsFile& file) {
    if (file.total_slots != total_slots_ || file.grid_fp != grid_fp_) {
        throw Error("shard merge: grid mismatch — shard " +
                    std::to_string(file.shard_index) + " ran grid " +
                    fingerprint_hex(file.grid_fp) + " with " +
                    std::to_string(file.total_slots) +
                    " slots, expected grid " + fingerprint_hex(grid_fp_) +
                    " with " + std::to_string(total_slots_) + " slots");
    }
    // Validate everything before inserting anything: an add() that throws
    // leaves the accumulator untouched. The farm daemon leans on this —
    // a `complete` frame either lands whole or is rejected whole, never
    // half-merged.
    std::map<size_t, const ShardRow*> fresh;
    for (const ShardRow& row : file.rows) {
        SLPWLO_CHECK(row.slot < total_slots_, "shard merge: row slot " +
                                                  std::to_string(row.slot) +
                                                  " out of range");
        const ShardRow* existing = nullptr;
        if (const auto it = rows_.find(row.slot); it != rows_.end()) {
            existing = &it->second;
        } else if (const auto nit = fresh.find(row.slot); nit != fresh.end()) {
            existing = nit->second;
        }
        if (existing == nullptr) {
            fresh.emplace(row.slot, &row);
            continue;
        }
        // Identity deliberately ignores micros and measured_ns: two runs
        // of the same point measure different wall-clocks but must
        // compare equal.
        if (existing->point_fp != row.point_fp ||
            existing->json != row.json) {
            throw Error("shard merge conflict: slot " +
                        std::to_string(row.slot) +
                        " reported twice with different contents (" +
                        fingerprint_hex(existing->point_fp) + " vs " +
                        fingerprint_hex(row.point_fp) + ")");
        }
        if (duplicates_ == DuplicatePolicy::AllowIdentical) continue;
        throw Error("shard merge: slot " + std::to_string(row.slot) +
                    " reported by more than one shard (overlapping plans)");
    }
    for (const auto& [slot, row] : fresh) rows_.emplace(slot, *row);
    return fresh.size();
}

bool RowAccumulator::has_slot(size_t slot) const {
    return rows_.count(slot) != 0;
}

std::vector<size_t> RowAccumulator::missing(size_t limit) const {
    std::vector<size_t> holes;
    for (size_t slot = 0; slot < total_slots_ && holes.size() < limit;
         ++slot) {
        if (rows_.count(slot) == 0) holes.push_back(slot);
    }
    return holes;
}

std::string RowAccumulator::report() const {
    if (!complete()) {
        std::string listed;
        for (const size_t slot : missing()) {
            if (!listed.empty()) listed += ", ";
            listed += std::to_string(slot);
        }
        throw Error("shard merge: " +
                    std::to_string(total_slots_ - rows_.size()) + " of " +
                    std::to_string(total_slots_) +
                    " slots missing (first: " + listed + ")");
    }
    // Reassemble exactly as sweep_to_json does, so a sharded sweep, a
    // farm-streamed sweep and a single-process sweep emit the same bytes.
    std::ostringstream os;
    os << "[";
    bool first = true;
    for (const auto& [slot, row] : rows_) {
        (void)slot;
        if (!first) os << ",";
        first = false;
        os << "\n  " << row.json;
    }
    os << "\n]\n";
    return os.str();
}

ShardResultsFile RowAccumulator::rows_file() const {
    // The holes check (and its error message) is report()'s.
    if (!complete()) report();
    ShardResultsFile file;
    file.shard_index = 0;
    file.shard_count = 1;
    file.total_slots = total_slots_;
    file.grid_fp = grid_fp_;
    file.rows.reserve(rows_.size());
    for (const auto& [slot, row] : rows_) {
        (void)slot;
        file.rows.push_back(row);
    }
    return file;
}

// --- splice_rows ---------------------------------------------------------------

ShardResultsFile splice_rows(const std::vector<ShardResultsFile>& old_files,
                             const std::vector<uint64_t>& slot_fps,
                             uint64_t grid_fp) {
    // Old rows by point fingerprint. The old grid's slot numbers are
    // irrelevant — identity is the point's content, which is exactly what
    // the fingerprint hashes (kernel + source + options + constraint +
    // target model).
    std::map<uint64_t, const ShardRow*> by_fp;
    for (const ShardResultsFile& file : old_files) {
        for (const ShardRow& row : file.rows) {
            const auto [it, inserted] = by_fp.emplace(row.point_fp, &row);
            if (inserted) continue;
            if (it->second->json != row.json) {
                throw Error("splice: point " + fingerprint_hex(row.point_fp) +
                            " appears in the old report with two different "
                            "row contents");
            }
        }
    }

    ShardResultsFile spliced;
    spliced.shard_index = 0;
    spliced.shard_count = 1;
    spliced.total_slots = slot_fps.size();
    spliced.grid_fp = grid_fp;
    for (size_t slot = 0; slot < slot_fps.size(); ++slot) {
        const auto it = by_fp.find(slot_fps[slot]);
        if (it == by_fp.end()) continue;  // changed slot: must be re-run
        ShardRow row = *it->second;
        row.slot = slot;
        spliced.rows.push_back(std::move(row));
    }
    return spliced;
}

}  // namespace slpwlo::dist
